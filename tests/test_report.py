"""Tests for report rendering."""

import json

import pytest

from repro import AnalyzerConfig, analyze
from repro.report import render_json, render_markdown, write_report

CLEAN = """
int x;
int main(void) { x = 1; return 0; }
"""

BUGGY = """
volatile int v; int x;
int main(void) { x = 1 / v; return 0; }
"""

LOOPY = """
volatile int v; int c;
int main(void) {
    while (1) {
        if (v) { if (c < 100) { c = c + 1; } }
        __ASTREE_wait_for_clock();
    }
    return 0;
}
"""


class TestMarkdown:
    def test_clean_report_says_proved(self):
        r = analyze(CLEAN)
        md = render_markdown(r)
        assert "proved" in md
        assert "Alarms (0)" in md

    def test_buggy_report_lists_alarm(self):
        r = analyze(BUGGY, config=AnalyzerConfig(input_ranges={"v": (0, 3)}))
        md = render_markdown(r)
        assert "division-by-zero" in md
        assert "Alarms (1)" in md

    def test_invariant_section_with_loops(self):
        cfg = AnalyzerConfig(input_ranges={"v": (0, 1)},
                             collect_invariants=True)
        r = analyze(LOOPY, config=cfg)
        md = render_markdown(r)
        assert "Main loop invariant" in md
        assert "| clock |" in md

    def test_custom_title(self):
        r = analyze(CLEAN)
        assert render_markdown(r, title="My run").startswith("# My run")


class TestJson:
    def test_round_trips(self):
        r = analyze(BUGGY, config=AnalyzerConfig(input_ranges={"v": (0, 3)}))
        payload = json.loads(render_json(r))
        assert payload["alarm_count"] == 1
        assert payload["alarms"][0]["kind"] == "division-by-zero"
        assert payload["packing"]["octagon_packs"] >= 0
        assert "invariant_stats" in payload

    def test_useful_packs_serialized(self):
        r = analyze(CLEAN)
        payload = json.loads(render_json(r))
        assert isinstance(payload["packing"]["useful_octagon_packs"], list)


class TestWrite:
    def test_write_markdown(self, tmp_path):
        r = analyze(CLEAN)
        path = tmp_path / "out.md"
        write_report(r, str(path))
        assert "Analysis report" in path.read_text()

    def test_write_json_by_extension(self, tmp_path):
        r = analyze(CLEAN)
        path = tmp_path / "out.json"
        write_report(r, str(path))
        json.loads(path.read_text())
