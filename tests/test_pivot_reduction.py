"""Tests for the optional inter-octagon pivot reduction (Sect. 7.2.1)."""

import pytest

from repro import AnalyzerConfig, analyze
from repro.synth import FamilySpec, generate_program


class TestPivotReduction:
    SRC = """
    volatile float vin;
    float a, b, c, d;
    int main(void) {
        a = vin;
        { b = a + 1.0f; c = b - a; }
        { d = b + c; }
        return 0;
    }
    """

    def cfg(self, **kw):
        return AnalyzerConfig(input_ranges={"vin": (0.0, 1.0)}, **kw)

    def test_flag_defaults_off(self):
        assert not AnalyzerConfig().octagon_pivot_reduction

    def test_sound_with_reduction_on(self):
        r_off = analyze(self.SRC, config=self.cfg())
        r_on = analyze(self.SRC,
                       config=self.cfg(octagon_pivot_reduction=True))
        # The reduction is a pure precision refinement: never more alarms.
        assert r_on.alarm_count <= r_off.alarm_count

    def test_family_program_unchanged(self):
        """On the family, pivot reduction must not change the verdict
        (the paper: 'this precision gain was not needed')."""
        gp = generate_program(FamilySpec(target_kloc=0.2, seed=31))
        base = analyze(gp.source, "f.c", config=gp.analyzer_config())
        piv = analyze(gp.source, "f.c", config=gp.analyzer_config(
            octagon_pivot_reduction=True))
        assert base.alarm_count == piv.alarm_count == 0

    def test_propagation_between_packs(self):
        """Constraints on a shared pair flow from one octagon to another."""
        from repro.domains.octagon import Octagon
        from repro.iterator.state import AbstractState, AnalysisContext
        from repro.memory.cells import CellTable
        from repro.packing.boolean_packs import BoolPacking
        from repro.packing.ellipsoid_sites import FilterSites
        from repro.packing.octagon_packs import OctagonPack, OctagonPacking
        from repro.frontend import compile_source

        prog = compile_source(
            "int main(void) { return 0; }", "t.c")
        table = CellTable.for_program(prog)
        packs = OctagonPacking([
            OctagonPack(0, (100, 101)),        # shares both cells with pack 1
            OctagonPack(1, (100, 101, 102)),
        ])
        ctx = AnalysisContext(
            prog=prog, config=AnalyzerConfig(octagon_pivot_reduction=True),
            table=table, oct_packs=packs, bool_packs=BoolPacking([]),
            filter_sites=FilterSites([]))
        state = AbstractState.initial(ctx)
        # Tighten a difference bound in pack 0 only.
        o0 = state.octagons.get(0).guard_upper({0: 1, 1: -1}, 2.0)
        state = state._with(octagons=state.octagons.set(0, o0))
        assert state.octagons.get(1).diff_bound(0, 1).hi > 1e30  # top
        state = state.propagate_octagon_pivots(0)
        assert state.octagons.get(1).diff_bound(0, 1).hi <= 2.0001
