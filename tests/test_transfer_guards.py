"""Unit tests for transfer-function and guard edge cases."""

import pytest

from repro import AnalyzerConfig, analyze
from repro.iterator.alarms import AlarmKind


def kinds(r):
    return sorted({a.kind for a in r.alarms})


def run(src, **ranges):
    return analyze(src, config=AnalyzerConfig(input_ranges=ranges))


class TestIntegerArithmetic:
    def test_unsigned_wraparound_flagged(self):
        src = """
        volatile int v; unsigned int x;
        int main(void) { x = (unsigned int)v - 1u; return 0; }
        """
        r = run(src, v=(0, 10))
        # v may be 0: 0u - 1u wraps; "integers wrap-around due to overflow"
        # is reported per the end-user semantics (Sect. 5.3).
        assert AlarmKind.INT_OVERFLOW in kinds(r)

    def test_modulo_result_range(self):
        src = """
        volatile int v; int x;
        int main(void) {
            x = v % 7;
            __ASTREE_assert(x >= -6);
            __ASTREE_assert(x <= 6);
            return 0;
        }
        """
        assert run(src, v=(-1000, 1000)).alarm_count == 0

    def test_division_truncates_toward_zero(self):
        src = """
        int x;
        int main(void) {
            x = -7 / 2;
            __ASTREE_assert(x == -3);
            return 0;
        }
        """
        assert run(src).alarm_count == 0

    def test_shift_left_constant(self):
        src = """
        int x;
        int main(void) {
            x = 3 << 4;
            __ASTREE_assert(x == 48);
            return 0;
        }
        """
        assert run(src).alarm_count == 0

    def test_shift_right_range(self):
        src = """
        volatile int v; int x;
        int main(void) {
            x = v >> 4;
            __ASTREE_assert(x <= 62);
            __ASTREE_assert(x >= 0);
            return 0;
        }
        """
        assert run(src, v=(0, 1000)).alarm_count == 0

    def test_bitwise_and_nonneg_bound(self):
        src = """
        volatile int v; int x;
        int main(void) {
            x = v & 15;
            __ASTREE_assert(x <= 15);
            __ASTREE_assert(x >= 0);
            return 0;
        }
        """
        assert run(src, v=(0, 10000)).alarm_count == 0

    def test_bitwise_constants_exact(self):
        src = """
        int x;
        int main(void) {
            x = (12 & 10) + (12 | 10) + (12 ^ 10);
            __ASTREE_assert(x == 8 + 14 + 6);
            return 0;
        }
        """
        assert run(src).alarm_count == 0

    def test_bnot(self):
        src = """
        int x;
        int main(void) {
            int y = 5;
            x = ~y;
            __ASTREE_assert(x == -6);
            return 0;
        }
        """
        assert run(src).alarm_count == 0


class TestFloatArithmetic:
    def test_float_division_by_constant_safe(self):
        src = """
        volatile float v; float x;
        int main(void) { x = v / 2.0f; return 0; }
        """
        assert run(src, v=(-100.0, 100.0)).alarm_count == 0

    def test_double_intermediate_precision(self):
        src = """
        volatile float v; double d; float x;
        int main(void) {
            d = (double)v * 2.0;
            x = (float)d;
            __ASTREE_assert(x <= 20.1f);
            return 0;
        }
        """
        assert run(src, v=(-10.0, 10.0)).alarm_count == 0

    def test_fabs_bounds(self):
        src = """
        volatile float v; float x;
        int main(void) {
            x = fabsf(v);
            __ASTREE_assert(x >= 0.0f);
            __ASTREE_assert(x <= 10.1f);
            return 0;
        }
        """
        assert run(src, v=(-10.0, 10.0)).alarm_count == 0

    def test_sqrt_of_guarded_value(self):
        src = """
        volatile float v; float x;
        int main(void) {
            float y = v;
            if (y >= 0.0f) { x = sqrtf(y); }
            return 0;
        }
        """
        assert run(src, v=(-10.0, 10.0)).alarm_count == 0

    def test_float_to_int_cast_range_checked(self):
        src = """
        volatile float v; int x;
        int main(void) { x = (int)v; return 0; }
        """
        r = run(src, v=(0.0, 1e15))
        assert AlarmKind.CAST_RANGE in kinds(r)

    def test_float_compare_guard(self):
        src = """
        volatile float v; float x;
        int main(void) {
            x = v;
            if (x > 1.0f) {
                __ASTREE_assert(x > 0.5f);
            }
            return 0;
        }
        """
        assert run(src, v=(-10.0, 10.0)).alarm_count == 0


class TestGuards:
    def test_equality_guard_refines_to_constant(self):
        src = """
        volatile int v; int x; int y;
        int main(void) {
            x = v;
            if (x == 5) { y = 100 / (x - 4); }
            return 0;
        }
        """
        assert run(src, v=(0, 10)).alarm_count == 0

    def test_conjunction_refines_both(self):
        src = """
        volatile int v; int x; int y;
        int main(void) {
            x = v;
            if (x > 2 && x < 7) {
                __ASTREE_assert(x >= 3);
                __ASTREE_assert(x <= 6);
            }
            return 0;
        }
        """
        assert run(src, v=(0, 100)).alarm_count == 0

    def test_disjunction_joins(self):
        src = """
        volatile int v; int x; int y;
        int main(void) {
            x = v;
            if (x < 2 || x > 7) { y = 1; }
            else { __ASTREE_assert(x >= 2); __ASTREE_assert(x <= 7); }
            return 0;
        }
        """
        assert run(src, v=(0, 100)).alarm_count == 0

    def test_negated_compound_condition(self):
        src = """
        volatile int v; int x;
        int main(void) {
            x = v;
            if (!(x > 2 && x < 7)) { } else {
                __ASTREE_assert(x >= 3);
            }
            return 0;
        }
        """
        assert run(src, v=(0, 100)).alarm_count == 0

    def test_linear_guard_two_variables(self):
        """x + y <= 10 refines x given y's range (linear-form backward)."""
        src = """
        volatile int a; volatile int b; int x; int y;
        int main(void) {
            x = a; y = b;
            if (x + y <= 10) {
                __ASTREE_assert(x <= 10);
            }
            return 0;
        }
        """
        assert run(src, a=(0, 100), b=(0, 100)).alarm_count == 0

    def test_guard_on_unreachable_branch_is_bottom(self):
        src = """
        int x; int y;
        int main(void) {
            x = 5;
            if (x > 10) { y = 1 / 0; }
            return 0;
        }
        """
        assert run(src).alarm_count == 0

    def test_known_fact_contradiction_gives_bottom(self):
        src = """
        volatile int v; int x; int y;
        int main(void) {
            x = v;
            __ASTREE_known_fact(x > 5);
            __ASTREE_known_fact(x < 3);
            y = 1 / 0;  /* unreachable under the (contradictory) facts */
            return 0;
        }
        """
        assert run(src, v=(0, 10)).alarm_count == 0


class TestMemoryModel:
    def test_shrunk_array_weak_update(self):
        """Writes into a summarized array join with old contents."""
        src = """
        float big[10000];
        volatile int vi; volatile float vf;
        float x;
        int main(void) {
            int i = vi;
            if (i >= 0) { if (i < 10000) {
                big[i] = vf;
                x = big[0];
                __ASTREE_assert(x >= -1.0f);
                __ASTREE_assert(x <= 1.0f);
            } }
            return 0;
        }
        """
        r = run(src, vi=(0, 9999), vf=(-1.0, 1.0))
        assert r.alarm_count == 0

    def test_expanded_array_strong_update(self):
        src = """
        float small[4];
        int main(void) {
            small[2] = 7.0f;
            __ASTREE_assert(small[2] == 7.0f);
            __ASTREE_assert(small[0] == 0.0f);
            return 0;
        }
        """
        assert run(src).alarm_count == 0

    def test_unknown_index_write_weakens_all(self):
        src = """
        float a[4];
        volatile int vi;
        int main(void) {
            int i = vi;
            if (i >= 0) { if (i < 4) { a[i] = 5.0f; } }
            /* a[0] may be 0 (untouched) or 5 */
            __ASTREE_assert(a[0] <= 5.0f);
            __ASTREE_assert(a[0] >= 0.0f);
            return 0;
        }
        """
        assert run(src, vi=(0, 3)).alarm_count == 0

    def test_volatile_reads_always_full_range(self):
        """Two reads of a volatile input may differ (no caching)."""
        src = """
        volatile int v; int a; int b;
        int main(void) {
            a = v;
            b = v;
            /* a == b must NOT be assumed */
            if (a != b) { a = 0; }
            return 0;
        }
        """
        assert run(src, v=(0, 10)).alarm_count == 0

    def test_struct_field_sensitivity(self):
        src = """
        struct s { int a; int b; };
        struct s g;
        int main(void) {
            g.a = 1;
            g.b = 2;
            __ASTREE_assert(g.a == 1);
            __ASTREE_assert(g.b == 2);
            return 0;
        }
        """
        assert run(src).alarm_count == 0

    def test_uninitialized_local_is_type_range(self):
        src = """
        int out;
        int main(void) {
            int x;
            out = x;  /* may be anything in int range: no crash, no alarm */
            return 0;
        }
        """
        assert run(src).alarm_count == 0


class TestSwitchEdgeCases:
    def test_switch_without_default_falls_through(self):
        src = """
        volatile int v; int x; int y;
        int main(void) {
            x = v;
            y = 5;
            switch (x) { case 1: y = 1; break; }
            __ASTREE_assert(y >= 1);
            __ASTREE_assert(y <= 5);
            return 0;
        }
        """
        assert run(src, v=(0, 10)).alarm_count == 0

    def test_switch_stacked_labels(self):
        src = """
        volatile int v; int x; int y;
        int main(void) {
            x = v;
            switch (x) {
                case 1: case 2: y = 10; break;
                default: y = 0; break;
            }
            __ASTREE_assert(y <= 10);
            return 0;
        }
        """
        assert run(src, v=(0, 5)).alarm_count == 0

    def test_switch_all_cases_bottom_when_scrutinee_constant(self):
        src = """
        int y;
        int main(void) {
            int x = 3;
            switch (x) {
                case 1: y = 1 / 0; break;
                case 3: y = 7; break;
                default: y = 1 / 0; break;
            }
            __ASTREE_assert(y == 7);
            return 0;
        }
        """
        assert run(src).alarm_count == 0
