"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


SRC_CLEAN = """
volatile int sensor;
int out;
int main(void) {
    int s = sensor;   /* one read: volatiles may differ between reads */
    if (s > 0) { out = 100 / s; }
    return 0;
}
"""

SRC_BUGGY = """
volatile int sensor;
int out;
int main(void) {
    out = 100 / sensor;
    return 0;
}
"""


@pytest.fixture
def clean_file(tmp_path):
    p = tmp_path / "clean.c"
    p.write_text(SRC_CLEAN)
    return str(p)


@pytest.fixture
def buggy_file(tmp_path):
    p = tmp_path / "buggy.c"
    p.write_text(SRC_BUGGY)
    return str(p)


class TestAnalyzeCommand:
    def test_clean_program(self, clean_file, capsys):
        rc = main(["analyze", clean_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 alarm(s)" in out

    def test_buggy_program_reports(self, buggy_file, capsys):
        rc = main(["analyze", buggy_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert "division-by-zero" in out

    def test_strict_exit_code(self, buggy_file):
        rc = main(["analyze", buggy_file, "--strict",
                   "--input-range", "sensor=0:100"])
        assert rc == 1

    def test_json_output(self, buggy_file, capsys):
        main(["analyze", buggy_file, "--json",
              "--input-range", "sensor=0:100"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["alarm_count"] == 1
        assert payload["alarms"][0]["kind"] == "division-by-zero"

    def test_baseline_flag(self, clean_file, capsys):
        rc = main(["analyze", clean_file, "--baseline",
                   "--input-range", "sensor=0:100"])
        assert rc == 0

    def test_domain_toggles(self, clean_file, capsys):
        rc = main(["analyze", clean_file, "--no-octagons", "--no-ellipsoids",
                   "--no-trees", "--input-range", "sensor=0:100"])
        assert rc == 0

    def test_invariants_flag(self, tmp_path, capsys):
        p = tmp_path / "loop.c"
        p.write_text("""
        int i;
        int main(void) {
            i = 0;
            while (i < 10) { i = i + 1; }
            return 0;
        }
        """)
        main(["analyze", str(p), "--invariants"])
        out = capsys.readouterr().out
        assert "main loop invariant" in out


class TestGenerateCommand:
    def test_generate_emits_c(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        rc = main(["generate", "--kloc", "0.2", "--seed", "5",
                   "--spec-out", str(spec_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "int main(void)" in out
        spec = json.loads(spec_path.read_text())
        assert spec["input_ranges"]
        assert spec["max_clock"] > 0

    def test_generated_program_analyzable(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        main(["generate", "--kloc", "0.2", "--seed", "5",
              "--spec-out", str(spec_path)])
        source = capsys.readouterr().out
        src_path = tmp_path / "fam.c"
        src_path.write_text(source)
        spec = json.loads(spec_path.read_text())
        args = ["analyze", str(src_path), "--max-clock", str(spec["max_clock"])]
        for name, (lo, hi) in spec["input_ranges"].items():
            args += ["--input-range", f"{name}={lo}:{hi}"]
        rc = main(args)
        out = capsys.readouterr().out
        assert rc == 0 and "0 alarm(s)" in out


class TestSliceCommand:
    def test_slice_from_alarm(self, buggy_file, capsys):
        rc = main(["slice", buggy_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "criterion" in out

    def test_slice_no_alarms(self, clean_file, capsys):
        rc = main(["slice", clean_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert "nothing to slice" in out
