"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main
from repro.errors import ExitCode


SRC_CLEAN = """
volatile int sensor;
int out;
int main(void) {
    int s = sensor;   /* one read: volatiles may differ between reads */
    if (s > 0) { out = 100 / s; }
    return 0;
}
"""

SRC_BUGGY = """
volatile int sensor;
int out;
int main(void) {
    out = 100 / sensor;
    return 0;
}
"""


@pytest.fixture
def clean_file(tmp_path):
    p = tmp_path / "clean.c"
    p.write_text(SRC_CLEAN)
    return str(p)


@pytest.fixture
def buggy_file(tmp_path):
    p = tmp_path / "buggy.c"
    p.write_text(SRC_BUGGY)
    return str(p)


class TestAnalyzeCommand:
    def test_clean_program(self, clean_file, capsys):
        rc = main(["analyze", clean_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "0 alarm(s)" in out

    def test_buggy_program_reports(self, buggy_file, capsys):
        rc = main(["analyze", buggy_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert "division-by-zero" in out

    def test_strict_exit_code(self, buggy_file):
        rc = main(["analyze", buggy_file, "--strict",
                   "--input-range", "sensor=0:100"])
        assert rc == 1

    def test_json_output(self, buggy_file, capsys):
        main(["analyze", buggy_file, "--json",
              "--input-range", "sensor=0:100"])
        payload = json.loads(capsys.readouterr().out)
        assert payload["alarm_count"] == 1
        assert payload["alarms"][0]["kind"] == "division-by-zero"

    def test_baseline_flag(self, clean_file, capsys):
        rc = main(["analyze", clean_file, "--baseline",
                   "--input-range", "sensor=0:100"])
        assert rc == 0

    def test_domain_toggles(self, clean_file, capsys):
        rc = main(["analyze", clean_file, "--no-octagons", "--no-ellipsoids",
                   "--no-trees", "--input-range", "sensor=0:100"])
        assert rc == 0

    def test_invariants_flag(self, tmp_path, capsys):
        p = tmp_path / "loop.c"
        p.write_text("""
        int i;
        int main(void) {
            i = 0;
            while (i < 10) { i = i + 1; }
            return 0;
        }
        """)
        main(["analyze", str(p), "--invariants"])
        out = capsys.readouterr().out
        assert "main loop invariant" in out


class TestGenerateCommand:
    def test_generate_emits_c(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        rc = main(["generate", "--kloc", "0.2", "--seed", "5",
                   "--spec-out", str(spec_path)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "int main(void)" in out
        spec = json.loads(spec_path.read_text())
        assert spec["input_ranges"]
        assert spec["max_clock"] > 0

    def test_generated_program_analyzable(self, capsys, tmp_path):
        spec_path = tmp_path / "spec.json"
        main(["generate", "--kloc", "0.2", "--seed", "5",
              "--spec-out", str(spec_path)])
        source = capsys.readouterr().out
        src_path = tmp_path / "fam.c"
        src_path.write_text(source)
        spec = json.loads(spec_path.read_text())
        args = ["analyze", str(src_path), "--max-clock", str(spec["max_clock"])]
        for name, (lo, hi) in spec["input_ranges"].items():
            args += ["--input-range", f"{name}={lo}:{hi}"]
        rc = main(args)
        out = capsys.readouterr().out
        assert rc == 0 and "0 alarm(s)" in out


class TestSliceCommand:
    def test_slice_from_alarm(self, buggy_file, capsys):
        rc = main(["slice", buggy_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "criterion" in out

    def test_slice_no_alarms(self, clean_file, capsys):
        rc = main(["slice", clean_file, "--input-range", "sensor=0:100"])
        out = capsys.readouterr().out
        assert "nothing to slice" in out


class TestExitCodeContract:
    """Internal errors must exit 3 with a structured one-line diagnostic
    on stderr — exception class, message and phase — never silently and
    never with a raw UnicodeDecodeError/uncaught traceback."""

    def test_missing_input_file(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.c")
        rc = main(["analyze", missing])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "astree-repro: internal-error:" in err
        assert "phase=io" in err
        assert "FileNotFoundError" in err
        assert "nope.c" in err  # the diagnostic names the path

    def test_directory_as_input(self, tmp_path, capsys):
        rc = main(["analyze", str(tmp_path)])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "astree-repro: internal-error:" in err
        assert str(tmp_path) in err

    def test_parse_error_structured_line(self, tmp_path, capsys):
        p = tmp_path / "bad.c"
        p.write_text("int main(void) { return ; }")
        rc = main(["analyze", str(p)])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "phase=frontend" in err
        assert "class=" in err

    def test_bom_file_exits_3_not_unicode_error(self, tmp_path, capsys):
        p = tmp_path / "bom.c"
        p.write_bytes(b"\xef\xbb\xbfint main(void) { return 0; }")
        rc = main(["analyze", str(p)])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "PreprocessorError" in err
        assert "byte-order mark" in err

    def test_non_utf8_file_exits_3_not_unicode_error(self, tmp_path, capsys):
        p = tmp_path / "bin.c"
        p.write_bytes(b"int x;\n\xff\xfe\n")
        rc = main(["analyze", str(p)])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "UnicodeDecodeError" not in err
        assert "bin.c" in err

    def test_missing_checkpoint_resume(self, clean_file, tmp_path, capsys):
        ckpt = str(tmp_path / "never-written.ckpt")
        rc = main(["analyze", clean_file, "--resume", ckpt,
                   "--input-range", "sensor=0:100"])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "phase=checkpoint" in err
        assert "never-written.ckpt" in err

    def test_corrupt_checkpoint_resume(self, clean_file, tmp_path, capsys):
        ckpt = tmp_path / "corrupt.ckpt"
        ckpt.write_bytes(b"\x00\x01not a checkpoint")
        rc = main(["analyze", clean_file, "--resume", str(ckpt),
                   "--input-range", "sensor=0:100"])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "phase=checkpoint" in err
        assert "corrupt.ckpt" in err

    def test_truncated_checkpoint_resume(self, tmp_path, capsys):
        # Write a real checkpoint (loops produce fixpoint-iteration
        # boundaries), then truncate it mid-stream.
        p = tmp_path / "loop.c"
        p.write_text("""
        volatile int v; int c;
        int main(void) {
            c = 0;
            while (1) {
                if (v) { c = c + 1; }
                if (c > 100) { c = 0; }
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """)
        ckpt = tmp_path / "trunc.ckpt"
        rc = main(["analyze", str(p), "--checkpoint", str(ckpt),
                   "--input-range", "v=0:1"])
        assert rc == 0 and ckpt.exists()
        capsys.readouterr()
        data = ckpt.read_bytes()
        ckpt.write_bytes(data[:max(1, len(data) // 2)])
        rc = main(["analyze", str(p), "--resume", str(ckpt),
                   "--input-range", "v=0:1"])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "phase=checkpoint" in err
        assert "trunc.ckpt" in err

    def test_no_silent_swallowing(self, capsys):
        """Unexpected exceptions surface class AND message on stderr
        through the single internal-error funnel."""
        from repro.cli import _internal_error

        rc = _internal_error(ZeroDivisionError("sentinel-detail-42"))
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "class=ZeroDivisionError" in err
        assert "sentinel-detail-42" in err
        assert "phase=unexpected" in err


class TestFuzzCommand:
    def test_small_clean_campaign(self, capsys):
        rc = main(["fuzz", "--seed", "3", "--cases", "2", "--in-process",
                   "--quiet", "--no-reduce"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "PASS" in out

    def test_campaign_json_report(self, tmp_path, capsys):
        report_path = tmp_path / "campaign.json"
        rc = main(["fuzz", "--seed", "3", "--cases", "2", "--in-process",
                   "--quiet", "--no-reduce", "--json",
                   "--json-out", str(report_path)])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["ok"] is True
        assert payload["cases_run"] == 2
        on_disk = json.loads(report_path.read_text())
        assert on_disk["outcome_counts"] == payload["outcome_counts"]

    def test_replay_missing_case_exits_3(self, tmp_path, capsys):
        rc = main(["fuzz", "--replay", str(tmp_path / "no-such-case.json")])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "no-such-case.json" in err

    def test_replay_corrupt_case_exits_3(self, tmp_path, capsys):
        p = tmp_path / "bad-case.json"
        p.write_text("{ not json ]")
        rc = main(["fuzz", "--replay", str(p)])
        err = capsys.readouterr().err
        assert rc == int(ExitCode.INTERNAL_ERROR)
        assert "bad-case.json" in err
