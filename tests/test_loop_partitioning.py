"""Tests for trace partitioning over loops (Sect. 7.1.5, second half)."""

import pytest

from repro import AnalyzerConfig, analyze
from repro.iterator.alarms import AlarmKind


def kinds(r):
    return {a.kind for a in r.alarms}


class TestLoopPartitioning:
    # If the search loop never runs (n == 0), found stays 0 and the
    # division by hits is guarded; if it runs, hits >= 1.  Joining the
    # zero-iteration exit with the looped exits loses the correlation
    # between found and hits.
    SRC = """
    volatile int vn;
    int hits; int found; int avg; int total;
    int scan(void) {
        int i; int n;
        n = vn;
        hits = 0; found = 0; total = 0;
        for (i = 0; i < n; i++) {
            if (hits < 64) { hits = hits + 1; }
            if (total < 64) { total = total + 2; }
            found = 1;
        }
        if (found) { avg = total / hits; }
        return avg;
    }
    int main(void) {
        avg = 0;
        scan();
        return 0;
    }
    """

    def test_partitioned_loop_proves_guarded_division(self):
        cfg = AnalyzerConfig(input_ranges={"vn": (0, 8)},
                             partition_functions={"scan"},
                             default_unroll=1)
        r = analyze(self.SRC, config=cfg)
        assert r.alarm_count == 0

    def test_unpartitioned_loop_keeps_alarm(self):
        cfg = AnalyzerConfig(input_ranges={"vn": (0, 8)}, default_unroll=1)
        r = analyze(self.SRC, config=cfg)
        assert AlarmKind.DIV_BY_ZERO in kinds(r)

    def test_partitioning_is_sound(self):
        """A genuinely reachable error survives loop partitioning."""
        src = """
        volatile int vn;
        int x;
        int f(void) {
            int i; int n;
            n = vn;
            for (i = 0; i < n; i++) { x = x + 1; }
            x = 100 / (n - 4);   /* true error when n == 4 */
            return x;
        }
        int main(void) { f(); return 0; }
        """
        cfg = AnalyzerConfig(input_ranges={"vn": (0, 8)},
                             partition_functions={"f"})
        r = analyze(src, config=cfg)
        assert AlarmKind.DIV_BY_ZERO in kinds(r)

    def test_do_while_not_partitioned(self):
        """do-while bodies always run once: the zero-iteration split does
        not apply (and must not crash)."""
        src = """
        volatile int vn;
        int x;
        int f(void) {
            int i;
            i = 0;
            do { i = i + 1; } while (i < 3);
            x = i;
            return x;
        }
        int main(void) { f(); __ASTREE_assert(x == 3); return 0; }
        """
        cfg = AnalyzerConfig(input_ranges={"vn": (0, 8)},
                             partition_functions={"f"})
        assert analyze(src, config=cfg).alarm_count == 0

    def test_partition_depth_budget(self):
        """Deeply nested partitionable constructs stay within budget."""
        src = """
        volatile int v;
        int x;
        int f(void) {
            int i;
            for (i = 0; i < 2; i++) { x = x + 1; }
            if (v) { x = 1; } else { x = 2; }
            if (v) { x = x + 1; } else { x = x + 2; }
            if (v) { x = x + 1; } else { x = x + 2; }
            if (v) { x = x + 1; } else { x = x + 2; }
            if (v) { x = x + 1; } else { x = x + 2; }
            return x;
        }
        int main(void) { x = 0; f(); return 0; }
        """
        cfg = AnalyzerConfig(input_ranges={"v": (0, 1)},
                             partition_functions={"f"},
                             max_partition_depth=2)
        r = analyze(src, config=cfg)  # terminates quickly, no blowup
        assert r.analysis_time < 30
