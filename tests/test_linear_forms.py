"""Tests for interval linear forms and the Sect. 6.3 linearization."""

import math

from hypothesis import given, strategies as st

from repro.numeric import BINARY32, BINARY64, FloatInterval, LinearForm

coef = st.floats(min_value=-100, max_value=100, allow_nan=False)


def env(**ranges):
    table = {k: FloatInterval.of(lo, hi) for k, (lo, hi) in ranges.items()}
    return lambda v: table[v]


class TestConstruction:
    def test_constant_form(self):
        lf = LinearForm.of_const(3.0)
        assert lf.is_constant
        assert lf.evaluate(lambda v: FloatInterval.top()) == FloatInterval.const(3.0)

    def test_var_form(self):
        lf = LinearForm.var("X")
        assert lf.variables == ("X",)
        assert lf.evaluate(env(X=(1.0, 2.0))) == FloatInterval.of(1.0, 2.0)

    def test_zero_coefficients_dropped(self):
        lf = LinearForm.make({"X": FloatInterval.const(0.0)}, FloatInterval.const(1.0))
        assert lf.is_constant


class TestAlgebra:
    def test_paper_example(self):
        """X - 0.2*X linearizes to 0.8*X, evaluating to [0, 0.8] on [0,1]."""
        x = LinearForm.var("X")
        lf = x.sub(x.scale(FloatInterval.const(0.2)))
        r = lf.evaluate(env(X=(0.0, 1.0)))
        assert r.lo == 0.0
        assert 0.79 < r.hi < 0.81

    def test_add_merges_coefficients(self):
        lf = LinearForm.var("X").add(LinearForm.var("X"))
        r = lf.evaluate(env(X=(1.0, 1.0)))
        assert r.contains(2.0)

    def test_add_disjoint_vars(self):
        lf = LinearForm.var("X").add(LinearForm.var("Y"))
        assert set(lf.variables) == {"X", "Y"}

    @given(coef, coef, coef)
    def test_eval_contains_concrete(self, a, b, c):
        """a*x + b*y + c evaluated pointwise lies in the interval."""
        lf = (
            LinearForm.var("X").scale(FloatInterval.const(a))
            .add(LinearForm.var("Y").scale(FloatInterval.const(b)))
            .add(LinearForm.of_const(c))
        )
        e = env(X=(-1.0, 2.0), Y=(0.5, 3.0))
        r = lf.evaluate(e)
        for x in (-1.0, 0.0, 2.0):
            for y in (0.5, 3.0):
                v = a * x + b * y + c
                assert r.contains(v) or abs(v - max(min(v, r.hi), r.lo)) < 1e-9

    def test_neg(self):
        lf = LinearForm.var("X").neg()
        assert lf.evaluate(env(X=(1.0, 2.0))) == FloatInterval.of(-2.0, -1.0)

    def test_substitute(self):
        # X + 1 with X := 2Y gives 2Y + 1.
        lf = LinearForm.var("X").add(LinearForm.of_const(1.0))
        sub = lf.substitute("X", LinearForm.var("Y").scale(FloatInterval.const(2.0)))
        r = sub.evaluate(env(Y=(1.0, 1.0)))
        assert r.contains(3.0)

    def test_substitute_absent_var_is_noop(self):
        lf = LinearForm.var("X")
        assert lf.substitute("Z", LinearForm.var("Y")) == lf

    def test_drop_to_interval(self):
        lf = LinearForm.var("X").add(LinearForm.var("Y"))
        dropped = lf.drop_to_interval(["X"], env(X=(0.0, 1.0), Y=(2.0, 3.0)))
        assert dropped.variables == ("X",)
        assert dropped.const.includes(FloatInterval.of(2.0, 3.0))


class TestRoundingModel:
    def test_rounding_error_added(self):
        lf = LinearForm.var("X")
        rounded = lf.with_float_rounding(BINARY32, env(X=(0.0, 1.0)))
        assert rounded.const.lo < 0.0 < rounded.const.hi

    def test_error_scales_with_magnitude(self):
        small = LinearForm.var("X").with_float_rounding(BINARY32, env(X=(0.0, 1.0)))
        big = LinearForm.var("X").with_float_rounding(BINARY32, env(X=(0.0, 1e30)))
        assert big.const.hi > small.const.hi

    def test_binary64_tighter_than_binary32(self):
        e = env(X=(0.0, 1.0))
        r32 = LinearForm.var("X").with_float_rounding(BINARY32, e)
        r64 = LinearForm.var("X").with_float_rounding(BINARY64, e)
        assert r64.const.hi < r32.const.hi

    def test_unbounded_magnitude_gives_top_const(self):
        lf = LinearForm.var("X")
        r = lf.with_float_rounding(BINARY32, lambda v: FloatInterval.top())
        assert r.const.is_top

    def test_rounding_model_sound_for_float32(self):
        """float32(x) in linearized interval for sampled x."""
        import numpy as np

        e = env(X=(0.9, 1.1))
        lf = LinearForm.var("X").with_float_rounding(BINARY32, e)
        for x in np.linspace(0.9, 1.1, 17):
            fx = float(np.float32(x))
            iv = lf.evaluate(env(X=(float(x), float(x))))
            # constant interval for X plus error must contain rounded value
            assert iv.lo <= fx <= iv.hi
