"""Fault-tolerance supervisor: budgets, degradation, crash recovery,
checkpoint/resume, and the CLI exit-code contract.

The supervisor's promise is that an analysis run never dies on the user:
injected worker crashes are retried and merged bit-identically, tripped
resource budgets step down the soundness-preserving degradation ladder
(the run finishes with a coarser verdict and ``degraded=True``), and a
run killed between checkpoints resumes to a result bit-identical to an
uninterrupted one.  Every deviation must land in the incident log.

Programs are compiled once per module: statement ids come from a global
counter, so recompiling would shift checkpoint fingerprints and
``visit_counts`` keys without any semantic difference.
"""

import dataclasses
import json
import os
import pickle
import subprocess
import sys
import tempfile

import pytest

from repro.analysis import analyze_program
from repro.config import AnalyzerConfig
from repro.errors import (AnalysisError, CheckpointError, ExitCode,
                          SupervisorHalt)
from repro.frontend import compile_source
from repro.supervisor import DEGRADATION_RUNGS, DegradationLadder, IncidentLog
from repro.supervisor.checkpoint import context_fingerprint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))

LOOP_SRC = """
volatile int in1;
int main(void) {
  int y; int z;
  y = 0; z = 0;
  while (1) {
    y = y + 1;
    if (y > 100) { y = 0; }
    z = y + in1;
    if (z > 500) { z = 0; }
    __ASTREE_wait_for_clock();
  }
  return 0;
}
"""

BUGGY_SRC = """
volatile int sensor;
int main(void) {
  int x; int d;
  x = sensor;
  d = 100 / (x - 50);
  while (1) { __ASTREE_wait_for_clock(); }
  return 0;
}
"""


def _subsystem_source(nsub: int, width: int) -> str:
    """Independent filter subsystems (the dispatchable program shape of
    test_parallel) — heavy enough that regions go to workers."""
    lines = []
    for k in range(nsub):
        lines.append(f"volatile float in{k}_a;")
        lines.append(f"volatile int in{k}_b;")
        lines.append(f"float s{k}_x; float s{k}_y; float s{k}_tab[{width}];")
        lines.append(f"int s{k}_mode; int s{k}_count;")
    for k in range(nsub):
        lines.append(f"""
void step_{k}(void) {{
    float e; int j;
    e = in{k}_a;
    if (e > 100.0f) {{ e = 100.0f; }}
    if (e < -100.0f) {{ e = -100.0f; }}
    s{k}_mode = in{k}_b;
    j = 0;
    while (j < {width}) {{
        s{k}_tab[j] = 0.8f * s{k}_tab[j] + 0.2f * e;
        j = j + 1;
    }}
    s{k}_x = 0.9f * s{k}_x + 0.1f * e;
    if (s{k}_mode) {{ s{k}_y = s{k}_x; }} else {{ s{k}_y = 0.0f; }}
    if (s{k}_count < 1000) {{ s{k}_count = s{k}_count + 1; }}
}}""")
    lines.append("int main(void) {")
    lines.append("  while (1) {")
    for k in range(nsub):
        lines.append(f"    step_{k}();")
    lines.append("    __ASTREE_wait_for_clock();")
    lines.append("  }")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


def _snapshot(result) -> dict:
    return {
        "alarms": [(a.kind, a.sid, a.loc.line, a.message)
                   for a in result.alarms],
        "invariant": result.dump_invariant_text(),
        "widening": result.widening_iterations,
        "visits": sorted(result.visit_counts.items()),
        "useful_oct": sorted(result.useful_octagon_packs),
        "useful_bool": result.useful_bool_pack_count,
    }


@pytest.fixture(scope="module")
def loop_prog():
    return compile_source(LOOP_SRC, "loop.c")


@pytest.fixture(scope="module")
def loop_cfg():
    return AnalyzerConfig(input_ranges={"in1": (-10.0, 10.0)},
                          collect_invariants=True, trace=True)


@pytest.fixture(scope="module")
def subsys():
    """(prog, cfg, sequential snapshot) for the parallel fault tests."""
    src = _subsystem_source(nsub=6, width=10)
    ranges = {}
    for k in range(6):
        ranges[f"in{k}_a"] = (-500.0, 500.0)
        ranges[f"in{k}_b"] = (0.0, 1.0)
    cfg = AnalyzerConfig(input_ranges=ranges, max_clock=10_000,
                         parallel_min_stmts=8, trace=True,
                         collect_invariants=True)
    prog = compile_source(src, "subsystems.c")
    seq = analyze_program(prog, cfg, jobs=1)
    return prog, cfg, _snapshot(seq)


# ---------------------------------------------------------------------------
# Resource budgets and degradation
# ---------------------------------------------------------------------------


class TestBudgets:
    def test_deadline_trip_degrades_soundly(self, loop_prog, loop_cfg):
        cfg = dataclasses.replace(loop_cfg, wall_deadline_s=1e-9)
        result = analyze_program(loop_prog, cfg)  # must not raise
        assert result.degraded
        assert result.exit_code == int(ExitCode.DEGRADED)
        assert result.degradation_steps  # at least one rung applied
        kinds = {i.kind for i in result.incidents}
        assert "deadline" in kinds

    def test_rss_trip_degrades_soundly(self, loop_prog, loop_cfg):
        cfg = dataclasses.replace(loop_cfg, rss_limit_kib=1)
        result = analyze_program(loop_prog, cfg)
        assert result.degraded
        assert result.exit_code == int(ExitCode.DEGRADED)
        assert any(i.kind == "rss" for i in result.incidents)

    def test_exhausted_ladder_reported_once(self, loop_prog, loop_cfg):
        # Peak RSS is monotone: once tripped, every poll re-trips, the
        # ladder runs to the end, and the exhaustion is reported once.
        cfg = dataclasses.replace(loop_cfg, rss_limit_kib=1)
        result = analyze_program(loop_prog, cfg)
        assert result.degradation_steps == [n for n, _ in DEGRADATION_RUNGS]
        exhausted = [i for i in result.incidents
                     if i.action == "exhausted-ladder"]
        assert len(exhausted) == 1

    def test_stmt_timeout_trips_and_is_capped(self, loop_prog, loop_cfg):
        cfg = dataclasses.replace(loop_cfg, stmt_timeout_s=0.0)
        result = analyze_program(loop_prog, cfg)
        assert result.degraded
        timeouts = [i for i in result.incidents if i.kind == "stmt-timeout"]
        assert timeouts
        from repro.supervisor.supervisor import MAX_STMT_TIMEOUT_INCIDENTS

        assert len(timeouts) <= MAX_STMT_TIMEOUT_INCIDENTS

    def test_caller_config_is_never_mutated(self, loop_prog, loop_cfg):
        cfg = dataclasses.replace(loop_cfg, wall_deadline_s=1e-9)
        result = analyze_program(loop_prog, cfg)
        assert result.degraded
        # The ladder mutated the run's copy, not the caller's instance.
        assert cfg.thresholds is not None
        assert cfg.enable_octagons and cfg.enable_ellipsoids
        assert cfg.narrowing_steps == loop_cfg.narrowing_steps

    def test_degraded_alarm_superset(self, loop_prog, loop_cfg):
        # Degradation only loses precision: the degraded run's alarms
        # must cover the full-precision run's (soundness direction).
        full = analyze_program(loop_prog, loop_cfg)
        cfg = dataclasses.replace(loop_cfg, rss_limit_kib=1)
        degraded = analyze_program(loop_prog, cfg)
        full_keys = {(a.kind, a.sid) for a in full.alarms}
        degraded_keys = {(a.kind, a.sid) for a in degraded.alarms}
        assert full_keys <= degraded_keys

    def test_no_budgets_no_supervisor(self, loop_prog, loop_cfg):
        result = analyze_program(loop_prog, loop_cfg)
        assert not result.degraded
        assert result.incidents == []
        assert result.degradation_steps == []
        assert not result.resumed


class TestDegradationLadder:
    def test_rungs_apply_in_order(self):
        cfg = AnalyzerConfig()
        ladder = DegradationLadder(cfg)
        names = []
        while True:
            step = ladder.step()
            if step is None:
                break
            names.append(step[0])
        assert names == [n for n, _ in DEGRADATION_RUNGS]
        assert ladder.exhausted
        assert not cfg.enable_octagons and not cfg.enable_ellipsoids
        assert not cfg.enable_decision_trees
        assert cfg.thresholds is None and cfg.narrowing_steps == 0

    def test_apply_named_restores_prefix(self):
        cfg = AnalyzerConfig()
        ladder = DegradationLadder(cfg)
        ladder.apply_named(["thin-thresholds", "drop-ellipsoids"])
        assert ladder.applied == ["thin-thresholds", "drop-ellipsoids"]
        assert not cfg.enable_ellipsoids
        assert cfg.enable_octagons  # later rungs untouched
        with pytest.raises(ValueError):
            ladder.apply_named(["no-such-rung"])


# ---------------------------------------------------------------------------
# Worker crash recovery
# ---------------------------------------------------------------------------


class TestWorkerCrashRecovery:
    def test_crash_is_retried_bit_identically(self, subsys, monkeypatch):
        prog, cfg, seq_snap = subsys
        marker = tempfile.NamedTemporaryFile(delete=False)
        marker.close()
        monkeypatch.setenv("REPRO_FAULT_WORKER_CRASH", marker.name)
        par = analyze_program(prog, cfg, jobs=2)
        assert not os.path.exists(marker.name), "no worker claimed the kill"
        assert _snapshot(par) == seq_snap
        crashes = [i for i in par.incidents if i.kind == "worker-crash"]
        assert crashes and crashes[0].action.startswith("retry")
        assert par.exit_code == int(ExitCode.PROVED) or par.alarms

    def test_worker_analyzer_bug_propagates(self, subsys, monkeypatch):
        # Satellite (a): an analyzer bug inside a worker must re-raise,
        # never be masked as a silent sequential retry.
        prog, cfg, _ = subsys
        monkeypatch.setenv("REPRO_FAULT_WORKER_RAISE", "1")
        with pytest.raises(AnalysisError, match="injected analyzer fault"):
            analyze_program(prog, cfg, jobs=2)

    def test_retry_exhaustion_falls_back_sequentially(self, subsys,
                                                      monkeypatch):
        prog, cfg, seq_snap = subsys
        cfg0 = dataclasses.replace(cfg, dispatch_retries=0,
                                   max_pool_rebuilds=0)
        marker = tempfile.NamedTemporaryFile(delete=False)
        marker.close()
        monkeypatch.setenv("REPRO_FAULT_WORKER_CRASH", marker.name)
        par = analyze_program(prog, cfg0, jobs=2)
        assert _snapshot(par) == seq_snap
        actions = {(i.kind, i.action) for i in par.incidents}
        assert ("worker-crash", "gave-up") in actions
        assert ("parallel-disabled", "sequential-fallback") in actions

    def test_unpicklable_state_disables_parallelism(self, subsys):
        from repro.parallel.executor import ParallelEngine

        prog, cfg, _ = subsys
        incidents = IncidentLog()
        # Exercise the classification boundary directly: pickling
        # failures disable the engine instead of raising.
        from repro.analysis import analyze_program as _ap

        par = _ap(prog, cfg, jobs=2)  # healthy run for a live context
        engine = ParallelEngine(par.ctx, 2, incidents=incidents)
        engine._disable("state not picklable: test")
        assert engine._disabled
        assert incidents.count("parallel-disabled") == 1
        engine.close()


# ---------------------------------------------------------------------------
# Checkpoint / resume
# ---------------------------------------------------------------------------


class TestCheckpointResume:
    def test_halt_leaves_resumable_checkpoint(self, loop_prog, loop_cfg,
                                              tmp_path):
        cp = str(tmp_path / "cp.pkl")
        cfg = dataclasses.replace(loop_cfg, checkpoint_path=cp,
                                  checkpoint_halt_after=2)
        with pytest.raises(SupervisorHalt):
            analyze_program(loop_prog, cfg)
        assert os.path.exists(cp)

    def test_resume_is_bit_identical(self, loop_prog, loop_cfg, tmp_path):
        reference = analyze_program(loop_prog, loop_cfg)
        cp = str(tmp_path / "cp.pkl")
        cfg_cp = dataclasses.replace(loop_cfg, checkpoint_path=cp,
                                     checkpoint_halt_after=2)
        with pytest.raises(SupervisorHalt):
            analyze_program(loop_prog, cfg_cp)
        cfg_rs = dataclasses.replace(loop_cfg, resume_path=cp)
        resumed = analyze_program(loop_prog, cfg_rs)
        assert resumed.resumed
        assert any(i.kind == "resume" for i in resumed.incidents)
        assert _snapshot(resumed) == _snapshot(reference)
        stats_ref = reference.invariant_stats()
        stats_res = resumed.invariant_stats()
        assert dataclasses.asdict(stats_ref) == dataclasses.asdict(stats_res)
        fs_ref, fs_res = reference.final_state, resumed.final_state
        assert fs_ref.includes(fs_res) and fs_res.includes(fs_ref)

    def test_missing_checkpoint_errors(self, loop_prog, loop_cfg, tmp_path):
        cfg = dataclasses.replace(
            loop_cfg, resume_path=str(tmp_path / "absent.pkl"))
        with pytest.raises(CheckpointError, match="not found"):
            analyze_program(loop_prog, cfg)

    def test_corrupt_checkpoint_errors(self, loop_prog, loop_cfg, tmp_path):
        bad = tmp_path / "bad.pkl"
        bad.write_bytes(b"not a pickle")
        cfg = dataclasses.replace(loop_cfg, resume_path=str(bad))
        with pytest.raises(CheckpointError, match="corrupt"):
            analyze_program(loop_prog, cfg)

    def test_config_drift_is_rejected(self, loop_prog, loop_cfg, tmp_path):
        cp = str(tmp_path / "cp.pkl")
        cfg_cp = dataclasses.replace(loop_cfg, checkpoint_path=cp,
                                     checkpoint_halt_after=1)
        with pytest.raises(SupervisorHalt):
            analyze_program(loop_prog, cfg_cp)
        # Same program, different widening schedule: the fingerprint
        # must reject the stale snapshot instead of resuming wrongly.
        cfg_rs = dataclasses.replace(loop_cfg, resume_path=cp,
                                     widening_delay=loop_cfg.widening_delay
                                     + 3)
        with pytest.raises(CheckpointError, match="does not match"):
            analyze_program(loop_prog, cfg_rs)

    def test_fingerprint_covers_program_and_config(self, loop_prog,
                                                   loop_cfg):
        from repro.iterator.state import AnalysisContext
        from repro.memory.cells import CellTable
        from repro.packing.boolean_packs import compute_bool_packs
        from repro.packing.ellipsoid_sites import find_filter_sites
        from repro.packing.octagon_packs import compute_octagon_packs

        def ctx_for(cfg):
            table = CellTable.for_program(loop_prog, cfg.expand_threshold)
            return AnalysisContext(
                prog=loop_prog, config=cfg, table=table,
                oct_packs=compute_octagon_packs(loop_prog, table, cfg),
                bool_packs=compute_bool_packs(loop_prog, table, cfg),
                filter_sites=find_filter_sites(loop_prog, table))

        fp1 = context_fingerprint(ctx_for(loop_cfg))
        fp2 = context_fingerprint(ctx_for(loop_cfg))
        assert fp1 == fp2
        fp3 = context_fingerprint(
            ctx_for(dataclasses.replace(loop_cfg, narrowing_steps=7)))
        assert fp3 != fp1


# ---------------------------------------------------------------------------
# CLI exit-code contract (satellite b) and end-to-end fault injection
# ---------------------------------------------------------------------------


def _run_cli(args, tmp_path, extra_env=None):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
    env.pop("REPRO_FAULT_WORKER_CRASH", None)
    env.pop("REPRO_FAULT_WORKER_RAISE", None)
    env.pop("REPRO_FAULT_HALT_AFTER_CHECKPOINTS", None)
    if extra_env:
        env.update(extra_env)
    return subprocess.run(
        [sys.executable, "-m", "repro.cli"] + args,
        capture_output=True, text=True, env=env, cwd=str(tmp_path))


class TestExitCodeContract:
    def test_proved_is_0(self, tmp_path):
        f = tmp_path / "clean.c"
        f.write_text("volatile int s;\nint main(void){int x; x=s;"
                     " if (x>9) { x=9; }"
                     " while(1){__ASTREE_wait_for_clock();} return 0;}\n")
        proc = _run_cli(["analyze", str(f), "--input-range", "s=0:9"],
                        tmp_path)
        assert proc.returncode == int(ExitCode.PROVED), proc.stderr

    def test_alarms_is_1(self, tmp_path):
        f = tmp_path / "buggy.c"
        f.write_text(BUGGY_SRC)
        proc = _run_cli(["analyze", str(f), "--input-range",
                         "sensor=0:100"], tmp_path)
        assert proc.returncode == int(ExitCode.ALARMS), proc.stderr
        assert "division-by-zero" in proc.stdout

    def test_degraded_is_2_and_wins_over_alarms(self, tmp_path):
        f = tmp_path / "buggy.c"
        f.write_text(BUGGY_SRC)
        proc = _run_cli(["analyze", str(f), "--input-range", "sensor=0:100",
                         "--deadline", "0.0000001", "--json"], tmp_path)
        assert proc.returncode == int(ExitCode.DEGRADED), proc.stderr
        payload = json.loads(proc.stdout)
        assert payload["degraded"]
        assert payload["exit_code"] == int(ExitCode.DEGRADED)
        assert payload["degradation_steps"]
        assert any(i["kind"] == "deadline" for i in payload["incidents"])

    def test_internal_error_is_3(self, tmp_path):
        f = tmp_path / "clean.c"
        f.write_text(LOOP_SRC)
        proc = _run_cli(["analyze", str(f), "--resume",
                         str(tmp_path / "absent.pkl")], tmp_path)
        assert proc.returncode == int(ExitCode.INTERNAL_ERROR)
        assert "checkpoint" in proc.stderr

    def test_worker_crash_recovers_through_cli(self, tmp_path):
        src = _subsystem_source(nsub=4, width=8)
        f = tmp_path / "subsys.c"
        f.write_text(src)
        marker = tmp_path / "kill-marker"
        marker.write_text("")
        args = ["analyze", str(f), "--jobs", "2", "--json"]
        for k in range(4):
            args += ["--input-range", f"in{k}_a=-500:500",
                     "--input-range", f"in{k}_b=0:1"]
        proc = _run_cli(args, tmp_path,
                        extra_env={"REPRO_FAULT_WORKER_CRASH": str(marker)})
        assert proc.returncode in (int(ExitCode.PROVED),
                                   int(ExitCode.ALARMS)), proc.stderr
        payload = json.loads(proc.stdout)
        if not marker.exists():  # a worker actually took the kill
            assert any(i["kind"] == "worker-crash"
                       for i in payload["incidents"])

    def test_checkpoint_kill_resume_through_cli(self, tmp_path):
        f = tmp_path / "loop.c"
        f.write_text(LOOP_SRC)
        cp = tmp_path / "cp.pkl"
        base = ["analyze", str(f), "--input-range", "in1=-10:10", "--json"]
        ref = _run_cli(base, tmp_path)
        assert ref.returncode in (0, 1), ref.stderr
        ref_payload = json.loads(ref.stdout)

        halted = _run_cli(
            base + ["--checkpoint", str(cp)], tmp_path,
            extra_env={"REPRO_FAULT_HALT_AFTER_CHECKPOINTS": "2"})
        assert halted.returncode == int(ExitCode.INTERNAL_ERROR)
        assert cp.exists()

        resumed = _run_cli(base + ["--resume", str(cp)], tmp_path)
        assert resumed.returncode == ref.returncode, resumed.stderr
        res_payload = json.loads(resumed.stdout)
        assert res_payload["resumed"]
        assert res_payload["alarms"] == ref_payload["alarms"]
        assert res_payload["alarm_count"] == ref_payload["alarm_count"]


# ---------------------------------------------------------------------------
# Reporting
# ---------------------------------------------------------------------------


class TestRobustnessReporting:
    def test_markdown_and_json_surface_degradation(self, loop_prog,
                                                   loop_cfg):
        from repro.report import render_json, render_markdown

        cfg = dataclasses.replace(loop_cfg, wall_deadline_s=1e-9)
        result = analyze_program(loop_prog, cfg)
        md = render_markdown(result)
        assert "## Robustness" in md
        assert "DEGRADED" in md
        payload = json.loads(render_json(result))
        rob = payload["robustness"]
        assert rob["degraded"] and rob["exit_code"] == int(ExitCode.DEGRADED)
        assert rob["degradation_steps"]
        assert rob["incidents"]

    def test_healthy_run_has_no_robustness_section(self, loop_prog,
                                                   loop_cfg):
        from repro.report import render_json, render_markdown

        result = analyze_program(loop_prog, loop_cfg)
        assert "## Robustness" not in render_markdown(result)
        rob = json.loads(render_json(result))["robustness"]
        assert not rob["degraded"] and not rob["incidents"]


class TestIncidentLog:
    def test_cap_counts_dropped(self):
        log = IncidentLog()
        for i in range(IncidentLog.MAX_INCIDENTS + 7):
            log.record("worker-crash", action="retry", detail=str(i))
        assert len(log) == IncidentLog.MAX_INCIDENTS
        assert log.dropped == 7

    def test_incidents_pickle_roundtrip(self):
        log = IncidentLog()
        log.record("deadline", action="degrade:thin-thresholds", detail="x")
        restored = pickle.loads(pickle.dumps(log.incidents))
        assert restored == log.incidents
