"""End-to-end analyzer integration tests (the Sect. 3.1 refinement story).

Each test pins one analyzer capability on the code shape that motivated it
in the paper, usually contrasting the refined analyzer with the baseline
interval analyzer of [5].
"""

import pytest

from repro.analysis import analyze
from repro.config import AnalyzerConfig, baseline_config
from repro.iterator.alarms import AlarmKind


def kinds(result):
    return sorted({a.kind for a in result.alarms})


class TestStraightLine:
    def test_clean_program_has_no_alarms(self):
        src = """
        int x;
        int main(void) { x = 1 + 2; return 0; }
        """
        assert analyze(src).alarm_count == 0

    def test_definite_division_by_zero(self):
        src = """
        int x;
        int main(void) { x = 100 / (x - x); return 0; }
        """
        r = analyze(src)
        assert AlarmKind.DIV_BY_ZERO in kinds(r)

    def test_modulo_by_possibly_zero(self):
        src = """
        volatile int v; int x;
        int main(void) { x = 7 % v; return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 3)}))
        assert AlarmKind.MOD_BY_ZERO in kinds(r)

    def test_guarded_division_is_clean(self):
        src = """
        volatile int v; int x;
        int main(void) {
            int d = v;
            if (d > 0) { x = 100 / d; }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 10)}))
        assert r.alarm_count == 0

    def test_int_overflow_detected(self):
        src = """
        volatile int v; int x;
        int main(void) { x = v * v; return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(
            input_ranges={"v": (0, 100000)}))
        assert AlarmKind.INT_OVERFLOW in kinds(r)

    def test_small_product_no_overflow(self):
        src = """
        volatile int v; int x;
        int main(void) { x = v * v; return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 100)}))
        assert r.alarm_count == 0

    def test_array_in_bounds(self):
        src = """
        float a[10]; volatile int v; float x;
        int main(void) {
            int i = v;
            if (i >= 0) { if (i < 10) { x = a[i]; } }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (-100, 100)}))
        assert r.alarm_count == 0

    def test_array_out_of_bounds(self):
        src = """
        float a[10]; volatile int v; float x;
        int main(void) { x = a[v]; return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 20)}))
        assert AlarmKind.ARRAY_OOB in kinds(r)

    def test_shift_out_of_range(self):
        src = """
        volatile int v; int x;
        int main(void) { x = 1 << v; return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 40)}))
        assert AlarmKind.SHIFT_RANGE in kinds(r)

    def test_sqrt_of_negative(self):
        src = """
        volatile float v; float x;
        int main(void) { x = sqrtf(v); return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(
            input_ranges={"v": (-1.0, 1.0)}))
        assert AlarmKind.INVALID_OP in kinds(r)

    def test_user_assertion_violated(self):
        src = """
        volatile int v; int x;
        int main(void) { x = v; __ASTREE_assert(x < 5); return 0; }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 10)}))
        assert AlarmKind.ASSERT_FAIL in kinds(r)

    def test_known_fact_refines(self):
        src = """
        volatile int v; int x;
        int main(void) {
            x = v;
            __ASTREE_known_fact(x < 5);
            __ASTREE_assert(x < 5);
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 10)}))
        assert r.alarm_count == 0


class TestLoops:
    def test_bounded_for_loop_index(self):
        src = """
        float a[16]; float x;
        int main(void) {
            int i;
            for (i = 0; i < 16; i++) { x = a[i]; }
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_while_loop_with_exit_bound(self):
        src = """
        int i;
        int main(void) {
            i = 0;
            while (i < 1000) { i = i + 1; }
            __ASTREE_assert(i == 1000);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_do_while(self):
        src = """
        int i;
        int main(void) {
            i = 0;
            do { i = i + 1; } while (i < 10);
            __ASTREE_assert(i >= 1);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_break_exits(self):
        src = """
        int i;
        int main(void) {
            i = 0;
            while (1) { if (i >= 5) { break; } i = i + 1; }
            __ASTREE_assert(i <= 5);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_continue(self):
        """continue must still run the for-loop step (i advances), and the
        saturated counter bound 10 is proved by adding 10 to the threshold
        ladder — the end-user parametrization of Sect. 7.1.2."""
        src = """
        volatile int v; int i; int n;
        int main(void) {
            n = 0;
            for (i = 0; i < 10; i++) {
                if (v) { continue; }
                if (n < 10) { n = n + 1; }
            }
            __ASTREE_assert(n <= 10);
            return 0;
        }
        """
        from repro.domains.thresholds import default_thresholds

        cfg = AnalyzerConfig(input_ranges={"v": (0, 1)},
                             thresholds=default_thresholds().with_extra([10.0]))
        r = analyze(src, config=cfg)
        assert r.alarm_count == 0

    def test_threshold_parametrization_matters(self):
        """Without the documentation-supplied threshold the widening
        overshoots to the next ladder rung and the assert cannot be proved
        (the motivation for widening-with-thresholds parametrization)."""
        src = """
        volatile int v; int i; int n;
        int main(void) {
            n = 0;
            for (i = 0; i < 10; i++) {
                if (v) { continue; }
                if (n < 10) { n = n + 1; }
            }
            __ASTREE_assert(n <= 10);
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 1)}))
        assert AlarmKind.ASSERT_FAIL in kinds(r)

    def test_nested_loops(self):
        src = """
        int total;
        int main(void) {
            int i; int j;
            total = 0;
            for (i = 0; i < 10; i++) {
                for (j = 0; j < 10; j++) {
                    if (total < 10000) { total = total + 1; }
                }
            }
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_contracting_assignment_stabilizes(self):
        """X := a*X + b with 0 <= a < 1 stays bounded thanks to the
        threshold ladder (Sect. 7.1.2)."""
        src = """
        volatile float v; float x;
        int main(void) {
            x = 0.0f;
            while (1) {
                x = 0.5f * x + v;
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (-1.0, 1.0)}))
        assert r.alarm_count == 0

    def test_delayed_widening_chain(self):
        """The Sect. 7.1.3 pattern X := Y + g; Y := a*X + d stabilizes only
        with delayed widening."""
        src = """
        volatile float v; float x; float y;
        int main(void) {
            x = 0.0f; y = 0.0f;
            while (1) {
                x = y + v;
                y = 0.5f * x + v;
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"v": (-1.0, 1.0)})
        r = analyze(src, config=cfg)
        assert r.alarm_count == 0


class TestClockedDomain:
    SRC = """
    volatile int ev;
    int count;
    int main(void) {
        count = 0;
        while (1) {
            if (ev) { count = count + 1; }
            __ASTREE_wait_for_clock();
        }
        return 0;
    }
    """

    def test_event_counter_bounded_with_clock(self):
        cfg = AnalyzerConfig(input_ranges={"ev": (0, 1)}, max_clock=3_600_000)
        r = analyze(self.SRC, config=cfg)
        assert r.alarm_count == 0

    def test_event_counter_alarms_without_clock(self):
        cfg = AnalyzerConfig(input_ranges={"ev": (0, 1)}, enable_clock=False)
        r = analyze(self.SRC, config=cfg)
        assert AlarmKind.INT_OVERFLOW in kinds(r)


class TestOctagons:
    def test_paper_l_z_v_example(self):
        """Sect. 6.2.2: after 'if (R>V) L := Z+V' we can bound L - Z."""
        src = """
        volatile float vin; volatile float vv;
        float X, Z, V, R, L; float out;
        int main(void) {
            X = vin; Z = vin; V = vv;
            {
                R = X - Z;
                L = X;
                if (R > V) { L = Z + V; }
            }
            out = L + 1.0f;
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"vin": (-100.0, 100.0),
                                           "vv": (0.0, 10.0)})
        r = analyze(src, config=cfg)
        assert r.alarm_count == 0
        assert r.octagon_pack_count >= 1

    def test_octagon_packs_are_small(self):
        src = """
        volatile float v;
        float a, b, c, d;
        int main(void) {
            a = v; b = a + 1.0f; { c = b - a; d = c + b; }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0.0, 1.0)}))
        for pack in r.ctx.oct_packs.packs:
            assert pack.size <= 8

    def test_octagon_facts_reach_expressions(self):
        """b := a + o records b - a in [1,5]; the later expression
        (int)(b - a) must see that bound (array access stays in bounds)."""
        src = """
        volatile float base_v; volatile float offs_v;
        float tab[8]; float y; float a; float b; int i;
        int main(void) {
            float o;
            {
                a = base_v;
                o = offs_v;
                b = a + o;
                i = (int)(b - a);
                y = tab[i];
            }
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"base_v": (0.0, 100.0),
                                           "offs_v": (1.0, 5.0)})
        assert analyze(src, config=cfg).alarm_count == 0
        no_oct = analyze(src, config=cfg.with_overrides(enable_octagons=False))
        assert AlarmKind.ARRAY_OOB in kinds(no_oct)

    def test_useful_pack_reporting(self):
        src = """
        volatile float vin;
        float Z, V, L; float out;
        int main(void) {
            Z = vin; V = vin;
            { L = Z + V; out = L - Z; }
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"vin": (0.0, 1.0)})
        r = analyze(src, config=cfg)
        assert isinstance(r.useful_octagon_packs, frozenset)


class TestEllipsoidFilter:
    SRC = """
    volatile float vin;
    volatile int reset;
    float X, Y;
    int main(void) {
        float t, Xp;
        X = 0.0f; Y = 0.0f;
        while (1) {
            t = vin;
            if (reset) {
                Y = 0.5f;
                X = 0.5f;
            } else {
                Xp = 1.5f * X - 0.7f * Y + t;
                Y = X;
                X = Xp;
            }
            __ASTREE_wait_for_clock();
        }
        return 0;
    }
    """

    def test_filter_site_detected(self):
        r = analyze(self.SRC, config=AnalyzerConfig(
            input_ranges={"vin": (-1.0, 1.0), "reset": (0, 1)}))
        assert r.filter_site_count == 1

    def test_filter_bounded_with_ellipsoids(self):
        r = analyze(self.SRC, config=AnalyzerConfig(
            input_ranges={"vin": (-1.0, 1.0), "reset": (0, 1)}))
        assert r.alarm_count == 0

    def test_filter_alarms_without_ellipsoids(self):
        r = analyze(self.SRC, config=AnalyzerConfig(
            input_ranges={"vin": (-1.0, 1.0), "reset": (0, 1)},
            enable_ellipsoids=False))
        assert AlarmKind.FLOAT_OVERFLOW in kinds(r)


class TestDecisionTrees:
    SRC = """
    volatile int vin;
    int X;
    _Bool B;
    float Y;
    int main(void) {
        while (1) {
            X = vin;
            B = (X == 0);
            if (!B) { Y = 100.0f / X; }
            __ASTREE_wait_for_clock();
        }
        return 0;
    }
    """

    def test_paper_boolean_guard_example(self):
        r = analyze(self.SRC, config=AnalyzerConfig(
            input_ranges={"vin": (0, 100)}))
        assert r.alarm_count == 0
        assert r.bool_pack_count >= 1

    def test_alarms_without_decision_trees(self):
        r = analyze(self.SRC, config=AnalyzerConfig(
            input_ranges={"vin": (0, 100)}, enable_decision_trees=False))
        assert AlarmKind.DIV_BY_ZERO in kinds(r)


class TestFunctions:
    def test_call_by_value(self):
        src = """
        int clamp(int v, int lo, int hi) {
            if (v < lo) { return lo; }
            if (v > hi) { return hi; }
            return v;
        }
        volatile int vin; int out;
        int main(void) {
            out = clamp(vin, 0, 100);
            __ASTREE_assert(out >= 0);
            __ASTREE_assert(out <= 100);
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(
            input_ranges={"vin": (-100000, 100000)}))
        assert r.alarm_count == 0

    def test_call_by_reference(self):
        src = """
        void bump(int *p) { *p = *p + 1; }
        int x;
        int main(void) {
            x = 5;
            bump(&x);
            __ASTREE_assert(x == 6);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_pointer_forwarding(self):
        src = """
        void set7(int *p) { *p = 7; }
        void via(int *q) { set7(q); }
        int x;
        int main(void) {
            via(&x);
            __ASTREE_assert(x == 7);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_polyvariant_contexts(self):
        """The same callee analyzed in two contexts keeps both precise
        (context-sensitive polyvariant analysis, Sect. 5.4)."""
        src = """
        int half(int v) { return v / 2; }
        int a; int b;
        int main(void) {
            a = half(10);
            b = half(100);
            __ASTREE_assert(a == 5);
            __ASTREE_assert(b == 50);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_struct_byref(self):
        src = """
        struct st { float x; float y; };
        void init(struct st *s) { s->x = 1.0f; s->y = 2.0f; }
        struct st g;
        int main(void) {
            init(&g);
            __ASTREE_assert(g.x == 1.0f);
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0


class TestSwitch:
    def test_switch_cases_refine(self):
        src = """
        volatile int vin; int mode; int out;
        int main(void) {
            mode = vin;
            switch (mode) {
                case 0: out = 1; break;
                case 1: out = 2; break;
                default: out = 0; break;
            }
            __ASTREE_assert(out >= 0);
            __ASTREE_assert(out <= 2);
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"vin": (0, 5)}))
        assert r.alarm_count == 0

    def test_switch_division_guarded_by_case(self):
        src = """
        volatile int vin; int mode; int out;
        int main(void) {
            mode = vin;
            out = 1;
            switch (mode) {
                case 2: out = 100 / mode; break;
                default: break;
            }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"vin": (0, 5)}))
        assert r.alarm_count == 0


class TestTracePartitioning:
    SRC = """
    volatile int vin;
    int idx; int d; int out;
    int lookup(void) {
        int q;
        if (idx < 5) { d = 1; } else { d = -1; }
        q = 100 / d;
        return q;
    }
    int main(void) {
        idx = vin;
        out = lookup();
        return 0;
    }
    """

    def test_partitioning_removes_alarm(self):
        cfg = AnalyzerConfig(input_ranges={"vin": (0, 10)},
                             partition_functions={"lookup"})
        r = analyze(self.SRC, config=cfg)
        assert r.alarm_count == 0

    def test_without_partitioning_alarm_remains(self):
        cfg = AnalyzerConfig(input_ranges={"vin": (0, 10)})
        r = analyze(self.SRC, config=cfg)
        # Merging branches: d in [-1, 1] spans 0 at the division.
        assert AlarmKind.DIV_BY_ZERO in kinds(r)


class TestLinearization:
    def test_paper_x_minus_02x(self):
        """Sect. 6.3: X - 0.2*X on X in [0,1] must stay within [0, ~0.8]."""
        src = """
        volatile float vin; float x;
        int main(void) {
            x = vin;
            x = x - 0.2f * x;
            __ASTREE_assert(x >= -0.1f);
            __ASTREE_assert(x <= 0.9f);
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"vin": (0.0, 1.0)})
        r = analyze(src, config=cfg)
        assert r.alarm_count == 0

    def test_without_linearization_fails(self):
        src = """
        volatile float vin; float x;
        int main(void) {
            x = vin;
            x = x - 0.2f * x;
            __ASTREE_assert(x >= -0.1f);
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"vin": (0.0, 1.0)},
                             enable_linearization=False, enable_octagons=False)
        r = analyze(src, config=cfg)
        assert AlarmKind.ASSERT_FAIL in kinds(r)


class TestBaselineComparison:
    def test_baseline_weaker_than_refined(self):
        src = TestEllipsoidFilter.SRC
        cfg_r = AnalyzerConfig(input_ranges={"vin": (-1.0, 1.0), "reset": (0, 1)})
        cfg_b = baseline_config(input_ranges={"vin": (-1.0, 1.0), "reset": (0, 1)})
        refined = analyze(src, config=cfg_r)
        base = analyze(src, config=cfg_b)
        assert refined.alarm_count < base.alarm_count
