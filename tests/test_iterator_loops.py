"""Iterator edge cases: loop/flow interactions, modes, perturbation."""

import pytest

from repro import AnalyzerConfig, analyze
from repro.iterator.alarms import AlarmKind


def kinds(r):
    return {a.kind for a in r.alarms}


def run(src, **ranges):
    return analyze(src, config=AnalyzerConfig(input_ranges=ranges))


class TestFlowInteractions:
    def test_return_inside_loop(self):
        src = """
        volatile int v;
        int find(void) {
            int i;
            for (i = 0; i < 10; i++) {
                if (v) { return i; }
            }
            return -1;
        }
        int out;
        int main(void) {
            out = find();
            __ASTREE_assert(out >= -1);
            __ASTREE_assert(out <= 9);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_break_inside_do_while(self):
        src = """
        volatile int v; int i;
        int main(void) {
            i = 0;
            do {
                if (v) { break; }
                i = i + 1;
            } while (i < 5);
            __ASTREE_assert(i <= 5);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_continue_inside_while(self):
        """The continue path preserves the old 'odd' value, so the widened
        rung survives any narrowing: the provable bound is the next ladder
        rung (16), not the concrete 10 — unless the user supplies 10 as a
        threshold (Sect. 7.1.2), which the sibling test exercises."""
        src = """
        volatile int v; int i; int odd;
        int main(void) {
            i = 0; odd = 0;
            while (i < 10) {
                i = i + 1;
                if (v) { continue; }
                odd = i;
            }
            __ASTREE_assert(i <= 10);
            __ASTREE_assert(odd <= 16);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_continue_inside_while_with_threshold(self):
        from repro.domains.thresholds import default_thresholds

        src = """
        volatile int v; int i; int odd;
        int main(void) {
            i = 0; odd = 0;
            while (i < 10) {
                i = i + 1;
                if (v) { continue; }
                odd = i;
            }
            __ASTREE_assert(odd <= 10);
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"v": (0, 1)},
                             thresholds=default_thresholds().with_extra([10.0]))
        assert analyze(src, config=cfg).alarm_count == 0

    def test_nested_break_only_exits_inner(self):
        src = """
        volatile int v; int i; int j; int n;
        int main(void) {
            n = 0;
            for (i = 0; i < 3; i++) {
                for (j = 0; j < 3; j++) {
                    if (v) { break; }
                    if (n < 16) { n = n + 1; }   /* 16 is a ladder rung */
                }
            }
            __ASTREE_assert(n <= 16);
            __ASTREE_assert(i == 3);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_call_inside_loop_body(self):
        src = """
        int sat(int x) {
            if (x > 50) { return 50; }
            return x;
        }
        volatile int v; int acc;
        int main(void) {
            acc = 0;
            while (1) {
                acc = sat(acc + v);
                __ASTREE_assert(acc <= 50);
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        assert run(src, v=(0, 3)).alarm_count == 0

    def test_multiple_returns_join_values(self):
        src = """
        volatile int v;
        int pick(void) {
            if (v) { return 10; }
            return 20;
        }
        int out;
        int main(void) {
            out = pick();
            __ASTREE_assert(out >= 10);
            __ASTREE_assert(out <= 20);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_void_function_with_early_return(self):
        src = """
        volatile int v; int x;
        void maybe_set(void) {
            if (v) { return; }
            x = 5;
        }
        int main(void) {
            x = 1;
            maybe_set();
            __ASTREE_assert(x >= 1);
            __ASTREE_assert(x <= 5);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_infinite_loop_without_wait(self):
        """A tight loop (no clock tick) still reaches a fixpoint."""
        src = """
        volatile int v; int x;
        int main(void) {
            x = 0;
            while (1) {
                if (x < 5) { x = x + 1; }
            }
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0

    def test_loop_condition_with_conjunction(self):
        src = """
        volatile int v; int i;
        int main(void) {
            i = 0;
            while (i < 100 && v) { i = i + 1; }
            __ASTREE_assert(i <= 100);
            return 0;
        }
        """
        assert run(src, v=(0, 1)).alarm_count == 0


class TestIterationStrategies:
    def test_unrolling_improves_first_iteration_precision(self):
        """The first loop iteration is exact with unrolling (Sect. 7.1.1)."""
        src = """
        int i; int first;
        int main(void) {
            first = -1;
            for (i = 0; i < 10; i++) {
                if (i == 0) { first = 100; }
            }
            __ASTREE_assert(first == 100);
            return 0;
        }
        """
        cfg = AnalyzerConfig(default_unroll=1)
        assert analyze(src, config=cfg).alarm_count == 0

    def test_per_loop_unroll_override(self):
        src = """
        int i; int x;
        int main(void) {
            x = 0;
            for (i = 0; i < 3; i++) { x = x + 1; }
            __ASTREE_assert(x == 3);
            return 0;
        }
        """
        # With enough unrolling the loop is fully unrolled: exact result.
        cfg = AnalyzerConfig(default_unroll=4)
        assert analyze(src, config=cfg).alarm_count == 0

    def test_iteration_epsilon_zero_still_converges(self):
        src = """
        volatile float v; float x;
        int main(void) {
            x = 0.0f;
            while (1) {
                x = 0.9f * x + v;
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"v": (-1.0, 1.0)},
                             iteration_epsilon=0.0)
        r = analyze(src, config=cfg)
        assert r.alarm_count == 0

    def test_checking_mode_reports_only_reachable(self):
        """Alarms in unreachable code are not reported (bottom states
        short-circuit)."""
        src = """
        int x;
        int main(void) {
            x = 1;
            if (x == 2) { x = 1 / 0; }
            while (0) { x = 1 / 0; }
            return 0;
        }
        """
        assert analyze(src).alarm_count == 0

    def test_widening_iteration_budget_respected(self):
        """Even adversarial slow-growing loops terminate within budget."""
        src = """
        volatile int v; int a; int b; int c;
        int main(void) {
            a = 0; b = 0; c = 0;
            while (1) {
                if (a < 1000000) { a = a + 1; }
                if (v) { if (b < a) { b = b + 1; } }
                if (v) { if (c < b) { c = c + 1; } }
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"v": (0, 1)},
                             max_widening_iterations=30)
        r = analyze(src, config=cfg)  # must terminate; alarms irrelevant
        assert r.widening_iterations <= 40 * 3  # loop + forced rounds
