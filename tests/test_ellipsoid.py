"""Tests for the ellipsoid abstract domain (second-order filters)."""

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.domains.ellipsoid import EllipsoidParams, EllipsoidValue
from repro.numeric import BINARY32, FloatInterval

# A realistic well-damped second-order filter.
A, B = 1.5, 0.7
PARAMS = EllipsoidParams(a=A, b=B, t_max=1.0, fmt=BINARY32)


class TestParams:
    def test_valid_params_accepted(self):
        EllipsoidParams(a=0.5, b=0.5, t_max=1.0)

    def test_b_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            EllipsoidParams(a=0.5, b=1.5, t_max=1.0)

    def test_unstable_rejected(self):
        # a^2 - 4b >= 0: real eigenvalues, not an ellipse.
        with pytest.raises(ValueError):
            EllipsoidParams(a=2.0, b=0.5, t_max=1.0)

    def test_negative_tmax_rejected(self):
        with pytest.raises(ValueError):
            EllipsoidParams(a=0.5, b=0.5, t_max=-1.0)

    def test_discriminant_positive(self):
        assert PARAMS.discriminant > 0.0

    def test_stable_k_finite(self):
        assert PARAMS.stable_k() < math.inf


class TestProposition1:
    """Prop. 1: k >= (tM/(1-sqrt b))^2 makes X^2-aXY+bY^2 <= k invariant."""

    def quad(self, x, y):
        return x * x - A * x * y + B * y * y

    @settings(max_examples=200)
    @given(st.floats(-50, 50), st.floats(-50, 50), st.floats(-1.0, 1.0))
    def test_invariance_concrete(self, x, y, t):
        k = PARAMS.stable_k()
        if self.quad(x, y) <= k:
            x_new = A * x - B * y + t
            assert self.quad(x_new, x) <= k * 1.0001

    @settings(max_examples=100)
    @given(st.floats(-20, 20), st.floats(-20, 20), st.floats(-1.0, 1.0))
    def test_delta_bounds_one_rotation(self, x, y, t):
        """delta(k) over-approximates the quadratic form after a rotation
        even with float32 concrete arithmetic."""
        k = self.quad(x, y)
        if k < 0 or k > 1e6:
            return
        v = EllipsoidValue(PARAMS, k)
        rotated = v.rotate()
        # Concrete rotation in float32 (the program's arithmetic).
        x32 = np.float32(A) * np.float32(x) - np.float32(B) * np.float32(y) + np.float32(t)
        new_form = self.quad(float(x32), x)
        assert new_form <= rotated.k * (1 + 1e-9) + 1e-12

    def test_delta_converges_below_stable_k(self):
        """Iterating rotate from a small k stays bounded (the filter is
        provable) - the fixpoint of delta is near stable_k."""
        v = EllipsoidValue(PARAMS, 0.0)
        for _ in range(200):
            v = v.rotate()
        assert v.k <= PARAMS.stable_k() * 1.1

    def test_delta_of_inf_is_inf(self):
        assert EllipsoidValue.top(PARAMS).rotate().is_top


class TestReductions:
    def test_reduce_from_intervals(self):
        v = EllipsoidValue.top(PARAMS)
        r = v.reduce_from_intervals(FloatInterval.of(-1.0, 1.0),
                                    FloatInterval.of(-1.0, 1.0))
        assert r.k < math.inf
        # Box [-1,1]^2: form <= 1 + |a| + b.
        assert r.k <= (1 + abs(A) + B) * 1.001

    def test_reduce_equal_vars_tighter(self):
        x = FloatInterval.of(-1.0, 1.0)
        generic = EllipsoidValue.top(PARAMS).reduce_from_intervals(x, x)
        equal = EllipsoidValue.top(PARAMS).reduce_from_intervals(
            x, x, equal_vars=True)
        assert equal.k <= generic.k

    def test_reduce_keeps_smaller_k(self):
        v = EllipsoidValue(PARAMS, 0.001)
        r = v.reduce_from_intervals(FloatInterval.of(-10.0, 10.0),
                                    FloatInterval.of(-10.0, 10.0))
        assert r.k == 0.001

    def test_x_bound_sound(self):
        k = 2.0
        v = EllipsoidValue(PARAMS, k)
        bound = v.x_bound()
        # Sample points on the ellipse boundary: |x| must be within bound.
        for theta in np.linspace(0, 2 * math.pi, 64):
            # Parametrize: scan candidate x and check max |x| on ellipse.
            pass
        # Analytic max |x| = 2*sqrt(b*k/(4b-a^2)).
        analytic = 2 * math.sqrt(B * k / (4 * B - A * A))
        assert bound.hi >= analytic * 0.999
        assert bound.hi <= analytic * 1.01

    def test_y_bound_sound(self):
        k = 2.0
        analytic = 2 * math.sqrt(k / (4 * B - A * A))
        bound = EllipsoidValue(PARAMS, k).y_bound()
        assert analytic * 0.999 <= bound.hi <= analytic * 1.01

    def test_top_gives_top_bounds(self):
        assert EllipsoidValue.top(PARAMS).x_bound().is_top


class TestLattice:
    def test_join_takes_max(self):
        a = EllipsoidValue(PARAMS, 1.0)
        b = EllipsoidValue(PARAMS, 2.0)
        assert a.join(b).k == 2.0

    def test_meet_takes_min(self):
        a = EllipsoidValue(PARAMS, 1.0)
        b = EllipsoidValue(PARAMS, 2.0)
        assert a.meet(b).k == 1.0

    def test_widen_stable(self):
        a = EllipsoidValue(PARAMS, 2.0)
        b = EllipsoidValue(PARAMS, 1.5)
        assert a.widen(b).k == 2.0

    def test_widen_unstable_no_thresholds(self):
        a = EllipsoidValue(PARAMS, 1.0)
        b = EllipsoidValue(PARAMS, 2.0)
        assert a.widen(b).is_top

    def test_widen_unstable_with_thresholds(self):
        a = EllipsoidValue(PARAMS, 1.0)
        b = EllipsoidValue(PARAMS, 2.0)
        w = a.widen(b, thresholds=[0.0, 10.0, math.inf])
        assert w.k == 10.0

    def test_narrow_refines_top(self):
        t = EllipsoidValue.top(PARAMS)
        n = t.narrow(EllipsoidValue(PARAMS, 3.0))
        assert n.k == 3.0

    def test_narrow_keeps_finite(self):
        a = EllipsoidValue(PARAMS, 3.0)
        assert a.narrow(EllipsoidValue(PARAMS, 1.0)).k == 3.0

    def test_includes(self):
        assert EllipsoidValue(PARAMS, 2.0).includes(EllipsoidValue(PARAMS, 1.0))
        assert not EllipsoidValue(PARAMS, 1.0).includes(EllipsoidValue(PARAMS, 2.0))


class TestFilterVerificationEndToEnd:
    def test_widen_rotate_narrow_proves_bound(self):
        """The analysis pattern: reinit join rotate, widen, check stability.

        This mirrors what the full analyzer does on the Fig. 1 filter: the
        invariant k stabilizes and yields a finite interval for X.
        """
        params = EllipsoidParams(a=A, b=B, t_max=0.5, fmt=BINARY32)
        reinit = EllipsoidValue.top(params).reduce_from_intervals(
            FloatInterval.of(-1.0, 1.0), FloatInterval.of(-1.0, 1.0))
        thresholds = [10.0**k for k in range(-3, 30)] + [math.inf]
        inv = reinit
        for _ in range(100):
            step = inv.rotate().join(reinit)
            if inv.includes(step):
                break
            inv = inv.widen(step, thresholds)
        else:
            raise AssertionError("ellipsoid fixpoint did not stabilize")
        # Narrow once.
        inv = inv.narrow(inv.rotate().join(reinit))
        assert inv.k < math.inf
        assert inv.x_bound().hi < 100.0  # a usable bound for overflow checks
