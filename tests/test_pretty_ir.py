"""Tests for IR pretty-printing, IR traversal and the error hierarchy."""

import pytest

from repro import errors as E
from repro.frontend import compile_source
from repro.frontend import ir as I
from repro.frontend.pretty import format_function, format_program, format_stmts


SRC = """
volatile int v;
int x;
float f;
int helper(int a) { return a + 1; }
int main(void) {
    int i;
    for (i = 0; i < 4; i++) {
        if (v) { x = helper(x); } else { x = 0; }
    }
    do { f = f * 0.5f; } while (f > 1.0f);
    switch (x) { case 1: x = 2; break; default: x = 0; break; }
    while (1) {
        __ASTREE_known_fact(x >= 0);
        __ASTREE_assert(x < 10);
        __ASTREE_wait_for_clock();
        if (v) { break; }
    }
    return 0;
}
"""


class TestPretty:
    def test_format_program_contains_globals(self):
        prog = compile_source(SRC, "t.c")
        text = format_program(prog)
        assert "volatile int v" in text
        assert "int x" in text

    def test_format_contains_all_constructs(self):
        prog = compile_source(SRC, "t.c")
        text = format_program(prog)
        assert "while (" in text
        assert "do-while (" in text
        assert "switch (" in text
        assert "__ASTREE_wait_for_clock();" in text
        assert "__ASTREE_known_fact" in text
        assert "__ASTREE_assert" in text
        assert "break;" in text
        assert "/* step: */" in text  # the for-loop step section

    def test_format_function_signature(self):
        prog = compile_source(SRC, "t.c")
        text = format_function(prog.functions["helper"])
        assert text.startswith("int helper(int a)")

    def test_format_stmts_indentation(self):
        prog = compile_source(SRC, "t.c")
        lines = format_stmts(prog.functions["main"].body)
        assert any(line.startswith("  ") for line in lines)


class TestIterStmts:
    def test_traversal_covers_nested(self):
        prog = compile_source(SRC, "t.c")
        kinds = {type(s).__name__ for s in I.iter_stmts(prog.functions["main"].body)}
        assert {"SWhile", "SIf", "SSwitch", "SAssign", "SWait",
                "SAssume", "SCheck", "SBreak", "SReturn"} <= kinds

    def test_traversal_includes_for_step(self):
        prog = compile_source(SRC, "t.c")
        loops = [s for s in I.iter_stmts(prog.functions["main"].body)
                 if isinstance(s, I.SWhile) and s.step]
        assert loops, "the for loop must carry step statements"
        step_sids = {s.sid for loop in loops for s in I.iter_stmts(loop.step)}
        all_sids = {s.sid for s in I.iter_stmts(prog.functions["main"].body)}
        assert step_sids <= all_sids

    def test_stmt_ids_unique(self):
        prog = compile_source(SRC, "t.c")
        sids = [s.sid for fn in prog.functions.values() if fn.body
                for s in I.iter_stmts(fn.body)]
        assert len(sids) == len(set(sids))


class TestErrorHierarchy:
    def test_all_derive_from_repro_error(self):
        for cls in (E.PreprocessorError, E.LexerError, E.ParseError,
                    E.TypeError_, E.UnsupportedConstructError, E.LinkError,
                    E.AnalysisError):
            assert issubclass(cls, E.ReproError)

    def test_source_errors_carry_location(self):
        err = E.ParseError("bad token", "foo.c", 3, 7)
        assert err.filename == "foo.c"
        assert err.line == 3 and err.col == 7
        assert "foo.c:3:7" in str(err)

    def test_frontend_errors_catchable_as_repro_error(self):
        with pytest.raises(E.ReproError):
            compile_source("int x = ;", "t.c")

    def test_var_str_and_lvalue_str(self):
        prog = compile_source(SRC, "t.c")
        v = prog.global_by_name("x")
        assert str(v) == "x"
