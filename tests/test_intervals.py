"""Tests for the outward-rounded interval arithmetic."""

import math

from hypothesis import given, strategies as st

from repro.numeric import BINARY32, FloatInterval, IntInterval

finite = st.floats(allow_nan=False, allow_infinity=False, width=64)


def fintervals():
    return st.tuples(finite, finite).map(
        lambda ab: FloatInterval.of(min(ab), max(ab))
    )


def iintervals():
    small = st.integers(min_value=-(10**6), max_value=10**6)
    return st.tuples(small, small).map(lambda ab: IntInterval.of(min(ab), max(ab)))


def sample_points(iv: FloatInterval):
    pts = []
    if iv.is_empty:
        return pts
    for p in (iv.lo, iv.hi, (iv.lo + iv.hi) / 2.0, 0.0):
        if iv.contains(p) and not math.isinf(p):
            pts.append(p)
    return pts


class TestFloatIntervalLattice:
    def test_empty_is_empty(self):
        assert FloatInterval.empty().is_empty

    def test_top_contains_everything(self):
        assert FloatInterval.top().contains(1e308)
        assert FloatInterval.top().contains(-1e308)

    def test_of_inverted_bounds_is_empty(self):
        assert FloatInterval.of(1.0, 0.0).is_empty

    @given(fintervals(), fintervals())
    def test_join_is_upper_bound(self, a, b):
        j = a.join(b)
        assert j.includes(a) and j.includes(b)

    @given(fintervals(), fintervals())
    def test_meet_is_lower_bound(self, a, b):
        m = a.meet(b)
        assert a.includes(m) and b.includes(m)

    @given(fintervals())
    def test_join_with_empty_is_identity(self, a):
        assert a.join(FloatInterval.empty()) == a

    @given(fintervals(), fintervals())
    def test_widen_is_upper_bound(self, a, b):
        w = a.widen(b)
        assert w.includes(a) and w.includes(b)

    @given(fintervals(), fintervals())
    def test_widen_with_thresholds_is_upper_bound(self, a, b):
        ts = [-math.inf, -100.0, 0.0, 100.0, math.inf]
        w = a.widen(b, ts)
        assert w.includes(a) and w.includes(b)

    def test_widen_hits_threshold_not_infinity(self):
        ts = [-math.inf, -100.0, 0.0, 100.0, math.inf]
        a = FloatInterval.of(0.0, 1.0)
        b = FloatInterval.of(0.0, 2.0)
        w = a.widen(b, ts)
        assert w.hi == 100.0

    def test_widen_termination(self):
        """Iterated widening reaches a fixpoint in finitely many steps."""
        ts = [-math.inf] + [float(10**k) for k in range(10)] + [math.inf]
        cur = FloatInterval.of(0.0, 1.0)
        for i in range(50):
            nxt = cur.widen(cur.add(FloatInterval.const(1.0)), ts)
            if nxt == cur:
                break
            cur = nxt
        else:
            raise AssertionError("widening did not terminate")

    @given(fintervals(), fintervals())
    def test_narrow_stays_above_meet(self, a, b):
        n = a.narrow(b)
        assert n.includes(a.meet(b))


class TestFloatIntervalArith:
    @given(fintervals(), fintervals())
    def test_add_sound(self, a, b):
        r = a.add(b)
        for x in sample_points(a):
            for y in sample_points(b):
                if not math.isinf(x + y):
                    assert r.contains(x + y)

    @given(fintervals(), fintervals())
    def test_sub_sound(self, a, b):
        r = a.sub(b)
        for x in sample_points(a):
            for y in sample_points(b):
                if not math.isinf(x - y):
                    assert r.contains(x - y)

    @given(fintervals(), fintervals())
    def test_mul_sound(self, a, b):
        r = a.mul(b)
        for x in sample_points(a):
            for y in sample_points(b):
                if not math.isinf(x * y):
                    assert r.contains(x * y)

    @given(fintervals(), fintervals())
    def test_div_sound(self, a, b):
        r = a.div(b)
        for x in sample_points(a):
            for y in sample_points(b):
                if y != 0.0 and not math.isinf(x / y):
                    assert r.contains(x / y)

    def test_div_by_zero_only_is_empty(self):
        assert FloatInterval.of(1.0, 2.0).div(FloatInterval.const(0.0)).is_empty

    def test_div_straddling_zero_is_wide(self):
        r = FloatInterval.of(1.0, 2.0).div(FloatInterval.of(-1.0, 1.0))
        assert r.hi == math.inf and r.lo == -math.inf

    def test_neg(self):
        assert FloatInterval.of(-1.0, 2.0).neg() == FloatInterval.of(-2.0, 1.0)

    def test_abs_straddling(self):
        assert FloatInterval.of(-3.0, 2.0).abs() == FloatInterval.of(0.0, 3.0)

    def test_abs_negative(self):
        assert FloatInterval.of(-3.0, -2.0).abs() == FloatInterval.of(2.0, 3.0)

    def test_sqrt(self):
        r = FloatInterval.of(4.0, 9.0).sqrt()
        assert r.contains(2.0) and r.contains(3.0)

    def test_sqrt_clips_negative_part(self):
        r = FloatInterval.of(-4.0, 9.0).sqrt()
        assert r.lo == 0.0

    def test_paper_example_loses_precision_bottom_up(self):
        """Sect. 6.3: bottom-up evaluation of X - 0.2*X on X in [0,1]."""
        x = FloatInterval.of(0.0, 1.0)
        naive = x.sub(x.mul(FloatInterval.const(0.2)))
        assert naive.lo < -0.19  # the imprecise [-0.2, 1] result


class TestRoundTo:
    def test_small_value_no_overflow(self):
        iv, ovf = FloatInterval.of(0.0, 1.0).round_to(BINARY32)
        assert not ovf
        assert iv.includes(FloatInterval.of(0.0, 1.0))

    def test_overflow_detected_and_clamped(self):
        iv, ovf = FloatInterval.of(0.0, 1e39).round_to(BINARY32)
        assert ovf
        assert iv.hi <= BINARY32.max_value

    def test_rounding_inflates(self):
        iv, _ = FloatInterval.const(0.1).round_to(BINARY32)
        assert iv.lo < 0.1 < iv.hi

    def test_empty_passthrough(self):
        iv, ovf = FloatInterval.empty().round_to(BINARY32)
        assert iv.is_empty and not ovf


class TestIntInterval:
    @given(iintervals(), iintervals())
    def test_join_meet(self, a, b):
        assert a.join(b).includes(a)
        assert a.includes(a.meet(b))

    @given(iintervals(), iintervals())
    def test_add_sound(self, a, b):
        r = a.add(b)
        assert r.contains(a.lo + b.lo) and r.contains(a.hi + b.hi)

    @given(iintervals(), iintervals())
    def test_mul_sound_on_endpoints(self, a, b):
        r = a.mul(b)
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                assert r.contains(x * y)

    def test_mul_with_infinite_bound(self):
        a = IntInterval.of(1, None)
        b = IntInterval.of(2, 3)
        r = a.mul(b)
        assert r.hi is None and r.lo == 2

    def test_mul_zero_and_infinite(self):
        a = IntInterval.of(0, None)
        b = IntInterval.of(0, 0)
        assert a.mul(b).contains(0)

    @given(iintervals(), iintervals())
    def test_div_trunc_sound(self, a, b):
        r = a.div_trunc(b)

        def cdiv(x, y):
            q = abs(x) // abs(y)
            return q if (x >= 0) == (y >= 0) else -q

        for x in (a.lo, a.hi, (a.lo + a.hi) // 2):
            for y in (b.lo, b.hi):
                if y != 0:
                    assert r.contains(cdiv(x, y)), (x, y, cdiv(x, y), r)

    def test_div_by_zero_only_is_empty(self):
        assert IntInterval.of(1, 5).div_trunc(IntInterval.const(0)).is_empty

    @given(iintervals(), iintervals())
    def test_mod_sound(self, a, b):
        r = a.mod_trunc(b)
        for x in (a.lo, a.hi):
            for y in (b.lo, b.hi):
                if y != 0:
                    m = math.fmod(x, y)
                    assert r.contains(int(m)), (x, y, int(m), r)

    def test_restrict_ne_endpoint(self):
        assert IntInterval.of(0, 5).restrict_ne(0) == IntInterval.of(1, 5)
        assert IntInterval.of(0, 5).restrict_ne(5) == IntInterval.of(0, 4)
        assert IntInterval.const(3).restrict_ne(3).is_empty

    def test_restrict_ne_interior_is_identity(self):
        assert IntInterval.of(0, 5).restrict_ne(2) == IntInterval.of(0, 5)

    def test_widen_unbounded(self):
        a = IntInterval.of(0, 10)
        b = IntInterval.of(0, 20)
        assert a.widen(b).hi is None

    def test_widen_with_thresholds(self):
        a = IntInterval.of(0, 10)
        b = IntInterval.of(0, 20)
        w = a.widen(b, [-math.inf, 100.0, math.inf])
        assert w.hi == 100

    def test_narrow_refines_infinite_bound(self):
        a = IntInterval.of(0, None)
        b = IntInterval.of(0, 50)
        assert a.narrow(b) == IntInterval.of(0, 50)

    def test_to_float_interval_exact_small(self):
        fi = IntInterval.of(-3, 7).to_float_interval()
        assert fi.lo == -3.0 and fi.hi == 7.0

    def test_from_float_interval_truncates_toward_zero(self):
        ii = IntInterval.from_float_interval(FloatInterval.of(-2.7, 3.9))
        assert ii == IntInterval.of(-2, 3)
