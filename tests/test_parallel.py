"""The parallel fixpoint engine: bit-identical determinism and planning.

Monniaux's parallelization of Astrée splits the analyzed interval of
control flow into independent work units and requires the parallel run to
produce *byte-identical* results.  These tests hold ``jobs=4`` to that
standard against ``jobs=1`` on three synthesized program families: alarms
(including order), the main loop invariant dump, invariant statistics,
packing-usefulness feedback, widening counts, and abstract visit counts.

The programs are compiled once and analyzed twice: statement ids come
from a global counter, so recompiling would shift the key space of
``visit_counts`` without any semantic difference.
"""

import pytest

from repro.analysis import analyze_program
from repro.config import AnalyzerConfig
from repro.frontend import compile_source
from repro.parallel.executor import plan_sequence
from repro.parallel.footprints import Footprint
from repro.synth import FamilySpec, generate_program

JOBS = 4


# ---------------------------------------------------------------------------
# Planner unit tests
# ---------------------------------------------------------------------------


def _fp(reads=(), writes=(), packs=(), weight=10, **flags) -> Footprint:
    fp = Footprint(reads=set(reads), writes=set(writes),
                   write_packs=set(packs), read_packs=set(packs),
                   weight=weight)
    for k, v in flags.items():
        setattr(fp, k, v)
    return fp


def _plan(fps, min_weight=20):
    return plan_sequence([object()] * len(fps), fps, min_weight)


class TestPlanSequence:
    def test_independent_units_form_one_region(self):
        fps = [_fp(writes={i}, reads={i}) for i in range(4)]
        plan = _plan(fps)
        assert plan is not None and len(plan) == 1
        seg = plan[0]
        assert seg.kind == "par"
        assert seg.units == [(0, 1), (1, 2), (2, 3), (3, 4)]

    def test_write_read_conflict_coalesces_suffix(self):
        # unit1 writes cell 0; stmt 3 reads it: units 1..2 + stmt 3 merge.
        fps = [_fp(writes={9}, reads={9}),
               _fp(writes={0}, reads={0}),
               _fp(writes={1}, reads={1}),
               _fp(writes={2}, reads={0, 2})]
        plan = _plan(fps)
        assert plan is not None and len(plan) == 1
        assert plan[0].units == [(0, 1), (1, 4)]

    def test_write_write_is_not_a_conflict(self):
        # Pure WW on a cell is fine: the later unit's delta wins, exactly
        # as sequential execution would order the strong updates.
        fps = [_fp(writes={0}), _fp(writes={0})]
        plan = _plan(fps)
        assert plan is not None
        assert plan[0].units == [(0, 1), (1, 2)]

    def test_pack_touch_conflicts(self):
        # Octagon updates are RMW at pack granularity.
        fps = [_fp(packs={5}), _fp(packs={5})]
        assert _plan(fps) is None  # one merged unit: nothing to dispatch

    def test_barrier_flushes_region(self):
        fps = [_fp(writes={0}, reads={0}),
               _fp(writes={1}, reads={1}),
               _fp(weight=1, has_wait=True),
               _fp(writes={2}, reads={2}),
               _fp(writes={3}, reads={3})]
        plan = _plan(fps)
        assert plan is not None
        kinds = [seg.kind for seg in plan]
        assert kinds == ["par", "seq", "par"]
        assert plan[1].start, plan[1].end == (2, 3)

    def test_total_weight_floor(self):
        fps = [_fp(writes={0}, reads={0}, weight=5),
               _fp(writes={1}, reads={1}, weight=5)]
        assert _plan(fps, min_weight=20) is None
        assert _plan(fps, min_weight=10) is not None

    def test_per_unit_weight_floor(self):
        # One heavy and one feather-weight unit: the round-trip for the
        # light unit costs more than it saves, so no dispatch.
        fps = [_fp(writes={0}, reads={0}, weight=100),
               _fp(writes={1}, reads={1}, weight=1)]
        assert _plan(fps, min_weight=20) is None

    def test_unresolved_is_barrier(self):
        fps = [_fp(writes={0}, reads={0}),
               _fp(unresolved=True),
               _fp(writes={1}, reads={1})]
        plan = _plan(fps)
        assert plan is None  # one unit on each side of the barrier


class TestConflictModel:
    def test_cell_write_then_read(self):
        assert _fp(writes={1}).conflicts_with(_fp(reads={1}))
        assert not _fp(writes={1}).conflicts_with(_fp(reads={2}))

    def test_cell_read_then_write_is_fine(self):
        # The earlier unit runs from the shared pre-state; a later write
        # cannot retroactively change what it read.
        assert not _fp(reads={1}).conflicts_with(_fp(writes={1}))

    def test_pack_granularity(self):
        a = Footprint(write_packs={3})
        assert a.conflicts_with(Footprint(read_packs={3}))
        assert a.conflicts_with(Footprint(write_packs={3}))
        assert not a.conflicts_with(Footprint(read_packs={4}))

    def test_filter_sites_always_conflict(self):
        assert Footprint(sites={2}).conflicts_with(Footprint(sites={2}))


# ---------------------------------------------------------------------------
# End-to-end determinism
# ---------------------------------------------------------------------------


def _subsystem_source(nsub: int, width: int) -> str:
    """``nsub`` independent filter subsystems stepped from one main loop:
    the program shape Monniaux's scheme targets (near-independent
    dispatch branches)."""
    lines = []
    for k in range(nsub):
        lines.append(f"volatile float in{k}_a;")
        lines.append(f"volatile int in{k}_b;")
        lines.append(f"float s{k}_x; float s{k}_y; float s{k}_tab[{width}];")
        lines.append(f"int s{k}_mode; int s{k}_count;")
    for k in range(nsub):
        lines.append(f"""
void step_{k}(void) {{
    float e; int j;
    e = in{k}_a;
    if (e > 100.0f) {{ e = 100.0f; }}
    if (e < -100.0f) {{ e = -100.0f; }}
    s{k}_mode = in{k}_b;
    j = 0;
    while (j < {width}) {{
        s{k}_tab[j] = 0.8f * s{k}_tab[j] + 0.2f * e;
        j = j + 1;
    }}
    s{k}_x = 0.9f * s{k}_x + 0.1f * e;
    if (s{k}_mode) {{ s{k}_y = s{k}_x; }} else {{ s{k}_y = 0.0f; }}
    if (s{k}_count < 1000) {{ s{k}_count = s{k}_count + 1; }}
}}""")
    lines.append("int main(void) {")
    lines.append("  while (1) {")
    for k in range(nsub):
        lines.append(f"    step_{k}();")
    lines.append("    __ASTREE_wait_for_clock();")
    lines.append("  }")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


def _partitioned_source() -> str:
    """A relay-style choice in a partitioned main: the then/else states
    both stay feasible, so the trace-partitioning split dispatches the
    two sides to workers."""
    return """
volatile float in_a;
volatile int in_sel;
float x; float y; float acc; float tab[10];
int main(void) {
  float e; int j; int sel;
  while (1) {
    e = in_a;
    if (e > 100.0f) { e = 100.0f; }
    if (e < -100.0f) { e = -100.0f; }
    sel = in_sel;
    if (sel) {
      j = 0;
      while (j < 10) { tab[j] = 0.5f * tab[j] + e; j = j + 1; }
      x = 0.75f * x + 0.25f * e;
      acc = acc * 0.5f + x;
    } else {
      j = 0;
      while (j < 10) { tab[j] = 0.25f * tab[j] - e; j = j + 1; }
      y = 0.5f * y - 0.5f * e;
      acc = acc * 0.5f + y;
    }
    __ASTREE_wait_for_clock();
  }
  return 0;
}
"""


def _snapshot(result) -> dict:
    stats = result.invariant_stats()
    return {
        "alarms": [(a.kind, a.loc.filename, a.loc.line, a.loc.col, a.message)
                   for a in result.alarms],
        "invariant": result.dump_invariant_text(),
        "stats": (stats.boolean_interval_assertions,
                  stats.interval_assertions,
                  stats.clock_assertions,
                  stats.octagonal_additive_assertions,
                  stats.octagonal_subtractive_assertions,
                  stats.decision_trees,
                  stats.ellipsoidal_assertions),
        "useful_oct": sorted(result.useful_octagon_packs),
        "useful_bool": result.useful_bool_pack_count,
        "widening": result.widening_iterations,
        "visits": sorted(result.visit_counts.items()),
    }


def _compare(prog, cfg):
    seq = analyze_program(prog, cfg, jobs=1)
    par = analyze_program(prog, cfg, jobs=JOBS)
    assert _snapshot(seq) == _snapshot(par)
    return seq, par


class TestDeterminism:
    def test_independent_subsystems(self):
        src = _subsystem_source(nsub=6, width=10)
        ranges = {}
        for k in range(6):
            ranges[f"in{k}_a"] = (-500.0, 500.0)
            ranges[f"in{k}_b"] = (0.0, 1.0)
        cfg = AnalyzerConfig(input_ranges=ranges, max_clock=10_000,
                             parallel_min_stmts=8, trace=True,
                             collect_invariants=True)
        prog = compile_source(src, "subsystems.c")
        seq, par = _compare(prog, cfg)
        assert par.parallel_regions > 0, "no region was dispatched"
        assert par.parallel_tasks >= 2 * par.parallel_regions

    def test_trace_partitioned_branches(self):
        cfg = AnalyzerConfig(
            input_ranges={"in_a": (-400.0, 400.0), "in_sel": (0.0, 1.0)},
            max_clock=10_000, partition_functions={"main"},
            parallel_min_stmts=8, trace=True, collect_invariants=True)
        prog = compile_source(_partitioned_source(), "relay.c")
        seq, par = _compare(prog, cfg)
        assert par.branch_dispatches > 0, "no branch pair was dispatched"

    def test_synth_family(self):
        # The generated family is densely coupled (guarded neighbour
        # reads), so few or no regions qualify — determinism must hold
        # regardless of how much actually runs remotely.
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=11))
        cfg = gp.analyzer_config(trace=True, collect_invariants=True,
                                 parallel_min_stmts=12)
        prog = compile_source(gp.source, "family.c")
        _compare(prog, cfg)

    def test_jobs_flag_reaches_result(self):
        src = _subsystem_source(nsub=2, width=4)
        ranges = {"in0_a": (-1.0, 1.0), "in0_b": (0.0, 1.0),
                  "in1_a": (-1.0, 1.0), "in1_b": (0.0, 1.0)}
        cfg = AnalyzerConfig(input_ranges=ranges, max_clock=100, jobs=2)
        prog = compile_source(src, "tiny.c")
        res = analyze_program(prog, cfg)
        assert res.jobs == 2
        res1 = analyze_program(prog, cfg, jobs=1)
        assert res1.jobs == 1
        assert res1.parallel_regions == 0
