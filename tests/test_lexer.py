"""Tests for the C tokenizer."""

import pytest

from repro.errors import LexerError
from repro.frontend.lexer import Token, TokenKind, tokenize


def kinds(src):
    return [t.kind for t in tokenize(src)[:-1]]


def texts(src):
    return [t.text for t in tokenize(src)[:-1]]


class TestBasics:
    def test_empty_source_gives_eof(self):
        toks = tokenize("")
        assert len(toks) == 1 and toks[0].kind == TokenKind.EOF

    def test_identifiers_and_keywords(self):
        toks = tokenize("int foo _bar baz2")
        assert toks[0].kind == TokenKind.KEYWORD
        assert [t.kind for t in toks[1:4]] == [TokenKind.IDENT] * 3

    def test_underscore_bool_is_keyword(self):
        assert tokenize("_Bool")[0].kind == TokenKind.KEYWORD

    def test_line_and_column_tracking(self):
        toks = tokenize("a\n  b")
        assert (toks[0].line, toks[0].col) == (1, 1)
        assert (toks[1].line, toks[1].col) == (2, 3)


class TestNumbers:
    def test_decimal_int(self):
        t = tokenize("42")[0]
        assert t.kind == TokenKind.INT_LIT and t.value == 42

    def test_hex_int(self):
        t = tokenize("0x1F")[0]
        assert t.value == 31

    def test_octal_int(self):
        t = tokenize("017")[0]
        assert t.value == 15

    def test_unsigned_suffix(self):
        t = tokenize("42u")[0]
        assert t.value == 42 and "u" in t.suffix

    def test_float_with_point(self):
        t = tokenize("3.25")[0]
        assert t.kind == TokenKind.FLOAT_LIT and t.value == 3.25

    def test_float_with_exponent(self):
        t = tokenize("1e3")[0]
        assert t.kind == TokenKind.FLOAT_LIT and t.value == 1000.0

    def test_float_f_suffix(self):
        t = tokenize("1.5f")[0]
        assert t.kind == TokenKind.FLOAT_LIT and "f" in t.suffix

    def test_leading_dot_float(self):
        t = tokenize(".5")[0]
        assert t.kind == TokenKind.FLOAT_LIT and t.value == 0.5

    def test_negative_exponent(self):
        t = tokenize("2.5e-3")[0]
        assert abs(t.value - 0.0025) < 1e-12


class TestPunctuation:
    def test_multi_char_operators(self):
        assert texts("a <<= b >>= c") == ["a", "<<=", "b", ">>=", "c"]

    def test_two_char_operators(self):
        assert texts("a<=b>=c==d!=e&&f||g") == [
            "a", "<=", "b", ">=", "c", "==", "d", "!=", "e", "&&", "f", "||", "g"
        ]

    def test_increment_vs_plus(self):
        assert texts("a++ + ++b") == ["a", "++", "+", "++", "b"]

    def test_arrow(self):
        assert texts("p->x") == ["p", "->", "x"]

    def test_unknown_character_raises(self):
        with pytest.raises(LexerError):
            tokenize("a @ b")


class TestCommentsAndStrings:
    def test_line_comment_skipped(self):
        assert texts("a // comment\nb") == ["a", "b"]

    def test_block_comment_skipped(self):
        assert texts("a /* x */ b") == ["a", "b"]

    def test_multiline_block_comment_line_numbers(self):
        toks = tokenize("/* line1\nline2 */ x")
        assert toks[0].line == 2

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexerError):
            tokenize("/* never ends")

    def test_char_literal(self):
        t = tokenize("'A'")[0]
        assert t.kind == TokenKind.CHAR_LIT and t.value == 65

    def test_char_escape(self):
        assert tokenize(r"'\n'")[0].value == 10
        assert tokenize(r"'\0'")[0].value == 0

    def test_string_literal(self):
        t = tokenize('"hello"')[0]
        assert t.kind == TokenKind.STRING_LIT and t.value == "hello"


class TestLineMarkers:
    def test_line_marker_resets_position(self):
        toks = tokenize('# 100 "other.c"\nx')
        assert toks[0].line == 100
        assert toks[0].filename == "other.c"
