"""Tests for the C preprocessor."""

import pytest

from repro.errors import PreprocessorError
from repro.frontend.preprocessor import preprocess


def pp(src, **kw):
    """Preprocess and drop line markers for easy comparison."""
    out = preprocess(src, "t.c", **kw)
    return " ".join(
        line for line in out.split("\n")
        if line.strip() and not line.startswith("# ")
    ).split()


class TestObjectMacros:
    def test_simple_define(self):
        assert pp("#define N 4\nint a[N];") == ["int", "a", "[", "4", "]", ";"]

    def test_macro_in_macro(self):
        src = "#define A 1\n#define B A+1\nB"
        assert pp(src) == ["1", "+", "1"]

    def test_self_referential_macro_stops(self):
        src = "#define X X+1\nX"
        assert pp(src) == ["X", "+", "1"]

    def test_undef(self):
        src = "#define N 4\n#undef N\nN"
        assert pp(src) == ["N"]

    def test_redefine(self):
        src = "#define N 4\n#define N 8\nN"
        assert pp(src) == ["8"]


class TestFunctionMacros:
    def test_simple_expansion(self):
        src = "#define SQ(x) ((x)*(x))\nSQ(3)"
        assert pp(src) == list("((3)*(3))")

    def test_two_params(self):
        src = "#define ADD(a,b) (a+b)\nADD(1, 2)"
        assert pp(src) == list("(1+2)")

    def test_nested_call_argument(self):
        src = "#define SQ(x) ((x)*(x))\nSQ(SQ(2))"
        out = "".join(pp(src))
        assert out == "((((2)*(2)))*(((2)*(2))))"

    def test_name_without_parens_not_expanded(self):
        src = "#define F(x) x\nint F;"
        assert pp(src) == ["int", "F", ";"]

    def test_argument_with_parens(self):
        src = "#define ID(x) x\nID(f(1,2))"
        assert "".join(pp(src)) == "f(1,2)"


class TestConditionals:
    def test_ifdef_taken(self):
        src = "#define A\n#ifdef A\nyes\n#endif"
        assert pp(src) == ["yes"]

    def test_ifdef_not_taken(self):
        src = "#ifdef A\nyes\n#endif\nafter"
        assert pp(src) == ["after"]

    def test_ifndef(self):
        src = "#ifndef A\nyes\n#endif"
        assert pp(src) == ["yes"]

    def test_else_branch(self):
        src = "#ifdef A\nyes\n#else\nno\n#endif"
        assert pp(src) == ["no"]

    def test_elif_chain(self):
        src = "#define B 1\n#if defined(A)\na\n#elif defined(B)\nb\n#else\nc\n#endif"
        assert pp(src) == ["b"]

    def test_if_arithmetic(self):
        src = "#define N 5\n#if N > 3\nbig\n#endif"
        assert pp(src) == ["big"]

    def test_nested_conditionals(self):
        src = "#define A\n#ifdef A\n#ifdef B\nx\n#else\ny\n#endif\n#endif"
        assert pp(src) == ["y"]

    def test_unterminated_if_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#ifdef A\nx\n", "t.c")

    def test_unbalanced_endif_raises(self):
        with pytest.raises(PreprocessorError):
            preprocess("#endif\n", "t.c")

    def test_undefined_identifier_in_if_is_zero(self):
        src = "#if FOO\nx\n#else\ny\n#endif"
        assert pp(src) == ["y"]

    def test_error_directive(self):
        with pytest.raises(PreprocessorError):
            preprocess("#error broken\n", "t.c")

    def test_error_directive_in_dead_branch_ignored(self):
        src = "#ifdef NOPE\n#error never\n#endif\nok"
        assert pp(src) == ["ok"]


class TestIncludes:
    def test_include_with_reader(self):
        files = {"lib.h": "#define N 7\n"}
        out = pp('#include "lib.h"\nN', file_reader=lambda p: files[p.lstrip("./")])
        assert out == ["7"]

    def test_missing_include_raises(self):
        def reader(path):
            raise FileNotFoundError(path)

        with pytest.raises(PreprocessorError):
            preprocess('#include "nope.h"\n', "t.c", file_reader=reader)

    def test_system_include_ignored(self):
        assert pp("#include <stdio.h>\nx") == ["x"]


class TestMisc:
    def test_line_continuation(self):
        src = "#define LONG 1 + \\\n 2\nLONG"
        assert pp(src) == ["1", "+", "2"]

    def test_comments_stripped_before_expansion(self):
        src = "#define N 4\nN /* N */ // N\n"
        assert pp(src) == ["4"]

    def test_predefined_macros(self):
        assert pp("N", predefined={"N": "3"}) == ["3"]

    def test_pragma_ignored(self):
        assert pp("#pragma once\nx") == ["x"]

    def test_line_markers_present(self):
        out = preprocess("x\n", "file.c")
        assert '# 1 "file.c"' in out
