"""Invariant-certificate tests: emission, independent checking,
mutation rejection, the CLI contract, and the full-vs-incremental
divergence witness.

The mutation suite is the teeth of the feature: a certificate whose
invariants were widened away, whose alarms were dropped, whose posts
were spliced from a stale run, or whose bytes were corrupted must be
*rejected* by the independent checker — never validated, never a raw
traceback (the CLI maps every failure to a located ``phase=certify``
incident, exit 3).
"""

import copy
import json

import pytest

from repro.analysis import analyze
from repro.certify import (build_certificate, certify_result,
                           check_certificate, payload_digest,
                           save_certificate)
from repro.cli import main
from repro.config import AnalyzerConfig
from repro.errors import CertificateError

# The ROADMAP's divergence witness family: a bounded float filter next
# to a persistent, clock-tracked saturating integer counter.
WITNESS_SRC = """
volatile float in1;
int count = 0;
float x = 0.0f;
void main() {
  while (1) {
    float v = in1;
    if (count < 100000) { count = count + 1; }
    x = 0.8f * x + v;
    if (x > 1000.0f) { x = 1000.0f; }
    __ASTREE_wait_for_clock();
  }
}
"""

# Unbounded accumulation: carries a float-overflow alarm at full
# precision, so certificates with a non-empty claimed alarm set (and
# the CLI's exit-1 arm) get exercised.
ALARM_SRC = """
volatile float in1;
float x = 0.0f;
void main() {
  while (1) {
    x = x + in1;
    __ASTREE_wait_for_clock();
  }
}
"""


def _cfg(**overrides):
    base = dict(input_ranges={"in1": (-10.0, 10.0)}, max_clock=1000,
                certify=True)
    base.update(overrides)
    return AnalyzerConfig(**base)


@pytest.fixture(scope="module")
def witness_cert():
    result = analyze(WITNESS_SRC, "witness.c", config=_cfg())
    return build_certificate(result, WITNESS_SRC, "witness.c")


@pytest.fixture(scope="module")
def alarm_cert():
    result = analyze(ALARM_SRC, "alarm.c", config=_cfg())
    assert result.alarm_count > 0, "alarm fixture lost its alarm"
    return build_certificate(result, ALARM_SRC, "alarm.c")


def _mutated(cert, mutate):
    """Deep-copy, mutate the payload, recompute the content digest (so
    the mutation is tested against the semantic checks, not just the
    digest envelope)."""
    out = copy.deepcopy(cert)
    mutate(out["payload"])
    out["digest"] = payload_digest(out["payload"])
    return out


class TestRoundTrip:
    def test_emit_and_check(self, witness_cert):
        chk = check_certificate(witness_cert)
        assert chk.exit_code == 0
        assert chk.claimed_alarms == 0
        assert chk.stmts_checked == len(
            witness_cert["payload"]["stmt_records"])
        assert chk.loops_checked == len(
            witness_cert["payload"]["loop_records"])
        assert chk.loops_checked >= 1

    def test_digest_is_content_address(self, witness_cert):
        assert witness_cert["digest"] == payload_digest(
            witness_cert["payload"])

    def test_alarm_certificate_checks_with_exit_1(self, alarm_cert):
        chk = check_certificate(alarm_cert)
        assert chk.claimed_alarms >= 1
        assert chk.exit_code == 1

    def test_certify_result_summary(self):
        result = analyze(WITNESS_SRC, "witness.c", config=_cfg())
        summ = certify_result(result, WITNESS_SRC, "witness.c")
        assert summ.stmt_records > 0
        assert summ.loop_records >= 1
        assert summ.claimed_alarms == 0

    def test_save_and_check_from_disk(self, witness_cert, tmp_path):
        path = str(tmp_path / "w.cert")
        save_certificate(witness_cert, path)
        chk = check_certificate(path)
        assert chk.exit_code == 0

    def test_run_without_certify_is_refused(self):
        result = analyze(WITNESS_SRC, "witness.c",
                         config=_cfg(certify=False))
        with pytest.raises(CertificateError, match="--certify"):
            build_certificate(result, WITNESS_SRC, "witness.c")

    def test_degraded_run_is_refused(self):
        result = analyze(WITNESS_SRC, "witness.c", config=_cfg())
        result.degraded = True
        with pytest.raises(CertificateError, match="degraded"):
            certify_result(result, WITNESS_SRC, "witness.c")

    def test_engine_records_only_under_certify(self):
        on = analyze(WITNESS_SRC, "witness.c", config=_cfg())
        off = analyze(WITNESS_SRC, "witness.c",
                      config=_cfg(certify=False))
        assert on.cert_invariants
        assert not off.cert_invariants

    def test_certify_does_not_change_the_verdict(self):
        on = analyze(WITNESS_SRC, "witness.c", config=_cfg())
        off = analyze(WITNESS_SRC, "witness.c",
                      config=_cfg(certify=False))
        assert ([(a.kind, a.loc.line) for a in on.alarms]
                == [(a.kind, a.loc.line) for a in off.alarms])
        assert on.widening_iterations == off.widening_iterations


class TestMutationRejection:
    def test_spliced_stale_post(self, witness_cert):
        # Replace a statement's post with its own pre: the transfer
        # application escapes the spliced post (or the next record's
        # pre-containment breaks) at the exact corrupted record.
        def splice(payload):
            rec = payload["stmt_records"][1]
            rec[2] = rec[1]

        with pytest.raises(CertificateError):
            check_certificate(_mutated(witness_cert, splice))

    def test_widened_away_bound(self, witness_cert):
        # Splice the loop invariant of a *wider-input* run of the same
        # program: every per-cell bound the narrow run proved is gone.
        # Loop stability may hold for the wider state, but the
        # downstream records certify the narrow run's states, so the
        # containment chain (or the final-state check) must break.
        wide_result = analyze(
            WITNESS_SRC, "witness.c",
            config=_cfg(input_ranges={"in1": (-1000.0, 1000.0)}))
        wide_cert = build_certificate(wide_result, WITNESS_SRC,
                                      "witness.c")
        wide_inv_id = wide_cert["payload"]["loop_records"][0][1]
        wide_blob = wide_cert["payload"]["states"][wide_inv_id]

        def widen(payload):
            payload["states"]["swide"] = wide_blob
            payload["loop_records"][0][1] = "swide"

        with pytest.raises(CertificateError):
            check_certificate(_mutated(witness_cert, widen))

    def test_dropped_alarm(self, alarm_cert):
        def drop(payload):
            del payload["alarms"][0]

        with pytest.raises(CertificateError, match="dropped"):
            check_certificate(_mutated(alarm_cert, drop))

    def test_truncated_record_list(self, witness_cert):
        def truncate(payload):
            del payload["stmt_records"][-1]

        with pytest.raises(CertificateError):
            check_certificate(_mutated(witness_cert, truncate))

    def test_extra_record_rejected(self, witness_cert):
        def duplicate(payload):
            payload["stmt_records"].append(payload["stmt_records"][-1])

        with pytest.raises(CertificateError):
            check_certificate(_mutated(witness_cert, duplicate))

    def test_corrupted_state_blob(self, witness_cert):
        def corrupt(payload):
            first = next(iter(payload["states"]))
            payload["states"][first] = "AAAA" + payload["states"][first]

        with pytest.raises(CertificateError, match="decode"):
            check_certificate(_mutated(witness_cert, corrupt))

    def test_unknown_state_id(self, witness_cert):
        def dangle(payload):
            payload["stmt_records"][0][1] = "s999999"

        with pytest.raises(CertificateError, match="unknown state"):
            check_certificate(_mutated(witness_cert, dangle))

    def test_digest_mismatch_detected_before_unpickling(self,
                                                        witness_cert):
        tampered = copy.deepcopy(witness_cert)
        tampered["payload"]["entry"] = "not_main"  # digest NOT recomputed
        with pytest.raises(CertificateError, match="digest mismatch"):
            check_certificate(tampered)

    def test_wrong_version(self, witness_cert):
        bad = copy.deepcopy(witness_cert)
        bad["version"] = 99
        with pytest.raises(CertificateError, match="version"):
            check_certificate(bad)

    def test_wrong_format(self, witness_cert):
        bad = copy.deepcopy(witness_cert)
        bad["format"] = "something-else"
        with pytest.raises(CertificateError, match="format"):
            check_certificate(bad)

    def test_wrong_source_rejected(self, witness_cert):
        # Certificate for program A presented with program B's records:
        # the traversal desynchronizes (or containment fails); it must
        # not validate.
        def reseat(payload):
            payload["sources"] = [["alarm.c", ALARM_SRC]]

        with pytest.raises(CertificateError):
            check_certificate(_mutated(witness_cert, reseat))


class TestCheckCertificateCLI:
    def _emit(self, tmp_path, src=WITNESS_SRC):
        c = tmp_path / "prog.c"
        c.write_text(src)
        cert = str(tmp_path / "prog.cert")
        rc = main(["analyze", str(c), "--input-range", "in1=-10:10",
                   "--max-clock", "1000", "--emit-certificate", cert])
        return rc, cert

    def test_emit_then_check_exit_0(self, tmp_path, capsys):
        rc, cert = self._emit(tmp_path)
        assert rc == 0
        assert "certified" in capsys.readouterr().out
        assert main(["check-certificate", cert]) == 0
        assert "certificate valid" in capsys.readouterr().out

    def test_check_json_payload(self, tmp_path, capsys):
        _, cert = self._emit(tmp_path)
        capsys.readouterr()
        assert main(["check-certificate", cert, "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["valid"] is True
        assert payload["loops_checked"] >= 1

    def test_alarm_certificate_exits_1(self, tmp_path, capsys):
        rc, cert = self._emit(tmp_path, src=ALARM_SRC)
        assert rc == 1
        capsys.readouterr()
        assert main(["check-certificate", cert]) == 1

    def test_missing_file_exit_3_phase_certify(self, tmp_path, capsys):
        rc = main(["check-certificate", str(tmp_path / "no.cert")])
        err = capsys.readouterr().err
        assert rc == 3
        assert "phase=certify" in err
        assert "Traceback" not in err

    def test_truncated_file_exit_3(self, tmp_path, capsys):
        _, cert = self._emit(tmp_path)
        data = open(cert, "rb").read()
        open(cert, "wb").write(data[:len(data) // 2])
        capsys.readouterr()
        rc = main(["check-certificate", cert])
        err = capsys.readouterr().err
        assert rc == 3
        assert "phase=certify" in err

    def test_flipped_byte_exit_3(self, tmp_path, capsys):
        _, cert = self._emit(tmp_path)
        data = bytearray(open(cert, "rb").read())
        # Flip one byte inside a state blob (keeps the JSON valid).
        idx = data.index(b'"states"') + 40
        data[idx] = (data[idx] + 1) % 128 or 65
        open(cert, "wb").write(bytes(data))
        capsys.readouterr()
        rc = main(["check-certificate", cert])
        err = capsys.readouterr().err
        assert rc == 3
        assert "phase=certify" in err

    def test_wrong_version_exit_3(self, tmp_path, capsys):
        _, cert = self._emit(tmp_path)
        doc = json.load(open(cert))
        doc["version"] = 99
        json.dump(doc, open(cert, "w"))
        capsys.readouterr()
        rc = main(["check-certificate", cert])
        err = capsys.readouterr().err
        assert rc == 3
        assert "phase=certify" in err

    def test_mutated_certificate_exit_3(self, tmp_path, capsys):
        _, cert = self._emit(tmp_path)
        doc = json.load(open(cert))
        rec = doc["payload"]["stmt_records"][1]
        rec[2] = rec[1]
        doc["digest"] = payload_digest(doc["payload"])
        json.dump(doc, open(cert, "w"))
        capsys.readouterr()
        rc = main(["check-certificate", cert])
        err = capsys.readouterr().err
        assert rc == 3
        assert "phase=certify" in err

    def test_certify_phase_in_stats(self, tmp_path, capsys):
        c = tmp_path / "prog.c"
        c.write_text(WITNESS_SRC)
        rc = main(["analyze", str(c), "--input-range", "in1=-10:10",
                   "--max-clock", "1000", "--certify",
                   "--profile-phases"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "certify" in out

    def test_certification_in_json(self, tmp_path, capsys):
        c = tmp_path / "prog.c"
        c.write_text(WITNESS_SRC)
        rc = main(["analyze", str(c), "--input-range", "in1=-10:10",
                   "--max-clock", "1000", "--certify", "--json",
                   "--stats"])
        payload = json.loads(capsys.readouterr().out)
        assert rc == 0
        assert payload["certification"]["loop_records"] >= 1
        assert "certify" in payload["phase_times_s"]


class TestDivergenceWitness:
    """ROADMAP satellite: full and incremental fixpoints on the
    clock-tracked saturating-counter witness are BOTH independently
    certified post-fixpoints, and the incremental verdict never claims
    alarms the full engine misses — so a journal-warmed serve hit that
    returns the (potentially tighter) incremental result is sound, and
    with ``--certify-serve`` is machine-checked per result."""

    @pytest.fixture(scope="class")
    def runs(self):
        out = {}
        for inc in (True, False):
            out[inc] = analyze(WITNESS_SRC, "witness.c",
                               config=_cfg(incremental=inc))
        return out

    def test_both_fixpoints_certify(self, runs):
        for inc, result in runs.items():
            cert = build_certificate(result, WITNESS_SRC, "witness.c")
            chk = check_certificate(cert)
            assert chk.exit_code in (0, 1), f"incremental={inc}"

    def test_incremental_alarms_subset_of_full(self, runs):
        inc_alarms = {(a.kind, a.loc.line) for a in runs[True].alarms}
        full_alarms = {(a.kind, a.loc.line) for a in runs[False].alarms}
        assert inc_alarms <= full_alarms

    def test_cross_engine_certificates_interchangeable(self, runs):
        # The plain checker normalizes the engine away: a certificate
        # emitted from the incremental run and one from the full run
        # certify the same claims under the same plain configuration.
        certs = {inc: build_certificate(r, WITNESS_SRC, "witness.c")
                 for inc, r in runs.items()}
        assert (certs[True]["payload"]["config_fingerprint"]
                == certs[False]["payload"]["config_fingerprint"])
        for cert in certs.values():
            assert check_certificate(cert).exit_code == 0
