"""Serving layer: fingerprints, stores, cross-run cache, daemon.

The load-bearing property throughout is the determinism contract of
ISSUE 6: a warm (cache-served) analysis is bit-identical — alarms,
invariant statistics, exit code — to a cold run of the same source and
configuration, including after a daemon restart reloads the caches from
disk, and degraded runs are never cached nor served in place of
full-precision results.
"""

import dataclasses
import json
import os
import socket
import threading
import time

import pytest

from repro.analysis import analyze
from repro.config import AnalyzerConfig
from repro.serve.cache import CrossRunCache, FrontendCache
from repro.serve.fingerprints import (compat_fingerprint, config_fingerprint,
                                      request_key, result_digest,
                                      result_payload, source_digest)
from repro.serve.jobs import Job, JobQueue, QueueFull
from repro.serve.protocol import (ProtocolError, recv_message, send_message)
from repro.serve.server import AnalysisServer, ServeConfig
from repro.serve.store import JournalStore, ResultStore
from repro.serve.workload import base_program, make_variant


@pytest.fixture(scope="module")
def family():
    """One pinned family program shared by the module (generation and
    the first cold analysis are the expensive parts)."""
    gp = base_program(kloc=0.12, seed=1234)
    return gp


def _digest_of(result):
    return result_digest(result_payload(result))


# ---------------------------------------------------------------------------
# Fingerprints
# ---------------------------------------------------------------------------


class TestFingerprints:
    def test_config_fingerprint_semantic_fields(self):
        cfg = AnalyzerConfig()
        fp = config_fingerprint(cfg)
        assert fp == config_fingerprint(AnalyzerConfig())
        # Precision knobs change the fingerprint...
        assert fp != config_fingerprint(
            dataclasses.replace(cfg, enable_octagons=False))
        assert fp != config_fingerprint(
            dataclasses.replace(cfg, max_widening_iterations=7))
        # ...performance/robustness knobs do not.
        assert fp == config_fingerprint(dataclasses.replace(cfg, jobs=4))
        assert fp == config_fingerprint(
            dataclasses.replace(cfg, incremental=False))
        assert fp == config_fingerprint(
            dataclasses.replace(cfg, wall_deadline_s=1.0,
                                closure_memo_size=1))

    def test_degraded_effective_config_fingerprints_differently(self):
        # Every degradation rung mutates precision fields, so the
        # effective config of a degraded run can never collide with the
        # requested full-precision entry in any cache keyed by
        # config_fingerprint.
        from repro.supervisor.degradation import DEGRADATION_RUNGS

        cfg = AnalyzerConfig()
        fp_full = config_fingerprint(cfg)
        ladder_cfg = dataclasses.replace(cfg)
        seen = set()
        for name, rung in DEGRADATION_RUNGS:
            rung(ladder_cfg)
            fp = config_fingerprint(ladder_cfg)
            assert fp != fp_full, f"rung {name} invisible to fingerprint"
            seen.add(fp)
        assert len(seen) == len(DEGRADATION_RUNGS)

    def test_request_key_separates_source_entry_config(self):
        cfg = AnalyzerConfig()
        d1 = source_digest([("a.c", "void main(){}")])
        d2 = source_digest([("a.c", "void main(){ }")])
        assert d1 != d2
        assert request_key(d1, "main", cfg) != request_key(d2, "main", cfg)
        assert request_key(d1, "main", cfg) != request_key(d1, "other", cfg)
        assert request_key(d1, "main", cfg) != request_key(
            d1, "main", dataclasses.replace(cfg, enable_octagons=False))

    def test_compat_fingerprint_stable_across_compilations(self, family):
        # Statement/cell ids come from process-global counters; the
        # compat fingerprint must cancel that out.
        from repro.frontend import compile_source
        from repro.iterator.state import AnalysisContext
        from repro.memory.cells import CellTable
        from repro.packing.boolean_packs import compute_bool_packs
        from repro.packing.ellipsoid_sites import find_filter_sites
        from repro.packing.octagon_packs import compute_octagon_packs

        cfg = family.analyzer_config()
        fps = []
        for _ in range(2):
            prog = compile_source(family.source, "fam.c", entry="main")
            table = CellTable.for_program(prog, cfg.expand_threshold)
            ctx = AnalysisContext(
                prog=prog, config=cfg, table=table,
                oct_packs=compute_octagon_packs(prog, table, cfg),
                bool_packs=compute_bool_packs(prog, table, cfg),
                filter_sites=find_filter_sites(prog, table))
            fps.append(compat_fingerprint(ctx))
        assert fps[0] == fps[1]

    def test_result_digest_ignores_timing_counters(self, family):
        cfg = family.analyzer_config()
        r = analyze(family.source, config=cfg)
        p1, p2 = result_payload(r), result_payload(r)
        p2["analysis_time_s"] = 999.0
        p2["stmts_executed"] = 0
        p2["cross_run_hits"] = 12345
        assert result_digest(p1) == result_digest(p2)
        p2["alarm_count"] = p2["alarm_count"] + 1
        assert result_digest(p1) != result_digest(p2)


# ---------------------------------------------------------------------------
# Stores
# ---------------------------------------------------------------------------


class TestStores:
    def test_result_store_roundtrip_and_disk(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "ab" * 32
        store.put(key, {"digest": "d", "result": {"alarm_count": 1}})
        assert store.get(key)["result"]["alarm_count"] == 1
        # A fresh store (daemon restart) reads the same entry from disk.
        store2 = ResultStore(str(tmp_path))
        got = store2.get(key)
        assert got["digest"] == "d"
        assert store2.stats()["disk_hits"] == 1

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "cd" * 32
        store.put(key, {"x": 1})
        path = os.path.join(str(tmp_path), "results", f"{key}.json")
        with open(path, "w") as f:
            f.write("{truncated")
        store2 = ResultStore(str(tmp_path))
        assert store2.get(key) is None
        assert not os.path.exists(path)  # dropped, not retried forever

    def test_unsafe_keys_never_touch_disk(self, tmp_path):
        store = ResultStore(str(tmp_path))
        store.put("../escape", {"x": 1})
        assert store.get("../escape") == {"x": 1}  # memory only
        assert not os.path.exists(os.path.join(str(tmp_path), "results",
                                               "../escape.json"))

    def test_disk_eviction_bound(self, tmp_path):
        store = JournalStore(str(tmp_path), max_memory=2, max_disk=3)
        for i in range(6):
            store.put(f"{i:064x}", b"x" * 10)
            time.sleep(0.01)  # mtime ordering
        assert store.entry_count() <= 3
        assert store.stats()["evictions"] >= 3
        # The newest entries survive.
        assert store.get(f"{5:064x}") == b"x" * 10


# ---------------------------------------------------------------------------
# Protocol
# ---------------------------------------------------------------------------


class TestProtocol:
    def test_roundtrip(self):
        a, b = socket.socketpair()
        try:
            send_message(a, {"op": "ping", "n": 1})
            reader = b.makefile("rb")
            assert recv_message(reader) == {"op": "ping", "n": 1}
            a.close()
            assert recv_message(reader) is None  # clean EOF
        finally:
            b.close()

    def test_bad_json_raises(self):
        a, b = socket.socketpair()
        try:
            a.sendall(b"{nope}\n")
            with pytest.raises(ProtocolError):
                recv_message(b.makefile("rb"))
        finally:
            a.close()
            b.close()


# ---------------------------------------------------------------------------
# Job queue
# ---------------------------------------------------------------------------


class TestJobQueue:
    def _job(self, q):
        return Job(q.new_job_id(), [("a.c", "void main(){}")], "main", {})

    def test_fifo_and_backpressure(self):
        q = JobQueue(max_queue=2)
        j1, j2 = self._job(q), self._job(q)
        q.submit(j1)
        q.submit(j2)
        with pytest.raises(QueueFull):
            q.submit(self._job(q))
        assert q.stats()["rejected"] == 1
        assert q.next_job() is j1
        assert q.next_job() is j2

    def test_close_unblocks_worker(self):
        q = JobQueue()
        got = []
        t = threading.Thread(target=lambda: got.append(q.next_job()))
        t.start()
        q.close()
        t.join(timeout=5)
        assert got == [None]


# ---------------------------------------------------------------------------
# Cross-run cache: differential bit-identity (satellite 3)
# ---------------------------------------------------------------------------


class TestCrossRunDifferential:
    def test_warm_bit_identical_across_edit_sweep(self, family):
        """20-seed edit sweep: every warm run (donor journal from the
        base program) must be bit-identical to a cold run of the same
        variant."""
        cfg = family.analyzer_config()
        harvest = CrossRunCache()
        base = analyze(family.source, config=cfg, cross_run=harvest)
        donor = harvest.harvest_bytes(base)
        assert donor is not None and harvest.total_pairs > 0

        hits_total = 0
        for seed in range(20):
            variant = make_variant(family.source, seed)
            cold = analyze(variant, config=cfg)
            warm_cache = CrossRunCache(donor_bytes=donor, harvest=False)
            warm = analyze(variant, config=cfg, cross_run=warm_cache)
            assert _digest_of(warm) == _digest_of(cold), \
                f"seed {seed}: warm result diverged from cold"
            assert warm.exit_code == cold.exit_code
            assert warm.widening_iterations == cold.widening_iterations
            hits_total += warm.cross_run_hits
        # The sweep as a whole must actually exercise donor splicing.
        assert hits_total > 0

    def test_identity_replay_splices_heavily(self, family):
        cfg = family.analyzer_config()
        harvest = CrossRunCache()
        base = analyze(family.source, config=cfg, cross_run=harvest)
        donor = harvest.harvest_bytes(base)
        warm_cache = CrossRunCache(donor_bytes=donor, harvest=False)
        warm = analyze(family.source, config=cfg, cross_run=warm_cache)
        assert warm.cross_run_seeded > 0
        assert warm.cross_run_hits > 0
        assert _digest_of(warm) == _digest_of(base)

    def test_corrupt_donor_journal_is_cold_start(self, family):
        cfg = family.analyzer_config()
        cache = CrossRunCache(donor_bytes=b"not a pickle", harvest=False)
        result = analyze(family.source, config=cfg, cross_run=cache)
        assert result.cross_run_hits == 0
        assert _digest_of(result) == _digest_of(analyze(family.source,
                                                        config=cfg))

    def test_degraded_run_never_harvested(self, family):
        # A run that trips its wall budget degrades mid-flight; its
        # journal mixes transfer semantics and must not be persisted.
        cfg = family.analyzer_config(wall_deadline_s=1e-9)
        cache = CrossRunCache()
        result = analyze(family.source, config=cfg, cross_run=cache)
        assert result.degraded
        assert cache.harvest_bytes(result) is None

    def test_full_precision_entry_never_serves_degraded_request(self,
                                                                family):
        # The degraded request's effective config fingerprints
        # differently, so its request key differs from full precision.
        cfg_full = family.analyzer_config()
        cfg_deg = family.analyzer_config(enable_octagons=False)
        d = source_digest([("fam.c", family.source)])
        assert request_key(d, "main", cfg_full) != \
            request_key(d, "main", cfg_deg)


# ---------------------------------------------------------------------------
# Frontend cache
# ---------------------------------------------------------------------------


class TestFrontendCache:
    def test_lru_and_stats(self):
        fc = FrontendCache(max_entries=2)
        fc.put("d1", "main", "prog1")
        fc.put("d2", "main", "prog2")
        assert fc.get("d1", "main") == "prog1"
        fc.put("d3", "main", "prog3")  # evicts d2 (d1 was touched)
        assert fc.get("d2", "main") is None
        assert fc.get("d1", "main") == "prog1"
        stats = fc.stats()
        assert stats["hits"] == 2 and stats["misses"] == 1


# ---------------------------------------------------------------------------
# Daemon end-to-end
# ---------------------------------------------------------------------------


@pytest.fixture()
def daemon(tmp_path):
    """A live daemon thread with a disk cache; yields a factory for
    connected clients."""
    from repro.serve.client import ServeClient

    sock = str(tmp_path / "serve.sock")
    cache = str(tmp_path / "cache")
    server = AnalysisServer(ServeConfig(socket_path=sock, cache_dir=cache,
                                        job_deadline_s=None))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    deadline = time.time() + 10
    while not os.path.exists(sock):
        assert time.time() < deadline, "daemon socket never appeared"
        time.sleep(0.02)

    made = []

    def connect():
        c = ServeClient(sock, timeout=120.0)
        made.append(c)
        return c

    yield {"connect": connect, "socket": sock, "cache": cache,
           "server": server, "thread": thread}
    for c in made:
        c.close()
    server.stop()
    thread.join(timeout=10)
    assert not thread.is_alive()


class TestDaemon:
    def _overrides(self, family):
        return {"input_ranges": {k: list(v)
                                 for k, v in family.input_ranges.items()},
                "max_clock": family.max_clock}

    def test_cold_warm_edit_sequence(self, daemon, family):
        c = daemon["connect"]()
        ov = self._overrides(family)
        srcs = [("fam.c", family.source)]
        cold = c.submit(srcs, config=ov)
        assert cold["ok"] and not cold["cached"]
        hit = c.submit(srcs, config=ov)
        assert hit["cached"] and hit["digest"] == cold["digest"]
        assert hit["result"] == cold["result"]

        variant = make_variant(family.source, 3)
        warm = c.submit([("fam.c", variant)], config=ov)
        ref = c.submit([("fam.c", variant)], config=ov, bypass_cache=True)
        assert not warm["cached"]
        assert warm["digest"] == ref["digest"]
        assert warm["result"]["cross_run_hits"] > 0

        stats = c.stats()["stats"]
        assert stats["result_cache"]["hits"] == 1
        assert stats["journal_store"]["harvests"] >= 1
        assert stats["queue"]["completed"] == 4

    def test_restart_reloads_disk_caches(self, daemon, family):
        c = daemon["connect"]()
        ov = self._overrides(family)
        srcs = [("fam.c", family.source)]
        cold = c.submit(srcs, config=ov)
        daemon["server"].stop()
        daemon["thread"].join(timeout=10)

        server2 = AnalysisServer(ServeConfig(socket_path=daemon["socket"],
                                             cache_dir=daemon["cache"],
                                             job_deadline_s=None))
        t2 = threading.Thread(target=server2.serve_forever, daemon=True)
        t2.start()
        time.sleep(0.2)
        try:
            c2 = daemon["connect"]()
            # Exact result survives the restart on disk.
            hit = c2.submit(srcs, config=ov)
            assert hit["cached"] and hit["digest"] == cold["digest"]
            # The fixpoint journal survives too: a variant run is warm.
            variant = make_variant(family.source, 11)
            warm = c2.submit([("fam.c", variant)], config=ov)
            ref = c2.submit([("fam.c", variant)], config=ov,
                            bypass_cache=True)
            assert warm["result"]["cross_run_hits"] > 0
            assert warm["digest"] == ref["digest"]
        finally:
            server2.stop()
            t2.join(timeout=10)

    def test_degraded_result_served_but_not_cached(self, daemon, family):
        c = daemon["connect"]()
        ov = dict(self._overrides(family), wall_deadline_s=1e-9)
        srcs = [("fam.c", family.source)]
        first = c.submit(srcs, config=ov)
        assert first["ok"] and first["result"]["degraded"]
        again = c.submit(srcs, config=ov)
        assert not again["cached"]  # degraded verdicts are recomputed

    def test_submit_validation_errors(self, daemon):
        c = daemon["connect"]()
        bad = c.request({"op": "submit"})
        assert not bad["ok"]
        bad2 = c.submit([("a.c", "void main(){}")],
                        config={"checkpoint_path": "/tmp/x"})
        assert not bad2["ok"] and "not settable" in bad2["error"]
        unknown = c.request({"op": "frobnicate"})
        assert not unknown["ok"]

    def test_async_submit_status_result(self, daemon, family):
        c = daemon["connect"]()
        ov = self._overrides(family)
        ticket = c.submit([("fam.c", family.source)], config=ov, wait=False)
        assert ticket["ok"] and "job_id" in ticket
        reply = c.request({"op": "result", "job_id": ticket["job_id"]})
        assert reply["ok"]
        status = c.request({"op": "status", "job_id": ticket["job_id"]})
        assert status["state"] == "done"
