"""Tests for the decision tree abstract domain."""

import pytest

from repro.domains.decision_tree import DecisionTree, Leaf, Node
from repro.numeric import FloatInterval, IntInterval

# Pack: booleans are cells 1, 2 (BDD order); numeric cells 10 (int), 11 (float).
B1, B2, X, F = 1, 2, 10, 11


def fresh():
    return DecisionTree.top([B1, B2], [X, F])


class TestBasics:
    def test_top(self):
        t = fresh()
        assert t.is_top and not t.is_bottom
        assert t.numeric_refinement() == {}

    def test_assign_bool_splits(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.of(1, 100)})
        assert not t.is_top
        # Joined over both outcomes: X in [0, 100].
        ref = t.numeric_refinement()
        assert ref[X] == IntInterval.of(0, 100)

    def test_guard_selects_branch(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.of(1, 100)})
        t_true = t.guard_bool(B1, True)
        assert t_true.numeric_refinement()[X] == IntInterval.const(0)
        t_false = t.guard_bool(B1, False)
        assert t_false.numeric_refinement()[X] == IntInterval.of(1, 100)

    def test_paper_example_division_guard(self):
        """B := (X == 0); if (!B) Y := 1/X — the !B branch knows X != 0."""
        t = fresh().assign_bool(
            B1,
            true_values={X: IntInterval.const(0)},        # B true: X == 0
            false_values={X: IntInterval.of(1, 1000)},    # B false: X in 1..1000
        )
        not_b = t.guard_bool(B1, False)
        x_iv = not_b.numeric_refinement()[X]
        assert not x_iv.contains_zero()

    def test_impossible_outcome_is_bottom_branch(self):
        t = fresh().assign_bool(B1, None, {X: IntInterval.const(5)})
        assert t.guard_bool(B1, True).is_bottom
        assert not t.guard_bool(B1, False).is_bottom

    def test_bool_value_definite(self):
        t = fresh().assign_bool(B1, None, {})
        assert t.bool_value(B1) is False
        t2 = fresh().assign_bool(B1, {}, None)
        assert t2.bool_value(B1) is True
        assert fresh().bool_value(B1) is None

    def test_guard_unknown_bool_is_noop(self):
        t = fresh()
        assert t.guard_bool(999, True) is t

    def test_two_booleans(self):
        t = fresh()
        t = t.assign_bool(B1, {X: IntInterval.of(0, 10)}, {X: IntInterval.of(20, 30)})
        t = t.assign_bool(B2, {F: FloatInterval.of(0.0, 1.0)},
                          {F: FloatInterval.of(5.0, 6.0)})
        both = t.guard_bool(B1, True).guard_bool(B2, False)
        ref = both.numeric_refinement()
        assert ref[X] == IntInterval.of(0, 10)
        assert ref[F] == FloatInterval.of(5.0, 6.0)


class TestAssignNumeric:
    def test_assign_numeric_updates_all_leaves(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.of(1, 5)})
        t = t.assign_numeric(X, IntInterval.of(7, 8))
        for value in (True, False):
            ref = t.guard_bool(B1, value).numeric_refinement()
            assert ref[X] == IntInterval.of(7, 8)

    def test_assign_top_removes_entry(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.of(1, 5)})
        t = t.assign_numeric(X, IntInterval.top())
        assert X not in t.numeric_refinement()

    def test_assign_untracked_numeric_is_noop(self):
        t = fresh()
        assert t.assign_numeric(999, IntInterval.const(0)) is t


class TestForget:
    def test_forget_bool_joins_branches(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.of(10, 20)})
        f = t.forget_bool(B1)
        # Both valuations now carry the join.
        for value in (True, False):
            ref = f.guard_bool(B1, value).numeric_refinement()
            assert ref.get(X) == IntInterval.of(0, 20)

    def test_reassign_bool_drops_stale_facts(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.of(10, 20)})
        t = t.assign_bool(B1, {X: IntInterval.of(100, 100)}, None)
        on_true = t.guard_bool(B1, True).numeric_refinement()
        # Old facts joined: [0,20]; met with new fact [100,100] -> must be
        # the meet of join(0..20) and 100 => empty would be wrong; the
        # forget-join gives [0,20] which meets [100,100] to empty => branch
        # unreachable is NOT sound here. The implementation instead meets
        # fresh facts with the *joined* old facts, so we accept either the
        # precise [100,100]-with-join-emptiness avoided or bottom branch.
        assert on_true == {} or X in on_true


class TestLattice:
    def test_join_of_branches_is_upper_bound(self):
        a = fresh().assign_bool(B1, {X: IntInterval.const(0)},
                                {X: IntInterval.const(1)})
        b = fresh().assign_bool(B1, {X: IntInterval.const(10)},
                                {X: IntInterval.const(11)})
        j = a.join(b)
        assert j.includes(a) and j.includes(b)

    def test_join_with_top_is_top(self):
        a = fresh().assign_bool(B1, {X: IntInterval.const(0)}, {})
        assert a.join(fresh()).is_top

    def test_meet_refines(self):
        a = fresh().assign_bool(B1, {X: IntInterval.of(0, 10)}, {})
        b = fresh().assign_bool(B1, {X: IntInterval.of(5, 20)}, {})
        m = a.meet(b)
        on_true = m.guard_bool(B1, True).numeric_refinement()
        assert on_true[X] == IntInterval.of(5, 10)

    def test_widen_unstable_drops_to_top(self):
        a = fresh().assign_bool(B1, {X: IntInterval.of(0, 10)}, {})
        b = fresh().assign_bool(B1, {X: IntInterval.of(0, 20)}, {})
        w = a.widen(b)
        on_true = w.guard_bool(B1, True).numeric_refinement()
        assert on_true.get(X, IntInterval.top()).hi is None

    def test_widen_with_thresholds(self):
        import math

        a = fresh().assign_bool(B1, {X: IntInterval.of(0, 10)}, {})
        b = fresh().assign_bool(B1, {X: IntInterval.of(0, 20)}, {})
        w = a.widen(b, thresholds=[-math.inf, 100.0, math.inf])
        on_true = w.guard_bool(B1, True).numeric_refinement()
        assert on_true[X].hi == 100

    def test_includes_reflexive(self):
        a = fresh().assign_bool(B1, {X: IntInterval.const(0)}, {})
        assert a.includes(a)

    def test_equal(self):
        a = fresh().assign_bool(B1, {X: IntInterval.const(0)}, {})
        b = fresh().assign_bool(B1, {X: IntInterval.const(0)}, {})
        assert a.equal(b)
        assert not a.equal(fresh())


class TestSharing:
    def test_identical_branches_collapse(self):
        t = fresh().assign_bool(B1, {X: IntInterval.const(5)},
                                {X: IntInterval.const(5)})
        # Same facts on both sides: node collapses to a leaf.
        assert isinstance(t.root, Leaf)

    def test_leaf_count(self):
        t = fresh()
        assert t.leaf_count() == 1
        t = t.assign_bool(B1, {X: IntInterval.const(0)}, {X: IntInterval.const(1)})
        assert t.leaf_count() == 2
