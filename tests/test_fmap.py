"""Tests for the persistent functional map with sharing."""

import pytest
from hypothesis import given, strategies as st

from repro.memory.fmap import PMap

keys = st.integers(min_value=0, max_value=1000)
kv_lists = st.lists(st.tuples(keys, st.integers()), max_size=60)


class TestBasics:
    def test_empty(self):
        m = PMap.empty()
        assert len(m) == 0 and not m
        assert m.get(1) is None

    def test_set_get(self):
        m = PMap.empty().set(1, "a").set(2, "b")
        assert m[1] == "a" and m[2] == "b"
        assert len(m) == 2

    def test_overwrite(self):
        m = PMap.empty().set(1, "a").set(1, "b")
        assert m[1] == "b" and len(m) == 1

    def test_persistence(self):
        m1 = PMap.empty().set(1, "a")
        m2 = m1.set(1, "b")
        assert m1[1] == "a" and m2[1] == "b"

    def test_missing_key_raises(self):
        with pytest.raises(KeyError):
            PMap.empty()[42]

    def test_remove(self):
        m = PMap.from_items([(i, i) for i in range(10)])
        m2 = m.remove(5)
        assert 5 not in m2 and 5 in m
        assert len(m2) == 9

    def test_remove_absent_is_noop(self):
        m = PMap.empty().set(1, "a")
        assert m.remove(99) is m

    def test_set_same_value_is_noop(self):
        v = object()
        m = PMap.empty().set(1, v)
        assert m.set(1, v) is m

    @given(kv_lists)
    def test_matches_dict_semantics(self, items):
        m = PMap.from_items(items)
        d = dict(items)
        assert len(m) == len(d)
        assert dict(m.items()) == d

    @given(kv_lists)
    def test_items_sorted_by_key(self, items):
        m = PMap.from_items(items)
        ks = [k for k, _ in m.items()]
        assert ks == sorted(ks)

    @given(kv_lists, keys)
    def test_remove_matches_dict(self, items, victim):
        m = PMap.from_items(items).remove(victim)
        d = dict(items)
        d.pop(victim, None)
        assert dict(m.items()) == d


class TestBalance:
    def _depth(self, m):
        def go(node):
            if node is None:
                return 0
            return 1 + max(go(node.left), go(node.right))
        return go(m._root)

    def test_sequential_inserts_balanced(self):
        m = PMap.from_items([(i, i) for i in range(1024)])
        assert self._depth(m) <= 25  # well below linear

    def test_reverse_inserts_balanced(self):
        m = PMap.from_items([(i, i) for i in reversed(range(1024))])
        assert self._depth(m) <= 25


class TestMerge:
    def test_identical_maps_share(self):
        m = PMap.from_items([(i, i) for i in range(100)])
        out = m.merge(m, lambda k, a, b: a + b)
        assert out is m  # shortcut: never visits any node

    def test_join_semantics(self):
        a = PMap.from_items([(1, 10), (2, 20)])
        b = PMap.from_items([(2, 22), (3, 33)])
        out = a.merge(b, lambda k, x, y: max(x, y),
                      missing_self=lambda k, y: y,
                      missing_other=lambda k, x: x)
        assert dict(out.items()) == {1: 10, 2: 22, 3: 33}

    def test_missing_default_drops(self):
        a = PMap.from_items([(1, 10), (2, 20)])
        b = PMap.from_items([(2, 22), (3, 33)])
        out = a.merge(b, lambda k, x, y: x + y)
        assert dict(out.items()) == {2: 42}

    def test_drop_sentinel(self):
        a = PMap.from_items([(1, 1), (2, 2)])
        b = PMap.from_items([(1, 1), (2, 3)])
        out = a.merge(b, lambda k, x, y: PMap.DROP if x != y else x,
                      missing_self=lambda k, y: y,
                      missing_other=lambda k, x: x)
        assert dict(out.items()) == {1: 1}

    def test_mostly_shared_maps_merge_cheaply(self):
        """Merging maps differing in one key must not call combine on all."""
        base = PMap.from_items([(i, i) for i in range(1000)])
        modified = base.set(500, -1)
        calls = []

        def combine(k, a, b):
            calls.append(k)
            return max(a, b)

        out = base.merge(modified, combine,
                         missing_self=lambda k, y: y,
                         missing_other=lambda k, x: x)
        assert out[500] == 500  # max(500, -1)
        # Only keys on the path that lost sharing are visited: far fewer
        # than the map size.
        assert len(calls) < 50

    @given(kv_lists, kv_lists)
    def test_merge_union_matches_dict(self, items_a, items_b):
        """Union with an idempotent combine (max), as the lattice ops are."""
        a = PMap.from_items(items_a)
        b = PMap.from_items(items_b)
        out = a.merge(b, lambda k, x, y: max(x, y),
                      missing_self=lambda k, y: y,
                      missing_other=lambda k, x: x)
        db = dict(b.items())
        expected = dict(db)
        for k, v in a.items():
            expected[k] = max(v, db[k]) if k in db else v
        assert dict(out.items()) == expected


class TestDiffAndEqual:
    def test_diff_keys_of_identical_is_empty(self):
        m = PMap.from_items([(i, i) for i in range(50)])
        assert list(m.diff_keys(m)) == []

    def test_diff_keys_finds_changed(self):
        m = PMap.from_items([(i, i) for i in range(50)])
        m2 = m.set(25, -1)
        diff = set(m.diff_keys(m2))
        assert 25 in diff
        assert len(diff) < 20

    def test_diff_keys_finds_added(self):
        m = PMap.from_items([(1, 1)])
        m2 = m.set(2, 2)
        assert 2 in set(m.diff_keys(m2))

    def test_equal_identical(self):
        m = PMap.from_items([(i, i) for i in range(10)])
        assert m.equal(m, lambda a, b: a == b)

    def test_equal_structurally(self):
        a = PMap.from_items([(1, [1]), (2, [2])])
        b = PMap.from_items([(2, [2]), (1, [1])])
        assert a.equal(b, lambda x, y: x == y)

    def test_not_equal_different_value(self):
        a = PMap.from_items([(1, 1)])
        b = PMap.from_items([(1, 2)])
        assert not a.equal(b, lambda x, y: x == y)

    def test_not_equal_different_size(self):
        a = PMap.from_items([(1, 1)])
        b = PMap.from_items([(1, 1), (2, 2)])
        assert not a.equal(b, lambda x, y: x == y)


class TestMapValues:
    def test_map_values(self):
        m = PMap.from_items([(1, 1), (2, 2)])
        out = m.map_values(lambda k, v: v * 10)
        assert dict(out.items()) == {1: 10, 2: 20}

    def test_map_values_drop(self):
        m = PMap.from_items([(1, 1), (2, 2), (3, 3)])
        out = m.map_values(lambda k, v: PMap.DROP if v == 2 else v)
        assert dict(out.items()) == {1: 1, 3: 3}

    def test_map_values_identity_shares(self):
        m = PMap.from_items([(1, 1), (2, 2)])
        assert m.map_values(lambda k, v: v) is m
