"""Tests for the soundness fuzzing campaign engine (repro.fuzz).

Covers determinism of the seed chain, the mutators, subprocess
isolation with outcome classification, the fault-injection hook, crash
triage, delta-debugging reduction, corpus replay with bit-identical
digests, and the campaign wall budget.
"""

import json
import os

import pytest

from repro.concrete.interpreter import RandomInputs, derive_seed
from repro.fuzz import (
    CampaignConfig, CaseSpec, InProcessRunner, SubprocessRunner,
    build_case, case_size, crash_signature, generate_case_specs, load_case,
    reduce_case, replay_case, run_campaign, save_case, triage_failures,
    verdict_digest,
)
from repro.fuzz.mutators import MUTATION_KINDS, apply_mutations
from repro.fuzz.worker import execute_spec


def spec_with(**kw):
    base = dict(case_id="t-0000", campaign_seed=99, index=0,
                target_kloc=0.08, family_seed=12345, streams=2,
                max_ticks=24)
    base.update(kw)
    return CaseSpec(**base)


class TestSeedChain:
    def test_derive_seed_stable_and_distinct(self):
        a = derive_seed(1, "case", 0)
        assert a == derive_seed(1, "case", 0)
        assert a != derive_seed(1, "case", 1)
        assert a != derive_seed(2, "case", 0)
        assert 0 <= a < 2 ** 63

    def test_random_inputs_replay(self):
        ranges = {"v": (0.0, 100.0)}
        a = RandomInputs(ranges, 7)
        b = RandomInputs(ranges, 7)
        assert [a.rng.random() for _ in range(5)] == \
               [b.rng.random() for _ in range(5)]

    def test_fork_independent_streams(self):
        base = RandomInputs({}, 7)
        assert base.fork(0).seed != base.fork(1).seed
        assert base.fork(0).seed == RandomInputs({}, 7).fork(0).seed

    def test_case_seed_chain(self):
        spec = spec_with()
        assert spec.case_seed == derive_seed(99, "case", 0)
        assert spec.stream_seed(2) == derive_seed(spec.case_seed,
                                                  "stream", 2)


class TestCaseSpec:
    def test_json_round_trip(self):
        spec = spec_with(mutations=[{"kind": "deep-nesting", "depth": 4}],
                         block_types=["Accumulator", "Saturator"],
                         inject_crash="Saturator")
        again = CaseSpec.from_json(spec.to_json())
        assert again == spec

    def test_from_json_rejects_missing_fields(self):
        with pytest.raises(ValueError):
            CaseSpec.from_json({"case_id": "x"})

    def test_build_is_deterministic(self):
        spec = spec_with(mutations=[{"kind": "boundary-constants"}])
        a, b = build_case(spec), build_case(spec)
        assert a.source == b.source
        assert a.input_ranges == b.input_ranges

    def test_save_load_round_trip(self, tmp_path):
        spec = spec_with()
        path = str(tmp_path / "case.json")
        save_case(spec, path)
        assert load_case(path) == spec

    def test_case_size_axes(self):
        spec = spec_with()
        smaller = spec_with(target_kloc=0.04)
        assert case_size(smaller) < case_size(spec)
        bigger = spec_with(mutations=[{"kind": "deep-nesting"}])
        assert case_size(bigger) > case_size(spec)


class TestMutators:
    def test_all_kinds_apply(self):
        spec = spec_with()
        built = build_case(spec)
        for kind in MUTATION_KINDS:
            src, ranges, applied = apply_mutations(
                built.source, dict(built.input_ranges),
                [{"kind": kind}], spec.case_seed)
            assert applied == [kind]

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            apply_mutations("int main(void) { return 0; }", {},
                            [{"kind": "no-such-mutation"}], 1)

    def test_mutations_deterministic(self):
        spec = spec_with(mutations=[{"kind": "boundary-constants",
                                     "count": 3},
                                    {"kind": "adversarial-ranges"}])
        assert build_case(spec).source == build_case(spec).source

    def test_deep_nesting_still_compiles(self):
        from repro.frontend import compile_source

        spec = spec_with(mutations=[{"kind": "deep-nesting", "depth": 12}])
        built = build_case(spec)
        assert compile_source(built.source, "deep.c") is not None

    def test_degenerate_filter_adds_input(self):
        spec = spec_with(mutations=[{"kind": "degenerate-filter",
                                     "variant": 1}])
        built = build_case(spec)
        assert any(name.startswith("fz1") for name in built.input_ranges)


class TestWorkerAndRunner:
    def test_execute_spec_sound(self):
        payload = execute_spec(spec_with())
        assert payload["outcome"] == "sound"
        assert payload["oracle"]["sound"] is True
        assert payload["oracle"]["values_checked"] > 0

    def test_payload_deterministic(self):
        assert execute_spec(spec_with()) == execute_spec(spec_with())

    def test_inject_crash_hook(self):
        spec = spec_with()
        present = sorted(build_case(spec).block_counts)
        crash_spec = spec_with(inject_crash=present[0])
        with pytest.raises(RuntimeError, match="injected crash"):
            execute_spec(crash_spec)

    def test_in_process_runner_classifies_crash(self):
        spec = spec_with()
        present = sorted(build_case(spec).block_counts)
        out = InProcessRunner().run_spec(spec_with(inject_crash=present[0]))
        assert out.outcome == "crash"
        assert out.signature.startswith("RuntimeError|repro.fuzz.worker:")

    def test_subprocess_runner_sound(self):
        out = SubprocessRunner(timeout_s=300.0).run_spec(spec_with())
        assert out.outcome == "sound"
        assert out.returncode == 0

    def test_subprocess_crash_signature_matches_in_process(self):
        spec = spec_with()
        present = sorted(build_case(spec).block_counts)
        crash_spec = spec_with(inject_crash=present[0])
        sub = SubprocessRunner(timeout_s=300.0).run_spec(crash_spec)
        inp = InProcessRunner().run_spec(crash_spec)
        assert sub.outcome == inp.outcome == "crash"
        assert sub.signature == inp.signature

    def test_rejected_outcome(self):
        # An unknown analyzer override is rejected before analysis; a
        # ReproError-style rejection classifies as "rejected" only for
        # frontend errors, so use a spec that fails to build cleanly.
        spec = spec_with(mutations=[{"kind": "deep-nesting",
                                     "depth": 40}])
        out = InProcessRunner().run_spec(spec)
        assert out.outcome in ("sound", "rejected")


class TestTriage:
    TRACEBACK = '''Traceback (most recent call last):
  File "/x/src/repro/fuzz/worker.py", line 60, in run_built_case
    raise RuntimeError("injected crash: block type Saturator present")
RuntimeError: injected crash: block type Saturator present
'''

    def test_signature_shape(self):
        sig = crash_signature(self.TRACEBACK)
        assert sig == ("RuntimeError|repro.fuzz.worker:run_built_case|"
                       "injected crash: block type Saturator present")

    def test_signature_normalizes_digits(self):
        a = self.TRACEBACK.replace("Saturator", "B12")
        b = self.TRACEBACK.replace("Saturator", "B99")
        assert crash_signature(a) == crash_signature(b)

    def test_signature_without_frames(self):
        sig = crash_signature("MemoryError")
        assert sig.startswith("MemoryError|?|")

    def test_triage_groups_by_signature(self):
        class R:
            def __init__(self, cid, outcome, sig):
                self.outcome = outcome
                self.signature = sig
                self.spec = spec_with(case_id=cid)

        groups = triage_failures([
            R("a", "crash", "sigA"), R("b", "crash", "sigA"),
            R("c", "unsound", "sigB"), R("d", "sound", None),
        ])
        assert groups == {"sigA": ["a", "b"], "sigB": ["c"]}


class TestReduction:
    def test_reducer_shrinks_injected_crash(self):
        """The ISSUE acceptance check: a deliberately injected failing
        case reduces to a strictly smaller spec with the same crash
        signature."""
        spec = spec_with(
            target_kloc=0.15,
            mutations=[{"kind": "boundary-constants"},
                       {"kind": "deep-nesting", "depth": 8}])
        present = sorted(build_case(spec).block_counts)
        failing = CaseSpec.from_json({**spec.to_json(),
                                      "inject_crash": present[0]})
        result = reduce_case(failing, max_attempts=80)
        assert result.target[0] == "crash"
        assert result.shrank, (result.original_size, result.reduced_size)
        assert result.reduced_size < result.original_size
        # The reduced spec still reproduces the same failure.
        out = InProcessRunner().run_spec(result.reduced)
        assert (out.outcome, out.signature) == result.target
        # The injected block type survived reduction (it is the trigger).
        assert present[0] in build_case(result.reduced).block_counts

    def test_reduction_of_sound_case_is_lossless(self):
        spec = spec_with()
        result = reduce_case(spec, max_attempts=12)
        assert result.target[0] == "sound"
        # Whatever it shrank to still verdicts sound.
        assert InProcessRunner().run_spec(result.reduced).outcome == "sound"


class TestCampaign:
    def test_spec_generation_deterministic(self):
        cfg = CampaignConfig(campaign_seed=5, cases=6)
        a = [s.to_json() for s in generate_case_specs(cfg)]
        b = [s.to_json() for s in generate_case_specs(cfg)]
        assert a == b
        assert len({s["case_id"] for s in a}) == 6

    def test_clean_campaign_in_process(self):
        cfg = CampaignConfig(campaign_seed=3, cases=2, isolation=False,
                             reduce_failures=False)
        report = run_campaign(cfg)
        assert report.ok
        assert len(report.results) == 2
        payload = report.to_json()
        assert payload["outcome_counts"].get("sound", 0) \
            + payload["outcome_counts"].get("rejected", 0) == 2

    def test_campaign_digests_replay_bit_identical(self, tmp_path):
        cfg = CampaignConfig(campaign_seed=3, cases=2, isolation=False,
                             reduce_failures=False)
        report = run_campaign(cfg)
        for res in report.results:
            path = str(tmp_path / f"{res.spec.case_id}.json")
            save_case(res.spec, path)
            again = replay_case(path, isolation=False)
            assert again.digest == res.digest
            assert again.outcome == res.outcome

    def test_wall_budget_stops_campaign(self):
        cfg = CampaignConfig(campaign_seed=3, cases=50, isolation=False,
                             max_wall_s=0.0, reduce_failures=False)
        report = run_campaign(cfg)
        assert report.stopped_reason == "wall-budget"
        assert len(report.results) < 50

    def test_failing_campaign_persists_and_reduces(self, tmp_path):
        corpus = str(tmp_path / "corpus")
        probe = generate_case_specs(
            CampaignConfig(campaign_seed=11, cases=1))[0]
        block = sorted(build_case(probe).block_counts)[0]
        cfg = CampaignConfig(campaign_seed=11, cases=1, isolation=False,
                             corpus_dir=corpus, inject_crash=block,
                             max_reduce_attempts=40)
        report = run_campaign(cfg)
        assert not report.ok
        assert report.outcome_counts.get("crash") == 1
        assert len(report.triage) == 1
        assert report.reductions and report.reductions[0].shrank
        files = sorted(os.listdir(corpus))
        assert any(f.endswith(".reduced.json") for f in files)
        # The persisted reduced case replays to the same signature.
        reduced = [f for f in files if f.endswith(".reduced.json")][0]
        res = replay_case(os.path.join(corpus, reduced), isolation=False)
        assert res.outcome == "crash"
        assert res.signature == report.results[0].signature

    def test_verdict_digest_ignores_timing_fields(self):
        spec = spec_with()
        d1 = verdict_digest(spec, "sound", None, {"outcome": "sound"})
        d2 = verdict_digest(spec, "sound", None, {"outcome": "sound"})
        assert d1 == d2
        assert d1 != verdict_digest(spec, "crash", "sig", None)

    def test_load_case_errors_name_path(self, tmp_path):
        from repro.errors import ReproError

        missing = str(tmp_path / "missing.json")
        with pytest.raises(ReproError, match="missing.json"):
            load_case(missing)
        bad = tmp_path / "bad.json"
        bad.write_text("{broken")
        with pytest.raises(ReproError, match="bad.json"):
            load_case(str(bad))
        not_spec = tmp_path / "notspec.json"
        not_spec.write_text('{"hello": 1}')
        with pytest.raises(ReproError, match="notspec.json"):
            load_case(str(not_spec))
