"""Unit tests for alarm collection and the Flow lattice."""

import pytest

from repro.frontend.ast_nodes import Location
from repro.iterator.alarms import Alarm, AlarmCollector, AlarmKind


LOC = Location("x.c", 10, 2)


class TestAlarmCollector:
    def test_inert_outside_checking_mode(self):
        c = AlarmCollector()
        c.report(AlarmKind.DIV_BY_ZERO, 1, LOC, "boom")
        assert c.count() == 0

    def test_reports_in_checking_mode(self):
        c = AlarmCollector()
        c.checking = True
        c.report(AlarmKind.DIV_BY_ZERO, 1, LOC, "boom")
        assert c.count() == 1

    def test_dedup_by_sid_and_kind(self):
        c = AlarmCollector()
        c.checking = True
        for _ in range(5):
            c.report(AlarmKind.DIV_BY_ZERO, 1, LOC, "boom")
        c.report(AlarmKind.INT_OVERFLOW, 1, LOC, "other kind, same sid")
        c.report(AlarmKind.DIV_BY_ZERO, 2, LOC, "same kind, other sid")
        assert c.count() == 3

    def test_alarms_sorted_by_location(self):
        c = AlarmCollector()
        c.checking = True
        c.report(AlarmKind.DIV_BY_ZERO, 1, Location("x.c", 20, 1), "late")
        c.report(AlarmKind.DIV_BY_ZERO, 2, Location("x.c", 5, 1), "early")
        assert [a.loc.line for a in c.alarms] == [5, 20]

    def test_by_kind_counts(self):
        c = AlarmCollector()
        c.checking = True
        c.report(AlarmKind.DIV_BY_ZERO, 1, LOC, "a")
        c.report(AlarmKind.DIV_BY_ZERO, 2, LOC, "b")
        c.report(AlarmKind.INT_OVERFLOW, 3, LOC, "c")
        assert c.by_kind() == {AlarmKind.DIV_BY_ZERO: 2,
                               AlarmKind.INT_OVERFLOW: 1}

    def test_alarm_str(self):
        a = Alarm(AlarmKind.ARRAY_OOB, 1, LOC, "index 9 outside [0, 7]")
        assert "x.c:10:2" in str(a)
        assert "array-index-out-of-bounds" in str(a)

    def test_all_kinds_enumerated(self):
        assert len(AlarmKind.ALL) == 9
        assert AlarmKind.ASSERT_FAIL in AlarmKind.ALL
