"""Tests for the configuration, thresholds, and top-level API surfaces."""

import math

import pytest

from repro import (
    AnalysisResult, AnalyzerConfig, analyze, analyze_baseline,
    baseline_config, refinement_stages,
)
from repro.domains.thresholds import ThresholdSet, default_thresholds


class TestThresholdSet:
    def test_contains_infinities_and_zero(self):
        ts = ThresholdSet([])
        assert math.inf in ts.values and -math.inf in ts.values
        assert 0.0 in ts.values

    def test_sorted(self):
        ts = ThresholdSet([5.0, -3.0, 100.0])
        assert ts.values == sorted(ts.values)

    def test_geometric_ladder(self):
        ts = ThresholdSet.geometric(alpha=1.0, lam=2.0, count=5)
        for v in (1.0, 2.0, 4.0, 8.0, 16.0):
            assert v in ts

    def test_geometric_has_negatives(self):
        ts = ThresholdSet.geometric(alpha=1.0, lam=2.0, count=3)
        assert -4.0 in ts

    def test_next_above(self):
        ts = ThresholdSet([10.0, 100.0])
        assert ts.next_above(5.0) == 10.0
        assert ts.next_above(50.0) == 100.0
        assert ts.next_above(1000.0) == math.inf

    def test_next_below(self):
        ts = ThresholdSet([-100.0, -10.0])
        assert ts.next_below(-5.0) == -10.0
        assert ts.next_below(-1000.0) == -math.inf

    def test_with_extra(self):
        ts = default_thresholds().with_extra([123.0])
        assert 123.0 in ts

    def test_default_covers_type_bounds(self):
        ts = default_thresholds()
        assert 2.0**31 in ts
        assert ts.next_above(3.3e38) == math.inf or ts.next_above(3.3e38) > 3.3e38


class TestAnalyzerConfig:
    def test_defaults_enable_everything(self):
        cfg = AnalyzerConfig()
        assert cfg.enable_octagons and cfg.enable_ellipsoids
        assert cfg.enable_decision_trees and cfg.enable_clock

    def test_baseline_disables_refinements(self):
        cfg = baseline_config()
        assert not cfg.enable_octagons
        assert not cfg.enable_ellipsoids
        assert not cfg.enable_decision_trees
        assert cfg.enable_clock  # the clocked domain predates the paper ([5])

    def test_with_overrides_returns_new(self):
        cfg = AnalyzerConfig()
        cfg2 = cfg.with_overrides(max_clock=10)
        assert cfg.max_clock != 10 and cfg2.max_clock == 10

    def test_baseline_config_kwargs(self):
        cfg = baseline_config(max_clock=99)
        assert cfg.max_clock == 99


class TestRefinementStages:
    def test_stage_sequence(self):
        stages = list(refinement_stages(AnalyzerConfig()))
        names = [n for n, _ in stages]
        assert names[0] == "intervals"
        assert "full" in names[-1]
        assert len(stages) == 7

    def test_last_stage_is_fully_enabled(self):
        stages = list(refinement_stages(AnalyzerConfig()))
        _, last = stages[-1]
        assert last.enable_octagons and last.enable_ellipsoids
        assert last.enable_decision_trees


SRC = """
volatile int v; int x;
int main(void) { x = v + 1; return 0; }
"""


class TestAnalyzeAPI:
    def test_analyze_returns_result(self):
        r = analyze(SRC, config=AnalyzerConfig(input_ranges={"v": (0, 10)}))
        assert isinstance(r, AnalysisResult)
        assert r.analysis_time > 0

    def test_analyze_multiple_units(self):
        units = [
            ("a.c", "extern int shared; void main(void) { shared = 1; }"),
            ("b.c", "int shared;"),
        ]
        r = analyze(units)
        assert r.alarm_count == 0

    def test_analyze_baseline_helper(self):
        r = analyze_baseline(SRC, input_ranges={"v": (0, 10)})
        assert r.alarm_count == 0

    def test_alarms_by_kind(self):
        src = "volatile int v; int x; int main(void) { x = 1/v; return 0; }"
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 3)}))
        by_kind = r.alarms_by_kind()
        assert by_kind.get("division-by-zero") == 1

    def test_custom_entry_point(self):
        src = "int x; void tick(void) { x = x + 1; }"
        r = analyze(src, entry="tick",
                    config=AnalyzerConfig(enable_clock=False))
        # x starts at 0; one increment cannot overflow.
        assert r.alarm_count == 0

    def test_invariant_stats_empty_without_collection(self):
        r = analyze(SRC, config=AnalyzerConfig(input_ranges={"v": (0, 10)}))
        stats = r.invariant_stats()
        assert stats.total() == 0  # no loops collected

    def test_invariant_stats_with_loop(self):
        src = """
        volatile int v; int c;
        int main(void) {
            while (1) {
                if (v) { c = c + 1; }
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        cfg = AnalyzerConfig(input_ranges={"v": (0, 1)},
                             collect_invariants=True)
        r = analyze(src, config=cfg)
        stats = r.invariant_stats()
        assert stats.clock_assertions >= 1
        assert "c in" in r.dump_invariant_text() or "c " in r.dump_invariant_text()

    def test_trace_visit_counts(self):
        src = """
        int i; int x;
        int main(void) {
            x = 0;
            for (i = 0; i < 5; i++) { x = x + 1; }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(trace=True))
        assert r.visit_counts, "tracing must record statement visits"
        # The loop body is visited more often than the prelude assignment.
        assert max(r.visit_counts.values()) > min(r.visit_counts.values())

    def test_trace_off_records_nothing(self):
        src = "int x; int main(void) { x = 1; return 0; }"
        r = analyze(src)
        assert r.visit_counts == {}

    def test_widening_iterations_counted(self):
        src = """
        int i;
        int main(void) {
            i = 0;
            while (i < 100) { i = i + 1; }
            return 0;
        }
        """
        r = analyze(src)
        assert r.widening_iterations > 0
