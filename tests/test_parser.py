"""Tests for the recursive-descent parser."""

import pytest

from repro.errors import ParseError, UnsupportedConstructError
from repro.frontend import parse
from repro.frontend import ast_nodes as A


def parse_expr(text):
    unit = parse(f"int x; void f(void) {{ x = {text}; }}")
    fn = [d for d in unit.decls if isinstance(d, A.FuncDef)][0]
    stmt = fn.body.items[0]
    assert isinstance(stmt, A.ExprStmt)
    assert isinstance(stmt.expr, A.Assign)
    return stmt.expr.value


def parse_stmts(body):
    unit = parse(f"void f(void) {{ {body} }}")
    fn = [d for d in unit.decls if isinstance(d, A.FuncDef)][0]
    return fn.body.items


class TestDeclarations:
    def test_global_scalar(self):
        unit = parse("int x;")
        d = unit.decls[0]
        assert isinstance(d, A.VarDecl) and d.name == "x"

    def test_global_with_init(self):
        d = parse("int x = 3;").decls[0]
        assert isinstance(d.init.expr, A.IntLit)

    def test_multi_declarator(self):
        unit = parse("int x, y, z;")
        assert [d.name for d in unit.decls] == ["x", "y", "z"]

    def test_array_decl(self):
        d = parse("float a[10];").decls[0]
        assert len(d.declarator.array_dims) == 1

    def test_2d_array_decl(self):
        d = parse("int m[2][3];").decls[0]
        assert len(d.declarator.array_dims) == 2

    def test_qualifiers(self):
        d = parse("static volatile const unsigned int x;").decls[0]
        assert d.is_static and d.is_volatile and d.is_const

    def test_struct_definition(self):
        unit = parse("struct s { int a; float b; }; struct s v;")
        spec = unit.decls[0].type_spec
        assert isinstance(spec, A.StructSpec) and len(spec.fields) == 2

    def test_enum_definition(self):
        unit = parse("enum e { A, B = 5, C };")
        spec = unit.decls[0].type_spec
        assert isinstance(spec, A.EnumSpec)
        assert [m[0] for m in spec.members] == ["A", "B", "C"]

    def test_typedef(self):
        unit = parse("typedef unsigned int uint; uint x;")
        assert isinstance(unit.decls[0], A.TypedefDecl)
        assert isinstance(unit.decls[1], A.VarDecl)

    def test_union_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse("union u { int a; };")

    def test_unsized_array_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse("int a[];")


class TestFunctions:
    def test_definition_and_params(self):
        unit = parse("int add(int a, int b) { return a + b; }")
        fn = unit.decls[0]
        assert isinstance(fn, A.FuncDef)
        assert [p.name for p in fn.params] == ["a", "b"]

    def test_void_params(self):
        fn = parse("void f(void) {}").decls[0]
        assert fn.params == []

    def test_prototype(self):
        fn = parse("int g(int x);").decls[0]
        assert fn.body is None

    def test_pointer_param(self):
        fn = parse("void f(int *p) {}").decls[0]
        assert fn.params[0].declarator.pointer_depth == 1


class TestStatements:
    def test_if_else(self):
        s = parse_stmts("if (1) ; else ;")[0]
        assert isinstance(s, A.IfStmt) and s.other is not None

    def test_dangling_else_binds_inner(self):
        s = parse_stmts("if (1) if (2) ; else ;")[0]
        assert s.other is None
        assert isinstance(s.then, A.IfStmt) and s.then.other is not None

    def test_while(self):
        s = parse_stmts("while (x < 3) { }")[0]
        assert isinstance(s, A.WhileStmt)

    def test_do_while(self):
        s = parse_stmts("do { } while (0);")[0]
        assert isinstance(s, A.DoWhileStmt)

    def test_for_full(self):
        s = parse_stmts("for (i = 0; i < 10; i++) ;")[0]
        assert isinstance(s, A.ForStmt)
        assert s.init is not None and s.cond is not None and s.step is not None

    def test_for_empty_clauses(self):
        s = parse_stmts("for (;;) break;")[0]
        assert s.init is None and s.cond is None and s.step is None

    def test_for_with_declaration(self):
        s = parse_stmts("for (int i = 0; i < 3; i++) ;")[0]
        assert isinstance(s.init, A.DeclStmt)

    def test_return_value(self):
        unit = parse("int f(void) { return 42; }")
        s = unit.decls[0].body.items[0]
        assert isinstance(s, A.ReturnStmt) and isinstance(s.value, A.IntLit)

    def test_break_continue(self):
        stmts = parse_stmts("while(1) { break; } while(1) { continue; }")
        assert isinstance(stmts[0].body.items[0], A.BreakStmt)
        assert isinstance(stmts[1].body.items[0], A.ContinueStmt)

    def test_local_declaration(self):
        s = parse_stmts("int x = 1;")[0]
        assert isinstance(s, A.DeclStmt)

    def test_goto_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_stmts("goto end;")

    def test_nested_blocks_get_distinct_ids(self):
        unit = parse("void f(void) { { int a; } { int b; } }")
        fn = unit.decls[0]
        b1, b2 = fn.body.items
        assert b1.block_id != b2.block_id != fn.body.block_id


class TestSwitch:
    def test_simple_switch(self):
        s = parse_stmts("switch (x) { case 1: y = 1; break; default: y = 0; }")[0]
        assert isinstance(s, A.SwitchStmt)
        assert len(s.cases) == 2
        assert s.cases[1].value is None

    def test_stacked_case_labels(self):
        s = parse_stmts("switch (x) { case 1: case 2: y = 1; break; }")[0]
        assert len(s.cases) == 2
        assert s.cases[0].falls_through


class TestExpressions:
    def test_precedence_mul_over_add(self):
        e = parse_expr("1 + 2 * 3")
        assert isinstance(e, A.Binary) and e.op == "+"
        assert isinstance(e.right, A.Binary) and e.right.op == "*"

    def test_parentheses(self):
        e = parse_expr("(1 + 2) * 3")
        assert e.op == "*"

    def test_left_associativity(self):
        e = parse_expr("1 - 2 - 3")
        assert e.op == "-" and isinstance(e.left, A.Binary)

    def test_comparison_precedence(self):
        e = parse_expr("a + 1 < b * 2")
        assert e.op == "<"

    def test_logical_precedence(self):
        e = parse_expr("a && b || c")
        assert e.op == "||"

    def test_ternary(self):
        e = parse_expr("a ? b : c")
        assert isinstance(e, A.Conditional)

    def test_unary_minus(self):
        e = parse_expr("-a")
        assert isinstance(e, A.Unary) and e.op == "-"

    def test_logical_not(self):
        e = parse_expr("!a")
        assert e.op == "!"

    def test_cast(self):
        e = parse_expr("(float)i")
        assert isinstance(e, A.Cast)

    def test_call_with_args(self):
        e = parse_expr("f(1, a + 2)")
        assert isinstance(e, A.Call) and len(e.args) == 2

    def test_array_index(self):
        e = parse_expr("a[i + 1]")
        assert isinstance(e, A.Index)

    def test_member_access(self):
        e = parse_expr("s.f")
        assert isinstance(e, A.Member) and not e.arrow

    def test_chained_member_index(self):
        e = parse_expr("s.a[2]")
        assert isinstance(e, A.Index) and isinstance(e.base, A.Member)

    def test_address_of(self):
        e = parse_expr("f(&x)" )
        assert isinstance(e.args[0], A.Unary) and e.args[0].op == "&"

    def test_assignment_in_expression(self):
        e = parse_expr("a = b")
        assert isinstance(e, A.Assign)

    def test_compound_assignment(self):
        stmts = parse_stmts("x += 2;")
        assert stmts[0].expr.op == "+="

    def test_sizeof_type(self):
        e = parse_expr("sizeof(int)")
        assert isinstance(e, A.SizeOf)

    def test_string_literal_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            parse_expr('"str"')

    def test_syntax_error_raises(self):
        with pytest.raises(ParseError):
            parse("int x = ;")

    def test_missing_semicolon_raises(self):
        with pytest.raises(ParseError):
            parse("int x = 3")
