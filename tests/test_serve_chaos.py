"""Chaos harness for the crash-isolated serving layer (ISSUE 7).

Deterministic fault injection against the daemon: the worker is killed
mid-job, poisoned jobs crash it reproducibly, protocol frames are cut
in half, cache files are corrupted on disk, and SIGTERM lands mid-job —
and in every case the contract holds: post-recovery results are
bit-identical to cold runs, degraded/cancelled/poisoned outcomes are
never cached, and the daemon always exits cleanly.

Every fault is injected through seeded/one-shot mechanisms (marker
files claimed by unlink, a pinned ``backoff_seed``), so each scenario
replays identically run to run.
"""

import contextlib
import io
import os
import signal
import socket
import struct
import subprocess
import sys
import threading
import time
import types

import pytest

import repro
from repro.analysis import analyze
from repro.config import AnalyzerConfig
from repro.errors import ServeError
from repro.serve.client import ServeClient
from repro.serve.fingerprints import result_digest, result_payload
from repro.serve.jobs import effective_config
from repro.serve.protocol import (ProtocolError, recv_frame, send_frame,
                                  recv_message, send_message)
from repro.serve.server import AnalysisServer, ServeConfig
from repro.serve.store import ResultStore
from repro.serve.workload import base_program
from repro.supervisor.restart import RestartPolicy


@pytest.fixture(scope="module")
def family():
    return base_program(kloc=0.06, seed=77)


def _overrides(family):
    return {"input_ranges": {k: list(v)
                             for k, v in family.input_ranges.items()},
            "max_clock": family.max_clock}


@pytest.fixture(scope="module")
def cold_digest(family):
    """The reference digest a genuinely cold in-process run produces
    under exactly the effective config the daemon computes."""
    cfg = effective_config(AnalyzerConfig(), _overrides(family), None, None)
    result = analyze(family.source, config=cfg)
    return result_digest(result_payload(result))


def _wait_ready(sock, timeout_s=60.0):
    """Block until a daemon answers a ping on ``sock`` (a bare
    socket-file existence check races bind/listen and is fooled by
    stale files)."""
    from repro.errors import ServeConnectionError

    deadline = time.time() + timeout_s
    while True:
        try:
            c = ServeClient(sock, timeout=10.0)
            try:
                assert c.ping()["ok"]
            finally:
                c.close()
            return
        except ServeConnectionError:
            assert time.time() < deadline, "daemon never came ready"
            time.sleep(0.02)


@contextlib.contextmanager
def daemon(tmp_path, **cfg_overrides):
    """An in-thread daemon with an isolated worker subprocess, a disk
    cache, and a pinned restart-backoff seed."""
    sock = str(tmp_path / "serve.sock")
    cache = str(tmp_path / "cache")
    cfg = dict(socket_path=sock, cache_dir=cache, job_deadline_s=None,
               backoff_seed=1234)
    cfg.update(cfg_overrides)
    server = AnalysisServer(ServeConfig(**cfg))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    _wait_ready(sock)
    clients = []

    def connect():
        c = ServeClient(sock, timeout=180.0)
        clients.append(c)
        return c

    try:
        yield types.SimpleNamespace(server=server, thread=thread,
                                    sock=sock, cache=cache,
                                    connect=connect)
    finally:
        for c in clients:
            c.close()
        server.stop()
        thread.join(timeout=30)
        assert not thread.is_alive(), "daemon thread leaked"


# ---------------------------------------------------------------------------
# Frame protocol: truncation is detected, never mis-parsed
# ---------------------------------------------------------------------------


class TestFrameProtocol:
    def test_roundtrip_and_clean_eof(self):
        buf = io.BytesIO()
        send_frame(buf, {"op": "run", "n": 1})
        send_frame(buf, {"ok": True})
        buf.seek(0)
        assert recv_frame(buf) == {"op": "run", "n": 1}
        assert recv_frame(buf) == {"ok": True}
        assert recv_frame(buf) is None  # clean EOF

    def test_half_written_header(self):
        with pytest.raises(ProtocolError, match="header"):
            recv_frame(io.BytesIO(b"\x00\x00"))

    def test_half_written_body(self):
        data = b'{"ok": true}'
        frame = struct.pack(">I", len(data)) + data
        with pytest.raises(ProtocolError, match="body"):
            recv_frame(io.BytesIO(frame[:-3]))

    def test_garbage_body(self):
        body = b"not json at all"
        frame = struct.pack(">I", len(body)) + body
        with pytest.raises(ProtocolError, match="JSON"):
            recv_frame(io.BytesIO(frame))


# ---------------------------------------------------------------------------
# Restart pacing: seeded, exponential, capped
# ---------------------------------------------------------------------------


class TestRestartPolicy:
    def test_seeded_sequence_is_deterministic(self):
        a, b = RestartPolicy(seed=42), RestartPolicy(seed=42)
        da = [a.next_delay() for _ in range(8)]
        db = [b.next_delay() for _ in range(8)]
        assert da == db
        assert da != [RestartPolicy(seed=43).next_delay()
                      for _ in range(8)]

    def test_growth_jitter_and_cap(self):
        p = RestartPolicy(base_s=0.05, cap_s=5.0, seed=7)
        delays = [p.next_delay() for _ in range(12)]
        for i, d in enumerate(delays):
            raw = min(5.0, 0.05 * (2.0 ** i))
            assert raw <= d <= raw * 1.5
        assert max(delays) <= 5.0 * 1.5

    def test_reset_after_success(self):
        p = RestartPolicy(base_s=0.05, cap_s=5.0, seed=7)
        for _ in range(6):
            p.next_delay()
        p.reset()
        assert p.failures == 0
        assert p.next_delay() <= 0.05 * 1.5


# ---------------------------------------------------------------------------
# Worker killed mid-job: restart, one retry, bit-identical result
# ---------------------------------------------------------------------------


class TestWorkerCrashRecovery:
    def test_kill_mid_job_retried_bit_identical(self, tmp_path, monkeypatch,
                                                family, cold_digest):
        marker = tmp_path / "kill.marker"
        marker.write_text("")
        monkeypatch.setenv("REPRO_FAULT_SERVE_WORKER_CRASH", str(marker))
        with daemon(tmp_path) as d:
            c = d.connect()
            reply = c.submit([("fam.c", family.source)],
                             config=_overrides(family))
            assert reply["ok"] and not reply["cached"]
            # The injected kill fired (one-shot marker was claimed)...
            assert not marker.exists()
            # ...and the retried run is bit-identical to a cold run.
            assert reply["digest"] == cold_digest

            health = c.health()["health"]
            assert health["worker"]["mode"] == "subprocess"
            assert health["worker"]["restarts"] == 1
            assert health["worker"]["alive"]
            stats = c.stats()["stats"]
            assert stats["runs"]["retries"] == 1
            assert "ChaosWorkerKillError" in \
                stats["worker"]["last_crash_signature"]

            # The recovered result is a complete successful run: cached.
            again = c.submit([("fam.c", family.source)],
                             config=_overrides(family))
            assert again["cached"] and again["digest"] == cold_digest
            # A transient crash does not creep toward quarantine.
            assert d.server.poison.stats()["keys_with_crashes"] == 0

    def test_truncated_reply_frame_is_a_worker_death(self, tmp_path,
                                                     monkeypatch, family,
                                                     cold_digest):
        marker = tmp_path / "truncate.marker"
        marker.write_text("")
        monkeypatch.setenv("REPRO_FAULT_SERVE_TRUNCATE_FRAME", str(marker))
        with daemon(tmp_path) as d:
            c = d.connect()
            reply = c.submit([("fam.c", family.source)],
                             config=_overrides(family))
            assert reply["ok"]
            assert not marker.exists()
            assert reply["digest"] == cold_digest
            health = c.health()["health"]
            assert health["worker"]["restarts"] == 1
            assert "ChaosTruncatedFrameError" in \
                health["worker"]["last_crash_signature"]


# ---------------------------------------------------------------------------
# Poison jobs: quarantined after two crashes, never cached, re-admittable
# ---------------------------------------------------------------------------


class TestPoisonQuarantine:
    SUBSTR = "POISON_ME_7f3"

    def _poison_source(self, family):
        return f"/* {self.SUBSTR} */\n" + family.source

    def test_poison_quarantine_lifecycle(self, tmp_path, monkeypatch,
                                         family, cold_digest):
        monkeypatch.setenv("REPRO_FAULT_SERVE_POISON_SUBSTR", self.SUBSTR)
        poison_src = self._poison_source(family)
        ov = _overrides(family)

        with daemon(tmp_path) as d:
            c = d.connect()
            r1 = c.submit([("fam.c", poison_src)], config=ov)
            # Crashed the worker twice under one stable signature:
            # structured poisoned error, not a hang, not a crash loop.
            assert not r1["ok"] and r1.get("poisoned")
            assert "ChaosPoisonError" in r1["signature"]
            assert c.health()["health"]["worker"]["restarts"] == 2

            # The identical request key is refused without a worker.
            r2 = c.submit([("fam.c", poison_src)], config=ov)
            assert not r2["ok"] and r2.get("poisoned")
            assert c.health()["health"]["worker"]["restarts"] == 2
            assert c.health()["health"]["quarantine_size"] == 1

            # Innocent jobs still serve fine, and the poisoned job was
            # never cached.
            ok = c.submit([("fam.c", family.source)], config=ov)
            assert ok["ok"] and ok["digest"] == cold_digest
            stats = c.stats()["stats"]
            assert stats["quarantine"]["poisoned"] == 1
            assert stats["quarantine"]["refusals"] == 1
            assert stats["result_cache"]["puts"] == 1  # the innocent job

        # Quarantine persists across a daemon restart...
        assert os.path.exists(os.path.join(
            tmp_path, "cache", "quarantine", "poisoned.json"))
        monkeypatch.delenv("REPRO_FAULT_SERVE_POISON_SUBSTR")
        with daemon(tmp_path) as d2:
            c2 = d2.connect()
            r3 = c2.submit([("fam.c", poison_src)], config=ov)
            assert not r3["ok"] and r3.get("poisoned")
            # ...and a successful bypass_cache run re-admits the key
            # (the injected fault is gone: the "fixed input" workflow).
            readmit = c2.submit([("fam.c", poison_src)], config=ov,
                                bypass_cache=True)
            assert readmit["ok"]
            normal = c2.submit([("fam.c", poison_src)], config=ov)
            assert normal["ok"] and not normal["cached"]
            assert normal["digest"] == readmit["digest"]
            assert c2.health()["health"]["quarantine_size"] == 0


# ---------------------------------------------------------------------------
# Graceful drain: SIGTERM finishes the in-flight job, flushes, exits 0
# ---------------------------------------------------------------------------


class TestGracefulDrain:
    def test_sigterm_drains_in_flight_job(self, tmp_path, family,
                                          cold_digest):
        sock = tmp_path / "cli.sock"
        src_dir = os.path.dirname(os.path.dirname(
            os.path.abspath(repro.__file__)))
        env = dict(os.environ, PYTHONPATH=src_dir)
        proc = subprocess.Popen(
            [sys.executable, "-m", "repro.cli", "serve",
             "--socket", str(sock), "--cache-dir", str(tmp_path / "cache"),
             "--backoff-seed", "7", "--drain-deadline", "60",
             "--job-deadline", "300"],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env,
            text=True)
        try:
            deadline = time.time() + 90
            while not sock.exists():
                assert proc.poll() is None, proc.communicate()[1]
                assert time.time() < deadline, "daemon never came up"
                time.sleep(0.05)
            _wait_ready(str(sock))

            results = {}

            def bg_submit():
                with ServeClient(str(sock), timeout=180.0) as c:
                    results["reply"] = c.submit(
                        [("fam.c", family.source)],
                        config=_overrides(family))

            t = threading.Thread(target=bg_submit, daemon=True)
            t.start()
            with ServeClient(str(sock), timeout=30.0) as probe:
                while probe.stats()["stats"]["queue"]["submitted"] < 1:
                    time.sleep(0.02)
            proc.send_signal(signal.SIGTERM)
            out, err = proc.communicate(timeout=180)
            t.join(timeout=180)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.communicate()

        assert proc.returncode == 0, err
        assert "stopped" in out
        assert not sock.exists(), "socket file not removed on drain"
        reply = results["reply"]
        assert reply["ok"], reply
        assert reply["digest"] == cold_digest

    def test_drain_deadline_escalates_without_poisoning(self, tmp_path,
                                                        family):
        with daemon(tmp_path, drain_deadline_s=0.05) as d:
            c = d.connect()
            ticket = c.submit([("fam.c", family.source)],
                              config=_overrides(family), wait=False)
            job = d.server.queue.get(ticket["job_id"])
            deadline = time.time() + 60
            while job.state == "queued":
                assert time.time() < deadline
                time.sleep(0.01)
            d.server.stop()
            d.thread.join(timeout=60)
            assert not d.thread.is_alive()

            # The in-flight job was cancelled with a retryable envelope,
            # the kill was not recorded as a crash of the *job*, nothing
            # was cached, and the escalation left an incident trail.
            if job.envelope.get("ok"):
                # Tiny-machine race: the job squeaked in under the
                # deadline; the drain then needed no escalation.
                assert job.envelope["digest"]
            else:
                assert job.envelope.get("cancelled")
                assert job.envelope.get("retryable")
                assert d.server.poison.stats()["keys_with_crashes"] == 0
                assert d.server.stats()["result_cache"]["puts"] == 0
                assert any("drain deadline" in i
                           for i in d.server.incidents)
            assert not os.path.exists(d.sock)


# ---------------------------------------------------------------------------
# Corrupt cache files: quarantined on read, recomputed bit-identically
# ---------------------------------------------------------------------------


class TestCorruptCacheFiles:
    def test_store_checksum_catches_silent_corruption(self, tmp_path):
        store = ResultStore(str(tmp_path))
        key = "ab" * 32
        store.put(key, {"digest": "d", "result": {"alarm_count": 1}})
        path = os.path.join(str(tmp_path), "results", f"{key}.json")
        # Valid JSON, wrong payload: only the checksum can catch this.
        with open(path, "rb") as f:
            header, payload = f.read().split(b"\n", 1)
        with open(path, "wb") as f:
            f.write(header + b"\n"
                    + payload.replace(b'"alarm_count": 1',
                                      b'"alarm_count": 9'))
        fresh = ResultStore(str(tmp_path))
        assert fresh.get(key) is None
        assert fresh.stats()["quarantined"] == 1
        assert not os.path.exists(path)
        assert os.path.exists(os.path.join(
            str(tmp_path), "results", "quarantine", f"{key}.json"))

    def test_corrupt_caches_recovered_end_to_end(self, tmp_path, family,
                                                 cold_digest):
        ov = _overrides(family)
        with daemon(tmp_path) as d:
            c = d.connect()
            first = c.submit([("fam.c", family.source)], config=ov)
            assert first["ok"]

        cache = str(tmp_path / "cache")
        rdir = os.path.join(cache, "results")
        results = [n for n in os.listdir(rdir) if n.endswith(".json")]
        assert results
        for name in results:  # headerless garbage: a pre-checksum file
            with open(os.path.join(rdir, name), "w") as f:
                f.write('{"digest": "beef", "result": {}}')
        jdir = os.path.join(cache, "fixpoint")
        for name in os.listdir(jdir):
            if name.endswith(".pkl"):
                with open(os.path.join(jdir, name), "wb") as f:
                    f.write(b"\x80garbage-not-a-journal")

        with daemon(tmp_path) as d2:
            c2 = d2.connect()
            again = c2.submit([("fam.c", family.source)], config=ov)
            # Not served from the corrupt entry, recomputed cold,
            # bit-identical; the corrupt file moved aside for post-mortem.
            assert again["ok"] and not again["cached"]
            assert again["digest"] == cold_digest
            stats = c2.stats()["stats"]
            assert stats["result_cache"]["quarantined"] >= 1
            assert os.path.isdir(os.path.join(rdir, "quarantine"))


# ---------------------------------------------------------------------------
# Socket lifecycle: stale socket recovery, double-daemon refusal
# ---------------------------------------------------------------------------


class TestSocketLifecycle:
    def test_stale_socket_is_unlinked_and_rebound(self, tmp_path):
        sock = str(tmp_path / "serve.sock")
        s = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        s.bind(sock)
        s.close()  # leaves the file behind with nothing listening
        assert os.path.exists(sock)
        with daemon(tmp_path, isolate_jobs=False) as d:
            assert d.connect().ping()["ok"]
            assert any("stale socket" in i for i in d.server.incidents)

    def test_second_daemon_is_refused(self, tmp_path):
        with daemon(tmp_path, isolate_jobs=False) as d:
            second = AnalysisServer(ServeConfig(socket_path=d.sock,
                                                isolate_jobs=False))
            with pytest.raises(ServeError, match="already listening"):
                second.serve_forever()
            # The live daemon's socket must not have been disturbed.
            assert d.connect().ping()["ok"]


# ---------------------------------------------------------------------------
# Overload shedding and client-side retry
# ---------------------------------------------------------------------------


class TestOverloadAndRetry:
    def _submit_msg(self, text="void main(){}"):
        return {"op": "submit", "sources": [["a.c", text]], "wait": False}

    def test_queue_full_is_retryable_with_hint(self, tmp_path):
        server = AnalysisServer(ServeConfig(
            socket_path=str(tmp_path / "x.sock"), max_queue=1,
            isolate_jobs=False))
        assert server._op_submit(self._submit_msg())["ok"]
        shed = server._op_submit(self._submit_msg("void main(){int x;}"))
        assert not shed["ok"] and shed["retryable"]
        assert shed["retry_after_s"] > 0

    def test_draining_daemon_refuses_submits(self, tmp_path):
        server = AnalysisServer(ServeConfig(
            socket_path=str(tmp_path / "x.sock"), isolate_jobs=False))
        server._draining.set()
        refused = server._op_submit(self._submit_msg())
        assert not refused["ok"] and refused["retryable"]
        assert "draining" in refused["error"]

    @contextlib.contextmanager
    def _fake_daemon(self, tmp_path, script):
        """A scripted protocol peer: each accepted connection answers
        requests from (or acts out) the next entries of ``script``."""
        path = str(tmp_path / "fake.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(4)
        listener.settimeout(10.0)

        def serve():
            for action in script:
                try:
                    conn, _ = listener.accept()
                except OSError:
                    return
                reader = conn.makefile("rb")
                try:
                    for step in action:
                        msg = recv_message(reader)
                        if msg is None:
                            break
                        if step == "close":
                            break  # drop the connection mid-response
                        send_message(conn, step)
                finally:
                    # shutdown() delivers the EOF immediately; close()
                    # alone defers it while the makefile reader holds
                    # the descriptor.
                    try:
                        conn.shutdown(socket.SHUT_RDWR)
                    except OSError:
                        pass
                    reader.close()
                    conn.close()

        t = threading.Thread(target=serve, daemon=True)
        t.start()
        try:
            yield path
        finally:
            listener.close()
            t.join(timeout=5)

    def test_client_surfaces_eof_as_typed_retryable_error(self, tmp_path):
        from repro.errors import ServeConnectionError

        with self._fake_daemon(tmp_path, [["close"]]) as path:
            client = ServeClient(path, timeout=10.0)
            with pytest.raises(ServeConnectionError,
                               match="closed the connection"):
                client.request({"op": "ping"})

    def test_client_submit_retries_after_hint(self, tmp_path):
        shed = {"ok": False, "error": "queue full", "retryable": True,
                "retry_after_s": 0.01}
        done = {"ok": True, "job_id": "job-1", "cached": False,
                "digest": "d", "result": {}, "wall_s": 0.0}
        with self._fake_daemon(tmp_path, [[shed, done]]) as path:
            client = ServeClient(path, timeout=10.0)
            reply = client.submit([("a.c", "void main(){}")], retries=2)
            assert reply["ok"] and reply["digest"] == "d"

    def test_client_submit_reconnects_after_server_death(self, tmp_path):
        done = {"ok": True, "job_id": "job-1", "cached": True,
                "digest": "d", "result": {}, "wall_s": 0.0}
        # Connection 1 dies mid-response; connection 2 answers.
        with self._fake_daemon(tmp_path, [["close"], [done]]) as path:
            client = ServeClient(path, timeout=10.0)
            reply = client.submit([("a.c", "void main(){}")], retries=1,
                                  backoff_s=0.01)
            assert reply["ok"] and reply["digest"] == "d"
