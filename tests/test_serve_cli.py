"""Exit-code contract for the serving CLI paths (``astree-repro serve``
and ``astree-repro client``).

Operational failures — a daemon already holding the socket, an
unbindable socket path, a dead or stalled daemon on the client side —
must exit 3 (INTERNAL_ERROR) with the structured one-line
``internal-error: phase=serve`` diagnostic on stderr, never a raw
traceback-only crash and never a silent 0.
"""

import socket
import threading
import time

import pytest

from repro.cli import main
from repro.errors import ServeConnectionError
from repro.serve.client import ServeClient
from repro.serve.server import AnalysisServer, ServeConfig


def _wait_ready(path: str, deadline_s: float = 10.0) -> None:
    end = time.monotonic() + deadline_s
    while True:
        try:
            with ServeClient(path, timeout=1.0) as client:
                client.ping()
            return
        except ServeConnectionError:
            if time.monotonic() > end:
                raise
            time.sleep(0.02)


class TestServeExitCodes:
    def test_second_daemon_on_same_socket_exits_3(self, tmp_path, capsys):
        path = str(tmp_path / "daemon.sock")
        server = AnalysisServer(ServeConfig(socket_path=path,
                                            isolate_jobs=False))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            _wait_ready(path)
            rc = main(["serve", "--socket", path])
            assert rc == 3
            err = capsys.readouterr().err
            assert "internal-error: phase=serve" in err
            assert "already listening" in err
        finally:
            server.stop()
            thread.join(timeout=30)
        assert not thread.is_alive()

    def test_unbindable_socket_path_exits_3(self, tmp_path, capsys):
        path = str(tmp_path / "no-such-dir" / "daemon.sock")
        rc = main(["serve", "--socket", path])
        assert rc == 3
        err = capsys.readouterr().err
        assert "internal-error: phase=serve" in err
        assert "cannot bind" in err


class TestClientExitCodes:
    def test_connect_refused_exits_3(self, tmp_path, capsys):
        path = str(tmp_path / "nobody-home.sock")
        rc = main(["client", "--socket", path, "--op", "ping"])
        assert rc == 3
        err = capsys.readouterr().err
        assert "internal-error: phase=serve" in err
        assert "class=ServeConnectionError" in err

    def test_stalled_daemon_times_out_with_exit_3(self, tmp_path, capsys):
        # A listener that never accepts: connect and send succeed (the
        # kernel backlog takes them), the reply never comes.
        path = str(tmp_path / "stalled.sock")
        listener = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        listener.bind(path)
        listener.listen(1)
        try:
            rc = main(["client", "--socket", path, "--op", "ping",
                       "--timeout", "0.3"])
            assert rc == 3
            err = capsys.readouterr().err
            assert "internal-error: phase=serve" in err
            assert "timed out" in err
        finally:
            listener.close()

    def test_submit_retries_exhausted_still_exits_3(self, tmp_path, capsys):
        # Retries reconnect on connection errors but must not mask a
        # daemon that stays dead.
        path = str(tmp_path / "gone.sock")
        src = tmp_path / "a.c"
        src.write_text("void main(void) { int x; x = 1; }\n")
        rc = main(["client", "--socket", path, "--retries", "1",
                   str(src)])
        assert rc == 3
        assert "class=ServeConnectionError" in capsys.readouterr().err
