"""Robustness: malformed inputs must fail with ReproError, never crash.

The paper's frontend "rejects unsupported constructs with an error
message" — a production analyzer must never die with an internal exception
on user input.  These tests fuzz the frontend with mutated and random
sources and assert every failure is a classified, located error.
"""

import random
import string

import pytest
from hypothesis import given, settings, strategies as st

from repro.errors import LexerError, PreprocessorError, ReproError
from repro.frontend import (
    check_source_text, compile_source, decode_source, parse, preprocess,
    read_source_file,
)

VALID = """
#define N 4
typedef float real;
struct st { int a; real b[N]; };
volatile int v;
struct st g;
int helper(int x) { return x + 1; }
int main(void) {
    int i;
    for (i = 0; i < N; i++) { g.b[i] = 0.5f; }
    g.a = helper(v);
    return 0;
}
"""


def expect_clean_failure(source):
    try:
        compile_source(source, "fuzz.c")
    except ReproError:
        pass  # classified failure: fine
    except RecursionError:
        pytest.fail("recursion blowup on malformed input")
    # Accepting the input is also fine (the mutation may be harmless).


class TestMutationFuzz:
    @settings(max_examples=120, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_deletion_mutations(self, seed):
        rng = random.Random(seed)
        src = VALID
        # Delete a random slice.
        a = rng.randrange(len(src))
        b = min(len(src), a + rng.randrange(1, 30))
        expect_clean_failure(src[:a] + src[b:])

    @settings(max_examples=120, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_insertion_mutations(self, seed):
        rng = random.Random(seed)
        src = VALID
        pos = rng.randrange(len(src))
        junk = "".join(rng.choice("(){}[];,*&<>=+-!%#\"'") for _ in range(rng.randrange(1, 6)))
        expect_clean_failure(src[:pos] + junk + src[pos:])

    @settings(max_examples=60, deadline=None)
    @given(st.text(alphabet=string.printable, max_size=200))
    def test_random_text(self, text):
        expect_clean_failure(text)

    @settings(max_examples=60, deadline=None)
    @given(st.integers(min_value=0, max_value=10**9))
    def test_token_shuffle(self, seed):
        rng = random.Random(seed)
        tokens = VALID.split()
        rng.shuffle(tokens)
        expect_clean_failure(" ".join(tokens))


class TestSpecificMalformed:
    CASES = [
        "int",
        "int x",
        "int x = ;",
        "void f( { }",
        "void f(void) { if }",
        "void f(void) { while (1) }",
        "void f(void) { return 1 + ; }",
        "struct s { int a; } ;; int main(void) { return 0; }",
        "#define\nint x;",
        "#if\nint x;\n#endif",
        "void f(void) { x = 1; }",           # undeclared
        "int main(void) { unknown(); return 0; }",
        "int a[0]; int main(void) { return 0; }",
        "int a[-1]; int main(void) { return 0; }",
        "int main(void) { int x = \"str\"; return 0; }",
        "union u { int a; }; int main(void) { return 0; }",
        "int *g; int main(void) { return 0; }",
        "int main(void) { goto end; end: return 0; }",
        "int f(void) { return f(); } int main(void) { return f(); }" * 1,
    ]

    @pytest.mark.parametrize("source", CASES,
                             ids=[f"case{i}" for i in range(len(CASES))])
    def test_malformed_raises_repro_error(self, source):
        with pytest.raises(ReproError):
            compile_source(source, "bad.c")

    def test_recursion_rejected_or_handled(self):
        # Direct recursion: the analyzer targets a recursion-free family.
        src = "int f(int n) { return f(n); } int main(void) { f(1); return 0; }"
        try:
            from repro import analyze

            analyze(src)
        except (ReproError, RecursionError):
            pass  # either a frontend rejection or a bounded failure is fine

    def test_deeply_nested_expression(self):
        expr = "1" + " + 1" * 400
        src = f"int x; int main(void) {{ x = {expr}; return 0; }}"
        prog = compile_source(src, "deep.c")
        assert prog is not None

    def test_deeply_nested_parens(self):
        """Very deep nesting either parses or is rejected gracefully."""
        expr = "(" * 150 + "1" + ")" * 150
        src = f"int x; int main(void) {{ x = {expr}; return 0; }}"
        try:
            compile_source(src, "deep.c")
        except ReproError:
            pass  # classified rejection is acceptable

    def test_recursion_rejected(self):
        src = "int f(void); int g(void) { return f(); } " \
              "int f(void) { return g(); } int main(void) { return f(); }"
        with pytest.raises(ReproError):
            compile_source(src, "rec.c")

    def test_self_recursion_rejected(self):
        src = "int f(int n) { return f(n); } int main(void) { return f(1); }"
        with pytest.raises(ReproError):
            compile_source(src, "rec.c")

    def test_many_globals(self):
        decls = "\n".join(f"int g{i};" for i in range(2000))
        src = decls + "\nint main(void) { g0 = 1; return 0; }"
        prog = compile_source(src, "many.c")
        # unused globals are deleted; g0 remains
        assert prog.global_by_name("g0") is not None
        assert prog.global_by_name("g1999") is None


VALID_BYTES = VALID.encode("utf-8")


class TestEncodingRobustness:
    """Byte-level hazards: a BOM, CRLF line endings or non-UTF-8 bytes
    must surface as located PreprocessorError/LexerError (CLI exit 3),
    never as a raw UnicodeDecodeError."""

    def test_utf8_bom_rejected(self):
        with pytest.raises(PreprocessorError) as ei:
            decode_source(b"\xef\xbb\xbf" + VALID_BYTES, "bom.c")
        assert "byte-order mark" in str(ei.value)
        assert "bom.c:1:1" in str(ei.value)

    def test_bom_in_text_rejected(self):
        with pytest.raises(PreprocessorError):
            check_source_text("\ufeff" + VALID, "bom.c")

    def test_crlf_rejected_with_location(self):
        crlf = VALID.replace("\n", "\r\n")
        with pytest.raises(PreprocessorError) as ei:
            decode_source(crlf.encode("utf-8"), "dos.c")
        assert "CRLF" in str(ei.value) or "carriage return" in str(ei.value)
        assert "dos.c:" in str(ei.value)

    def test_lone_cr_rejected(self):
        with pytest.raises(PreprocessorError):
            check_source_text("int x;\rint main(void) { return 0; }")

    def test_non_utf8_bytes_rejected(self):
        with pytest.raises((PreprocessorError, LexerError)) as ei:
            decode_source(b"int x;\n\xff\xfe int y;\n", "bin.c")
        assert "bin.c" in str(ei.value)

    def test_nul_byte_rejected(self):
        with pytest.raises((PreprocessorError, LexerError)):
            decode_source(b"int x;\x00int y;\n", "nul.c")

    @settings(max_examples=80, deadline=None)
    @given(st.binary(max_size=120))
    def test_random_bytes_never_unicode_error(self, data):
        try:
            text = decode_source(data, "fuzz.bin")
        except ReproError:
            return  # classified rejection: fine
        # Decoded clean: the full pipeline must also stay classified.
        expect_clean_failure(text)

    def test_read_source_file_bom(self, tmp_path):
        p = tmp_path / "bom.c"
        p.write_bytes(b"\xef\xbb\xbf" + VALID_BYTES)
        with pytest.raises(PreprocessorError):
            read_source_file(str(p))

    def test_read_source_file_clean(self, tmp_path):
        p = tmp_path / "ok.c"
        p.write_bytes(VALID_BYTES)
        assert read_source_file(str(p)) == VALID

    def test_compile_rejects_embedded_cr(self):
        # The preprocessor checks text even when handed a raw string
        # (callers that bypass read_source_file are still protected).
        with pytest.raises(PreprocessorError):
            compile_source("int x;\r\nint main(void) { return 0; }",
                           "dos.c")
