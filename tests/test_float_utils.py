"""Tests for directed-rounding primitives."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.numeric.float_utils import (
    BINARY32,
    BINARY64,
    add_down,
    add_up,
    div_down,
    div_up,
    mul_down,
    mul_up,
    next_down,
    next_up,
    sqrt_down,
    sqrt_up,
    sub_down,
    sub_up,
    ulp_error_bound,
)

finite = st.floats(allow_nan=False, allow_infinity=False)
nonzero = finite.filter(lambda x: x != 0.0)


class TestNextUpDown:
    def test_next_up_strictly_increases(self):
        assert next_up(1.0) > 1.0

    def test_next_down_strictly_decreases(self):
        assert next_down(1.0) < 1.0

    def test_next_up_of_inf(self):
        assert next_up(math.inf) == math.inf

    def test_next_down_of_neg_inf(self):
        assert next_down(-math.inf) == -math.inf

    def test_next_up_zero(self):
        assert next_up(0.0) > 0.0

    def test_adjacent(self):
        x = 1.5
        assert next_down(next_up(x)) == x


class TestDirectedAdd:
    @given(finite, finite)
    def test_add_brackets_true_sum(self, a, b):
        lo, hi = add_down(a, b), add_up(a, b)
        assert lo <= hi
        # The rounded-to-nearest sum is within the bracket.
        s = a + b
        if not math.isnan(s):
            assert lo <= s <= hi

    def test_exact_add_not_widened(self):
        assert add_down(1.0, 2.0) == 3.0
        assert add_up(1.0, 2.0) == 3.0

    def test_inexact_add_widened(self):
        # 0.1 + 0.2 is inexact in binary64.
        assert add_down(0.1, 0.2) < 0.1 + 0.2 < add_up(0.1, 0.2)

    def test_overflow_add_up(self):
        big = 1.7e308
        assert add_up(big, big) == math.inf

    def test_inf_minus_inf_is_unconstrained(self):
        assert add_down(math.inf, -math.inf) == -math.inf
        assert add_up(math.inf, -math.inf) == math.inf

    @given(finite, finite)
    def test_sub_matches_add_of_negation(self, a, b):
        assert sub_down(a, b) == add_down(a, -b)
        assert sub_up(a, b) == add_up(a, -b)


class TestDirectedMul:
    @given(finite, finite)
    def test_mul_brackets_nearest(self, a, b):
        lo, hi = mul_down(a, b), mul_up(a, b)
        p = a * b
        assert lo <= hi
        if not math.isnan(p):
            assert lo <= p <= hi

    def test_exact_mul_not_widened(self):
        assert mul_down(3.0, 4.0) == 12.0
        assert mul_up(3.0, 4.0) == 12.0

    def test_mul_by_zero(self):
        assert mul_down(0.0, 5.0) == 0.0
        assert mul_up(0.0, 5.0) == 0.0

    def test_zero_times_inf(self):
        assert mul_down(0.0, math.inf) == -math.inf
        assert mul_up(0.0, math.inf) == math.inf

    def test_inexact_mul_widened(self):
        assert mul_down(0.1, 0.1) < 0.1 * 0.1 < mul_up(0.1, 0.1)


class TestDirectedDiv:
    @given(finite, nonzero)
    def test_div_brackets_nearest(self, a, b):
        lo, hi = div_down(a, b), div_up(a, b)
        q = a / b
        assert lo <= hi
        if not math.isnan(q):
            assert lo <= q <= hi

    def test_exact_div(self):
        assert div_down(6.0, 2.0) == 3.0
        assert div_up(6.0, 2.0) == 3.0

    def test_inexact_div_widened(self):
        assert div_down(1.0, 3.0) < div_up(1.0, 3.0)

    def test_div_by_zero_raises(self):
        with pytest.raises(ZeroDivisionError):
            div_down(1.0, 0.0)
        with pytest.raises(ZeroDivisionError):
            div_up(1.0, 0.0)


class TestSqrt:
    @given(st.floats(min_value=0.0, allow_nan=False, allow_infinity=False))
    def test_sqrt_brackets(self, x):
        lo, hi = sqrt_down(x), sqrt_up(x)
        assert lo <= math.sqrt(x) <= hi

    def test_exact_square(self):
        assert sqrt_down(4.0) == 2.0
        assert sqrt_up(4.0) == 2.0

    def test_negative_raises(self):
        with pytest.raises(ValueError):
            sqrt_down(-1.0)


class TestFormats:
    def test_binary32_max(self):
        import numpy as np

        assert BINARY32.max_value == float(np.finfo(np.float32).max)

    def test_binary64_max(self):
        assert BINARY64.max_value == math.ldexp(1.0, 1023) * (2.0 - math.ldexp(1.0, -52))

    def test_rel_err(self):
        assert BINARY32.rel_err == 2.0**-24
        assert BINARY64.rel_err == 2.0**-53

    def test_min_subnormal(self):
        import numpy as np

        assert BINARY32.min_subnormal == float(np.finfo(np.float32).smallest_subnormal)

    def test_ulp_error_bound_monotone(self):
        assert ulp_error_bound(BINARY32, 1.0) <= ulp_error_bound(BINARY32, 2.0)

    def test_ulp_error_bound_infinite_magnitude(self):
        assert ulp_error_bound(BINARY32, math.inf) == math.inf

    def test_binary32_roundtrip_error(self):
        """Rounding any real near 1.0 to binary32 errs <= the bound."""
        import numpy as np

        x = 1.0000000123
        err = abs(float(np.float32(x)) - x)
        assert err <= ulp_error_bound(BINARY32, abs(x))
