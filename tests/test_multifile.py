"""Tests for multi-file family generation and cross-unit analysis."""

import pytest

from repro import analyze
from repro.frontend import link_sources
from repro.synth import FamilySpec
from repro.synth.generator import generate_units


class TestGenerateUnits:
    def test_unit_count(self):
        units, _ = generate_units(FamilySpec(target_kloc=0.3, seed=9), files=3)
        assert len(units) == 3
        assert units[0][0] == "main.c"

    def test_main_unit_has_main(self):
        units, _ = generate_units(FamilySpec(target_kloc=0.3, seed=9))
        assert "int main(void)" in units[0][1]

    def test_impl_units_use_extern(self):
        units, _ = generate_units(FamilySpec(target_kloc=0.3, seed=9))
        for name, src in units[1:]:
            assert "extern" in src
            assert "int main" not in src

    def test_units_link_and_analyze_clean(self):
        units, gp = generate_units(FamilySpec(target_kloc=0.3, seed=9), files=3)
        result = analyze(units, config=gp.analyzer_config())
        assert result.alarm_count == 0

    def test_units_equivalent_to_monolithic(self):
        """Splitting into units must not change the analysis verdict."""
        units, gp = generate_units(FamilySpec(target_kloc=0.25, seed=17), files=4)
        split = analyze(units, config=gp.analyzer_config())
        mono = analyze(gp.source, "mono.c", config=gp.analyzer_config())
        assert split.alarm_count == mono.alarm_count == 0

    def test_linker_resolves_cross_unit_calls(self):
        units, gp = generate_units(FamilySpec(target_kloc=0.2, seed=3), files=2)
        prog = link_sources(units)
        step_fns = [n for n in prog.functions if n.startswith("step_")]
        assert step_fns
        assert all(prog.functions[n].body is not None for n in step_fns)
