"""Certification across the engine matrix and the serving layer.

A 20-seed sweep asserts that every engine path — ``dispatch x jobs x
incremental x vectorize``, cycled per seed — produces a result whose
certificate the independent checker validates: the certification layer
must not depend on *how* the fixpoint was computed.  The serve tests
then pin the warm path: journal-warmed results (including after a
daemon restart) are certified before they are returned, and a warm
result that fails certification is discarded and re-run cold with a
bit-identical digest.
"""

import os
import subprocess
import sys
import time

import pytest

from repro.analysis import analyze_program
from repro.certify import build_certificate, check_certificate
from repro.config import AnalyzerConfig
from repro.errors import CertificateError
from repro.frontend import compile_source
from repro.serve.worker import JobExecutor

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


# ---------------------------------------------------------------------------
# Socket fleet (shared by the sweep's socket rows)
# ---------------------------------------------------------------------------


def _spawn_worker(listen="127.0.0.1:0"):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC_ROOT, env.get("PYTHONPATH")) if p)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.remote", "--listen", listen],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env)
    deadline = time.monotonic() + 60.0
    line = b""
    while b"\n" not in line:
        assert time.monotonic() < deadline, "worker did not start"
        chunk = os.read(proc.stdout.fileno(), 4096)
        assert chunk, "worker died before announcing its address"
        line += chunk
    addr = line.split(b"\n", 1)[0].decode().split("listening on ", 1)[1]
    return proc, addr.strip()


@pytest.fixture(scope="module")
def fleet():
    workers = [_spawn_worker() for _ in range(2)]
    yield tuple(addr for _, addr in workers)
    for proc, _ in workers:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.wait(timeout=5.0)
            except subprocess.TimeoutExpired:
                proc.kill()
                proc.wait(timeout=5.0)
        proc.stdout.close()


# ---------------------------------------------------------------------------
# Seed-varied program family (persistent int counters INCLUDED: the
# certifier must hold on exactly the shapes the dispatch sweep avoids)
# ---------------------------------------------------------------------------


def _family_source(nsub, width):
    lines = []
    for k in range(nsub):
        lines.append(f"volatile float in{k}_a;")
        lines.append(f"volatile int in{k}_b;")
        lines.append(f"float s{k}_x; float s{k}_y; int s{k}_c;")
    for k in range(nsub):
        lines.append(f"""
void step_{k}(void) {{
    float e; int j; int m;
    e = in{k}_a;
    if (e > 100.0f) {{ e = 100.0f; }}
    if (e < -100.0f) {{ e = -100.0f; }}
    m = in{k}_b;
    if (s{k}_c < 100000) {{ s{k}_c = s{k}_c + 1; }}
    j = 0;
    while (j < {width}) {{
        s{k}_x = 0.8f * s{k}_x + 0.2f * e;
        j = j + 1;
    }}
    if (m) {{ s{k}_y = s{k}_x; }} else {{ s{k}_y = 0.0f; }}
}}""")
    lines.append("int main(void) {")
    lines.append("  while (1) {")
    for k in range(nsub):
        lines.append(f"    step_{k}();")
    lines.append("    __ASTREE_wait_for_clock();")
    lines.append("  }")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


def _case(seed, **overrides):
    nsub = 1 + seed % 2
    width = 3 + (seed * 3) % 5
    src = _family_source(nsub, width)
    ranges = {}
    for k in range(nsub):
        ranges[f"in{k}_a"] = (-100.0 - 10.0 * (seed % 5),
                             100.0 + 10.0 * (seed % 5))
        ranges[f"in{k}_b"] = (0.0, 1.0)
    cfg = AnalyzerConfig(input_ranges=ranges,
                         max_clock=600 + 100 * (seed % 4),
                         parallel_min_stmts=8, certify=True, **overrides)
    return src, compile_source(src, f"fam_{seed}.c"), cfg


DISPATCHES = ("inline", "pool", "socket")

# Cycle the full matrix across 20 seeds (dispatch 3-cycle, jobs
# 2-cycle, incremental 2-cycle, vectorize 2-cycle: all combinations
# appear across the sweep).
SWEEP = [(s, DISPATCHES[s % 3], 1 + s % 2,
          (s // 2) % 2 == 0, (s // 3) % 2 == 0)
         for s in range(20)]


class TestCertifySweep:
    @pytest.mark.parametrize("seed,dispatch,jobs,incremental,vectorize",
                             SWEEP)
    def test_every_engine_path_certifies(self, fleet, seed, dispatch,
                                         jobs, incremental, vectorize):
        src, prog, cfg = _case(
            seed, incremental=incremental, vectorize=vectorize,
            dispatch=dispatch,
            workers=fleet if dispatch == "socket" else ())
        result = analyze_program(prog, cfg, jobs=jobs)
        assert result.cert_invariants, "engine recorded no loop records"
        cert = build_certificate(result, src, f"fam_{seed}.c")
        chk = check_certificate(cert)
        assert chk.exit_code in (0, 1)
        assert chk.loops_checked == len(
            cert["payload"]["loop_records"])
        assert chk.claimed_alarms == len(cert["payload"]["alarms"])


# ---------------------------------------------------------------------------
# Serve-side certification
# ---------------------------------------------------------------------------

SERVE_SRC = """
volatile float in1;
int count = 0;
float x = 0.0f;
void main() {
  while (1) {
    float v = in1;
    if (count < 100000) { count = count + 1; }
    x = 0.8f * x + v;
    if (x > 1000.0f) { x = 1000.0f; }
    __ASTREE_wait_for_clock();
  }
}
"""


def _run_msg(job_id):
    return {"op": "run", "job_id": job_id,
            "sources": [["serve.c", SERVE_SRC]], "entry": "main",
            "config_overrides": {"input_ranges": {"in1": [-10.0, 10.0]},
                                 "max_clock": 1000}}


class TestServeCertification:
    def test_warm_run_is_certified(self, tmp_path):
        ex = JobExecutor(str(tmp_path), certify_mode="all")
        cold = ex.run(_run_msg("j1"))
        assert cold["ok"] and cold["harvested"]
        assert not cold["certified"]  # cold runs are not warm-validated
        warm = ex.run(_run_msg("j2"))
        assert warm["ok"]
        assert warm["result"]["cross_run_hits"] > 0
        assert warm["certified"] and not warm["certify_rejected"]
        assert warm["digest"] == cold["digest"]
        assert ex.stats()["certify"] == {"mode": "all", "certified": 1,
                                         "rejections": 0}

    def test_warm_after_daemon_restart_is_certified(self, tmp_path):
        # Fresh executor over the same cache dir = the daemon-restart
        # journal path: the warm hit replays a journal written by a
        # process that no longer exists, and still certifies.
        cold = JobExecutor(str(tmp_path),
                           certify_mode="all").run(_run_msg("j1"))
        restarted = JobExecutor(str(tmp_path), certify_mode="all")
        warm = restarted.run(_run_msg("j2"))
        assert warm["result"]["cross_run_hits"] > 0
        assert warm["certified"]
        assert warm["digest"] == cold["digest"]

    def test_rejected_warm_result_is_rerun_cold(self, tmp_path,
                                                monkeypatch):
        import repro.certify as certify_mod

        ex = JobExecutor(str(tmp_path), certify_mode="all")
        cold = ex.run(_run_msg("j1"))

        real = certify_mod.certify_result
        calls = {"n": 0}

        def fail_first(result, sources, filename="<input>"):
            calls["n"] += 1
            if calls["n"] == 1:
                raise CertificateError("injected warm-result rejection")
            return real(result, sources, filename)

        monkeypatch.setattr(certify_mod, "certify_result", fail_first)
        warm = ex.run(_run_msg("j2"))
        assert warm["ok"]
        assert warm["certify_rejected"]
        assert warm["certified"]  # the cold re-run certified
        # The re-run was genuinely cold (no journal replay) and lands
        # on the same digest.
        assert warm["result"]["cross_run_hits"] == 0
        assert warm["digest"] == cold["digest"]
        assert ex.stats()["certify"]["rejections"] == 1

    def test_double_failure_fails_the_job(self, tmp_path, monkeypatch):
        import repro.certify as certify_mod

        ex = JobExecutor(str(tmp_path), certify_mode="all")
        ex.run(_run_msg("j1"))

        def always_fail(result, sources, filename="<input>"):
            raise CertificateError("nothing certifies today")

        monkeypatch.setattr(certify_mod, "certify_result", always_fail)
        reply = ex.run(_run_msg("j2"))
        # Neither the warm result nor the cold re-run validated: the
        # job fails with an error envelope, nothing is returned as ok.
        assert reply["ok"] is False
        assert "CertificateError" in reply["error"]

    def test_sampled_mode_is_deterministic(self, tmp_path):
        ex = JobExecutor(str(tmp_path), certify_mode="sampled")
        ex.run(_run_msg("j1"))
        first = ex.run(_run_msg("j2"))
        second = ex.run(_run_msg("j3"))
        # Same source digest -> same sampling decision every time.
        assert first["certified"] == second["certified"]

    def test_off_mode_never_certifies(self, tmp_path):
        ex = JobExecutor(str(tmp_path), certify_mode="off")
        ex.run(_run_msg("j1"))
        warm = ex.run(_run_msg("j2"))
        assert warm["result"]["cross_run_hits"] > 0
        assert not warm["certified"]

    def test_server_counters_and_stats(self, tmp_path):
        import shutil

        from repro.serve.jobs import Job
        from repro.serve.server import AnalysisServer, ServeConfig

        cache_dir = str(tmp_path / "cache")
        overrides = {"input_ranges": {"in1": [-10.0, 10.0]},
                     "max_clock": 1000}

        cold_server = AnalysisServer(ServeConfig(
            socket_path=str(tmp_path / "s1.sock"), cache_dir=cache_dir,
            isolate_jobs=False, certify_serve="all"))
        j1 = Job("job-1", [("serve.c", SERVE_SRC)], "main", overrides)
        cold_server._serve_job(j1)
        assert j1.envelope["ok"]

        # Restart with the exact-result cache pruned but the fixpoint
        # journals intact (the stores evict independently): the only
        # way to answer job 2 is the journal-warmed path, which a
        # certify_serve="all" daemon must validate and count.
        shutil.rmtree(os.path.join(cache_dir, "results"))
        server = AnalysisServer(ServeConfig(
            socket_path=str(tmp_path / "s2.sock"), cache_dir=cache_dir,
            isolate_jobs=False, certify_serve="all"))
        j2 = Job("job-2", [("serve.c", SERVE_SRC)], "main", overrides)
        server._serve_job(j2)
        assert j2.envelope["ok"]
        assert j2.envelope["result"]["cross_run_hits"] > 0
        assert j2.envelope["digest"] == j1.envelope["digest"]
        stats = server.stats()["certify"]
        assert stats["mode"] == "all"
        assert stats["certified"] == 1
        assert stats["rejections"] == 0

    def test_render_serve_stats_certify_line(self):
        from repro.report import render_serve_stats

        text = render_serve_stats({
            "certify": {"mode": "all", "certified": 7, "rejections": 2},
        })
        assert "certification (all)" in text
        assert "7 warm result(s) certified" in text
        assert "2 rejected" in text
