"""Failure injection: genuine bugs the analyzer must report.

Soundness means *every* real run-time error is covered by an alarm.  Each
test plants a true error reachable under the declared input ranges and
checks the refined analyzer (with every precision feature enabled) still
reports it — precision features must never mask real errors.
"""

import pytest

from repro import AnalyzerConfig, analyze
from repro.iterator.alarms import AlarmKind


def kinds(r):
    return {a.kind for a in r.alarms}


def run(src, **ranges):
    return analyze(src, config=AnalyzerConfig(input_ranges=ranges))


class TestTrueErrors:
    def test_unguarded_division(self):
        src = """
        volatile int v; int x;
        int main(void) { int d = v; x = 100 / d; return 0; }
        """
        assert AlarmKind.DIV_BY_ZERO in kinds(run(src, v=(0, 5)))

    def test_unchecked_array_write(self):
        src = """
        volatile int v; float a[8];
        int main(void) { int i = v; a[i] = 1.0f; return 0; }
        """
        assert AlarmKind.ARRAY_OOB in kinds(run(src, v=(0, 8)))

    def test_off_by_one_loop(self):
        src = """
        float a[8]; float x;
        int main(void) {
            int i;
            for (i = 0; i <= 8; i++) { x = a[i]; }
            return 0;
        }
        """
        assert AlarmKind.ARRAY_OOB in kinds(run(src))

    def test_counter_without_saturation_overflows(self):
        """An int counter incremented freely (not once-per-tick) overflows."""
        src = """
        volatile int v; int c;
        int main(void) {
            c = 0;
            while (1) {
                c = c + v;   /* up to 1000 per cycle: clock cannot bound */
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        r = analyze(src, config=AnalyzerConfig(input_ranges={"v": (0, 1000)},
                                               max_clock=3_600_000_000))
        assert AlarmKind.INT_OVERFLOW in kinds(r)

    def test_filter_with_unstable_coefficients(self):
        """a^2 - 4b >= 0 (real poles, |pole| > 1): genuinely divergent —
        the ellipsoid domain must NOT apply and the overflow is reported."""
        src = """
        volatile float vin;
        float X, Y;
        int main(void) {
            float t, Xp;
            X = 0.0f; Y = 0.0f;
            while (1) {
                t = vin;
                Xp = 2.5f * X - 0.9f * Y + t;   /* unstable */
                Y = X;
                X = Xp;
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        r = run(src, vin=(-1.0, 1.0))
        assert AlarmKind.FLOAT_OVERFLOW in kinds(r)
        # The site must not be (incorrectly) claimed by the ellipsoid domain.
        assert r.filter_site_count == 0

    def test_sqrt_of_negative_input(self):
        src = """
        volatile float v; float x;
        int main(void) { x = sqrtf(v); return 0; }
        """
        assert AlarmKind.INVALID_OP in kinds(run(src, v=(-5.0, 5.0)))

    def test_cast_loses_range(self):
        src = """
        volatile float v; short s;
        int main(void) { s = (short)v; return 0; }
        """
        assert AlarmKind.CAST_RANGE in kinds(run(src, v=(0.0, 1e6)))

    def test_violated_user_assertion(self):
        src = """
        volatile int v; int x;
        int main(void) {
            x = v * 2;
            __ASTREE_assert(x < 100);
            return 0;
        }
        """
        assert AlarmKind.ASSERT_FAIL in kinds(run(src, v=(0, 60)))

    def test_shift_by_input(self):
        src = """
        volatile int v; int x;
        int main(void) { x = 1 << v; return 0; }
        """
        assert AlarmKind.SHIFT_RANGE in kinds(run(src, v=(0, 32)))

    def test_error_behind_boolean_guard_still_found(self):
        """A decision tree must not eliminate a division that IS reachable:
        here B is true when X == 0, and the division runs under B."""
        src = """
        volatile int vin;
        int X; _Bool B; float Y;
        int main(void) {
            X = vin;
            B = (X == 0);
            if (B) { Y = 100.0f / X; }   /* divides exactly when X == 0 */
            return 0;
        }
        """
        assert AlarmKind.DIV_BY_ZERO in kinds(run(src, vin=(0, 100)))

    def test_bug_in_generated_family_variant(self):
        """Planting a bug into a family program is detected."""
        from repro.synth import FamilySpec, generate_program

        gp = generate_program(FamilySpec(target_kloc=0.2, seed=5))
        bugged = gp.source.replace(
            "int main(void) {",
            "int main(void) {\n    { int z = 0; z = 5 / z; }", 1)
        r = analyze(bugged, "bugged.c", config=gp.analyzer_config())
        assert AlarmKind.DIV_BY_ZERO in kinds(r)


class TestPrecisionDoesNotMaskErrors:
    """Every feature toggled ON must keep the true alarms of a buggy
    program (features refine over-approximations, never drop executions)."""

    SRC = """
    volatile int v; int x; float a[4];
    int main(void) {
        int d = v;
        x = 100 / d;          /* true division by zero (v may be 0) */
        a[d] = 1.0f;          /* true out-of-bounds (v may be 10) */
        return 0;
    }
    """

    @pytest.mark.parametrize("overrides", [
        {},
        {"octagon_pivot_reduction": True},
        {"default_unroll": 3},
        {"widening_delay": 6},
        {"partition_functions": {"main"}},
    ], ids=["default", "pivot-reduction", "more-unrolling",
            "longer-delay", "partitioning"])
    def test_true_alarms_survive(self, overrides):
        cfg = AnalyzerConfig(input_ranges={"v": (0, 10)}, **overrides)
        r = analyze(self.SRC, config=cfg)
        assert AlarmKind.DIV_BY_ZERO in kinds(r)
        assert AlarmKind.ARRAY_OOB in kinds(r)
