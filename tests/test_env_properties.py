"""Property-based tests for MemoryEnv: lattice laws and sharing behavior."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.domains.values import CellValue
from repro.memory.environment import MemoryEnv
from repro.numeric import IntInterval

bound = st.integers(min_value=-100, max_value=100)


@st.composite
def envs(draw):
    """Environments over a fixed cell set (0..5).

    MemoryEnv.includes treats a key missing on one side conservatively
    (sound for the stabilization check, where all states at one program
    point share the same created cells), so lattice-law tests use aligned
    key sets.
    """
    if draw(st.booleans()) and draw(st.integers(0, 9)) == 0:
        return MemoryEnv.make_bottom(max_clock=1000)
    env = MemoryEnv.initial(max_clock=1000)
    for cid in range(6):
        a = draw(bound)
        b = draw(bound)
        if a > b:
            a, b = b, a
        env = env.set(cid, CellValue(IntInterval.of(a, b)))
    return env


class TestEnvLattice:
    @settings(max_examples=80, deadline=None)
    @given(envs(), envs())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert j.includes(a) and j.includes(b)

    @settings(max_examples=80, deadline=None)
    @given(envs(), envs())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert a.includes(m) and b.includes(m)

    @settings(max_examples=80, deadline=None)
    @given(envs(), envs())
    def test_widen_upper_bound(self, a, b):
        w = a.widen(b)
        assert w.includes(a) and w.includes(b)

    @settings(max_examples=80, deadline=None)
    @given(envs())
    def test_includes_reflexive(self, a):
        assert a.includes(a)

    @settings(max_examples=80, deadline=None)
    @given(envs(), envs(), envs())
    def test_join_associative_up_to_inclusion(self, a, b, c):
        left = a.join(b).join(c)
        right = a.join(b.join(c))
        assert left.includes(right) and right.includes(left)

    @settings(max_examples=80, deadline=None)
    @given(envs(), envs())
    def test_join_commutative(self, a, b):
        ab = a.join(b)
        ba = b.join(a)
        assert ab.includes(ba) and ba.includes(ab)

    @settings(max_examples=80, deadline=None)
    @given(envs())
    def test_join_idempotent(self, a):
        j = a.join(a)
        assert j.includes(a) and a.includes(j)

    @settings(max_examples=60, deadline=None)
    @given(envs(), envs())
    def test_equal_consistent_with_includes(self, a, b):
        if a.equal(b):
            assert a.includes(b) and b.includes(a)

    @settings(max_examples=60, deadline=None)
    @given(envs())
    def test_bottom_is_least(self, a):
        bot = a.to_bottom()
        assert a.includes(bot)
        joined = a.join(bot)
        assert joined.includes(a) and a.includes(joined)


class TestEnvSharing:
    def test_join_of_identical_is_shared(self):
        env = MemoryEnv.initial()
        for cid in range(100):
            env = env.set(cid, CellValue(IntInterval.of(0, cid)))
        j = env.join(env)
        assert j.cells._root is env.cells._root

    def test_diff_cids_small_for_one_change(self):
        env = MemoryEnv.initial()
        for cid in range(200):
            env = env.set(cid, CellValue(IntInterval.of(0, 1)))
        env2 = env.set(77, CellValue(IntInterval.of(5, 6)))
        assert 77 in set(env.diff_cids(env2))
        assert len(list(env.diff_cids(env2))) < 20

    def test_weak_set_preserves_old_values(self):
        env = MemoryEnv.initial().set(0, CellValue(IntInterval.of(0, 1)))
        env = env.weak_set(0, CellValue(IntInterval.of(10, 12)))
        assert env.get(0).itv == IntInterval.of(0, 12)

    def test_remove_many(self):
        env = MemoryEnv.initial()
        for cid in range(10):
            env = env.set(cid, CellValue(IntInterval.of(0, 1)))
        env = env.remove_many([2, 4, 6])
        assert env.get(2) is None and env.get(3) is not None

    def test_tick_only_touches_clocked_cells(self):
        env = MemoryEnv.initial(max_clock=100)
        plain = CellValue(IntInterval.of(0, 5))
        clocked = CellValue(IntInterval.of(0, 5),
                            minus_clock=IntInterval.of(0, 0),
                            plus_clock=IntInterval.of(0, 0))
        env = env.set(0, plain).set(1, clocked)
        ticked = env.tick()
        # Physically shared: untouched.  (Compared against the env's own
        # object, not `plain` — set() may intern to an ==-equal canonical
        # representative.)
        assert ticked.get(0) is env.get(0)
        assert ticked.get(1).minus_clock == IntInterval.of(-1, -1)
