"""Tests for program versions in the family (preprocessor conditionals)."""

import pytest

from repro import analyze
from repro.synth import FamilySpec, generate_program


class TestVersions:
    def test_versions_share_source_shape(self):
        v0 = generate_program(FamilySpec(target_kloc=0.2, seed=5, version=0))
        v1 = generate_program(FamilySpec(target_kloc=0.2, seed=5, version=1))
        assert v0.source != v1.source
        assert "#define VERSION 0" in v0.source
        assert "#define VERSION 1" in v1.source
        # Identical modulo the version define.
        assert v0.source.replace("VERSION 0", "VERSION 1") == v1.source

    def test_both_versions_verify(self):
        """The analyzer is adapted to the *family*: every version of every
        program is proved without re-tuning (Sect. 3.2)."""
        for version in (0, 1):
            gp = generate_program(
                FamilySpec(target_kloc=0.2, seed=5, version=version))
            r = analyze(gp.source, "f.c", config=gp.analyzer_config())
            assert r.alarm_count == 0, f"version {version}"

    def test_version_selects_different_helper(self):
        from repro.frontend import compile_source
        from repro.frontend.pretty import format_function

        v1 = generate_program(FamilySpec(target_kloc=0.2, seed=5, version=1))
        prog = compile_source(v1.source, "f.c")
        text = format_function(prog.functions["clamp_ref"])
        assert "0.001" in text  # the deadband branch was selected

    def test_version_zero_has_plain_helper(self):
        from repro.frontend import compile_source
        from repro.frontend.pretty import format_function

        v0 = generate_program(FamilySpec(target_kloc=0.2, seed=5, version=0))
        prog = compile_source(v0.source, "f.c")
        text = format_function(prog.functions["clamp_ref"])
        assert "0.001" not in text
