"""Tests for per-cell values, the clocked domain, cells and environments."""

import math

import pytest

from repro.domains.values import (
    CellValue, ClockInfo, bottom_value, const_value, interval_for_type,
    top_value,
)
from repro.frontend import compile_source
from repro.frontend.c_types import DOUBLE, FLOAT, INT, UCHAR, UINT
from repro.memory.cells import (
    AtomicLayout, CellTable, ExpandedArrayLayout, RecordLayout,
    ShrunkArrayLayout,
)
from repro.memory.environment import MemoryEnv
from repro.numeric import FloatInterval, IntInterval


class TestCellValueLattice:
    def test_top_of_int_type_is_type_range(self):
        v = top_value(INT)
        assert v.itv == IntInterval.of(-(2**31), 2**31 - 1)

    def test_top_of_float_type_is_finite_range(self):
        v = top_value(FLOAT)
        assert v.itv.is_bounded

    def test_const(self):
        assert const_value(INT, 5).itv == IntInterval.const(5)
        assert const_value(DOUBLE, 1.5).itv == FloatInterval.const(1.5)

    def test_bottom(self):
        assert bottom_value(INT).is_bottom
        assert bottom_value(FLOAT).is_bottom

    def test_join(self):
        a = const_value(INT, 1)
        b = const_value(INT, 5)
        assert a.join(b).itv == IntInterval.of(1, 5)

    def test_join_with_bottom(self):
        a = const_value(INT, 1)
        assert a.join(bottom_value(INT)) == a

    def test_meet_disjoint_is_bottom(self):
        a = const_value(INT, 1)
        b = const_value(INT, 2)
        assert a.meet(b).is_bottom

    def test_widen_jumps(self):
        a = CellValue(IntInterval.of(0, 10))
        b = CellValue(IntInterval.of(0, 11))
        assert a.widen(b).itv.hi is None

    def test_widen_with_thresholds(self):
        a = CellValue(IntInterval.of(0, 10))
        b = CellValue(IntInterval.of(0, 11))
        w = a.widen(b, [-math.inf, 64.0, math.inf])
        assert w.itv.hi == 64

    def test_narrow(self):
        a = CellValue(IntInterval.of(0, None))
        b = CellValue(IntInterval.of(0, 10))
        assert a.narrow(b).itv == IntInterval.of(0, 10)

    def test_includes(self):
        big = CellValue(IntInterval.of(0, 10))
        small = CellValue(IntInterval.of(3, 4))
        assert big.includes(small) and not small.includes(big)

    def test_float_range_of_int_cell(self):
        v = CellValue(IntInterval.of(-3, 7))
        fr = v.float_range()
        assert fr.lo == -3.0 and fr.hi == 7.0


class TestClockedDomain:
    def test_initial_clock(self):
        c = ClockInfo.initial(3600)
        assert c.range == IntInterval.const(0)

    def test_tick_advances(self):
        c = ClockInfo.initial(3600).tick().tick()
        assert c.range == IntInterval.const(2)

    def test_tick_bounded_by_max_clock(self):
        c = ClockInfo.initial(2)
        for _ in range(5):
            c = c.tick()
        assert c.range.hi <= 2

    def test_counter_bounded_via_clock_reduction(self):
        """A counter incremented once per cycle is bounded by max_clock
        even when its own interval has been widened to +inf (Sect. 6.2.1)."""
        clock = ClockInfo(IntInterval.of(0, 3600), 3600)
        v = CellValue(IntInterval.of(0, None),      # interval widened to +inf
                      minus_clock=IntInterval.of(-10, 0),  # v - clock in [-10, 0]
                      plus_clock=IntInterval.of(0, None))
        reduced = v.reduce_with_clock(clock)
        assert reduced.itv.hi is not None
        assert reduced.itv.hi <= 3600

    def test_tick_shifts_clocked_components(self):
        v = CellValue(IntInterval.const(5),
                      minus_clock=IntInterval.const(5),
                      plus_clock=IntInterval.const(5))
        t = v.on_clock_tick()
        assert t.minus_clock == IntInterval.const(4)
        assert t.plus_clock == IntInterval.const(6)
        assert t.itv == IntInterval.const(5)

    def test_increment_shifts_clocked_components(self):
        v = CellValue(IntInterval.const(5),
                      minus_clock=IntInterval.const(0),
                      plus_clock=IntInterval.const(10))
        s = v.shift_clocked(IntInterval.const(1))
        assert s.minus_clock == IntInterval.const(1)
        assert s.plus_clock == IntInterval.const(11)

    def test_with_clock_tracking(self):
        clock = ClockInfo(IntInterval.of(2, 3), 100)
        v = CellValue(IntInterval.const(5)).with_clock_tracking(clock)
        assert v.minus_clock == IntInterval.of(2, 3)
        assert v.plus_clock == IntInterval.of(7, 8)

    def test_reduction_never_empties(self):
        clock = ClockInfo(IntInterval.of(0, 10), 10)
        v = CellValue(IntInterval.of(100, 200),
                      minus_clock=IntInterval.of(0, 0),
                      plus_clock=IntInterval.of(0, 0))
        # Inconsistent components: reduction falls back to the interval.
        assert not v.reduce_with_clock(clock).is_bottom


class TestCellTable:
    def prog(self, src):
        return compile_source(src, "t.c")

    def test_scalar_gets_one_cell(self):
        prog = self.prog("int x; void main(void) { x = 1; }")
        table = CellTable.for_program(prog)
        var = prog.global_by_name("x")
        assert isinstance(table.layout(var.uid), AtomicLayout)

    def test_small_array_expanded(self):
        prog = self.prog("float a[8]; void main(void) { a[0] = 1.0f; }")
        table = CellTable.for_program(prog)
        var = prog.global_by_name("a")
        layout = table.layout(var.uid)
        assert isinstance(layout, ExpandedArrayLayout)
        assert len(table.cells_of_var(var.uid)) == 8

    def test_large_array_shrunk(self):
        prog = self.prog("float a[10000]; int i; void main(void) { a[i] = 1.0f; }")
        table = CellTable.for_program(prog, expand_threshold=256)
        var = prog.global_by_name("a")
        layout = table.layout(var.uid)
        assert isinstance(layout, ShrunkArrayLayout)
        cell = layout.cell
        assert cell.is_summary and cell.summarized == 10000

    def test_struct_is_field_sensitive(self):
        prog = self.prog(
            "struct s { int a; float b; }; struct s v;"
            "void main(void) { v.a = 1; }")
        table = CellTable.for_program(prog)
        var = prog.global_by_name("v")
        layout = table.layout(var.uid)
        assert isinstance(layout, RecordLayout)
        cells = table.cells_of_var(var.uid)
        assert len(cells) == 2
        assert {c.name for c in cells} == {"v.a", "v.b"}

    def test_nested_array_of_structs(self):
        prog = self.prog(
            "struct p { float x; float y; }; struct p pts[3];"
            "void main(void) { pts[0].x = 1.0f; }")
        table = CellTable.for_program(prog)
        var = prog.global_by_name("pts")
        assert len(table.cells_of_var(var.uid)) == 6

    def test_volatile_flag_propagates(self):
        prog = self.prog("volatile int v; int x; void main(void) { x = v; }")
        table = CellTable.for_program(prog)
        var = prog.global_by_name("v")
        assert table.scalar_cell(var.uid).volatile

    def test_locals_have_cells(self):
        prog = self.prog("void main(void) { int loc = 3; loc = loc + 1; }")
        table = CellTable.for_program(prog)
        fn = prog.functions["main"]
        assert all(table.has_var(v.uid) for v in fn.locals)


class TestMemoryEnv:
    def v(self, lo, hi):
        return CellValue(IntInterval.of(lo, hi))

    def test_initial_not_bottom(self):
        assert not MemoryEnv.initial().is_bottom

    def test_bottom_propagation_on_set(self):
        env = MemoryEnv.initial().set(0, bottom_value(INT))
        assert env.is_bottom

    def test_strong_update(self):
        env = MemoryEnv.initial().set(0, self.v(0, 1)).set(0, self.v(5, 6))
        assert env.get(0).itv == IntInterval.of(5, 6)

    def test_weak_update_joins(self):
        env = MemoryEnv.initial().set(0, self.v(0, 1)).weak_set(0, self.v(5, 6))
        assert env.get(0).itv == IntInterval.of(0, 6)

    def test_join_cellwise(self):
        a = MemoryEnv.initial().set(0, self.v(0, 1)).set(1, self.v(0, 0))
        b = MemoryEnv.initial().set(0, self.v(5, 6)).set(1, self.v(0, 0))
        j = a.join(b)
        assert j.get(0).itv == IntInterval.of(0, 6)
        assert j.get(1).itv == IntInterval.const(0)

    def test_join_with_bottom(self):
        a = MemoryEnv.initial().set(0, self.v(0, 1))
        assert a.join(a.to_bottom()).get(0).itv == IntInterval.of(0, 1)

    def test_meet_to_bottom(self):
        a = MemoryEnv.initial().set(0, self.v(0, 1))
        b = MemoryEnv.initial().set(0, self.v(5, 6))
        assert a.meet(b).is_bottom

    def test_widen_with_frozen_cells(self):
        a = MemoryEnv.initial().set(0, self.v(0, 10)).set(1, self.v(0, 10))
        b = MemoryEnv.initial().set(0, self.v(0, 20)).set(1, self.v(0, 20))
        w = a.widen(b, frozen_cids={1})
        assert w.get(0).itv.hi is None          # widened
        assert w.get(1).itv == IntInterval.of(0, 20)  # delayed: joined

    def test_includes(self):
        a = MemoryEnv.initial().set(0, self.v(0, 10))
        b = MemoryEnv.initial().set(0, self.v(2, 3))
        assert a.includes(b) and not b.includes(a)

    def test_includes_bottom(self):
        a = MemoryEnv.initial().set(0, self.v(0, 10))
        assert a.includes(a.to_bottom())
        assert not a.to_bottom().includes(a)

    def test_equal(self):
        a = MemoryEnv.initial().set(0, self.v(0, 10))
        b = MemoryEnv.initial().set(0, self.v(0, 10))
        assert a.equal(b)

    def test_tick_advances_clock_and_cells(self):
        env = MemoryEnv.initial(max_clock=100)
        v = CellValue(IntInterval.const(0),
                      minus_clock=IntInterval.const(0),
                      plus_clock=IntInterval.const(0))
        env = env.set(0, v).tick()
        assert env.clock.range == IntInterval.const(1)
        assert env.get(0).minus_clock == IntInterval.const(-1)

    def test_narrow_refines_widened(self):
        a = MemoryEnv.initial().set(0, CellValue(IntInterval.of(0, None)))
        b = MemoryEnv.initial().set(0, self.v(0, 50))
        assert a.narrow(b).get(0).itv == IntInterval.of(0, 50)
