"""Dispatch-backend differential and fault-injection tests.

The engine's contract is that the dispatch backend — inline, pool or
socket, at any jobs=N, under any scheduling accident (steals, retries,
workers joining or leaving mid-fixpoint) — produces results
*byte-identical* to the sequential analysis.  A 20-seed sweep crosses
``dispatch x jobs x incremental x vectorize`` against per-seed
sequential references; the fault units then inject worker crashes,
partitions, slow workers (steal bait), version mismatches and late
joiners into the socket fleet and hold recovery to the same standard.
"""

import dataclasses
import os
import socket as socketlib
import subprocess
import sys
import tempfile
import threading
import time

import pytest

from repro.analysis import analyze_program
from repro.config import AnalyzerConfig
from repro.frontend import compile_source
from repro.parallel.remote import parse_worker_addr

SRC_ROOT = os.path.join(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))), "src")


# ---------------------------------------------------------------------------
# Worker fleet helpers
# ---------------------------------------------------------------------------


def _spawn_worker(listen="127.0.0.1:0", env_extra=None):
    """Start one dispatch worker; return (proc, address)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (SRC_ROOT, env.get("PYTHONPATH")) if p)
    env.update(env_extra or {})
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.parallel.remote", "--listen", listen],
        stdout=subprocess.PIPE, stderr=subprocess.DEVNULL, env=env)
    deadline = time.monotonic() + 60.0
    line = b""
    while b"\n" not in line:
        assert time.monotonic() < deadline, "worker did not start"
        chunk = os.read(proc.stdout.fileno(), 4096)
        assert chunk, "worker died before announcing its address"
        line += chunk
    text = line.split(b"\n", 1)[0].decode()
    addr = text.split("listening on ", 1)[1].strip()
    return proc, addr


def _stop_worker(proc):
    if proc.poll() is None:
        proc.terminate()
        try:
            proc.wait(timeout=5.0)
        except subprocess.TimeoutExpired:
            proc.kill()
            proc.wait(timeout=5.0)
    proc.stdout.close()


@pytest.fixture(scope="module")
def fleet():
    """Two plain workers shared by every socket run in the sweep (a
    worker serves one analyzer connection at a time and loops back to
    accept, so sequential runs reuse the same fleet)."""
    workers = [_spawn_worker() for _ in range(2)]
    yield tuple(addr for _, addr in workers)
    for proc, _ in workers:
        _stop_worker(proc)


# ---------------------------------------------------------------------------
# Program family: independent subsystems, seed-varied shape
# ---------------------------------------------------------------------------


def _subsystem_source(nsub, width):
    """Independent float filter subsystems (the paper's program family).

    Deliberately no *persistent* integer state cells: on clock-tracked
    integer counters the incremental engine's splices already produce a
    (sound, tighter) invariant than full re-execution on today's trunk —
    a pre-existing sequential-engine divergence, reproducible at jobs=1
    with no dispatch backend involved — and a differential suite for
    *dispatch* must not sit on top of it.  Volatile int inputs and local
    int counters keep integer transfer functions in the mix."""
    lines = []
    for k in range(nsub):
        lines.append(f"volatile float in{k}_a;")
        lines.append(f"volatile int in{k}_b;")
        lines.append(f"float s{k}_x; float s{k}_y; float s{k}_tab[{width}];")
    for k in range(nsub):
        lines.append(f"""
void step_{k}(void) {{
    float e; int j; int m;
    e = in{k}_a;
    if (e > 100.0f) {{ e = 100.0f; }}
    if (e < -100.0f) {{ e = -100.0f; }}
    m = in{k}_b;
    j = 0;
    while (j < {width}) {{
        s{k}_tab[j] = 0.8f * s{k}_tab[j] + 0.2f * e;
        j = j + 1;
    }}
    s{k}_x = 0.9f * s{k}_x + 0.1f * e;
    if (m) {{ s{k}_y = s{k}_x; }} else {{ s{k}_y = 0.0f; }}
}}""")
    lines.append("int main(void) {")
    lines.append("  while (1) {")
    for k in range(nsub):
        lines.append(f"    step_{k}();")
    lines.append("    __ASTREE_wait_for_clock();")
    lines.append("  }")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


def _case(seed, **overrides):
    """Seed-varied program + config (dispatchable by construction)."""
    nsub = 2 + seed % 3
    width = 4 + (seed * 3) % 7
    src = _subsystem_source(nsub, width)
    amp = 100.0 + 20.0 * (seed % 7)
    ranges = {}
    for k in range(nsub):
        ranges[f"in{k}_a"] = (-amp, amp)
        ranges[f"in{k}_b"] = (0.0, 1.0)
    cfg = AnalyzerConfig(input_ranges=ranges,
                         max_clock=800 + 100 * (seed % 5),
                         parallel_min_stmts=8,
                         collect_invariants=True, **overrides)
    return compile_source(src, f"subsys_{seed}.c"), cfg


def _snapshot(result, work_counters=True):
    """Everything the determinism contract promises, plus (optionally)
    the widening *work* counter.  Dispatched units execute in full mode
    inside workers (fixpoint journals are process-local), so under
    ``incremental=True`` the jobs=1 run skips widening work that workers
    redo — the counter legitimately differs while every semantic field
    stays bit-identical.  Sweep rows with incremental on therefore drop
    it; everything else compares it too."""
    stats = result.invariant_stats()
    snap = {
        "alarms": [(a.kind, a.loc.line, a.loc.col, a.message)
                   for a in result.alarms],
        "exit_code": result.exit_code,
        "invariant": result.dump_invariant_text(),
        "stats": dataclasses.asdict(stats),
        "useful_oct": sorted(result.useful_octagon_packs),
        "useful_bool": result.useful_bool_pack_count,
    }
    if work_counters:
        snap["widening"] = result.widening_iterations
    return snap


# ---------------------------------------------------------------------------
# Differential sweep: dispatch x jobs x incremental x vectorize
# ---------------------------------------------------------------------------

DISPATCHES = ("inline", "pool", "socket")

SWEEP = [(s, DISPATCHES[s % 3], 2 + s % 2,
          (s // 2) % 2 == 0, (s // 3) % 2 == 0)
         for s in range(20)]


class TestDifferentialSweep:
    @pytest.mark.parametrize("seed,dispatch,jobs,incremental,vectorize",
                             SWEEP)
    def test_bit_identical_to_sequential(self, fleet, seed, dispatch, jobs,
                                         incremental, vectorize):
        prog, cfg = _case(seed, incremental=incremental,
                          vectorize=vectorize)
        seq = analyze_program(prog, cfg, jobs=1)
        par_cfg = dataclasses.replace(
            cfg, dispatch=dispatch,
            workers=fleet if dispatch == "socket" else ())
        par = analyze_program(prog, par_cfg, jobs=jobs)
        assert (_snapshot(seq, work_counters=not incremental)
                == _snapshot(par, work_counters=not incremental))
        assert par.dispatch == dispatch
        assert par.dispatch_jobs_dispatched > 0, "nothing was dispatched"
        if dispatch == "socket":
            assert par.dispatch_bytes_shipped > 0
            assert par.dispatch_workers_joined >= 1
            # Remote workers are invisible to the parent's ru_maxrss:
            # their RSS must arrive over the wire and be aggregated.
            assert par.worker_rss_kib
            assert set(par.worker_rss_kib) <= set(fleet)
            assert (par.fleet_peak_rss_kib
                    >= max(par.worker_rss_kib.values()))
            assert par.fleet_peak_rss_kib >= par.peak_rss_kib


# ---------------------------------------------------------------------------
# Fault injection
# ---------------------------------------------------------------------------


def _fault_case():
    # nsub=3, width=4: quick but many work units.  incremental off so the
    # widening work counter is part of the comparison too (see _snapshot).
    return _case(7, incremental=False)


def _incident_pairs(result):
    return {(i.kind, i.action) for i in result.incidents}


class TestSocketFaults:
    def test_worker_killed_mid_job(self, tmp_path, monkeypatch):
        """A spawned worker hard-exits mid-job (SIGKILL/OOM stand-in):
        the job is retried once on a surviving worker, the batch
        completes, and the result stays bit-identical."""
        prog, cfg = _fault_case()
        seq = analyze_program(prog, cfg, jobs=1)
        marker = tmp_path / "crash-marker"
        marker.write_text("")
        monkeypatch.setenv("REPRO_FAULT_WORKER_CRASH", str(marker))
        par = analyze_program(
            prog, dataclasses.replace(cfg, dispatch="socket"), jobs=2)
        assert _snapshot(seq) == _snapshot(par)
        assert par.dispatch_jobs_retried >= 1
        assert par.dispatch_workers_lost >= 1
        assert ("worker-crash", "in-batch-retry") in _incident_pairs(par)

    def test_partition_mid_job(self, tmp_path, monkeypatch):
        """A worker drops the connection mid-job without replying (a
        network partition): classified as a mid-job disconnect, retried
        once on a peer, bit-identical result."""
        prog, cfg = _fault_case()
        seq = analyze_program(prog, cfg, jobs=1)
        marker = tmp_path / "close-marker"
        marker.write_text("")
        monkeypatch.setenv("REPRO_FAULT_REMOTE_CLOSE", str(marker))
        par = analyze_program(
            prog, dataclasses.replace(cfg, dispatch="socket"), jobs=2)
        assert _snapshot(seq) == _snapshot(par)
        assert par.dispatch_jobs_retried >= 1
        assert ("worker-disconnect", "in-batch-retry") in \
            _incident_pairs(par)

    def test_slow_worker_is_stolen_from(self):
        """Work-stealing: an idle fast worker takes tasks from the tail
        of a slow worker's queue — scheduling changes, results don't.

        Needs >= 4 units per batch: with 2 links and round-robin seeding
        the slow link must hold a *queued* task behind its inflight one,
        or there is nothing to steal."""
        prog, cfg = _case(2, incremental=False)  # nsub=4
        seq = analyze_program(prog, cfg, jobs=1)
        fast, addr_fast = _spawn_worker()
        slow, addr_slow = _spawn_worker(
            env_extra={"REPRO_FAULT_REMOTE_SLOW_S": "0.1"})
        try:
            par = analyze_program(prog, dataclasses.replace(
                cfg, dispatch="socket", workers=(addr_fast, addr_slow)))
            assert _snapshot(seq) == _snapshot(par)
            assert par.dispatch_jobs_stolen > 0
        finally:
            _stop_worker(fast)
            _stop_worker(slow)

    def test_version_mismatch_excluded(self):
        """A worker speaking the wrong protocol version is excluded
        permanently at handshake; the rest of the fleet carries the
        run."""
        prog, cfg = _fault_case()
        seq = analyze_program(prog, cfg, jobs=1)
        good, addr_good = _spawn_worker()
        bad, addr_bad = _spawn_worker(
            env_extra={"REPRO_FAULT_REMOTE_VERSION": "999"})
        try:
            par = analyze_program(prog, dataclasses.replace(
                cfg, dispatch="socket", workers=(addr_good, addr_bad)))
            assert _snapshot(seq) == _snapshot(par)
            assert ("worker-version-mismatch", "excluded") in \
                _incident_pairs(par)
            assert addr_bad not in par.worker_rss_kib
            assert addr_good in par.worker_rss_kib
        finally:
            _stop_worker(good)
            _stop_worker(bad)

    def test_elastic_join_mid_fixpoint(self):
        """A configured worker that comes up *after* the analysis
        starts joins the fleet at a batch boundary (elastic join) —
        until then its address is skipped with paced re-dials."""
        prog, cfg = _case(2, incremental=False)  # nsub=4
        seq = analyze_program(prog, cfg, jobs=1)
        tmp = tempfile.mkdtemp(prefix="repro-disp-")
        addr_a = f"unix:{os.path.join(tmp, 'a.sock')}"
        addr_b = f"unix:{os.path.join(tmp, 'b.sock')}"
        # Worker A is slowed per job so the fixpoint is guaranteed to
        # outlast worker B's startup (interpreter + imports take a few
        # hundred ms) no matter how warm the analyzer caches are.
        first, _ = _spawn_worker(
            listen=addr_a, env_extra={"REPRO_FAULT_REMOTE_SLOW_S": "0.05"})
        late_holder = {}

        def start_late():
            late_holder["proc"], _ = _spawn_worker(listen=addr_b)

        t = threading.Thread(target=start_late)
        t.start()
        try:
            par = analyze_program(prog, dataclasses.replace(
                cfg, dispatch="socket", workers=(addr_a, addr_b)))
            assert _snapshot(seq) == _snapshot(par)
            assert par.dispatch_workers_joined == 2
            assert addr_b in par.worker_rss_kib
            assert ("worker-unreachable", "deferred-join") in \
                _incident_pairs(par)
        finally:
            t.join()
            _stop_worker(first)
            if "proc" in late_holder:
                _stop_worker(late_holder["proc"])

    def test_unreachable_fleet_falls_back_sequential(self):
        """No worker reachable at all: the retry budget drains, the
        engine disables itself, and the analysis finishes sequentially
        with an identical verdict (failures degrade speed, never
        soundness)."""
        prog, cfg = _fault_case()
        seq = analyze_program(prog, cfg, jobs=1)
        par = analyze_program(prog, dataclasses.replace(
            cfg, dispatch="socket", workers=("127.0.0.1:1",),
            worker_connect_timeout_s=0.2, retry_backoff_s=0.01))
        assert _snapshot(seq) == _snapshot(par)
        pairs = _incident_pairs(par)
        assert ("worker-partition", "gave-up") in pairs
        assert ("parallel-disabled", "sequential-fallback") in pairs
        assert par.dispatch_jobs_dispatched == 0


# ---------------------------------------------------------------------------
# Address parsing
# ---------------------------------------------------------------------------


class TestAddresses:
    def test_tcp(self):
        assert parse_worker_addr("127.0.0.1:9100") == \
            ("tcp", ("127.0.0.1", 9100))

    def test_unix(self):
        assert parse_worker_addr("unix:/tmp/w.sock") == \
            ("unix", "/tmp/w.sock")

    @pytest.mark.parametrize("bad", ["", "unix:", "nohost", "host:port",
                                     ":9100"])
    def test_rejects_malformed(self, bad):
        with pytest.raises(ValueError, match="bad worker address"):
            parse_worker_addr(bad)

    def test_worker_announces_chosen_port(self):
        proc, addr = _spawn_worker()
        try:
            kind, (host, port) = parse_worker_addr(addr)
            assert kind == "tcp" and host == "127.0.0.1" and port > 0
            # The announced port is genuinely connectable.
            sock = socketlib.create_connection((host, port), timeout=5.0)
            sock.close()
        finally:
            _stop_worker(proc)
