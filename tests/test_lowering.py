"""Tests for type checking and lowering to IR."""

import pytest

from repro.errors import TypeError_, UnsupportedConstructError
from repro.frontend import compile_source
from repro.frontend import ir as I
from repro.frontend.c_types import (
    DOUBLE, FLOAT, INT, UINT, ArrayType, RecordType,
    usual_arithmetic_conversion, integer_promotion, SHORT, UCHAR, ULONG, LONG,
)


def lower_main(body, globals_="", entry="main"):
    src = f"{globals_}\nvoid main(void) {{ {body} }}"
    return compile_source(src, "t.c", entry=entry)


def main_stmts(body, globals_=""):
    return lower_main(body, globals_).functions["main"].body


class TestConversions:
    def test_promotion_of_small_ints(self):
        assert integer_promotion(SHORT) is INT
        assert integer_promotion(UCHAR) is INT

    def test_usual_conversion_float_wins(self):
        assert usual_arithmetic_conversion(INT, FLOAT) is FLOAT
        assert usual_arithmetic_conversion(DOUBLE, FLOAT) is DOUBLE

    def test_usual_conversion_unsigned_wins_same_rank(self):
        assert usual_arithmetic_conversion(INT, UINT) is UINT
        assert usual_arithmetic_conversion(LONG, ULONG) is ULONG


class TestGlobals:
    def test_zero_initialization(self):
        prog = lower_main("x = x;", "int x;")
        var = prog.global_by_name("x")
        assert prog.initializers[var.uid] == 0

    def test_explicit_initializer(self):
        prog = lower_main("x = x;", "int x = 42;")
        assert prog.initializers[prog.global_by_name("x").uid] == 42

    def test_float_global_init_rounded_to_binary32(self):
        prog = lower_main("x = x;", "float x = 0.1;")
        import numpy as np
        assert prog.initializers[prog.global_by_name("x").uid] == float(np.float32(0.1))

    def test_array_initializer_padded_with_zeros(self):
        prog = lower_main("a[0] = a[1];", "int a[4] = {1, 2};")
        init = prog.initializers[prog.global_by_name("a").uid]
        assert init == [1, 2, 0, 0]

    def test_struct_initializer(self):
        prog = lower_main("s.a = s.b;", "struct t {int a; int b;}; struct t s = {1, 2};")
        init = prog.initializers[prog.global_by_name("s").uid]
        assert init == {"a": 1, "b": 2}

    def test_unused_global_deleted(self):
        prog = lower_main("x = 1;", "int x; int unused;")
        assert prog.global_by_name("unused") is None

    def test_volatile_global_registered(self):
        prog = lower_main("x = v;", "volatile int v; int x;")
        assert [v.name for v in prog.volatile_inputs] == ["v"]

    def test_static_local_becomes_global(self):
        prog = lower_main("static int c = 5; c = c + 1;")
        names = [v.name for v in prog.globals]
        assert "main::c" in names

    def test_conflicting_global_types_rejected(self):
        with pytest.raises(Exception):
            lower_main("x = 1;", "int x; float x;")


class TestConstantFolding:
    def test_arith_folding(self):
        stmts = main_stmts("x = 2 + 3 * 4;", "int x;")
        assert isinstance(stmts[0].value, I.Const)
        assert stmts[0].value.value == 14

    def test_const_scalar_folded(self):
        stmts = main_stmts("x = K + 1;", "const int K = 10; int x;")
        assert stmts[0].value.value == 11

    def test_const_array_at_const_index_folded(self):
        stmts = main_stmts("x = t[1];", "const int t[3] = {7, 8, 9}; int x;")
        assert stmts[0].value.value == 8

    def test_const_array_optimized_away(self):
        prog = lower_main("x = t[1];", "const int t[3] = {7, 8, 9}; int x;")
        assert prog.global_by_name("t") is None

    def test_const_array_at_dynamic_index_not_folded(self):
        prog = lower_main("x = t[x];", "const int t[3] = {7, 8, 9}; int x;")
        assert prog.global_by_name("t") is not None

    def test_enum_constants_fold(self):
        stmts = main_stmts("x = B;", "enum e {A, B = 5}; int x;")
        assert stmts[0].value.value == 5

    def test_sizeof_folds(self):
        stmts = main_stmts("x = sizeof(int);", "int x;")
        assert stmts[0].value.value == 4

    def test_division_by_zero_not_folded(self):
        stmts = main_stmts("x = 1 / 0;", "int x;")
        assert isinstance(stmts[0].value, I.BinOp)

    def test_int_wraparound_in_folding(self):
        stmts = main_stmts("x = 2147483647 + 1;", "int x;")
        # Folding wraps modularly (the alarm is the analyzer's business,
        # but a syntactic overflow in source is folded per target semantics).
        assert isinstance(stmts[0].value, I.Const)


class TestLoweringShapes:
    def test_for_desugars_to_while(self):
        stmts = main_stmts("int i; for (i = 0; i < 3; i++) { }")
        kinds = [type(s).__name__ for s in stmts]
        assert "SWhile" in kinds

    def test_do_while_flag(self):
        stmts = main_stmts("do { } while (0);")
        loop = [s for s in stmts if isinstance(s, I.SWhile)][0]
        assert loop.run_body_first

    def test_call_in_expression_hoisted(self):
        src = """
        int g(void) { return 1; }
        int x;
        void main(void) { x = g() + 2; }
        """
        prog = compile_source(src, "t.c")
        stmts = prog.functions["main"].body
        assert isinstance(stmts[0], I.SCall)
        assert stmts[0].result is not None

    def test_wait_intrinsic(self):
        stmts = main_stmts("__ASTREE_wait_for_clock();")
        assert isinstance(stmts[0], I.SWait)

    def test_assume_and_assert_intrinsics(self):
        stmts = main_stmts(
            "__ASTREE_known_fact(x >= 0); __ASTREE_assert(x < 10);", "int x;")
        assert isinstance(stmts[0], I.SAssume)
        assert isinstance(stmts[1], I.SCheck)

    def test_math_builtin(self):
        stmts = main_stmts("x = fabsf(x);", "float x;")
        assert isinstance(stmts[0].value, I.UnaryOp)
        assert stmts[0].value.op == "fabs"

    def test_post_increment_in_expression(self):
        stmts = main_stmts("int i = 0; x = i++;", "int x;")
        # i=0 ; temp = i ; i = i+1 ; x = temp
        assign_x = stmts[-1]
        assert isinstance(assign_x.value, I.Load)

    def test_ternary_lowered_to_if(self):
        stmts = main_stmts("x = x > 0 ? 1 : 2;", "int x;")
        assert any(isinstance(s, I.SIf) for s in stmts)

    def test_implicit_cast_inserted(self):
        stmts = main_stmts("f = i;", "float f; int i;")
        assert isinstance(stmts[0].value, I.Cast)

    def test_comparison_operand_type(self):
        stmts = main_stmts("b = f < i;", "float f; int i; int b;")
        cmp = stmts[0].value
        assert isinstance(cmp, I.BinOp) and cmp.op == "lt"
        assert cmp.ctype is INT and cmp.operand_type is FLOAT

    def test_byref_argument(self):
        src = """
        void inc(int *p) { *p = *p + 1; }
        int x;
        void main(void) { inc(&x); }
        """
        prog = compile_source(src, "t.c")
        call = prog.functions["main"].body[0]
        assert isinstance(call, I.SCall)
        assert isinstance(call.args[0], I.LVar)

    def test_pointer_forwarding(self):
        src = """
        void inc(int *p) { *p = *p + 1; }
        void twice(int *q) { inc(q); inc(q); }
        int x;
        void main(void) { twice(&x); }
        """
        prog = compile_source(src, "t.c")
        call = prog.functions["twice"].body[0]
        assert isinstance(call.args[0], I.LDeref)

    def test_switch_lowered(self):
        stmts = main_stmts(
            "switch (x) { case 1: y = 1; break; case 2: y = 2; break; default: y = 0; }",
            "int x; int y;")
        sw = stmts[0]
        assert isinstance(sw, I.SSwitch)
        assert sw.has_default and len(sw.cases) == 3


class TestTypeErrors:
    def test_undeclared_identifier(self):
        with pytest.raises(TypeError_):
            lower_main("x = 1;")

    def test_undeclared_function(self):
        with pytest.raises(TypeError_):
            lower_main("nofunc();")

    def test_wrong_arity(self):
        with pytest.raises(TypeError_):
            compile_source("void g(int a) {} void main(void) { g(); }", "t.c")

    def test_assign_to_const(self):
        with pytest.raises(TypeError_):
            lower_main("K = 2;", "const int K = 1;")

    def test_index_non_array(self):
        with pytest.raises(TypeError_):
            lower_main("x[0] = 1;", "int x;")

    def test_member_of_non_struct(self):
        with pytest.raises(TypeError_):
            lower_main("x.f = 1;", "int x;")

    def test_unknown_field(self):
        with pytest.raises(TypeError_):
            lower_main("s.zz = 1;", "struct t {int a;}; struct t s;")

    def test_return_value_from_void(self):
        with pytest.raises(TypeError_):
            compile_source("int f(void) { return; } void main(void) { }", "t.c")

    def test_missing_entry_rejected(self):
        with pytest.raises(TypeError_):
            compile_source("void notmain(void) {}", "t.c", entry="main")

    def test_global_pointer_rejected(self):
        with pytest.raises(UnsupportedConstructError):
            lower_main("", "int *p;")

    def test_mod_on_floats_rejected(self):
        with pytest.raises(TypeError_):
            lower_main("f = f % 2.0;", "float f;")


class TestLinker:
    def test_two_files_link(self):
        from repro.frontend import link_sources

        f1 = "extern int shared; void main(void) { shared = helper(); } int helper(void);"
        f2 = "int shared = 1; int helper(void) { return shared + 1; }"
        prog = link_sources([("a.c", f1), ("b.c", f2)])
        assert "helper" in prog.functions
        assert prog.global_by_name("shared") is not None

    def test_undefined_function_across_units(self):
        from repro.errors import LinkError
        from repro.frontend import link_sources

        f1 = "int helper(void); void main(void) { helper(); }"
        with pytest.raises((LinkError, TypeError_)):
            link_sources([("a.c", f1)])
