"""Property-based soundness and lattice-law tests for the abstract domains.

These exercise the invariants the whole analyzer rests on:

* γ-soundness: concrete points that satisfy the represented constraints
  stay represented after any abstract operation;
* lattice laws: join is an upper bound, meet a lower bound, widening an
  upper bound that terminates, inclusion is a preorder compatible with
  join/meet.
"""

import math

import pytest
from hypothesis import assume, given, settings, strategies as st

from repro.domains.decision_tree import DecisionTree
from repro.domains.ellipsoid import EllipsoidParams, EllipsoidValue
from repro.domains.octagon import Octagon
from repro.domains.values import CellValue
from repro.numeric import FloatInterval, IntInterval

# ---------------------------------------------------------------------------
# Strategies

bounds = st.floats(min_value=-100.0, max_value=100.0, allow_nan=False)


@st.composite
def octagons2(draw):
    """A 2-variable octagon built from random interval bounds and a couple
    of random ±1 constraints."""
    o = Octagon.top(2)
    for i in range(2):
        lo = draw(bounds)
        hi = draw(bounds)
        if lo > hi:
            lo, hi = hi, lo
        o = o.set_var_bounds(i, FloatInterval.of(lo, hi))
    if draw(st.booleans()):
        o = o.guard_upper({0: 1, 1: -1}, draw(bounds))
    if draw(st.booleans()):
        o = o.guard_upper({0: 1, 1: 1}, draw(bounds))
    return o


def point_in(o: Octagon, x: float, y: float) -> bool:
    """Concrete membership test against the octagon's closed constraints."""
    if o.is_bottom:
        return False
    c = o.closed()
    iv0, iv1 = c.var_interval(0), c.var_interval(1)
    s = c.sum_bound(0, 1)
    d = c.diff_bound(0, 1)
    return (iv0.lo <= x <= iv0.hi and iv1.lo <= y <= iv1.hi
            and s.lo <= x + y <= s.hi and d.lo <= x - y <= d.hi)


points = st.tuples(bounds, bounds)


class TestOctagonSoundness:
    @settings(max_examples=60, deadline=None)
    @given(octagons2(), octagons2(), points)
    def test_join_preserves_points(self, a, b, pt):
        x, y = pt
        if point_in(a, x, y) or point_in(b, x, y):
            assert point_in(a.join(b), x, y)

    @settings(max_examples=60, deadline=None)
    @given(octagons2(), octagons2(), points)
    def test_meet_keeps_common_points(self, a, b, pt):
        x, y = pt
        if point_in(a, x, y) and point_in(b, x, y):
            assert point_in(a.meet(b), x, y)

    @settings(max_examples=60, deadline=None)
    @given(octagons2(), octagons2(), points)
    def test_widen_upper_bounds_both(self, a, b, pt):
        x, y = pt
        w = a.widen(b)
        if point_in(a, x, y) or point_in(b, x, y):
            assert point_in(w, x, y)

    @settings(max_examples=40, deadline=None)
    @given(octagons2(), points)
    def test_closure_preserves_points(self, o, pt):
        x, y = pt
        if point_in(o, x, y):
            assert point_in(o.closed(), x, y)

    @settings(max_examples=40, deadline=None)
    @given(octagons2(), points, bounds)
    def test_shift_tracks_points(self, o, pt, delta):
        x, y = pt
        if point_in(o, x, y):
            shifted = o.shift_var(0, FloatInterval.const(delta))
            assert point_in(shifted, x + delta, y)

    @settings(max_examples=40, deadline=None)
    @given(octagons2(), octagons2())
    def test_includes_consistent_with_join(self, a, b):
        j = a.join(b)
        assert j.includes(a)
        assert j.includes(b)

    @settings(max_examples=40, deadline=None)
    @given(octagons2())
    def test_includes_reflexive(self, o):
        assert o.includes(o)

    @settings(max_examples=30, deadline=None)
    @given(octagons2(), st.lists(bounds, min_size=1, max_size=5))
    def test_widening_sequence_terminates(self, o, deltas):
        """Any growing sequence stabilizes under iterated widening."""
        cur = o
        for _ in range(64):
            grown = cur.shift_var(0, FloatInterval.of(-1.0, 1.0)).join(cur)
            nxt = cur.widen(grown)
            if nxt.includes(cur) and cur.includes(nxt):
                break
            cur = nxt
        else:
            raise AssertionError("octagon widening did not stabilize")


# ---------------------------------------------------------------------------


int_intervals = st.tuples(
    st.integers(min_value=-1000, max_value=1000),
    st.integers(min_value=-1000, max_value=1000),
).map(lambda ab: IntInterval.of(min(ab), max(ab)))


@st.composite
def cell_values(draw):
    itv = draw(int_intervals)
    if draw(st.booleans()):
        return CellValue(itv)
    mc = draw(int_intervals)
    pc = draw(int_intervals)
    return CellValue(itv, minus_clock=mc, plus_clock=pc)


class TestCellValueLattice:
    @settings(max_examples=80, deadline=None)
    @given(cell_values(), cell_values())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert j.includes(a) and j.includes(b)

    @settings(max_examples=80, deadline=None)
    @given(cell_values(), cell_values())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert a.includes(m) or m.is_bottom
        assert b.includes(m) or m.is_bottom

    @settings(max_examples=80, deadline=None)
    @given(cell_values(), cell_values())
    def test_widen_upper_bound(self, a, b):
        w = a.widen(b)
        assert w.includes(a) and w.includes(b)

    @settings(max_examples=80, deadline=None)
    @given(cell_values())
    def test_includes_reflexive(self, a):
        assert a.includes(a)

    @settings(max_examples=80, deadline=None)
    @given(cell_values(), cell_values(), cell_values())
    def test_includes_transitive(self, a, b, c):
        big = a.join(b).join(c)
        mid = a.join(b)
        assert big.includes(mid) and mid.includes(a)

    @settings(max_examples=50, deadline=None)
    @given(cell_values())
    def test_join_idempotent(self, a):
        j = a.join(a)
        assert j.includes(a) and a.includes(j)


# ---------------------------------------------------------------------------


leaf_values = st.dictionaries(
    st.sampled_from([10, 11]),
    int_intervals,
    max_size=2,
)
leaf_or_none = st.one_of(st.none(), leaf_values)


@st.composite
def dtrees(draw):
    t = DecisionTree.top([1, 2], [10, 11])
    for b in (1, 2):
        if draw(st.booleans()):
            t = t.assign_bool(b, draw(leaf_or_none), draw(leaf_or_none))
    return t


class TestDecisionTreeLattice:
    @settings(max_examples=60, deadline=None)
    @given(dtrees(), dtrees())
    def test_join_upper_bound(self, a, b):
        j = a.join(b)
        assert j.includes(a) and j.includes(b)

    @settings(max_examples=60, deadline=None)
    @given(dtrees(), dtrees())
    def test_meet_lower_bound(self, a, b):
        m = a.meet(b)
        assert a.includes(m) and b.includes(m)

    @settings(max_examples=60, deadline=None)
    @given(dtrees())
    def test_includes_reflexive(self, a):
        assert a.includes(a)

    @settings(max_examples=60, deadline=None)
    @given(dtrees(), dtrees())
    def test_widen_upper_bound(self, a, b):
        w = a.widen(b)
        assert w.includes(a) and w.includes(b)

    @settings(max_examples=60, deadline=None)
    @given(dtrees(), st.sampled_from([1, 2]), st.booleans())
    def test_guard_refines(self, t, b, value):
        g = t.guard_bool(b, value)
        assert t.includes(g)

    @settings(max_examples=60, deadline=None)
    @given(dtrees(), st.sampled_from([1, 2]))
    def test_guard_branches_join_below_original(self, t, b):
        lo = t.guard_bool(b, False)
        hi = t.guard_bool(b, True)
        assert t.includes(lo.join(hi))


# ---------------------------------------------------------------------------


class TestEllipsoidProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e6),
           st.floats(min_value=0.0, max_value=1e6))
    def test_join_meet_are_max_min(self, k1, k2):
        p = EllipsoidParams(1.5, 0.7, 1.0)
        a, b = EllipsoidValue(p, k1), EllipsoidValue(p, k2)
        assert a.join(b).k == max(k1, k2)
        assert a.meet(b).k == min(k1, k2)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e6))
    def test_delta_monotone(self, k):
        p = EllipsoidParams(1.5, 0.7, 1.0)
        assert p.delta(k + 1.0) >= p.delta(k)

    @settings(max_examples=60, deadline=None)
    @given(st.floats(min_value=0.0, max_value=1e9))
    def test_x_bound_contains_extremal_points(self, k):
        p = EllipsoidParams(1.5, 0.7, 1.0)
        v = EllipsoidValue(p, k)
        # The point (x*, y*) achieving max |x| on the ellipse boundary.
        disc = 4 * p.b - p.a * p.a
        x_star = 2 * math.sqrt(p.b * k / disc)
        assert v.x_bound().hi >= x_star * 0.999

    @settings(max_examples=40, deadline=None)
    @given(st.floats(min_value=0.0, max_value=100.0),
           st.floats(min_value=0.0, max_value=2.0))
    def test_rotation_fixpoint_bounded_by_stable_k(self, k0, tm):
        p = EllipsoidParams(1.2, 0.5, tm)
        v = EllipsoidValue(p, min(k0, p.stable_k()))
        for _ in range(50):
            v = v.rotate()
        assert v.k <= p.stable_k() * 1.05 + 1e-9
