"""Tests for the synthetic program-family generator."""

import pytest

from repro.analysis import analyze
from repro.config import baseline_config
from repro.frontend import compile_source
from repro.synth import ALL_BLOCK_TYPES, FamilySpec, generate_program


class TestGeneration:
    def test_deterministic_for_same_seed(self):
        a = generate_program(FamilySpec(target_kloc=0.3, seed=7))
        b = generate_program(FamilySpec(target_kloc=0.3, seed=7))
        assert a.source == b.source

    def test_different_seeds_differ(self):
        a = generate_program(FamilySpec(target_kloc=0.3, seed=7))
        b = generate_program(FamilySpec(target_kloc=0.3, seed=8))
        assert a.source != b.source

    def test_size_scales_with_target(self):
        small = generate_program(FamilySpec(target_kloc=0.3, seed=1))
        big = generate_program(FamilySpec(target_kloc=1.2, seed=1))
        assert big.loc > 2 * small.loc

    def test_loc_roughly_matches_target(self):
        gp = generate_program(FamilySpec(target_kloc=1.0, seed=3))
        assert 600 <= gp.loc <= 1500

    def test_input_ranges_cover_all_volatiles(self):
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=1))
        prog = compile_source(gp.source, "fam.c")
        for v in prog.volatile_inputs:
            assert v.name in gp.input_ranges

    def test_has_synchronous_shape(self):
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=1))
        assert "while (1)" in gp.source
        assert "__ASTREE_wait_for_clock" in gp.source

    def test_block_mix_has_multiple_types(self):
        gp = generate_program(FamilySpec(target_kloc=1.0, seed=1))
        assert len(gp.block_counts) >= 6

    def test_compiles_through_frontend(self):
        gp = generate_program(FamilySpec(target_kloc=0.5, seed=2))
        prog = compile_source(gp.source, "fam.c")
        assert "main" in prog.functions

    def test_weights_validation(self):
        with pytest.raises(ValueError):
            generate_program(FamilySpec(target_kloc=0.3, weights=[1.0]))

    def test_single_block_type_family(self):
        weights = [0.0] * len(ALL_BLOCK_TYPES)
        weights[0] = 1.0  # SecondOrderFilter only
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=1,
                                         weights=weights))
        assert set(gp.block_counts) == {"SecondOrderFilter"}


class TestFamilyAnalysis:
    """The correctness-by-construction property: the refined analyzer
    proves the family programs with zero false alarms while the baseline
    does not (the Sect. 8 experiment in miniature)."""

    def test_refined_analyzer_proves_family_program(self):
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=11))
        r = analyze(gp.source, "fam.c", config=gp.analyzer_config())
        assert r.alarm_count == 0

    def test_baseline_has_false_alarms(self):
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=11))
        cfg = baseline_config(input_ranges=dict(gp.input_ranges),
                              max_clock=gp.max_clock)
        r = analyze(gp.source, "fam.c", config=cfg)
        assert r.alarm_count > 0

    def test_refined_second_seed(self):
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=23))
        r = analyze(gp.source, "fam.c", config=gp.analyzer_config())
        assert r.alarm_count == 0

    def test_packing_feedback_present(self):
        gp = generate_program(FamilySpec(target_kloc=0.3, seed=11))
        r = analyze(gp.source, "fam.c", config=gp.analyzer_config())
        assert r.octagon_pack_count > 0
        # At least some packs should not have been useful (Sect. 7.2.2:
        # most packs are not), enabling the re-run optimization.
        assert len(r.useful_octagon_packs) <= r.octagon_pack_count
