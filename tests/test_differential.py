"""Differential soundness testing: concrete runs vs abstract results.

Random straight-line programs over bounded integer inputs are analyzed and
*also* executed concretely (with C semantics emulated in Python) on sampled
input vectors.  Soundness demands every concrete outcome lies inside the
analyzer's final interval for each variable — the end-to-end γ-soundness
property of the whole pipeline (frontend + domains + iterator).
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro import AnalyzerConfig, analyze
from repro.fuzz.oracle import final_interval, main_loop_invariant
from repro.numeric import IntInterval

INT_MIN, INT_MAX = -(2**31), 2**31 - 1


class ExprGen:
    """Generates a random expression tree and evaluates it concretely."""

    def __init__(self, rng: random.Random, n_inputs: int):
        self.rng = rng
        self.inputs = [f"in{i}" for i in range(n_inputs)]

    def gen(self, depth: int) -> str:
        if depth == 0 or self.rng.random() < 0.3:
            if self.rng.random() < 0.5:
                return self.rng.choice(self.inputs)
            return str(self.rng.randint(-20, 20))
        op = self.rng.choice(["+", "-", "*"])
        left = self.gen(depth - 1)
        right = self.gen(depth - 1)
        return f"({left} {op} {right})"


def c_eval(expr: str, env: dict) -> int:
    """Concrete evaluation with int wrap-around like the 32-bit target."""
    value = eval(expr, {"__builtins__": {}}, dict(env))  # noqa: S307
    value &= 0xFFFFFFFF
    if value > INT_MAX:
        value -= 2**32
    return value


def build_program(exprs, n_inputs):
    decls = "\n".join(f"volatile int in{i}_v;" for i in range(n_inputs))
    body = [f"    int in{i} = in{i}_v;" for i in range(n_inputs)]
    for k, e in enumerate(exprs):
        body.append(f"    out{k} = {e};")
    outs = "\n".join(f"int out{k};" for k in range(len(exprs)))
    return (f"{decls}\n{outs}\n"
            "int main(void) {\n" + "\n".join(body) + "\n    return 0;\n}\n")


class TestDifferentialSoundness:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_straight_line_integer_programs(self, seed):
        rng = random.Random(seed)
        n_inputs = rng.randint(1, 3)
        gen = ExprGen(rng, n_inputs)
        exprs = [gen.gen(rng.randint(1, 3)) for _ in range(rng.randint(1, 3))]
        source = build_program(exprs, n_inputs)
        lo, hi = -10, 10
        cfg = AnalyzerConfig(
            input_ranges={f"in{i}_v": (lo, hi) for i in range(n_inputs)})
        result = analyze(source, "rand.c", config=cfg)

        # Sample concrete executions.
        for _ in range(20):
            env = {f"in{i}": rng.randint(lo, hi) for i in range(n_inputs)}
            for k, e in enumerate(exprs):
                concrete = c_eval(e, env)
                if not (INT_MIN <= concrete <= INT_MAX):
                    continue  # wrapped: the analyzer alarms and wipes
                iv = final_interval(result, f"out{k}")
                assert iv.contains(concrete), (
                    f"seed={seed} expr={e} env={env}: {concrete} not in {iv}")

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_programs_with_branches(self, seed):
        rng = random.Random(seed)
        a = rng.randint(-5, 5)
        source = f"""
        volatile int v;
        int out;
        int main(void) {{
            int x = v;
            if (x > {a}) {{ out = x + 1; }}
            else {{ out = x - 1; }}
            return 0;
        }}
        """
        cfg = AnalyzerConfig(input_ranges={"v": (-10, 10)})
        result = analyze(source, "rand.c", config=cfg)
        iv = final_interval(result, "out")
        for x in range(-10, 11):
            concrete = x + 1 if x > a else x - 1
            assert iv.contains(concrete)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=1, max_value=30),
           st.integers(min_value=1, max_value=5))
    def test_counting_loops(self, bound, stride):
        source = f"""
        int i; int n;
        int main(void) {{
            i = 0; n = 0;
            while (i < {bound}) {{ i = i + {stride}; n = n + 1; }}
            return 0;
        }}
        """
        result = analyze(source, "loop.c")
        # Concrete final i.
        i = 0
        while i < bound:
            i += stride
        iv = final_interval(result, "i")
        assert iv.contains(i), f"final i={i} not in {iv}"

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10_000))
    def test_float_contracting_chains(self, seed):
        """Float chains x := a*x + in stay sound vs simulation."""
        rng = random.Random(seed)
        a = rng.choice([0.25, 0.5, 0.75])
        source = f"""
        volatile float v;
        float x;
        int main(void) {{
            x = 0.0f;
            while (1) {{
                x = {a}f * x + v;
                __ASTREE_wait_for_clock();
            }}
            return 0;
        }}
        """
        cfg = AnalyzerConfig(input_ranges={"v": (-1.0, 1.0)},
                             collect_invariants=True)
        result = analyze(source, "f.c", config=cfg)
        assert result.alarm_count == 0
        inv = main_loop_invariant(result)
        var = result.ctx.prog.global_by_name("x")
        cell = result.ctx.table.scalar_cell(var.uid)
        bound = inv.env.get(cell.cid).itv
        # Simulate concretely.
        import numpy as np

        x = np.float32(0.0)
        worst = 0.0
        for _ in range(2000):
            v = np.float32(rng.uniform(-1.0, 1.0))
            x = np.float32(a) * x + v
            worst = max(worst, abs(float(x)))
        assert bound.magnitude() >= worst
