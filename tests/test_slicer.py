"""Tests for the dependence graph and the backward/abstract slicer."""

import pytest

from repro.analysis import analyze_program
from repro.config import AnalyzerConfig
from repro.frontend import compile_source
from repro.frontend import ir as I
from repro.memory.cells import CellTable
from repro.slicer import Slicer, build_dependence_graph


def setup_prog(src, **cfg_kwargs):
    prog = compile_source(src, "t.c")
    table = CellTable.for_program(prog)
    return prog, table


SRC = """
volatile int vin;
int a; int b; int c; int unrelated;
int main(void) {
    a = vin;
    b = a + 1;
    unrelated = 7;
    if (b > 0) {
        c = 100 / b;
    }
    return 0;
}
"""


def sid_of_assign_to(prog, table, name):
    from repro.packing.common import static_cell

    for s in I.iter_stmts(prog.functions["main"].body):
        if isinstance(s, I.SAssign):
            cell = static_cell(s.target, table)
            if cell is not None and cell.name == name:
                return s.sid
    raise KeyError(name)


class TestDependenceGraph:
    def test_nodes_cover_statements(self):
        prog, table = setup_prog(SRC)
        g = build_dependence_graph(prog, table)
        assert len(g.statements()) >= 5

    def test_data_dependence_a_to_b(self):
        prog, table = setup_prog(SRC)
        g = build_dependence_graph(prog, table)
        sa = sid_of_assign_to(prog, table, "a")
        sb = sid_of_assign_to(prog, table, "b")
        assert g.graph.has_edge(sa, sb)
        assert g.graph.edges[sa, sb]["kind"] == "data"

    def test_control_dependence_if_to_c(self):
        prog, table = setup_prog(SRC)
        g = build_dependence_graph(prog, table)
        sc = sid_of_assign_to(prog, table, "c")
        preds = [(p, g.graph.edges[p, sc]["kind"])
                 for p in g.graph.predecessors(sc)]
        assert any(kind == "control" for _, kind in preds)

    def test_defining_statements(self):
        prog, table = setup_prog(SRC)
        g = build_dependence_graph(prog, table)
        a_var = prog.global_by_name("a")
        cid = table.scalar_cell(a_var.uid).cid
        assert len(g.defining_statements(cid)) == 1


class TestBackwardSlice:
    def test_slice_contains_criterion(self):
        prog, table = setup_prog(SRC)
        slicer = Slicer(prog, table)
        sc = sid_of_assign_to(prog, table, "c")
        sl = slicer.backward_slice(sc)
        assert sc in sl.sids

    def test_slice_contains_data_chain(self):
        prog, table = setup_prog(SRC)
        slicer = Slicer(prog, table)
        sc = sid_of_assign_to(prog, table, "c")
        sa = sid_of_assign_to(prog, table, "a")
        sb = sid_of_assign_to(prog, table, "b")
        sl = slicer.backward_slice(sc)
        assert sa in sl.sids and sb in sl.sids

    def test_slice_excludes_unrelated(self):
        prog, table = setup_prog(SRC)
        slicer = Slicer(prog, table)
        sc = sid_of_assign_to(prog, table, "c")
        su = sid_of_assign_to(prog, table, "unrelated")
        sl = slicer.backward_slice(sc)
        assert su not in sl.sids

    def test_slice_through_calls(self):
        src = """
        int helper(int v) { return v * 2; }
        volatile int vin; int x; int y;
        int main(void) {
            x = vin;
            y = helper(x);
            return 0;
        }
        """
        prog, table = setup_prog(src)
        slicer = Slicer(prog, table)
        sy = sid_of_assign_to(prog, table, "x")
        # Slicing from any later statement must reach the definition of x.
        last = prog.functions["main"].body[-2]  # the call
        sl = slicer.backward_slice(last.sid)
        assert sy in sl.sids

    def test_format_lists_locations(self):
        prog, table = setup_prog(SRC)
        slicer = Slicer(prog, table)
        sc = sid_of_assign_to(prog, table, "c")
        text = slicer.backward_slice(sc).format()
        assert "t.c" in text


class TestAbstractSlice:
    def test_abstract_slice_not_larger_than_full(self):
        prog, table = setup_prog(SRC)
        cfg = AnalyzerConfig(input_ranges={"vin": (0, 100)},
                             collect_invariants=True)
        result = analyze_program(prog, cfg)
        slicer = Slicer(prog, result.ctx.table)
        sc = sid_of_assign_to(prog, result.ctx.table, "c")
        full = slicer.backward_slice(sc)
        abstract = slicer.abstract_slice(sc, result.final_state)
        assert abstract.sids <= full.sids | {sc}
        assert len(abstract) <= len(full)

    def test_abstract_slice_for_alarm(self):
        src = """
        volatile int vin; int a; int b; int c;
        int main(void) {
            a = vin;
            b = 5;
            c = 100 / a;
            return 0;
        }
        """
        prog, table = setup_prog(src)
        cfg = AnalyzerConfig(input_ranges={"vin": (0, 10)})
        result = analyze_program(prog, cfg)
        assert result.alarm_count >= 1
        alarm = result.alarms[0]
        slicer = Slicer(prog, result.ctx.table)
        sl = slicer.slice_for_alarm(alarm)
        sa = sid_of_assign_to(prog, result.ctx.table, "a")
        sb = sid_of_assign_to(prog, result.ctx.table, "b")
        assert sa in sl.sids  # the alarm depends on a
        assert sb not in sl.sids  # but not on b
