"""Tests for the concrete interpreter and end-to-end differential checks.

The crowning soundness test: random concrete executions of generated
family programs must stay inside the analyzer's loop invariants, and every
concrete run-time error must be covered by an alarm.
"""

import pytest

from repro import AnalyzerConfig, analyze, analyze_program
from repro.concrete import ConcreteInterpreter, RandomInputs
from repro.frontend import compile_source
from repro.fuzz.oracle import (
    containment_violations, run_oracle, uncovered_error_kinds,
)
from repro.numeric import FloatInterval, IntInterval


def interpret(src, ranges=None, seed=0, max_ticks=50):
    prog = compile_source(src, "t.c")
    interp = ConcreteInterpreter(prog, RandomInputs(ranges or {}, seed),
                                 max_ticks=max_ticks)
    interp.run()
    return prog, interp


class TestConcreteBasics:
    def test_straight_line_arithmetic(self):
        src = """
        int x; int y;
        int main(void) { x = 3 + 4 * 5; y = x / 2; return 0; }
        """
        prog, interp = interpret(src)
        snap = interp.snapshot()
        assert snap["x"] == 23 and snap["y"] == 11

    def test_truncated_division(self):
        src = "int x; int main(void) { x = -7 / 2; return 0; }"
        _, interp = interpret(src)
        assert interp.snapshot()["x"] == -3

    def test_int_wraparound_recorded(self):
        src = """
        int x;
        int main(void) { x = 2147483647; x = x + 1; return 0; }
        """
        _, interp = interpret(src)
        assert interp.snapshot()["x"] == -2147483648
        assert any(e.kind == "integer-overflow" for e in interp.errors)

    def test_float32_rounding(self):
        import numpy as np

        src = "float f; int main(void) { f = 0.1f; f = f + 0.2f; return 0; }"
        _, interp = interpret(src)
        expected = float(np.float32(np.float32(0.1) + np.float32(0.2)))
        assert interp.snapshot()["f"] == expected

    def test_loop_executes(self):
        src = """
        int total;
        int main(void) {
            int i;
            total = 0;
            for (i = 0; i < 10; i++) { total = total + i; }
            return 0;
        }
        """
        _, interp = interpret(src)
        assert interp.snapshot()["total"] == 45

    def test_do_while_and_break(self):
        src = """
        int i;
        int main(void) {
            i = 0;
            do { i = i + 1; if (i >= 3) { break; } } while (1);
            return 0;
        }
        """
        _, interp = interpret(src)
        assert interp.snapshot()["i"] == 3

    def test_switch_dispatch(self):
        src = """
        int y;
        int main(void) {
            int m = 2;
            switch (m) { case 1: y = 10; break; case 2: y = 20; break;
                         default: y = 0; break; }
            return 0;
        }
        """
        _, interp = interpret(src)
        assert interp.snapshot()["y"] == 20

    def test_function_call_and_byref(self):
        src = """
        void twice(int *p) { *p = *p * 2; }
        int x;
        int main(void) { x = 21; twice(&x); return 0; }
        """
        _, interp = interpret(src)
        assert interp.snapshot()["x"] == 42

    def test_arrays_and_structs(self):
        src = """
        struct s { int a; float b; };
        struct s g;
        int tab[4];
        int main(void) {
            int i;
            for (i = 0; i < 4; i++) { tab[i] = i * i; }
            g.a = tab[3];
            g.b = 1.5f;
            return 0;
        }
        """
        prog, interp = interpret(src)
        assert interp.memory[prog.global_by_name("tab").uid] == [0, 1, 4, 9]
        assert interp.memory[prog.global_by_name("g").uid]["a"] == 9

    def test_volatile_reads_fresh_each_time(self):
        src = """
        volatile int v; int a; int b; int differ;
        int main(void) {
            int k;
            differ = 0;
            for (k = 0; k < 64; k++) {
                a = v; b = v;
                if (a != b) { differ = 1; }
            }
            return 0;
        }
        """
        _, interp = interpret(src, ranges={"v": (0, 1000)}, seed=7)
        assert interp.snapshot()["differ"] == 1

    def test_tick_budget_and_trace(self):
        src = """
        volatile int v; int c;
        int main(void) {
            c = 0;
            while (1) {
                if (v) { c = c + 1; }
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        _, interp = interpret(src, ranges={"v": (0, 1)}, max_ticks=20)
        assert interp.ticks == 20
        assert len(interp.trace) == 20
        assert all(0 <= t.values["c"] <= t.tick + 1 for t in interp.trace)

    def test_division_by_zero_recorded(self):
        src = """
        volatile int v; int x;
        int main(void) { int d = v; x = 10 / d; return 0; }
        """
        _, interp = interpret(src, ranges={"v": (0, 0)})
        assert any(e.kind == "division-by-zero" for e in interp.errors)

    def test_oob_recorded(self):
        src = """
        float a[4]; float x;
        int main(void) { int i = 9; x = a[i - 5]; a[i] = 1.0f; return 0; }
        """
        _, interp = interpret(src)
        assert any(e.kind == "array-index-out-of-bounds" for e in interp.errors)


class TestDifferentialEndToEnd:
    """Concrete executions vs abstract invariants on whole programs."""

    def _check_containment(self, prog, result, interp):
        """Every traced concrete value lies in the analyzer's invariant
        (the check itself lives in repro.fuzz.oracle, shared with the
        fuzzing campaign engine)."""
        assert result.loop_invariants, "main loop invariant required"
        checked, violations = containment_violations(result, interp)
        assert checked > 0, "containment check must cover some values"
        assert not violations, violations[:5]

    def test_quickstart_controller(self):
        src = """
        volatile float sensor; volatile int fault;
        float command; float integral; int fault_count;
        int main(void) {
            integral = 0.0f; fault_count = 0;
            while (1) {
                float err = sensor;
                integral = integral + 0.25f * err;
                if (integral > 100.0f) { integral = 100.0f; }
                if (integral < -100.0f) { integral = -100.0f; }
                command = 0.5f * command + 0.5f * integral;
                if (fault) { fault_count = fault_count + 1; }
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        ranges = {"sensor": (-10.0, 10.0), "fault": (0, 1)}
        prog = compile_source(src, "c.c")
        cfg = AnalyzerConfig(input_ranges=ranges, collect_invariants=True)
        result = analyze_program(prog, cfg)
        assert result.alarm_count == 0
        for seed in range(3):
            interp = ConcreteInterpreter(prog, RandomInputs(ranges, seed),
                                         max_ticks=300)
            interp.run()
            assert not interp.errors
            self._check_containment(prog, result, interp)

    def test_family_program_containment(self):
        from repro.synth import FamilySpec, generate_program

        gp = generate_program(FamilySpec(target_kloc=0.2, seed=8))
        prog = compile_source(gp.source, "fam.c")
        cfg = gp.analyzer_config(collect_invariants=True)
        result = analyze_program(prog, cfg)
        assert result.alarm_count == 0
        interp = ConcreteInterpreter(
            prog, RandomInputs(gp.input_ranges, seed=1), max_ticks=150)
        interp.run()
        assert not interp.errors, interp.errors[:3]
        self._check_containment(prog, result, interp)

    def test_concrete_errors_covered_by_alarms(self):
        """If the concrete run errs, the analyzer must alarm (soundness)."""
        src = """
        volatile int v; int x; float a[4]; float y;
        int main(void) {
            int d = v;
            x = 100 / d;
            y = a[d];
            return 0;
        }
        """
        ranges = {"v": (0, 10)}
        prog = compile_source(src, "bug.c")
        result = analyze_program(prog, AnalyzerConfig(input_ranges=ranges))
        hit = set()
        for seed in range(30):
            interp = ConcreteInterpreter(prog, RandomInputs(ranges, seed))
            interp.run()
            hit |= {e.kind for e in interp.errors}
            assert uncovered_error_kinds(result, interp.errors) == []
        assert hit, "some seed must trigger the planted errors"

    def test_run_oracle_end_to_end(self):
        """The campaign oracle agrees with the hand-rolled checks: a
        clean family program is judged sound over seeded streams."""
        from repro.synth import FamilySpec, generate_program

        gp = generate_program(FamilySpec(target_kloc=0.1, seed=11))
        prog = compile_source(gp.source, "fam.c")
        result = analyze_program(
            prog, gp.analyzer_config(collect_invariants=True))
        report = run_oracle(prog, result, gp.input_ranges, case_seed=123,
                            streams=3, max_ticks=40)
        assert report.sound, report.to_json()
        assert report.values_checked > 0
        # The verdict is a pure function of the case seed.
        again = run_oracle(prog, result, gp.input_ranges, case_seed=123,
                           streams=3, max_ticks=40)
        assert report.to_json() == again.to_json()
