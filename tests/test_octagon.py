"""Tests for the octagon abstract domain."""

import math

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.domains.octagon import Octagon
from repro.numeric import FloatInterval, LinearForm


def boxed(n, bounds):
    """Octagon with per-variable interval bounds."""
    o = Octagon.top(n)
    for i, (lo, hi) in enumerate(bounds):
        o = o.set_var_bounds(i, FloatInterval.of(lo, hi))
    return o


class TestBasics:
    def test_top_has_no_bounds(self):
        o = Octagon.top(2)
        assert o.var_interval(0).is_top

    def test_bottom(self):
        assert Octagon.make_bottom(2).is_bottom
        assert Octagon.make_bottom(2).var_interval(0).is_empty

    def test_set_and_get_var_bounds(self):
        o = boxed(2, [(-1.0, 2.0), (0.0, 5.0)])
        iv = o.var_interval(0)
        assert iv.lo <= -1.0 <= 2.0 <= iv.hi
        assert iv.lo >= -1.001 and iv.hi <= 2.001

    def test_contradictory_bounds_give_bottom(self):
        o = Octagon.top(1).set_var_bounds(0, FloatInterval.of(1.0, 2.0))
        o = o.set_var_bounds(0, FloatInterval.of(5.0, 6.0))
        assert o.is_bottom

    def test_empty_interval_gives_bottom(self):
        o = Octagon.top(1).set_var_bounds(0, FloatInterval.empty())
        assert o.is_bottom


class TestClosure:
    def test_transitivity_through_closure(self):
        # x - y <= 1 and y - z <= 2 implies x - z <= 3 (+ rounding slack).
        o = Octagon.top(3)
        o = o.guard_upper({0: 1, 1: -1}, 1.0)
        o = o.guard_upper({1: 1, 2: -1}, 2.0)
        d = o.diff_bound(0, 2)
        assert d.hi <= 3.0000001
        assert d.hi >= 3.0

    def test_sum_and_diff_interact(self):
        # x + y <= 4, x - y <= 2 implies x <= 3.
        o = Octagon.top(2)
        o = o.guard_upper({0: 1, 1: 1}, 4.0)
        o = o.guard_upper({0: 1, 1: -1}, 2.0)
        assert o.var_interval(0).hi <= 3.0000001

    def test_unary_from_binary(self):
        # 1 <= x - y <= 1 and y in [0, 2] implies x in [1, 3].
        o = boxed(2, [(-100.0, 100.0), (0.0, 2.0)])
        o = o.guard_upper({0: 1, 1: -1}, 1.0)
        o = o.guard_upper({0: -1, 1: 1}, -1.0)
        iv = o.var_interval(0)
        assert 0.999 <= iv.lo <= 1.0 and 3.0 <= iv.hi <= 3.001


class TestLattice:
    def test_join_is_upper_bound(self):
        a = boxed(2, [(0.0, 1.0), (0.0, 1.0)])
        b = boxed(2, [(2.0, 3.0), (-1.0, 0.5)])
        j = a.join(b)
        assert j.includes(a) and j.includes(b)

    def test_join_with_bottom(self):
        a = boxed(1, [(0.0, 1.0)])
        assert a.join(Octagon.make_bottom(1)) is a

    def test_meet_refines(self):
        a = boxed(1, [(0.0, 10.0)])
        b = boxed(1, [(5.0, 20.0)])
        m = a.meet(b)
        iv = m.var_interval(0)
        assert iv.lo >= 4.999 and iv.hi <= 10.001

    def test_meet_disjoint_is_bottom(self):
        a = boxed(1, [(0.0, 1.0)])
        b = boxed(1, [(5.0, 6.0)])
        assert a.meet(b).is_bottom

    def test_includes_reflexive(self):
        a = boxed(2, [(0.0, 1.0), (2.0, 3.0)])
        assert a.includes(a)

    def test_includes_antisymmetric_cases(self):
        big = boxed(1, [(0.0, 10.0)])
        small = boxed(1, [(2.0, 3.0)])
        assert big.includes(small)
        assert not small.includes(big)

    def test_equal(self):
        a = boxed(1, [(0.0, 1.0)])
        b = boxed(1, [(0.0, 1.0)])
        assert a.equal(b)


class TestWidening:
    def test_widen_unstable_to_infinity(self):
        a = boxed(1, [(0.0, 1.0)])
        b = boxed(1, [(0.0, 2.0)])
        w = a.widen(b)
        assert w.var_interval(0).hi == math.inf

    def test_widen_stable_keeps_bound(self):
        a = boxed(1, [(0.0, 2.0)])
        b = boxed(1, [(0.0, 1.0)])
        w = a.widen(b)
        assert w.var_interval(0).hi <= 2.001

    def test_widen_with_thresholds(self):
        a = boxed(1, [(0.0, 1.0)])
        b = boxed(1, [(0.0, 2.0)])
        w = a.widen(b, thresholds=[-math.inf, 0.0, 100.0, math.inf])
        assert w.var_interval(0).hi <= 50.001  # 2*bound stored; 100/2 = 50

    def test_widening_terminates(self):
        cur = boxed(1, [(0.0, 1.0)])
        for i in range(100):
            grown = boxed(1, [(0.0, 1.0 + i)])
            nxt = cur.widen(grown)
            if nxt.equal(cur):
                break
            cur = nxt
        else:
            raise AssertionError("widening sequence did not stabilize")

    def test_narrow_recovers_bound(self):
        a = boxed(1, [(0.0, 1.0)])
        w = a.widen(boxed(1, [(0.0, 2.0)]))  # hi -> inf
        n = w.narrow(boxed(1, [(0.0, 2.0)]))
        assert n.var_interval(0).hi <= 2.001


class TestTransfer:
    def test_forget(self):
        o = boxed(2, [(0.0, 1.0), (5.0, 6.0)])
        o = o.forget(0)
        assert o.var_interval(0).is_top
        iv1 = o.var_interval(1)
        assert iv1.lo >= 4.999 and iv1.hi <= 6.001

    def test_assign_var_plus_interval(self):
        """The paper's L := Z + V transfer: c <= L - Z <= d."""
        o = boxed(2, [(-100.0, 100.0), (0.0, 100.0)])
        # v0 plays L, v1 plays Z; V in [1, 3].
        o = o.assign_var_plus_interval(0, 1, FloatInterval.of(1.0, 3.0))
        d = o.diff_bound(0, 1)
        assert 0.999 <= d.lo and d.hi <= 3.001

    def test_assign_var_plus_interval_implies_range(self):
        o = boxed(2, [(-100.0, 100.0), (0.0, 10.0)])
        o = o.assign_var_plus_interval(0, 1, FloatInterval.of(1.0, 2.0))
        iv = o.var_interval(0)
        assert iv.lo >= 0.999 and iv.hi <= 12.001

    def test_self_shift(self):
        o = boxed(1, [(0.0, 1.0)])
        o = o.assign_var_plus_interval(0, 0, FloatInterval.const(1.0))
        iv = o.var_interval(0)
        assert 0.999 <= iv.lo and iv.hi <= 2.001

    def test_shift_preserves_relations(self):
        # x - y in [0, 0], then x += 1 gives x - y in [1, 1].
        o = boxed(2, [(0.0, 5.0), (0.0, 5.0)])
        o = o.guard_upper({0: 1, 1: -1}, 0.0)
        o = o.guard_upper({0: -1, 1: 1}, 0.0)
        o = o.shift_var(0, FloatInterval.const(1.0))
        d = o.diff_bound(0, 1)
        assert 0.999 <= d.lo and d.hi <= 1.001

    def test_assign_neg_var(self):
        o = boxed(2, [(-100.0, 100.0), (2.0, 3.0)])
        o = o.assign_neg_var_plus_interval(0, 1, FloatInterval.const(0.0))
        s = o.sum_bound(0, 1)
        assert -0.001 <= s.lo <= s.hi <= 0.001
        iv = o.var_interval(0)
        assert -3.001 <= iv.lo and iv.hi <= -1.999

    def test_assign_interval(self):
        o = boxed(2, [(0.0, 1.0), (0.0, 1.0)])
        o = o.guard_upper({0: 1, 1: -1}, 0.0)
        o = o.assign_interval(0, FloatInterval.of(7.0, 8.0))
        iv = o.var_interval(0)
        assert 6.999 <= iv.lo and iv.hi <= 8.001
        # Old relation with v1 must be gone.
        assert o.diff_bound(0, 1).hi >= 5.9

    def test_paper_example_l_z_v(self):
        """Sect. 6.2.2 example: R := X - Z; if (R > V) L := Z + V; => L <= X."""
        # Pack: X=0, Z=1, V=2, R=3, L=4.
        o = Octagon.top(5)
        o = o.set_var_bounds(0, FloatInterval.of(-100.0, 100.0))
        o = o.set_var_bounds(1, FloatInterval.of(-100.0, 100.0))
        o = o.set_var_bounds(2, FloatInterval.of(0.0, 10.0))
        # R := X - Z is not octagonal in general; but the guard R > V with
        # V in [0, 10] gives L := Z + V with V's interval --> L - Z <= 10.
        o = o.assign_var_plus_interval(4, 1, FloatInterval.of(0.0, 10.0))
        d = o.diff_bound(4, 1)
        assert d.hi <= 10.001


class TestLinearFormAssign:
    def test_unit_coefficient_stays_relational(self):
        o = boxed(2, [(-50.0, 50.0), (0.0, 5.0)])
        form = LinearForm.var("z").add(LinearForm.constant(FloatInterval.of(1.0, 2.0)))
        o2 = o.assign_linear_form(0, form, {"z": 1}, lambda v: FloatInterval.of(0.0, 5.0))
        d = o2.diff_bound(0, 1)
        assert 0.999 <= d.lo and d.hi <= 2.001

    def test_out_of_pack_vars_intervalized(self):
        o = boxed(1, [(-50.0, 50.0)])
        form = LinearForm.var("outside").add(LinearForm.of_const(1.0))
        o2 = o.assign_linear_form(0, form, {}, lambda v: FloatInterval.of(0.0, 2.0))
        iv = o2.var_interval(0)
        assert 0.999 <= iv.lo and iv.hi <= 3.001

    def test_nonunit_coefficient_falls_back_to_interval(self):
        o = boxed(2, [(-50.0, 50.0), (1.0, 2.0)])
        form = LinearForm.var("z").scale(FloatInterval.const(3.0))
        o2 = o.assign_linear_form(0, form, {"z": 1},
                                  lambda v: FloatInterval.of(1.0, 2.0))
        iv = o2.var_interval(0)
        assert 2.999 <= iv.lo and iv.hi <= 6.001


class TestSoundnessSampling:
    @given(st.floats(-10, 10), st.floats(-10, 10), st.floats(-10, 10))
    def test_closure_preserves_points(self, x, y, z):
        """Any concrete point satisfying the constraints stays inside
        after closure tightening."""
        o = Octagon.top(3)
        o = o.set_var_bounds(0, FloatInterval.of(-10.0, 10.0))
        o = o.set_var_bounds(1, FloatInterval.of(-10.0, 10.0))
        o = o.set_var_bounds(2, FloatInterval.of(-10.0, 10.0))
        o = o.guard_upper({0: 1, 1: -1}, 3.0)
        o = o.guard_upper({1: 1, 2: 1}, 5.0)
        sat = (x - y <= 3.0) and (y + z <= 5.0)
        if sat:
            c = o.closed()
            assert c.var_interval(0).contains(x) or abs(x) > 10
            d = c.diff_bound(0, 1)
            assert d.contains(x - y) or abs(x) > 10 or abs(y) > 10

    def test_invariant_counts(self):
        o = boxed(2, [(0.0, 1.0), (0.0, 1.0)])
        add, sub = o.finite_constraint_count()
        # Bounded boxes imply bounded sums and differences after closure.
        assert add == 1 and sub == 1
