"""Sharing-aware lattice fast paths.

The parallel engine leans on two structural guarantees:

* :class:`PMap` merges short-circuit on physical identity (``a is b``)
  without allocating a single tree node, and a merge of two maps that
  differ in one key rebuilds only the root-to-key path (Sect. 6.1.2);
* :class:`Octagon` caches its strong closure, and ``join``/``includes``
  consume the cache instead of re-running the cubic Floyd-Warshall pass.

These tests pin both properties so a refactor cannot silently regress
them into correct-but-quadratic behaviour.
"""

import pickle

import numpy as np
import pytest

from repro.domains.octagon import Octagon
from repro.memory import fmap
from repro.memory.fmap import PMap


# -- node-allocation instrumentation ------------------------------------------


@pytest.fixture
def node_allocs(monkeypatch):
    """Count every ``_Node`` constructed while the fixture is active."""
    counter = {"n": 0}
    orig = fmap._Node.__init__

    def counting_init(self, *args, **kwargs):
        counter["n"] += 1
        orig(self, *args, **kwargs)

    monkeypatch.setattr(fmap._Node, "__init__", counting_init)
    return counter


def _big_map(n=1000):
    return PMap.from_items((i, i * 10) for i in range(n))


# -- PMap identity fast paths --------------------------------------------------


def test_ptr_equal_is_physical_identity():
    m = _big_map()
    same_content = PMap.from_items(m.items())
    assert m.ptr_equal(m)
    assert not m.ptr_equal(same_content)
    assert m.equal(same_content, lambda a, b: a == b)


def test_set_same_value_preserves_identity():
    m = _big_map()
    v = m[500]
    assert m.set(500, v).ptr_equal(m)


def test_self_join_allocates_no_nodes(node_allocs):
    m = _big_map()
    calls = {"n": 0}

    def combine(key, a, b):
        calls["n"] += 1
        return a

    node_allocs["n"] = 0
    joined = m.merge(m, combine)
    assert joined.ptr_equal(m)
    assert node_allocs["n"] == 0, "self-join must not allocate tree nodes"
    assert calls["n"] == 0, "self-join must not call combine"


def test_single_key_diff_join_rebuilds_only_the_path(node_allocs):
    m = _big_map()
    m2 = m.set(500, -1)
    calls = {"n": 0}

    def combine(key, a, b):
        calls["n"] += 1
        return max(a, b)

    node_allocs["n"] = 0
    joined = m.merge(m2, combine)
    assert joined[500] == 5000
    assert calls["n"] == 1, "combine must fire only on the differing key"
    # A weight-balanced tree of 1000 keys is ~10 levels deep; the merge may
    # rebuild the path plus a few rebalance nodes, never the whole tree.
    assert node_allocs["n"] <= 64, f"allocated {node_allocs['n']} nodes"
    assert list(m.diff_keys(m2)) == [500]


def test_equal_key_sets_share_untouched_subtrees(node_allocs):
    m = _big_map()
    m2 = m.set(500, -1)
    # When combine hands back one operand's own value object, the merge
    # collapses to that operand entirely (no new map at all).
    assert m.merge(m2, lambda k, a, b: max(a, b)).ptr_equal(m)
    # When combine produces a fresh value, only that key stops sharing.
    joined = m.merge(m2, lambda k, a, b: a + b)
    assert joined[500] == 4999
    assert list(joined.diff_keys(m)) == [500]


# -- Octagon closure-cache reuse ----------------------------------------------


def _raw_octagon(n=3, hi=10.0):
    """A non-closed octagon with enough finite entries that ``closed()``
    must run the real cubic pass (not the cheap top shortcut)."""
    o = Octagon(n)
    m = o.m.copy()
    for i in range(n):
        m[2 * i + 1, 2 * i] = 2.0 * (hi + i)       # v_i <= hi + i
        m[2 * i, 2 * i + 1] = 2.0 * (hi + i)       # -v_i <= hi + i
    m[2, 0] = 3.0                                  # v_0 - v_1 <= 3
    return Octagon(n, m, closed=False)


def test_closed_is_cached_and_not_recomputed():
    o = _raw_octagon()
    before = Octagon.closure_computations
    c1 = o.closed()
    assert Octagon.closure_computations == before + 1
    c2 = o.closed()
    assert c2 is c1
    assert Octagon.closure_computations == before + 1


def test_join_of_two_closed_octagons_runs_no_closure():
    a = _raw_octagon(hi=10.0).closed()
    b = _raw_octagon(hi=20.0).closed()
    before = Octagon.closure_computations
    j = a.join(b)
    assert Octagon.closure_computations == before
    assert j._closed, "max of two closed matrices is closed"
    # The join must still be an upper bound.
    assert j.includes(a) and j.includes(b)
    assert Octagon.closure_computations == before


def test_join_consumes_closure_cache_of_raw_operands():
    a = _raw_octagon(hi=10.0)
    b = _raw_octagon(hi=20.0)
    a.closed()
    b.closed()
    before = Octagon.closure_computations
    a.join(b)
    assert Octagon.closure_computations == before


def test_includes_short_circuits_on_identity():
    o = _raw_octagon()
    before = Octagon.closure_computations
    assert o.includes(o)
    assert Octagon.closure_computations == before


def test_self_join_returns_closed_without_extra_work():
    o = _raw_octagon()
    c = o.closed()
    before = Octagon.closure_computations
    assert o.join(o) is c
    assert Octagon.closure_computations == before


def test_pickle_drops_cache_but_preserves_matrix_and_flags():
    # This test pins the *per-instance* cache: the process-global
    # closure memo (left enabled by any earlier analyze() run) would
    # satisfy the re-close below without a recomputation.
    from repro.domains.octagon import configure_closure_memo

    configure_closure_memo(0)
    o = _raw_octagon()
    o.closed()
    assert o._closed_cache is not None
    o2 = pickle.loads(pickle.dumps(o))
    assert o2._closed_cache is None, "derived cache must not travel"
    assert o2._closed == o._closed
    assert o2._bottom == o._bottom
    assert np.array_equal(o2.m, o.m)
    # Re-closing on the worker side recomputes exactly once.
    before = Octagon.closure_computations
    o2.closed()
    o2.closed()
    assert Octagon.closure_computations == before + 1
