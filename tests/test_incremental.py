"""Incremental fixpoint engine: bit-identical differential testing.

The incremental executor (repro.iterator.incremental) skips statements
whose footprint slice of the state is unchanged since their last
execution and splices the memoized post-states; interning and the
lattice/closure memos make the identity fast paths it relies on hot.
All of it is claimed to be *bit-identical* to full re-execution — these
tests hold that claim against ``--no-incremental`` across a seeded
sweep of generated family programs (mixed nested loops, branches, calls
and filter blocks), through the parallel engine, and across a
checkpoint→kill→resume cycle.

Programs are compiled once and analyzed in both modes: statement ids
come from a global counter, so recompiling between runs would shift
alarm/visit keys without any semantic difference.
"""

import dataclasses
import os

import pytest

from repro.analysis import analyze_program
from repro.config import AnalyzerConfig
from repro.domains.octagon import (Octagon, closure_memo_stats,
                                   configure_closure_memo)
from repro.errors import SupervisorHalt
from repro.frontend import compile_source
from repro.iterator.state import LatticeMemo
from repro.memory import interning
from repro.synth import FamilySpec, generate_program

# ≥20 seeds, sizes chosen so every generator block type (filter chains,
# guarded neighbour reads, mode branches, nested loops, calls) appears
# at least in the larger instances while the sweep stays CI-friendly.
SWEEP = [(0.05 + 0.005 * (s % 5), 100 + s) for s in range(20)]


def _family(kloc: float, seed: int):
    gp = generate_program(FamilySpec(target_kloc=kloc, seed=seed))
    cfg = gp.analyzer_config(collect_invariants=True)
    prog = compile_source(gp.source, "family.c")
    return prog, cfg


def _snapshot(result) -> dict:
    stats = result.invariant_stats()
    return {
        "alarms": [(a.kind, a.sid, a.loc.line, a.loc.col, a.message)
                   for a in result.alarms],
        "exit_code": result.exit_code,
        "invariant": result.dump_invariant_text(),
        "stats": dataclasses.asdict(stats),
        # widening_iterations is deliberately absent: it counts only the
        # fixpoint iterations actually *executed*, and a skipped
        # statement containing a nested loop does not re-run that loop's
        # fixpoint — the count is a work metric, not a result.
        "useful_oct": sorted(result.useful_octagon_packs),
        "useful_bool": result.useful_bool_pack_count,
    }


def _both_modes(prog, cfg, **kw):
    full = analyze_program(
        prog, dataclasses.replace(cfg, incremental=False), **kw)
    incr = analyze_program(
        prog, dataclasses.replace(cfg, incremental=True), **kw)
    assert _snapshot(full) == _snapshot(incr)
    return full, incr


# ---------------------------------------------------------------------------
# Differential sweep
# ---------------------------------------------------------------------------


class TestDifferentialSweep:
    @pytest.mark.parametrize("kloc,seed", SWEEP)
    def test_bit_identical_across_seeds(self, kloc, seed):
        prog, cfg = _family(kloc, seed)
        full, incr = _both_modes(prog, cfg)
        assert not incr.degraded and not full.degraded
        assert full.stmts_skipped == 0

    def test_incremental_actually_skips(self):
        prog, cfg = _family(0.12, 7)
        full, incr = _both_modes(prog, cfg)
        assert incr.stmts_skipped > 0
        assert incr.stmts_executed < full.stmts_executed

    def test_mixed_block_types_handwritten(self):
        # Nested loop + call + both branch arms feasible + filter state:
        # every block kind the executor caches, in one program.
        src = """
        volatile float in_a; volatile int in_sel;
        float x; float acc; float tab[8]; int mode; int count;
        void step(void) {
            float e; int j;
            e = in_a;
            if (e > 50.0f) { e = 50.0f; }
            if (e < -50.0f) { e = -50.0f; }
            j = 0;
            while (j < 8) { tab[j] = 0.7f * tab[j] + 0.3f * e; j = j + 1; }
            x = 0.9f * x + 0.1f * e;
        }
        int main(void) {
            while (1) {
                step();
                mode = in_sel;
                if (mode) { acc = acc * 0.5f + x; }
                else { acc = 0.25f * acc; }
                if (count < 1000) { count = count + 1; }
                __ASTREE_wait_for_clock();
            }
            return 0;
        }
        """
        prog = compile_source(src, "mixed.c")
        cfg = AnalyzerConfig(
            input_ranges={"in_a": (-200.0, 200.0), "in_sel": (0.0, 1.0)},
            max_clock=10_000, collect_invariants=True)
        full, incr = _both_modes(prog, cfg)
        assert incr.stmts_skipped > 0

    def test_jobs2_all_four_ways(self):
        prog, cfg = _family(0.1, 31)
        cfg = dataclasses.replace(cfg, parallel_min_stmts=12)
        snaps = []
        for incremental in (False, True):
            for jobs in (1, 2):
                res = analyze_program(
                    prog, dataclasses.replace(cfg, incremental=incremental),
                    jobs=jobs)
                snaps.append(_snapshot(res))
        assert all(s == snaps[0] for s in snaps[1:])

    def test_result_counters_reported(self):
        prog, cfg = _family(0.08, 3)
        incr = analyze_program(prog, cfg)
        assert incr.incremental
        assert incr.stmts_executed > 0
        pt = incr.phase_times
        assert "iteration-lattice" in pt and "iteration-transfer" in pt
        assert pt["iteration-lattice"] >= 0.0
        assert abs(pt["iteration-lattice"] + pt["iteration-transfer"]
                   - pt["iteration"]) < 1e-6
        full = analyze_program(
            prog, dataclasses.replace(cfg, incremental=False))
        assert not full.incremental and full.stmts_skipped == 0


# ---------------------------------------------------------------------------
# Checkpoint → kill → resume
# ---------------------------------------------------------------------------


class TestCheckpointKillResume:
    def test_resume_bit_identical_both_modes(self, tmp_path):
        prog, cfg = _family(0.08, 17)
        reference = analyze_program(
            prog, dataclasses.replace(cfg, incremental=False))
        for incremental in (False, True):
            cp = str(tmp_path / f"cp_{incremental}.pkl")
            cfg_cp = dataclasses.replace(
                cfg, incremental=incremental, checkpoint_path=cp,
                checkpoint_halt_after=2)
            with pytest.raises(SupervisorHalt):
                analyze_program(prog, cfg_cp)
            assert os.path.exists(cp)
            resumed = analyze_program(
                prog, dataclasses.replace(cfg, incremental=incremental,
                                          resume_path=cp))
            assert resumed.resumed
            assert _snapshot(resumed) == _snapshot(reference)

    def test_checkpoint_crosses_modes(self, tmp_path):
        # The fingerprint excludes the sharing knobs: a checkpoint
        # written incrementally must resume under --no-incremental
        # (and vice versa) to the same result.
        prog, cfg = _family(0.08, 23)
        reference = analyze_program(prog, cfg)
        cp = str(tmp_path / "cp.pkl")
        cfg_cp = dataclasses.replace(cfg, incremental=True,
                                     checkpoint_path=cp,
                                     checkpoint_halt_after=2)
        with pytest.raises(SupervisorHalt):
            analyze_program(prog, cfg_cp)
        resumed = analyze_program(
            prog, dataclasses.replace(cfg, incremental=False,
                                      resume_path=cp))
        assert resumed.resumed
        assert _snapshot(resumed) == _snapshot(reference)


# ---------------------------------------------------------------------------
# Sharing machinery unit tests
# ---------------------------------------------------------------------------


class TestInterning:
    def test_canonical_representative(self):
        from repro.domains.values import CellValue
        from repro.numeric import IntInterval

        interning.configure(1024)
        interning.clear()
        a = CellValue(IntInterval.of(1, 2))
        b = CellValue(IntInterval.of(1, 2))
        assert a is not b and a == b
        assert interning.intern_value(a) is a
        assert interning.intern_value(b) is a

    def test_disabled_is_identity(self):
        from repro.domains.values import CellValue
        from repro.numeric import IntInterval

        interning.configure(0)
        v = CellValue(IntInterval.of(3, 4))
        assert interning.intern_value(v) is v
        interning.configure(1024)

    def test_pool_is_bounded(self):
        from repro.domains.values import CellValue
        from repro.numeric import IntInterval

        interning.configure(8)
        interning.clear()
        for i in range(50):
            interning.intern_value(CellValue(IntInterval.of(i, i)))
        assert interning.intern_stats()[2] <= 8
        interning.configure(1024)

    def test_env_set_interns(self):
        from repro.domains.values import CellValue
        from repro.memory.environment import MemoryEnv
        from repro.numeric import IntInterval

        interning.configure(1024)
        interning.clear()
        e1 = MemoryEnv.initial().set(0, CellValue(IntInterval.of(5, 9)))
        e2 = MemoryEnv.initial().set(1, CellValue(IntInterval.of(5, 9)))
        assert e1.get(0) is e2.get(1)


class TestPMapIntern:
    def test_intern_restores_sharing(self):
        import pickle

        from repro.memory.fmap import PMap

        m = PMap.empty()
        for i in range(64):
            m = m.set(i, ("payload", i))
        m2 = pickle.loads(pickle.dumps(m))
        assert m2._root is not m._root
        # The node pool keys on value identity, so cross-structure
        # collapse needs a value canonicalizer (as reintern_env uses).
        pool, values = {}, {}
        canon = lambda v: values.setdefault(v, v)
        a = m.intern(pool, canon)
        b = m2.intern(pool, canon)
        assert a._root is b._root
        assert dict(b.items()) == dict(m.items())


class TestLatticeMemo:
    def test_hit_and_miss_counting(self):
        memo = LatticeMemo(maxsize=4)
        assert memo.enabled
        assert memo.lookup("k") is None
        memo.store("k", "a", "b", "r")
        assert memo.lookup("k") == ("a", "b", "r")
        assert memo.hits == 1 and memo.misses == 1

    def test_lru_eviction(self):
        memo = LatticeMemo(maxsize=2)
        memo.store("k1", 1, 1, 1)
        memo.store("k2", 2, 2, 2)
        memo.lookup("k1")  # refresh: k2 becomes LRU
        memo.store("k3", 3, 3, 3)
        assert memo.lookup("k2") is None
        assert memo.lookup("k1") is not None

    def test_zero_size_disables(self):
        memo = LatticeMemo(maxsize=0)
        assert not memo.enabled

    def test_memoized_join_is_identical(self):
        # End-to-end: joining the same two states twice returns the
        # memoized result object the second time.
        prog, cfg = _family(0.05, 5)
        res = analyze_program(prog, cfg)
        invs = [st for st in res.loop_invariants.values()
                if not st.is_bottom]
        assert len(invs) >= 1
        a = invs[0]
        b = invs[-1]
        assert res.ctx.lattice_memo.enabled
        j1 = a.join(b)
        j2 = a.join(b)
        assert j1 is j2


class TestOctagonSharing:
    def _raw(self, hi=10.0):
        # Non-closed with enough finite entries that closed() runs the
        # real cubic pass (same shape as test_sharing_fastpaths).
        n = 3
        o = Octagon(n)
        m = o.m.copy()
        for i in range(n):
            m[2 * i + 1, 2 * i] = 2.0 * (hi + i)
            m[2 * i, 2 * i + 1] = 2.0 * (hi + i)
        m[2, 0] = 3.0
        return Octagon(n, m, closed=False)

    def test_raw_equal_semantics(self):
        a, b = self._raw(), self._raw()
        assert a.raw_equal(b)
        assert a.raw_equal(a)
        c = self._raw(hi=20.0)
        assert not a.raw_equal(c)

    def test_raw_equal_does_not_close(self):
        a, b = self._raw(), self._raw()
        before = Octagon.closure_computations
        assert a.raw_equal(b)
        assert Octagon.closure_computations == before

    def test_closure_memo_hits_and_is_value_correct(self):
        configure_closure_memo(256)
        a, b = self._raw(), self._raw()
        ca = a.closed()
        hits0 = closure_memo_stats()[0]
        cb = b.closed()
        assert closure_memo_stats()[0] == hits0 + 1
        assert ca.equal(cb)
        configure_closure_memo(0)

    def test_closure_memo_disabled_recomputes(self):
        configure_closure_memo(0)
        a, b = self._raw(), self._raw()
        a.closed()
        before = Octagon.closure_computations
        b.closed()
        assert Octagon.closure_computations == before + 1

    def test_closure_memo_evicts_oldest_not_wholesale(self):
        # Capacity overflow drops a small oldest batch; the rest of the
        # working set keeps hitting (the old behavior cleared the whole
        # memo, zeroing the hit-rate on every overflow).
        from repro.domains.octagon import closure_memo_stats

        configure_closure_memo(4)
        octs = [self._raw(hi=10.0 + i) for i in range(5)]
        for o in octs:
            o.closed()
        hits0, size, evictions = closure_memo_stats()
        assert evictions >= 1
        assert size <= 4
        # Entries 1..4 survived (only the oldest batch was dropped):
        # re-closing fresh equal matrices hits the memo.
        for i in range(1, 5):
            self._raw(hi=10.0 + i).closed()
        hits1 = closure_memo_stats()[0]
        assert hits1 == hits0 + 4
        # The evicted oldest entry recomputes (a miss)...
        before = Octagon.closure_computations
        self._raw(hi=10.0).closed()
        assert Octagon.closure_computations == before + 1
        # ...and same-capacity reconfiguration keeps the memo warm
        # (the daemon re-sizes per job without losing the working set).
        configure_closure_memo(4)
        pre_hits = closure_memo_stats()[0]
        self._raw(hi=10.0).closed()
        assert closure_memo_stats()[0] == pre_hits + 1
        configure_closure_memo(0)
