"""Vectorized environment lattice kernels: bit-identity to the scalar
oracle, threshold-scan boundary behavior, the batching crossover, and
the end-to-end differential matrix across vectorize/incremental/jobs.

The contract under test (see numeric/interval_kernels.py): every
batched numpy kernel — and the vectorized octagon closure — produces
*bit-identical* results to the scalar implementation it replaces, for
every input including NaN bounds, signed zeros, infinities and empty
intervals.  That property is what lets the ``vectorize`` knob stay out
of the checkpoint/serve fingerprints.
"""

import dataclasses
import math
import random
import struct

import numpy as np
import pytest

from repro.analysis import analyze_program
from repro.domains.octagon import _closed_matrix, _closed_matrix_scalar
from repro.domains.thresholds import default_thresholds
from repro.domains.values import CellValue
from repro.frontend import compile_source
from repro.memory import environment
from repro.memory.environment import MemoryEnv
from repro.numeric import FloatInterval, IntInterval
from repro.numeric import interval_kernels as K
from repro.numeric.intervals import _largest_leq, _smallest_geq
from repro.synth import FamilySpec, generate_program

INF = math.inf
NAN = math.nan


def bits(x: float) -> bytes:
    return struct.pack("<d", x)


#: Adversarial interval population: signed zeros, NaN bounds, infinite
#: and half-infinite bounds, canonical and non-canonical empties,
#: subnormals, extreme magnitudes, points.
SPECIALS = [
    FloatInterval(0.0, 1.0),
    FloatInterval(-1.0, 1.0),
    FloatInterval(-0.0, 0.0),
    FloatInterval(0.0, -0.0),          # lo > hi is False: NOT empty
    FloatInterval(-0.0, -0.0),
    FloatInterval(-INF, INF),
    FloatInterval(INF, -INF),          # canonical empty
    FloatInterval(5.0, 2.0),           # non-canonical empty
    FloatInterval(NAN, 1.0),
    FloatInterval(1.0, NAN),
    FloatInterval(NAN, NAN),
    FloatInterval(-INF, -1e308),
    FloatInterval(1e308, INF),
    FloatInterval(5e-324, 1e-300),     # subnormal bounds
    FloatInterval(-1.5, -1.5),
    FloatInterval(2.0, 2.0),
]


def random_interval(rng: random.Random) -> FloatInterval:
    r = rng.random()
    if r < 0.3:
        return rng.choice(SPECIALS)
    lo = rng.uniform(-1e6, 1e6) * (10.0 ** rng.randint(-3, 3))
    if rng.random() < 0.1:
        return FloatInterval(lo, lo)
    return FloatInterval(lo, lo + abs(rng.gauss(0, 100.0)))


def pair_population():
    """All special x special pairs plus seeded random filler."""
    pairs = [(x, y) for x in SPECIALS for y in SPECIALS]
    rng = random.Random(0xA57E8)
    pairs += [(random_interval(rng), random_interval(rng))
              for _ in range(500)]
    return pairs


def assert_planes_bit_identical(scalar_results, out_lo, out_hi, tag):
    ref_lo, ref_hi = K.planes(scalar_results)
    assert ref_lo.tobytes() == out_lo.tobytes(), tag
    assert ref_hi.tobytes() == out_hi.tobytes(), tag


class TestThresholdScan:
    """The bisect rewrite of _largest_leq/_smallest_geq must agree with
    the linear scan on every boundary case."""

    LADDERS = [
        [],
        [-INF, INF],
        [-INF, -4.0, -1.0, 0.0, 1.0, 4.0, 16.0, INF],
        [-INF, 0.0, INF],
        list(default_thresholds().values),
    ]

    @staticmethod
    def ref_largest_leq(ts, x):
        best = -INF
        for t in ts:
            if t <= x:
                best = t
        return best

    @staticmethod
    def ref_smallest_geq(ts, x):
        for t in ts:
            if t >= x:
                return t
        return INF

    def probes(self, ladder):
        probes = [NAN, -INF, INF, -0.0, 0.0, 5e-324, -5e-324,
                  1e308, -1e308]
        for t in ladder:
            probes.append(t)                       # exactly on a rung
            if math.isfinite(t):
                probes.append(math.nextafter(t, -INF))
                probes.append(math.nextafter(t, INF))
        return probes

    def test_boundary_exact(self):
        for ladder in self.LADDERS:
            for x in self.probes(ladder):
                got = _largest_leq(ladder, x)
                want = self.ref_largest_leq(ladder, x)
                assert bits(got) == bits(want) or (got == want == 0.0), \
                    (ladder, x, got, want)
                got = _smallest_geq(ladder, x)
                want = self.ref_smallest_geq(ladder, x)
                assert bits(got) == bits(want) or (got == want == 0.0), \
                    (ladder, x, got, want)

    def test_vector_scan_matches_scalar(self):
        for ladder in self.LADDERS:
            arr = np.asarray(ladder, dtype=np.float64)
            xs = np.asarray(self.probes(ladder), dtype=np.float64)
            leq = K._largest_leq_vec(arr, xs)
            geq = K._smallest_geq_vec(arr, xs)
            for i, x in enumerate(xs.tolist()):
                assert bits(leq[i]) == bits(_largest_leq(ladder, x)), \
                    (ladder, x)
                assert bits(geq[i]) == bits(_smallest_geq(ladder, x)), \
                    (ladder, x)

    def test_random_scan_fuzz(self):
        rng = random.Random(20030608)
        ladder = sorted({-INF, INF, 0.0,
                         *(rng.uniform(-1e4, 1e4) for _ in range(60))})
        for _ in range(2000):
            x = rng.choice([rng.uniform(-2e4, 2e4), rng.choice(ladder),
                            NAN, -INF, INF])
            assert _largest_leq(ladder, x) == self.ref_largest_leq(ladder, x)
            assert _smallest_geq(ladder, x) == self.ref_smallest_geq(ladder, x)


class TestKernelBitIdentity:
    """Each batched kernel against a per-cell scalar loop, bitwise."""

    def planes_of(self, pairs):
        a = [p[0] for p in pairs]
        b = [p[1] for p in pairs]
        return (*K.planes(a), *K.planes(b)), a, b

    def test_join(self):
        (a_lo, a_hi, b_lo, b_hi), a, b = self.planes_of(pair_population())
        out_lo, out_hi = K.batch_join(a_lo, a_hi, b_lo, b_hi)
        ref = [x.join(y) for x, y in zip(a, b)]
        assert_planes_bit_identical(ref, out_lo, out_hi, "join")

    def test_meet(self):
        (a_lo, a_hi, b_lo, b_hi), a, b = self.planes_of(pair_population())
        out_lo, out_hi = K.batch_meet(a_lo, a_hi, b_lo, b_hi)
        ref = [x.meet(y) for x, y in zip(a, b)]
        assert_planes_bit_identical(ref, out_lo, out_hi, "meet")

    @pytest.mark.parametrize("ladder", [
        None,
        [-INF, -4.0, -0.5, 0.0, 0.5, 4.0, 1e4, INF],
        list(default_thresholds().values),
    ])
    def test_widen(self, ladder):
        (a_lo, a_hi, b_lo, b_hi), a, b = self.planes_of(pair_population())
        arr = None if ladder is None else K.ladder_array(ladder)
        out_lo, out_hi = K.batch_widen(a_lo, a_hi, b_lo, b_hi, arr)
        ref = [x.widen(y, ladder) for x, y in zip(a, b)]
        assert_planes_bit_identical(ref, out_lo, out_hi, f"widen:{ladder}")

    def test_narrow(self):
        (a_lo, a_hi, b_lo, b_hi), a, b = self.planes_of(pair_population())
        out_lo, out_hi = K.batch_narrow(a_lo, a_hi, b_lo, b_hi)
        ref = [x.narrow(y) for x, y in zip(a, b)]
        assert_planes_bit_identical(ref, out_lo, out_hi, "narrow")

    def test_includes(self):
        (a_lo, a_hi, b_lo, b_hi), a, b = self.planes_of(pair_population())
        ok = K.batch_includes(a_lo, a_hi, b_lo, b_hi)
        for i, (x, y) in enumerate(zip(a, b)):
            assert bool(ok[i]) == x.includes(y), (i, x, y)

    def test_empty_batch(self):
        z = np.empty(0, dtype=np.float64)
        for kernel in (K.batch_join, K.batch_meet, K.batch_narrow):
            lo, hi = kernel(z, z, z, z)
            assert lo.size == 0 and hi.size == 0
        lo, hi = K.batch_widen(z, z, z, z, None)
        assert lo.size == 0 and hi.size == 0
        assert K.batch_includes(z, z, z, z).size == 0

    def test_single_cell(self):
        for x in SPECIALS:
            for y in SPECIALS:
                a_lo, a_hi = K.planes([x])
                b_lo, b_hi = K.planes([y])
                lo, hi = K.batch_join(a_lo, a_hi, b_lo, b_hi)
                ref = x.join(y)
                assert bits(lo[0]) == bits(ref.lo), (x, y)
                assert bits(hi[0]) == bits(ref.hi), (x, y)


class TestClosureOracle:
    """The pure-Python closure mirror is bit-identical to the numpy
    Floyd-Warshall + strengthening kernel."""

    @staticmethod
    def random_dbm(rng: random.Random, n: int) -> np.ndarray:
        size = 2 * n
        m = np.full((size, size), INF, dtype=np.float64)
        for i in range(size):
            m[i][i] = 0.0
            for j in range(size):
                if i == j:
                    continue
                r = rng.random()
                if r < 0.35:
                    continue
                if r < 0.42:
                    m[i][j] = rng.choice(
                        [0.0, -0.0, 1e308, -1e308, 5e-324, -5e-324])
                else:
                    m[i][j] = rng.uniform(-1e3, 1e3) * \
                        (10.0 ** rng.randint(-2, 2))
        return m

    def test_bit_identical(self):
        rng = random.Random(0x0C7A60)
        with np.errstate(over="ignore", invalid="ignore"):
            for trial in range(60):
                n = rng.randint(1, 6)
                m0 = self.random_dbm(rng, n)
                vec = _closed_matrix(m0, n)
                ref = _closed_matrix_scalar(m0, n)
                assert vec.tobytes() == ref.tobytes(), (trial, n)


def float_cell(lo: float, hi: float) -> CellValue:
    return CellValue(FloatInterval(lo, hi))


def env_pair(n_diff: int, n_same: int = 3):
    """Two environments differing on exactly ``n_diff`` float cells."""
    a = MemoryEnv.initial()
    b = MemoryEnv.initial()
    for cid in range(n_diff):
        a = a.set(cid, float_cell(0.0, float(cid + 1)))
        b = b.set(cid, float_cell(-1.0, float(2 * cid + 5)))
    for cid in range(n_diff, n_diff + n_same):
        v = float_cell(0.0, 1.0)
        a = a.set(cid, v)
        b = b.set(cid, v)
    return a, b


def envs_equal(x: MemoryEnv, y: MemoryEnv) -> bool:
    cids = {cid for cid, _ in x.cells.items()} | \
           {cid for cid, _ in y.cells.items()}
    for cid in cids:
        vx, vy = x.get(cid), y.get(cid)
        if (vx is None) != (vy is None):
            return False
        if vx is None:
            continue
        if bits(vx.itv.lo) != bits(vy.itv.lo) or \
                bits(vx.itv.hi) != bits(vy.itv.hi):
            return False
        if (vx.minus_clock, vx.plus_clock) != (vy.minus_clock, vy.plus_clock):
            return False
    return True


@pytest.fixture
def restore_vectorize():
    yield
    environment.configure_vectorize(True, 16)


class TestCrossover:
    """The min-cells crossover: below it the scalar path runs (no batch
    counter movement), at and above it one kernel call per merge — with
    identical results either way."""

    MIN = 6

    @pytest.mark.parametrize("n_diff", [MIN - 1, MIN, MIN + 1])
    def test_equal_results_and_counters(self, n_diff, restore_vectorize):
        a, b = env_pair(n_diff)

        environment.configure_vectorize(False)
        scalar = a.join(b)

        environment.configure_vectorize(True, self.MIN)
        K.reset_stats()
        vec = a.join(b)

        assert envs_equal(scalar, vec)
        expect_batch = 1 if n_diff >= self.MIN else 0
        assert K.stats()["batches"] == expect_batch
        assert K.stats()["cells"] == (n_diff if expect_batch else 0)

    def test_all_ops_agree(self, restore_vectorize):
        thresholds = list(default_thresholds().values)
        a, b = env_pair(12)
        for op in ("join", "widen", "narrow", "meet", "includes"):
            environment.configure_vectorize(False)
            want = getattr(a, op)(b) if op != "widen" \
                else a.widen(b, thresholds)
            environment.configure_vectorize(True, 4)
            got = getattr(a, op)(b) if op != "widen" \
                else a.widen(b, thresholds)
            if op == "includes":
                assert got == want, op
            else:
                assert envs_equal(got, want), op

    def test_mixed_cells_fall_back_scalar(self, restore_vectorize):
        """Clocked and non-float cells inside an engaged batch use the
        scalar path (and count as fallbacks) without perturbing the
        batched float cells."""
        a, b = env_pair(10)
        clocked_a = CellValue(IntInterval.of(0, 5), IntInterval.of(-3, 0))
        clocked_b = CellValue(IntInterval.of(0, 9), IntInterval.of(-5, 0))
        int_a = CellValue(IntInterval.of(0, 1))
        int_b = CellValue(IntInterval.of(0, 2))
        a = a.set(100, clocked_a).set(101, int_a)
        b = b.set(100, clocked_b).set(101, int_b)

        environment.configure_vectorize(False)
        want = a.join(b)
        environment.configure_vectorize(True, 4)
        K.reset_stats()
        got = a.join(b)

        assert envs_equal(got, want)
        st = K.stats()
        assert st["batches"] == 1 and st["cells"] == 10
        assert st["fallbacks"] == 2

    def test_widen_frozen_cells_join_instead(self, restore_vectorize):
        thresholds = list(default_thresholds().values)
        a, b = env_pair(10)
        frozen = {0, 1, 2}
        environment.configure_vectorize(False)
        want = a.widen(b, thresholds, frozen_cids=frozen)
        environment.configure_vectorize(True, 4)
        K.reset_stats()
        got = a.widen(b, thresholds, frozen_cids=frozen)
        assert envs_equal(got, want)
        # Frozen cells are excluded from the batch, not fallbacks.
        assert K.stats()["cells"] == 7
        assert K.stats()["fallbacks"] == 0


# -- end-to-end differential matrix ------------------------------------------

SWEEP = [(0.05 + 0.005 * (s % 5), 300 + s) for s in range(20)]


def _family(kloc: float, seed: int):
    gp = generate_program(FamilySpec(target_kloc=kloc, seed=seed))
    cfg = gp.analyzer_config(collect_invariants=True)
    prog = compile_source(gp.source, "family.c")
    return prog, cfg


def _snapshot(result) -> dict:
    return {
        "alarms": [(a.kind, a.sid, a.loc.line, a.loc.col, a.message)
                   for a in result.alarms],
        "exit_code": result.exit_code,
        "invariant": result.dump_invariant_text(),
        "useful_oct": sorted(result.useful_octagon_packs),
    }


#: Per-seed variant rotation covering the vectorize x incremental x jobs
#: matrix; the reference run is always the all-defaults config.
VARIANTS = [
    dict(vectorize=False),
    dict(vectorize=False, incremental=False),
    dict(incremental=False),
    dict(vectorize=False, jobs=2),
]


class TestDifferentialMatrix:
    @pytest.mark.parametrize("kloc,seed", SWEEP)
    def test_sweep(self, kloc, seed):
        prog, cfg = _family(kloc, seed)
        variant = VARIANTS[seed % len(VARIANTS)]
        base = analyze_program(prog, cfg)
        other = analyze_program(prog, dataclasses.replace(cfg, **variant))
        assert _snapshot(base) == _snapshot(other), variant
        if variant.get("incremental", True):
            # Same engine, different backend/jobs: the iteration count
            # and the statement slicing must match exactly too — the
            # batched kernels must not perturb what gets re-executed.
            assert base.widening_iterations == other.widening_iterations
            assert base.stmts_executed == other.stmts_executed
            assert base.stmts_skipped == other.stmts_skipped

    def test_counters_report_batching(self):
        gp = generate_program(FamilySpec(target_kloc=0.125, seed=2003))
        prog = compile_source(gp.source, "family.c")
        cfg = gp.analyzer_config(vectorize_min_cells=4)
        vec = analyze_program(prog, cfg)
        assert vec.vectorize and vec.vector_batches > 0
        assert vec.vector_cells >= vec.vector_batches
        scalar = analyze_program(
            prog, dataclasses.replace(cfg, vectorize=False))
        assert not scalar.vectorize
        assert scalar.vector_batches == 0 and scalar.vector_cells == 0
        assert _snapshot(vec) == _snapshot(scalar)

    def test_fallback_widening_attributed_to_lattice(self):
        """Budget-exhausted (threshold-free) widening runs outside the
        timed AbstractState wrappers; its wall time must still land in
        the lattice split of the iteration phase — and the forced-
        convergence path must stay bit-identical across backends."""
        prog, cfg = _family(0.06, 404)
        cfg = dataclasses.replace(cfg, max_widening_iterations=1,
                                  widening_delay=0)
        vec = analyze_program(prog, cfg)
        scalar = analyze_program(
            prog, dataclasses.replace(cfg, vectorize=False))
        assert _snapshot(vec) == _snapshot(scalar)
        for r in (vec, scalar):
            assert r.phase_times["iteration-lattice"] > 0.0
