"""Analysis-as-a-service benchmark: the 1000-request near-duplicate sweep.

Models the paper's deployment pattern — successive analyses of
near-identical versions of one program family — against a live
``astree-repro serve`` daemon:

* **Phase A (cold references)**: every variant of the pinned workload is
  analyzed once with ``bypass_cache`` — a from-scratch run whose wall
  time and semantic digest are the per-variant reference.
* **Phase B (the sweep)**: 1000 requests drawn (pinned seed) from the
  variant pool are submitted normally.  Repeat requests hit the
  exact-result store; first sightings of a variant run warm through the
  cross-run fixpoint cache.  Every response's digest must equal the
  phase-A reference of its variant — the determinism contract, gated
  here and in CI.

Writes ``BENCH_6.json`` at the repo root with per-phase summaries, the
per-request speedup distribution (cold reference wall / served wall)
and the daemon's cache-layer stats.

Usage::

    python benchmarks/run_serve_bench.py [--out BENCH_6.json]
        [--requests 1000] [--variants 25] [--kloc 0.15]
"""

import argparse
import json
import os
import random
import statistics
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.serve.client import ServeClient  # noqa: E402
from repro.serve.workload import base_program, make_variant  # noqa: E402

WORKLOAD_SEED = 20080808
SWEEP_SEED = 6


def boot_daemon(socket_path, cache_dir):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve",
         "--socket", socket_path, "--cache-dir", cache_dir],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.time() + 30
    while not os.path.exists(socket_path):
        if proc.poll() is not None:
            raise RuntimeError("daemon exited during boot:\n"
                               + (proc.stdout.read() or ""))
        if time.time() > deadline:
            proc.kill()
            raise RuntimeError("daemon socket never appeared")
        time.sleep(0.05)
    return proc


def main():
    ap = argparse.ArgumentParser()
    ap.add_argument("--out", default=os.path.join(ROOT, "BENCH_6.json"))
    ap.add_argument("--requests", type=int, default=1000)
    ap.add_argument("--variants", type=int, default=25)
    ap.add_argument("--kloc", type=float, default=0.15)
    args = ap.parse_args()

    gp = base_program(kloc=args.kloc, seed=WORKLOAD_SEED)
    overrides = {"input_ranges": {k: list(v)
                                  for k, v in gp.input_ranges.items()},
                 "max_clock": gp.max_clock}
    variants = [make_variant(gp.source, s) for s in range(args.variants)]

    tmp = tempfile.mkdtemp(prefix="serve-bench-")
    socket_path = os.path.join(tmp, "serve.sock")
    cache_dir = os.path.join(tmp, "cache")
    proc = boot_daemon(socket_path, cache_dir)
    try:
        client = ServeClient(socket_path, timeout=600.0)

        # Phase A: cold references (cache bypassed on the daemon side).
        cold_wall = {}
        cold_digest = {}
        for vid, src in enumerate(variants):
            r = client.submit([("fam.c", src)], config=overrides,
                              bypass_cache=True)
            assert r["ok"], r.get("error")
            cold_wall[vid] = r["wall_s"]
            cold_digest[vid] = r["digest"]
            print(f"cold ref {vid:>3}: {r['wall_s']*1000:8.1f} ms "
                  f"{r['digest'][:12]}", flush=True)

        # Phase B: the pinned 1000-request sweep.
        rng = random.Random(SWEEP_SEED)
        order = [rng.randrange(args.variants)
                 for _ in range(args.requests)]
        rows = []
        mismatches = 0
        exact_hits = 0
        warm_runs = 0
        for i, vid in enumerate(order):
            r = client.submit([("fam.c", variants[vid])],
                              config=overrides)
            assert r["ok"], r.get("error")
            identical = r["digest"] == cold_digest[vid]
            if not identical:
                mismatches += 1
            if r["cached"]:
                exact_hits += 1
            elif r["result"].get("cross_run_hits", 0) > 0:
                warm_runs += 1
            rows.append({
                "variant": vid,
                "cached": r["cached"],
                "wall_s": r["wall_s"],
                "speedup": cold_wall[vid] / max(r["wall_s"], 1e-9),
                "bit_identical": identical,
            })
            if (i + 1) % 100 == 0:
                print(f"sweep {i + 1}/{args.requests}: "
                      f"{exact_hits} exact hits, {warm_runs} warm runs, "
                      f"{mismatches} mismatches", flush=True)

        stats = client.stats()["stats"]
        client.shutdown()
        client.close()
    finally:
        proc.terminate()
        try:
            proc.wait(timeout=10)
        except subprocess.TimeoutExpired:
            proc.kill()

    speedups = sorted(r["speedup"] for r in rows)
    served = sorted(r["wall_s"] for r in rows)

    def pct(xs, p):
        return xs[min(len(xs) - 1, int(p * len(xs)))]

    report = {
        "bench": "analysis-as-a-service near-duplicate sweep",
        "workload": {
            "kloc": args.kloc,
            "seed": WORKLOAD_SEED,
            "sweep_seed": SWEEP_SEED,
            "variants": args.variants,
            "requests": args.requests,
        },
        "cold": {
            "median_wall_s": statistics.median(cold_wall.values()),
            "total_wall_s": sum(cold_wall.values()),
        },
        "served": {
            "median_wall_s": statistics.median(served),
            "p90_wall_s": pct(served, 0.90),
            "total_wall_s": sum(served),
            "exact_result_hits": exact_hits,
            "warm_runs": warm_runs,
            "cold_runs": args.requests - exact_hits - warm_runs,
        },
        "speedup": {
            "median": statistics.median(speedups),
            "p10": pct(speedups, 0.10),
            "p90": pct(speedups, 0.90),
        },
        "bit_identical_all": mismatches == 0,
        "mismatches": mismatches,
        "daemon_stats": {
            "result_cache": stats["result_cache"],
            "journal_store": stats["journal_store"],
            "frontend_cache": stats["frontend_cache"],
            "runs": stats["runs"],
            "queue": stats["queue"],
        },
    }
    with open(args.out, "w") as f:
        json.dump(report, f, indent=1, sort_keys=True)
        f.write("\n")
    print(f"\nmedian speedup {report['speedup']['median']:.1f}x "
          f"(p10 {report['speedup']['p10']:.1f}x, "
          f"p90 {report['speedup']['p90']:.1f}x); "
          f"{exact_hits} exact hits + {warm_runs} warm runs / "
          f"{args.requests}; bit-identical: {report['bit_identical_all']}")
    print(f"wrote {args.out}")
    if mismatches:
        return 1
    if report["speedup"]["median"] < 10.0:
        print("FAIL: median warm speedup below 10x", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
