"""E3 — Sect. 7.2.1/7.2.2: octagon packing statistics and the useful-pack
re-run optimization.

Paper: "on a program of 75 kLOC, 2,600 octagons were detected, each
containing four variables on average"; "only 400 out of the 2,600 original
octagons were in fact useful"; re-running with the useful list "reduces, on
the largest example code, memory consumption from 550 Mb to 150 Mb and time
from 1h40 to 40min" (~2.5x faster, ~3.7x less memory).
"""

import time
import tracemalloc

import pytest

from .conftest import FLAGSHIP_KLOC, analyze_family, family_program, print_table


def _measured_run(gp, **overrides):
    tracemalloc.start()
    t0 = time.perf_counter()
    result = analyze_family(gp, **overrides)
    dt = time.perf_counter() - t0
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return result, dt, peak


class TestPackingOptimization:
    def test_pack_statistics(self, benchmark):
        """Pack count scales with code size; packs stay small (avg ~4)."""
        gp = family_program(FLAGSHIP_KLOC)
        result = benchmark.pedantic(lambda: analyze_family(gp),
                                    rounds=1, iterations=1)
        per_kloc = result.octagon_pack_count / (gp.loc / 1000)
        print_table(
            "Sect. 7.2.1 — octagon pack statistics "
            "(paper: 2,600 packs on 75 kLOC = ~35/kLOC, avg 4 vars)",
            ("LOC", "packs", "packs/kLOC", "avg size"),
            [(gp.loc, result.octagon_pack_count, f"{per_kloc:.1f}",
              f"{result.octagon_pack_avg_size:.2f}")],
        )
        assert result.octagon_pack_count > 0
        assert 2.0 <= result.octagon_pack_avg_size <= 8.0

    def test_useful_fraction(self, benchmark):
        """Only a minority of packs improve precision (paper: 400/2600)."""
        gp = family_program(FLAGSHIP_KLOC)
        result = benchmark.pedantic(lambda: analyze_family(gp),
                                    rounds=1, iterations=1)
        useful = len(result.useful_octagon_packs)
        total = result.octagon_pack_count
        print_table(
            "Sect. 7.2.2 — useful packs (paper: 400 of 2,600 = 15%)",
            ("total packs", "useful", "fraction"),
            [(total, useful, f"{useful / max(total, 1):.0%}")],
        )
        assert useful < total, "some packs must be useless (else no saving)"

    def test_rerun_with_useful_packs(self, benchmark):
        """The optimization: same alarms, less time and memory."""
        gp = family_program(FLAGSHIP_KLOC)

        def both():
            full = _measured_run(gp)
            restricted = _measured_run(
                gp, restrict_octagon_packs=full[0].useful_octagon_packs)
            return full, restricted

        ((full, full_time, full_mem),
         (restricted, fast_time, fast_mem)) = benchmark.pedantic(
            both, rounds=1, iterations=1)
        print_table(
            "Sect. 7.2.2/8 — packing optimization "
            "(paper: 1h40 -> 40min, 550 Mb -> 150 Mb)",
            ("run", "packs", "alarms", "time (s)", "peak mem (MB)"),
            [
                ("all packs", full.octagon_pack_count, full.alarm_count,
                 f"{full_time:.2f}", f"{full_mem / 1e6:.1f}"),
                ("useful only", restricted.octagon_pack_count,
                 restricted.alarm_count, f"{fast_time:.2f}",
                 f"{fast_mem / 1e6:.1f}"),
            ],
        )
        print(f"speedup: {full_time / fast_time:.2f}x (paper: ~2.5x)")
        # Safety: "it is perfectly safe to use a list of useful packs
        # output by a previous analysis."
        assert restricted.alarm_count == full.alarm_count
        assert restricted.octagon_pack_count <= full.octagon_pack_count
        assert fast_time <= full_time * 1.10


def test_full_run_benchmark(benchmark):
    gp = family_program(FLAGSHIP_KLOC)
    benchmark.pedantic(lambda: analyze_family(gp), rounds=1, iterations=1)


def test_restricted_run_benchmark(benchmark):
    gp = family_program(FLAGSHIP_KLOC)
    first = analyze_family(gp)
    benchmark.pedantic(
        lambda: analyze_family(
            gp, restrict_octagon_packs=first.useful_octagon_packs),
        rounds=1, iterations=1)
