"""A1-A6 — ablations of the design choices DESIGN.md calls out.

The paper's Sect. 3.1 refinement loop justifies each domain/strategy by the
false alarms it removes ("a single refinement typically eliminates a few
dozen if not hundreds of false alarms").  Each ablation disables exactly
one feature of the refined analyzer on the flagship program and reports the
alarms that come back — an attribution table for the final zero-alarm
result.
"""

import pytest

from .conftest import FLAGSHIP_KLOC, analyze_family, family_program, print_table

ABLATIONS = [
    ("full analyzer", {}),
    ("no clocked domain", {"enable_clock": False}),
    ("no octagons", {"enable_octagons": False}),
    ("no ellipsoids", {"enable_ellipsoids": False}),
    ("no decision trees", {"enable_decision_trees": False}),
    ("no linearization", {"enable_linearization": False}),
    ("no widening thresholds", {"thresholds": None}),
    ("no delayed widening", {"widening_delay": 0,
                             "delay_fairness_bound": 0}),
    ("no loop unrolling", {"default_unroll": 0}),
    # Feature-ON ablation: the optional inter-octagon propagation the
    # paper mentions but found unnecessary (Sect. 7.2.1).
    ("+octagon pivot reduction", {"octagon_pivot_reduction": True}),
]


class TestAblations:
    def test_ablation_table(self, benchmark):
        gp = family_program(FLAGSHIP_KLOC)

        def sweep():
            return {name: analyze_family(gp, **overrides)
                    for name, overrides in ABLATIONS}

        results = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = [(name, results[name].alarm_count,
                 f"{results[name].analysis_time:.2f}")
                for name, _ in ABLATIONS]
        print_table(
            f"Ablations on the {gp.loc} LOC flagship "
            "(alarms reintroduced by disabling one feature)",
            ("configuration", "alarms", "time (s)"),
            rows,
        )
        assert results["full analyzer"].alarm_count == 0
        # Each specialized domain earns its keep on this program family.
        assert results["no clocked domain"].alarm_count > 0, \
            "event counters need the clocked domain"
        assert results["no octagons"].alarm_count > 0, \
            "delta-indexed accesses need octagonal relations"
        assert results["no ellipsoids"].alarm_count > 0, \
            "second-order filters need the ellipsoid domain"
        assert results["no decision trees"].alarm_count > 0, \
            "boolean-guarded divisions need decision trees"
        assert results["no widening thresholds"].alarm_count > 0, \
            "contracting maps need the threshold ladder"

    def test_ablations_never_unsound(self, benchmark):
        """Disabling features may only ADD alarms, never remove any
        (they are all over-approximation refinements)."""
        gp = family_program(FLAGSHIP_KLOC / 4)

        def sweep():
            full = analyze_family(gp)
            return full, [(name, analyze_family(gp, **overrides))
                          for name, overrides in ABLATIONS[1:5]]

        full, ablated = benchmark.pedantic(sweep, rounds=1, iterations=1)
        for name, result in ablated:
            assert result.alarm_count >= full.alarm_count, name


@pytest.mark.parametrize("name,overrides", ABLATIONS[:5],
                         ids=[a[0].replace(" ", "-") for a in ABLATIONS[:5]])
def test_ablation_benchmark(benchmark, name, overrides):
    gp = family_program(FLAGSHIP_KLOC / 2)
    benchmark.pedantic(lambda: analyze_family(gp, **overrides),
                       rounds=1, iterations=1)
