"""Fig. 2 scaling suite, incremental vs full re-execution.

Runs the pinned-seed generated family at every Fig. 2 size through the
CLI (``python -m repro.cli analyze --json --stats``) twice — once with
``--incremental`` (the default engine) and once with
``--no-incremental`` (the pre-incremental engine) — in a fresh
subprocess per run so peak RSS is per-run, not cumulative.  Records
wall time, widening iterations, statements executed vs skipped, and
peak RSS, checks that alarms and exit codes are bit-identical across
modes, and writes the result table to ``BENCH_4.json`` at the repo
root.

Usage::

    python benchmarks/run_bench.py [--out BENCH_4.json] [--sizes 0.5 2.0]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, HERE)

from conftest import FAMILY_SEED, FIG2_SIZES, family_program  # noqa: E402


def _run_cli(args, env):
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze"] + args,
        capture_output=True, text=True, env=env)
    wall = time.perf_counter() - t0
    if proc.returncode not in (0, 1):
        raise RuntimeError(
            f"analyze exited {proc.returncode}:\n{proc.stderr}")
    return wall, json.loads(proc.stdout)


def bench_size(kloc: float, workdir: str) -> dict:
    gp = family_program(kloc)
    src = os.path.join(workdir, f"family_{kloc}.c")
    with open(src, "w") as f:
        f.write(gp.source)
    base = [src, "--json", "--stats",
            "--max-clock", str(gp.max_clock)]
    for name, (lo, hi) in sorted(gp.input_ranges.items()):
        base += ["--input-range", f"{name}={lo}:{hi}"]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")

    row = {"kloc": kloc, "seed": FAMILY_SEED}
    payloads = {}
    for mode, flag in (("full", "--no-incremental"),
                       ("incremental", "--incremental")):
        wall, payload = _run_cli(base + [flag], env)
        payloads[mode] = payload
        row[mode] = {
            "wall_s": round(wall, 3),
            "analysis_time_s": round(payload["analysis_time_s"], 3),
            "widening_iterations": payload["widening_iterations"],
            "stmts_executed": payload["stmts_executed"],
            "stmts_skipped": payload["stmts_skipped"],
            "peak_rss_kib": payload["peak_rss_kib"],
            "alarm_count": payload["alarm_count"],
            "exit_code": payload["exit_code"],
        }
    full, incr = payloads["full"], payloads["incremental"]
    row["identical"] = (full["alarms"] == incr["alarms"]
                        and full["exit_code"] == incr["exit_code"])
    row["speedup"] = round(
        full["analysis_time_s"] / max(incr["analysis_time_s"], 1e-9), 2)
    exec_i, skip_i = incr["stmts_executed"], incr["stmts_skipped"]
    row["executed_fraction"] = round(
        incr["stmts_executed"] / max(full["stmts_executed"], 1), 3)
    row["skip_fraction"] = round(skip_i / max(exec_i + skip_i, 1), 3)
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=os.path.join(ROOT, "BENCH_4.json"))
    ap.add_argument("--sizes", nargs="*", type=float, default=FIG2_SIZES)
    args = ap.parse_args(argv)

    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for kloc in args.sizes:
            row = bench_size(kloc, workdir)
            rows.append(row)
            print(f"{kloc:7.3f} kLOC: full {row['full']['analysis_time_s']:7.2f}s"
                  f"  incr {row['incremental']['analysis_time_s']:7.2f}s"
                  f"  = {row['speedup']:.2f}x"
                  f"  ({100 * row['skip_fraction']:.0f}% skipped,"
                  f" identical={row['identical']})")

    largest = max(rows, key=lambda r: r["kloc"])
    result = {
        "bench": "incremental-vs-full (Fig. 2 scaling suite)",
        "seed": FAMILY_SEED,
        "sizes_kloc": args.sizes,
        "rows": rows,
        "largest_size_speedup": largest["speedup"],
        "all_identical": all(r["identical"] for r in rows),
    }
    with open(args.out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"wrote {args.out}")
    if not result["all_identical"]:
        print("ERROR: modes disagree on alarms/exit codes", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
