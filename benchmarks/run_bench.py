"""Fig. 2 scaling suite: engine-mode A/B comparison.

Runs the pinned-seed generated family at every Fig. 2 size through the
CLI (``python -m repro.cli analyze --json --stats``) twice per size — in
a fresh subprocess per run so peak RSS is per-run, not cumulative —
checks that alarms and exit codes are bit-identical across modes, and
writes the result table to a JSON file at the repo root.

Two comparisons are supported (``--compare``):

* ``incremental`` (default): ``--incremental`` (the default engine) vs
  ``--no-incremental`` (full re-execution) — writes ``BENCH_4.json``;
* ``vectorize``: the batched numpy lattice kernels (the default) vs
  ``--no-vectorize`` (the scalar-oracle backend) — writes
  ``BENCH_8.json``, including the ``--stats`` phase breakdown and the
  vectorized-kernel counters per mode;
* ``dispatch``: ``--dispatch socket`` (auto-spawned local worker fleet)
  vs ``--dispatch pool`` at equal ``--jobs`` — writes ``BENCH_9.json``
  with the dispatch counters (jobs dispatched/stolen/retried, bytes
  shipped, fleet peak RSS) per mode.

Usage::

    python benchmarks/run_bench.py [--compare vectorize] [--out PATH]
                                   [--sizes 0.5 2.0]
"""

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(ROOT, "src"))
sys.path.insert(0, HERE)

from conftest import FAMILY_SEED, FIG2_SIZES, family_program  # noqa: E402

#: --compare name -> (bench title, output file, (baseline, optimized)
#: mode names, per-mode extra CLI flag).
COMPARISONS = {
    "incremental": {
        "bench": "incremental-vs-full (Fig. 2 scaling suite)",
        "out": "BENCH_4.json",
        "baseline": ("full", ["--no-incremental"]),
        "optimized": ("incremental", ["--incremental"]),
    },
    "vectorize": {
        "bench": "vectorized-vs-scalar kernels (Fig. 2 scaling suite)",
        "out": "BENCH_8.json",
        "baseline": ("scalar", ["--no-vectorize"]),
        "optimized": ("vectorized", ["--vectorize"]),
    },
    # Socket dispatch (auto-spawned local fleet) vs the in-process pool
    # at equal jobs: measures the serialization + framing overhead of
    # going through real sockets.  "speedup" is pool/socket — the socket
    # backend is expected to stay within ~1.3x of pool (>= 0.77).
    "dispatch": {
        "bench": "socket-vs-pool dispatch at jobs=2 (Fig. 2 scaling suite)",
        "out": "BENCH_9.json",
        "baseline": ("pool", ["--jobs", "2", "--dispatch", "pool"]),
        "optimized": ("socket", ["--jobs", "2", "--dispatch", "socket"]),
        "extra_fields": ("dispatch", "dispatch_jobs_dispatched",
                         "dispatch_jobs_stolen", "dispatch_jobs_retried",
                         "dispatch_bytes_shipped", "dispatch_workers_joined",
                         "dispatch_workers_lost", "fleet_peak_rss_kib"),
    },
}


def _run_cli(args, env):
    t0 = time.perf_counter()
    proc = subprocess.run(
        [sys.executable, "-m", "repro.cli", "analyze"] + args,
        capture_output=True, text=True, env=env)
    wall = time.perf_counter() - t0
    if proc.returncode not in (0, 1):
        raise RuntimeError(
            f"analyze exited {proc.returncode}:\n{proc.stderr}")
    return wall, json.loads(proc.stdout)


def bench_size(kloc: float, workdir: str, comparison: dict) -> dict:
    gp = family_program(kloc)
    src = os.path.join(workdir, f"family_{kloc}.c")
    with open(src, "w") as f:
        f.write(gp.source)
    base = [src, "--json", "--stats",
            "--max-clock", str(gp.max_clock)]
    for name, (lo, hi) in sorted(gp.input_ranges.items()):
        base += ["--input-range", f"{name}={lo}:{hi}"]
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")

    row = {"kloc": kloc, "seed": FAMILY_SEED}
    payloads = {}
    for mode, flags in (comparison["baseline"], comparison["optimized"]):
        wall, payload = _run_cli(base + flags, env)
        payloads[mode] = payload
        row[mode] = {
            "wall_s": round(wall, 3),
            "analysis_time_s": round(payload["analysis_time_s"], 3),
            "phase_times_s": {k: round(v, 3)
                              for k, v in payload["phase_times_s"].items()},
            "widening_iterations": payload["widening_iterations"],
            "stmts_executed": payload["stmts_executed"],
            "stmts_skipped": payload["stmts_skipped"],
            "peak_rss_kib": payload["peak_rss_kib"],
            "alarm_count": payload["alarm_count"],
            "exit_code": payload["exit_code"],
            "vector_batches": payload["vector_batches"],
            "vector_cells": payload["vector_cells"],
            "vector_scalar_fallbacks": payload["vector_scalar_fallbacks"],
        }
        for fld in comparison.get("extra_fields", ()):
            row[mode][fld] = payload.get(fld)
    base_name = comparison["baseline"][0]
    opt_name = comparison["optimized"][0]
    base_p, opt_p = payloads[base_name], payloads[opt_name]
    row["identical"] = (base_p["alarms"] == opt_p["alarms"]
                        and base_p["exit_code"] == opt_p["exit_code"]
                        and base_p["widening_iterations"]
                        == opt_p["widening_iterations"])
    row["speedup"] = round(
        base_p["analysis_time_s"] / max(opt_p["analysis_time_s"], 1e-9), 2)
    exec_i, skip_i = opt_p["stmts_executed"], opt_p["stmts_skipped"]
    row["executed_fraction"] = round(
        opt_p["stmts_executed"] / max(base_p["stmts_executed"], 1), 3)
    row["skip_fraction"] = round(skip_i / max(exec_i + skip_i, 1), 3)
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--compare", choices=sorted(COMPARISONS),
                    default="incremental")
    ap.add_argument("--out", default=None,
                    help="output path (default: the comparison's "
                         "canonical BENCH_*.json at the repo root)")
    ap.add_argument("--sizes", nargs="*", type=float, default=FIG2_SIZES)
    args = ap.parse_args(argv)
    comparison = COMPARISONS[args.compare]
    out = args.out or os.path.join(ROOT, comparison["out"])
    base_name = comparison["baseline"][0]
    opt_name = comparison["optimized"][0]

    rows = []
    with tempfile.TemporaryDirectory() as workdir:
        for kloc in args.sizes:
            row = bench_size(kloc, workdir, comparison)
            rows.append(row)
            print(f"{kloc:7.3f} kLOC:"
                  f" {base_name} {row[base_name]['analysis_time_s']:7.2f}s"
                  f"  {opt_name} {row[opt_name]['analysis_time_s']:7.2f}s"
                  f"  = {row['speedup']:.2f}x"
                  f"  (identical={row['identical']})")

    largest = max(rows, key=lambda r: r["kloc"])
    result = {
        "bench": comparison["bench"],
        "seed": FAMILY_SEED,
        # Dispatch overhead is fixed cold-start (worker interpreter
        # boot), so the host core count matters: with a spare core the
        # socket backend overlaps the boot with the analysis prefix.
        "host_cpus": os.cpu_count(),
        "sizes_kloc": args.sizes,
        "rows": rows,
        "largest_size_speedup": largest["speedup"],
        "all_identical": all(r["identical"] for r in rows),
    }
    with open(out, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")
    print(f"wrote {out}")
    if not result["all_identical"]:
        print("ERROR: modes disagree on alarms/exit codes", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
