"""E4 — Sect. 9.4.1: composition of the main loop invariant.

Paper (on the 75 kLOC flagship): "The main loop invariant includes 6,900
boolean interval assertions, 9,600 interval assertions, 25,400 clock
assertions, 19,100 additive octagonal assertions, 19,200 subtractive
octagonal assertions, 100 decision trees and 1,900 ellipsoidal assertions"
— a 4.5 Mb textual dump with over 16,000 float constants.

We regenerate the same breakdown on the scaled flagship.  The shape to
match: clock assertions rival or dominate plain intervals; octagonal
constraints are numerous (a pack yields several); decision trees are rare;
ellipsoidal assertions track the number of filter instances.
"""

import pytest

from .conftest import FLAGSHIP_KLOC, analyze_family, family_program, print_table


class TestInvariantStats:
    def test_main_loop_invariant_breakdown(self, benchmark):
        gp = family_program(FLAGSHIP_KLOC)
        result = benchmark.pedantic(
            lambda: analyze_family(gp, collect_invariants=True),
            rounds=1, iterations=1)
        stats = result.invariant_stats()
        paper = {
            "boolean interval assertions": 6900,
            "interval assertions": 9600,
            "clock assertions": 25400,
            "additive octagonal assertions": 19100,
            "subtractive octagonal assertions": 19200,
            "decision trees": 100,
            "ellipsoidal assertions": 1900,
        }
        ours = {
            "boolean interval assertions": stats.boolean_interval_assertions,
            "interval assertions": stats.interval_assertions,
            "clock assertions": stats.clock_assertions,
            "additive octagonal assertions": stats.octagonal_additive_assertions,
            "subtractive octagonal assertions": stats.octagonal_subtractive_assertions,
            "decision trees": stats.decision_trees,
            "ellipsoidal assertions": stats.ellipsoidal_assertions,
        }
        rows = [(k, paper[k], ours[k]) for k in paper]
        print_table(
            f"Sect. 9.4.1 — main loop invariant breakdown "
            f"({gp.loc} LOC flagship vs paper's 75 kLOC)",
            ("assertion kind", "paper", "measured"),
            rows,
        )
        # Shape assertions.
        assert stats.interval_assertions > 0
        assert stats.clock_assertions > 0
        assert stats.ellipsoidal_assertions == \
            gp.block_counts.get("SecondOrderFilter", 0), \
            "one ellipsoidal constraint per live filter instance"
        assert stats.decision_trees <= stats.interval_assertions, \
            "decision trees are rare relative to interval assertions"
        total = stats.total()
        print(f"total assertions: {total} "
              f"(paper: {sum(paper.values())} on 75 kLOC)")

    def test_invariant_dump_size_scales(self, benchmark):
        """The textual dump grows with program size (paper: 4.5 Mb)."""
        small = family_program(FLAGSHIP_KLOC / 4)
        big = family_program(FLAGSHIP_KLOC)
        r_small, r_big = benchmark.pedantic(
            lambda: (analyze_family(small, collect_invariants=True),
                     analyze_family(big, collect_invariants=True)),
            rounds=1, iterations=1)
        d_small = len(r_small.dump_invariant_text())
        d_big = len(r_big.dump_invariant_text())
        print_table(
            "invariant dump size (paper: 4.5 Mb at 75 kLOC)",
            ("LOC", "dump bytes"),
            [(small.loc, d_small), (big.loc, d_big)],
        )
        assert d_big > d_small


def test_invariant_collection_benchmark(benchmark):
    gp = family_program(FLAGSHIP_KLOC / 2)
    benchmark.pedantic(
        lambda: analyze_family(gp, collect_invariants=True),
        rounds=1, iterations=1)
