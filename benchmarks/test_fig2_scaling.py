"""E1 — Figure 2: total analysis time vs program size.

Paper: "Fig. 2 gives the total analysis time for a family of related
programs" — 10 to 75 kLOC analyzed in 0 to ~7,500 s on a 2.4 GHz 2003 PC,
with a modest super-linear growth.  We regenerate the same curve on the
synthetic family (scaled sizes; see conftest.SCALE) and report the fitted
growth exponent: the claim that survives hardware changes is the *shape*
(near-linear, mild super-linearity — not quadratic blow-up).
"""

import math
import time

import pytest

from .conftest import FIG2_SIZES, analyze_family, family_program, print_table


def _run_one(kloc):
    gp = family_program(kloc)
    t0 = time.perf_counter()
    result = analyze_family(gp)
    return gp, result, time.perf_counter() - t0


class TestFig2Scaling:
    def test_fig2_time_vs_kloc_series(self, benchmark):
        """Prints the (kLOC, seconds) series of Fig. 2."""

        def sweep():
            out = []
            for kloc in FIG2_SIZES:
                out.append(_run_one(kloc))
            return out

        runs = benchmark.pedantic(sweep, rounds=1, iterations=1)
        rows = []
        points = []
        for gp, result, dt in runs:
            rows.append((f"{gp.loc / 1000:.3f}", f"{dt:.2f}",
                         result.alarm_count, result.octagon_pack_count))
            points.append((gp.loc, dt))
        print_table(
            "Fig. 2 — total analysis time for the program family",
            ("kLOC", "time (s)", "alarms", "octagon packs"),
            rows,
        )
        # Fitted growth exponent from the first and last points.
        (l0, t0), (l1, t1) = points[0], points[-1]
        exponent = math.log(t1 / t0) / math.log(l1 / l0)
        print(f"fitted growth exponent: {exponent:.2f} "
              f"(1.0 = linear; paper's curve is mildly super-linear)")
        # Shape assertions: monotone growth, not quadratic.
        times = [t for _, t in points]
        assert all(b >= a * 0.8 for a, b in zip(times, times[1:])), \
            "analysis time should grow with program size"
        assert exponent < 2.2, "scaling should stay well below cubic"

    def test_family_members_all_verified(self, benchmark):
        """Every member of the family is proved alarm-free (the analyzer
        is adapted to the family, Sect. 3.2)."""

        def sweep():
            return [_run_one(kloc)[1] for kloc in FIG2_SIZES[:3]]

        for result in benchmark.pedantic(sweep, rounds=1, iterations=1):
            assert result.alarm_count == 0


@pytest.mark.parametrize("kloc", FIG2_SIZES[:3])
def test_fig2_benchmark(benchmark, kloc):
    """pytest-benchmark timing for the smaller family members."""
    gp = family_program(kloc)
    benchmark.pedantic(lambda: analyze_family(gp), rounds=1, iterations=1)
