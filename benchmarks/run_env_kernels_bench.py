"""Microbenchmark: scalar FloatInterval lattice ops vs batched kernels.

Times ``join``, ``widen`` (with the default threshold ladder) and
``includes`` over pinned-seed random interval populations at 10, 100,
1000 and 10000 cells, three ways per op:

* ``scalar`` — a per-cell Python loop over ``FloatInterval`` methods
  (the oracle path behind ``--no-vectorize``);
* ``kernel`` — the batched numpy kernel over pre-gathered bound planes
  (the steady-state cost when planes are already materialized);
* ``e2e`` — gather the planes from interval objects, run the kernel,
  and rebuild result ``FloatInterval`` objects (what one environment
  merge actually pays, crossover heuristic aside).

The CI perf-smoke gate reads the 1000-cell ``join`` kernel speedup from
the JSON output (``--gate-join-1k``); see .github/workflows/ci.yml.

Usage::

    python benchmarks/run_env_kernels_bench.py [--out PATH]
                                               [--gate-join-1k 2.0]
"""

import argparse
import json
import math
import os
import random
import sys
import time

HERE = os.path.dirname(os.path.abspath(__file__))
ROOT = os.path.dirname(HERE)
sys.path.insert(0, os.path.join(ROOT, "src"))

from repro.domains.thresholds import default_thresholds  # noqa: E402
from repro.numeric import FloatInterval  # noqa: E402
from repro.numeric import interval_kernels as K  # noqa: E402

SEED = 2003
SIZES = [10, 100, 1000, 10000]
REPEATS = 7


def make_intervals(rng: random.Random, n: int):
    """A population shaped like real loop-head states: mostly finite
    bounds of mixed magnitude, some half-infinite, a few top."""
    out = []
    for _ in range(n):
        r = rng.random()
        if r < 0.05:
            out.append(FloatInterval(-math.inf, math.inf))
        elif r < 0.15:
            out.append(FloatInterval(-math.inf, rng.uniform(-1e3, 1e6)))
        elif r < 0.25:
            out.append(FloatInterval(rng.uniform(-1e6, 1e3), math.inf))
        else:
            lo = rng.uniform(-1e6, 1e6) * (10.0 ** rng.randint(-3, 3))
            out.append(FloatInterval(lo, lo + abs(rng.gauss(0, 100.0))))
    return out


def best_of(repeats, fn):
    best = math.inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def bench_size(n: int) -> dict:
    rng = random.Random(SEED * 100003 + n)
    a = make_intervals(rng, n)
    b = make_intervals(rng, n)
    # ``includes`` must not short-circuit (that would time one
    # iteration, not n): compare against a contained shrink of ``a``
    # so every cell answers True and the scalar loop runs full length.
    inner = [FloatInterval(iv.lo, iv.hi) if iv.lo == iv.hi else
             FloatInterval(iv.lo, math.nextafter(iv.hi, iv.lo))
             for iv in a]
    a_lo, a_hi = K.planes(a)
    b_lo, b_hi = K.planes(b)
    i_lo, i_hi = K.planes(inner)
    thresholds = default_thresholds().values
    ladder = K.ladder_array(thresholds)

    def rebuild(lo, hi):
        return [FloatInterval(x, y) for x, y in zip(lo.tolist(), hi.tolist())]

    ops = {
        "join": {
            "scalar": lambda: [x.join(y) for x, y in zip(a, b)],
            "kernel": lambda: K.batch_join(a_lo, a_hi, b_lo, b_hi),
            "e2e": lambda: rebuild(*K.batch_join(*K.planes(a), *K.planes(b))),
        },
        "widen": {
            "scalar": lambda: [x.widen(y, thresholds) for x, y in zip(a, b)],
            "kernel": lambda: K.batch_widen(a_lo, a_hi, b_lo, b_hi, ladder),
            "e2e": lambda: rebuild(
                *K.batch_widen(*K.planes(a), *K.planes(b), ladder)),
        },
        "includes": {
            "scalar": lambda: all(x.includes(y) for x, y in zip(a, inner)),
            "kernel": lambda: bool(
                K.batch_includes(a_lo, a_hi, i_lo, i_hi).all()),
            "e2e": lambda: bool(
                K.batch_includes(*K.planes(a), *K.planes(inner)).all()),
        },
    }
    row = {}
    for op, variants in ops.items():
        scalar_s = best_of(REPEATS, variants["scalar"])
        kernel_s = best_of(REPEATS, variants["kernel"])
        e2e_s = best_of(REPEATS, variants["e2e"])
        row[op] = {
            "scalar_s": scalar_s,
            "kernel_s": kernel_s,
            "e2e_s": e2e_s,
            "kernel_speedup": round(scalar_s / max(kernel_s, 1e-12), 2),
            "e2e_speedup": round(scalar_s / max(e2e_s, 1e-12), 2),
        }
    return row


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--out", default=None, metavar="PATH",
                    help="write the result table as JSON to PATH")
    ap.add_argument("--gate-join-1k", type=float, default=None,
                    metavar="X",
                    help="exit nonzero unless the 1000-cell join kernel "
                         "speedup is at least X (the CI perf gate)")
    args = ap.parse_args(argv)

    results = {"seed": SEED, "sizes": {}}
    print(f"{'cells':>7}  {'op':<9} {'scalar':>10} {'kernel':>10} "
          f"{'e2e':>10} {'kernel x':>9} {'e2e x':>7}")
    for n in SIZES:
        row = bench_size(n)
        results["sizes"][str(n)] = row
        for op, r in row.items():
            print(f"{n:7d}  {op:<9} {r['scalar_s'] * 1e6:9.1f}u "
                  f"{r['kernel_s'] * 1e6:9.1f}u {r['e2e_s'] * 1e6:9.1f}u "
                  f"{r['kernel_speedup']:8.1f}x {r['e2e_speedup']:6.1f}x")

    if args.out:
        with open(args.out, "w") as f:
            json.dump(results, f, indent=2)
            f.write("\n")
        print(f"wrote {args.out}")

    if args.gate_join_1k is not None:
        got = results["sizes"]["1000"]["join"]["kernel_speedup"]
        if got < args.gate_join_1k:
            print(f"GATE FAILED: 1000-cell join kernel speedup {got:.2f}x "
                  f"< required {args.gate_join_1k:.2f}x", file=sys.stderr)
            return 1
        print(f"gate ok: 1000-cell join kernel speedup {got:.2f}x "
              f">= {args.gate_join_1k:.2f}x")
    return 0


if __name__ == "__main__":
    sys.exit(main())
