"""E-parallel — wall-clock time of the parallel engine vs sequential.

Monniaux's parallel Astrée dispatches near-independent control-flow
branches to worker processes with byte-identical results.  This benchmark
analyzes an independent-subsystem program (the shape that scheme targets)
sequentially and with ``jobs=4`` and records both wall times, the
dispatch counters and the host core count.

Identity of the two alarm reports is asserted hard; the speedup itself is
only *recorded*: a single-core CI container cannot promise one (the
parallel run then pays pickling overhead with no parallelism to buy it
back), and the honest number is the point of the table.
"""

import os
import time

from repro.analysis import analyze_program
from repro.config import AnalyzerConfig
from repro.frontend import compile_source

from .conftest import SCALE, print_table

JOBS = 4


def _subsystem_source(nsub: int, width: int) -> str:
    lines = []
    for k in range(nsub):
        lines.append(f"volatile float in{k}_a;")
        lines.append(f"volatile int in{k}_b;")
        lines.append(f"float s{k}_x; float s{k}_y; float s{k}_tab[{width}];")
        lines.append(f"int s{k}_mode; int s{k}_count;")
    for k in range(nsub):
        lines.append(f"""
void step_{k}(void) {{
    float e; int j;
    e = in{k}_a;
    if (e > 100.0f) {{ e = 100.0f; }}
    if (e < -100.0f) {{ e = -100.0f; }}
    s{k}_mode = in{k}_b;
    j = 0;
    while (j < {width}) {{
        s{k}_tab[j] = 0.8f * s{k}_tab[j] + 0.2f * e;
        j = j + 1;
    }}
    s{k}_x = 0.9f * s{k}_x + 0.1f * e;
    if (s{k}_mode) {{ s{k}_y = s{k}_x; }} else {{ s{k}_y = 0.0f; }}
    if (s{k}_count < 1000) {{ s{k}_count = s{k}_count + 1; }}
}}""")
    lines.append("int main(void) {")
    lines.append("  while (1) {")
    for k in range(nsub):
        lines.append(f"    step_{k}();")
    lines.append("    __ASTREE_wait_for_clock();")
    lines.append("  }")
    lines.append("  return 0;")
    lines.append("}")
    return "\n".join(lines)


class TestParallelSpeedup:
    def test_parallel_vs_sequential_wall_time(self, benchmark):
        nsub = max(4, int(round(8 * SCALE)))
        width = 12
        src = _subsystem_source(nsub, width)
        ranges = {}
        for k in range(nsub):
            ranges[f"in{k}_a"] = (-500.0, 500.0)
            ranges[f"in{k}_b"] = (0.0, 1.0)
        cfg = AnalyzerConfig(input_ranges=ranges, max_clock=100_000,
                             parallel_min_stmts=8)
        prog = compile_source(src, "subsystems.c")

        def run():
            t0 = time.perf_counter()
            seq = analyze_program(prog, cfg, jobs=1)
            t_seq = time.perf_counter() - t0
            t0 = time.perf_counter()
            par = analyze_program(prog, cfg, jobs=JOBS)
            t_par = time.perf_counter() - t0
            return seq, t_seq, par, t_par

        seq, t_seq, par, t_par = benchmark.pedantic(run, rounds=1,
                                                    iterations=1)

        def key(result):
            return [(a.kind, a.loc.line, a.loc.col, a.message)
                    for a in result.alarms]

        assert key(seq) == key(par), "parallel alarms diverged"
        assert par.parallel_regions > 0, "nothing was dispatched"
        speedup = t_seq / t_par if t_par > 0 else float("inf")
        print_table(
            f"Parallel engine — sequential vs jobs={JOBS} "
            f"({os.cpu_count()} host cores)",
            ("subsystems", "seq (s)", f"jobs={JOBS} (s)", "speedup",
             "regions", "tasks", "alarms"),
            [(nsub, f"{t_seq:.2f}", f"{t_par:.2f}", f"{speedup:.2f}x",
              par.parallel_regions, par.parallel_tasks, par.alarm_count)],
        )
