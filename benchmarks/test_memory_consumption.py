"""E5 — Sect. 8: memory consumption stays reasonable.

Paper: "The memory consumption of the analyzer is reasonable (550 Mb for
the full-sized program)" on a 1 Gb machine — i.e. the analyzer fits in
roughly half the machine's memory at 75 kLOC, thanks to the sharing of
functional maps (Sect. 6.1.2).

We measure peak traced allocation across family sizes and check the
per-kLOC memory footprint stays flat-ish (sharing prevents quadratic
blowup)."""

import time
import tracemalloc

import pytest

from .conftest import FIG2_SIZES, analyze_family, family_program, print_table


def _peak_mb(gp):
    tracemalloc.start()
    analyze_family(gp)
    _, peak = tracemalloc.get_traced_memory()
    tracemalloc.stop()
    return peak / 1e6


class TestMemoryConsumption:
    def test_memory_vs_size(self, benchmark):
        def sweep():
            out = []
            for kloc in FIG2_SIZES[:4]:
                gp = family_program(kloc)
                out.append((gp, _peak_mb(gp)))
            return out

        rows = []
        points = []
        for gp, peak in benchmark.pedantic(sweep, rounds=1, iterations=1):
            rows.append((gp.loc, f"{peak:.1f}", f"{peak / (gp.loc / 1000):.1f}"))
            points.append((gp.loc, peak))
        print_table(
            "Sect. 8 — peak analyzer memory (paper: 550 Mb at 75 kLOC "
            "= ~7.3 Mb/kLOC on 2003 data structures)",
            ("LOC", "peak MB", "MB per kLOC"),
            rows,
        )
        # Shape: memory grows sub-quadratically with program size.
        (l0, m0), (l1, m1) = points[0], points[-1]
        import math

        exponent = math.log(max(m1, 1e-6) / max(m0, 1e-6)) / math.log(l1 / l0)
        print(f"memory growth exponent: {exponent:.2f} (1.0 = linear)")
        assert exponent < 2.0, "functional-map sharing keeps memory sub-quadratic"


def test_memory_benchmark(benchmark):
    gp = family_program(FIG2_SIZES[1])
    benchmark.pedantic(lambda: _peak_mb(gp), rounds=1, iterations=1)
