"""E2 — Sect. 8: alarm reduction from the baseline analyzer to the refined
one.

Paper: "We had 1,200 false alarms with the analyzer [5] we started with.
The refinements of the analyzer described in this paper reduce the number
of alarms down to 11 (and even 3, depending on the versions of the
analyzed program)."

We regenerate the refinement staircase of Sect. 3.1 on the flagship family
program: alarms per cumulative refinement stage, ending at zero (our family
is correct by construction, like the paper's 10-years-in-service reference
program; the paper's residual 11 were unconfirmed false alarms it could not
yet discharge)."""

import pytest

from repro import refinement_stages
from repro.analysis import analyze

from .conftest import FLAGSHIP_KLOC, analyze_family, family_program, print_table


def _stage_results(gp):
    base = gp.analyzer_config()
    out = []
    for name, cfg in refinement_stages(base):
        result = analyze(gp.source, "family.c", config=cfg)
        out.append((name, result))
    return out


class TestAlarmReduction:
    def test_refinement_staircase(self, benchmark):
        gp = family_program(FLAGSHIP_KLOC)
        stages = benchmark.pedantic(lambda: _stage_results(gp),
                                    rounds=1, iterations=1)
        rows = [(name, r.alarm_count, f"{r.analysis_time:.2f}")
                for name, r in stages]
        print_table(
            f"Sect. 8 — alarms per refinement stage "
            f"({gp.loc} LOC flagship; paper: 1,200 -> 11)",
            ("stage", "alarms", "time (s)"),
            rows,
        )
        counts = [r.alarm_count for _, r in stages]
        # Shape: large initial count, (weakly) monotone decrease, ~zero end.
        assert counts[0] > 0, "the baseline must produce false alarms"
        assert counts[-1] == 0, "the refined analyzer proves the program"
        assert all(b <= a for a, b in zip(counts, counts[1:])), \
            "each refinement stage may only remove alarms"
        reduction = counts[0] / max(counts[-1], 1)
        print(f"reduction factor: {counts[0]} -> {counts[-1]} "
              f"(paper: 1200 -> 11, i.e. ~109x; ours reaches zero)")
        assert reduction >= 3, "the reduction must be substantial"

    def test_alarm_kinds_at_baseline(self, benchmark):
        """The baseline's false alarms come from the documented causes:
        counter overflows (clock), filter overflows (ellipsoids) and
        unguarded-looking divisions (decision trees)."""
        gp = family_program(FLAGSHIP_KLOC)
        base = benchmark.pedantic(
            lambda: analyze_family(
                gp, enable_clock=False, enable_octagons=False,
                enable_ellipsoids=False, enable_decision_trees=False,
                enable_linearization=False, widening_delay=0,
                default_unroll=0),
            rounds=1, iterations=1)
        kinds = base.alarms_by_kind()
        print_table("baseline alarm kinds", ("kind", "count"),
                    sorted(kinds.items()))
        assert set(kinds) <= {"integer-overflow", "float-overflow",
                              "division-by-zero", "cast-out-of-range",
                              "invalid-float-operation",
                              "array-index-out-of-bounds", "shift-out-of-range"}


def test_refined_analysis_benchmark(benchmark):
    gp = family_program(FLAGSHIP_KLOC)
    result = benchmark.pedantic(lambda: analyze_family(gp), rounds=1,
                                iterations=1)
    assert result.alarm_count == 0
