"""Shared infrastructure for the reproduction benchmarks.

Every benchmark regenerates one table or figure of the paper's evaluation
(see DESIGN.md's experiment index and EXPERIMENTS.md for paper-vs-measured
records).  Program sizes are scaled down from the paper's 75 kLOC flagship
to laptop/CI-friendly sizes; set REPRO_BENCH_SCALE to grow them
(e.g. REPRO_BENCH_SCALE=4 analyzes 4x larger programs).
"""

import os
from functools import lru_cache

import pytest

from repro import AnalyzerConfig, analyze
from repro.synth import FamilySpec, generate_program

SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "1"))

#: kLOC sizes of the family for the Fig. 2 sweep.
FIG2_SIZES = [round(0.125 * SCALE, 3), round(0.25 * SCALE, 3),
              round(0.5 * SCALE, 3), round(1.0 * SCALE, 3),
              round(2.0 * SCALE, 3)]

#: The flagship program size for the other experiments.
FLAGSHIP_KLOC = 1.0 * SCALE
FAMILY_SEED = 2003


@lru_cache(maxsize=None)
def family_program(kloc: float, seed: int = FAMILY_SEED):
    return generate_program(FamilySpec(target_kloc=kloc, seed=seed))


def analyze_family(gp, **overrides):
    cfg = gp.analyzer_config(**overrides)
    return analyze(gp.source, "family.c", config=cfg)


#: Tables are also appended here so they survive pytest's stdout capture
#: (run with -s to see them live).
TABLES_PATH = os.path.join(os.path.dirname(__file__), "..", "bench_tables.txt")


def print_table(title, header, rows):
    """Uniform table output so bench logs read like the paper's tables."""
    lines = [f"\n=== {title} ==="]
    widths = [max(len(str(h)), *(len(str(r[i])) for r in rows))
              for i, h in enumerate(header)] if rows else [len(h) for h in header]
    line = "  ".join(str(h).ljust(w) for h, w in zip(header, widths))
    lines.append(line)
    lines.append("-" * len(line))
    for r in rows:
        lines.append("  ".join(str(c).ljust(w) for c, w in zip(r, widths)))
    text = "\n".join(lines)
    print(text)
    with open(TABLES_PATH, "a") as f:
        f.write(text + "\n")
