#!/usr/bin/env python3
"""Quickstart: prove a small control program free of run-time errors.

Demonstrates the core workflow of the analyzer:

1. write (or load) C source in the supported subset,
2. describe the environment — ranges of volatile inputs and the maximal
   operating time (Sect. 4 of the paper),
3. run :func:`repro.analyze` and inspect the alarms.

Run:  python examples/quickstart.py
"""

from repro import AnalyzerConfig, analyze, analyze_baseline

SOURCE = r"""
/* A tiny periodic synchronous controller. */
volatile float sensor;     /* hardware register, range supplied below */
volatile int   fault;      /* fault latch input, 0 or 1 */

float command;             /* actuator output */
float integral;            /* integrator state */
int   fault_count;         /* events counted at most once per cycle */

int main(void) {
    integral = 0.0f;
    fault_count = 0;
    while (1) {
        float err = sensor;

        /* Saturated integrator: stays in [-100, 100]. */
        integral = integral + 0.25f * err;
        if (integral > 100.0f) { integral = 100.0f; }
        if (integral < -100.0f) { integral = -100.0f; }

        /* First-order lag: contracting, bounded via widening thresholds. */
        command = 0.5f * command + 0.5f * integral;

        /* Event counter: bounded only by the operating time. */
        if (fault) { fault_count = fault_count + 1; }

        __ASTREE_wait_for_clock();
    }
    return 0;
}
"""


def main() -> None:
    config = AnalyzerConfig(
        input_ranges={"sensor": (-10.0, 10.0), "fault": (0, 1)},
        max_clock=3_600_000,  # ten hours of 100 Hz cycles
        collect_invariants=True,
    )
    result = analyze(SOURCE, "controller.c", config=config)

    print(f"analysis time : {result.analysis_time:.2f}s")
    print(f"alarms        : {result.alarm_count}")
    for alarm in result.alarms:
        print(f"  {alarm}")

    print("\nmain loop invariant (excerpt):")
    for line in result.dump_invariant_text().splitlines():
        if any(v in line for v in ("integral", "command", "fault_count")):
            print(f"  {line}")

    # Contrast with the baseline interval analyzer of [5]: the counter
    # overflows without the clocked domain's operating-time bound.
    base = analyze_baseline(SOURCE, "controller.c",
                            input_ranges=config.input_ranges,
                            enable_clock=False)
    print(f"\nbaseline (intervals only) alarms: {base.alarm_count}")
    for alarm in base.alarms:
        print(f"  {alarm}")


if __name__ == "__main__":
    main()
