#!/usr/bin/env python3
"""Verify a second-order digital filter with the ellipsoid domain.

The paper's Fig. 1 / Sect. 6.2.3 code shape — a two-state IIR filter with a
reinitialization switch — admits *no* interval invariant: each state
variable taken alone can grow transiently, so interval (and even octagon)
analyses widen it to the whole float range and report overflow.  The
quadratic form X^2 - a*X*Y + b*Y^2 <= k, however, is preserved by the
filter rotation (Proposition 1), and the ellipsoid domain discovers it
automatically.

This example analyzes a bank of filters three ways:

* full analyzer (ellipsoids on)  -> zero alarms, finite bounds;
* ellipsoids disabled            -> float-overflow alarms;
* direct simulation              -> empirical bounds, for comparison.

Run:  python examples/filter_verification.py
"""

import numpy as np

from repro import AnalyzerConfig, analyze

FILTERS = [  # (a, b) with 0 < b < 1 and a^2 < 4b (complex poles)
    (1.5, 0.7),
    (1.2, 0.5),
    (0.8, 0.9),
]

SOURCE_TEMPLATE = """
volatile float input_%(i)d;
volatile int reset_%(i)d;
float X_%(i)d, Y_%(i)d;
"""

STEP_TEMPLATE = """
        t = input_%(i)d;
        if (reset_%(i)d) {
            Y_%(i)d = 0.5f;
            X_%(i)d = 0.5f;
        } else {
            Xp = %(a)sf * X_%(i)d - %(b)sf * Y_%(i)d + t;
            Y_%(i)d = X_%(i)d;
            X_%(i)d = Xp;
        }
"""


def build_source() -> str:
    decls = "".join(SOURCE_TEMPLATE % {"i": i} for i in range(len(FILTERS)))
    steps = "".join(
        STEP_TEMPLATE % {"i": i, "a": a, "b": b}
        for i, (a, b) in enumerate(FILTERS)
    )
    return (
        decls
        + "int main(void) {\n    float t, Xp;\n    while (1) {\n"
        + steps
        + "        __ASTREE_wait_for_clock();\n    }\n    return 0;\n}\n"
    )


def input_ranges():
    out = {}
    for i in range(len(FILTERS)):
        out[f"input_{i}"] = (-1.0, 1.0)
        out[f"reset_{i}"] = (0, 1)
    return out


def simulate(a: float, b: float, steps: int = 20000, seed: int = 0) -> float:
    """Empirical worst |X| over a random input/reset schedule."""
    rng = np.random.default_rng(seed)
    x = np.float32(0.5)
    y = np.float32(0.5)
    worst = 0.0
    for _ in range(steps):
        t = np.float32(rng.uniform(-1.0, 1.0))
        if rng.random() < 0.001:
            x = y = np.float32(0.5)
        else:
            xp = np.float32(a) * x - np.float32(b) * y + t
            y = x
            x = xp
        worst = max(worst, abs(float(x)))
    return worst


def main() -> None:
    source = build_source()
    cfg = AnalyzerConfig(input_ranges=input_ranges(), collect_invariants=True)

    print("== full analyzer (ellipsoid domain on) ==")
    result = analyze(source, "filters.c", config=cfg)
    print(f"filter sites detected: {result.filter_site_count}")
    print(f"alarms: {result.alarm_count}")
    for line in result.dump_invariant_text().splitlines():
        if "^2" in line:
            print(f"  invariant: {line}")

    print("\n== ellipsoids disabled ==")
    degraded = analyze(source, "filters.c",
                       config=cfg.with_overrides(enable_ellipsoids=False))
    print(f"alarms: {degraded.alarm_count}")
    for alarm in degraded.alarms[:6]:
        print(f"  {alarm}")

    print("\n== empirical check (simulation lower-bounds the sound bound) ==")
    inv = max(result.loop_invariants.values(),
              key=lambda s: 0 if s.is_bottom else len(s.env.cells))
    for i, (a, b) in enumerate(FILTERS):
        observed = simulate(a, b, seed=i)
        # Find the analyzer's bound for X_i in the loop invariant.
        bound = None
        for cid, v in inv.env.cells.items():
            if result.ctx.table.cell(cid).name == f"X_{i}":
                bound = v.itv.magnitude()
        print(f"filter {i} (a={a}, b={b}): simulated max |X| = "
              f"{observed:.3f}, proved |X| <= {bound:.3f}")
        assert bound is not None and observed <= bound, "soundness check"


if __name__ == "__main__":
    main()
