#!/usr/bin/env python3
"""Analyze a generated program of the synchronous family end-to-end.

Reproduces the Sect. 8 experiment in miniature on a generated program:

1. generate a periodic synchronous control program (the Sect. 4 family
   substitute) of a chosen size;
2. run the refinement-stage sequence of Sect. 3.1 — from the baseline
   interval analyzer to the fully refined one — and watch the alarm count
   fall (the paper: 1,200 alarms down to 11);
3. apply the packing optimization of Sect. 7.2.2: re-run using only the
   octagon packs the first run proved useful, and compare times.

Run:  python examples/family_analysis.py [kloc]
"""

import sys
import time

from repro import AnalyzerConfig, analyze, refinement_stages
from repro.synth import FamilySpec, generate_program


def main() -> None:
    kloc = float(sys.argv[1]) if len(sys.argv) > 1 else 0.4
    gp = generate_program(FamilySpec(target_kloc=kloc, seed=2003))
    print(f"generated {gp.loc} LOC, block mix: {gp.block_counts}")

    base_cfg = AnalyzerConfig(input_ranges=dict(gp.input_ranges),
                              max_clock=gp.max_clock)

    print("\n== refinement stages (Sect. 3.1): alarms per stage ==")
    final = None
    for name, cfg in refinement_stages(base_cfg):
        t0 = time.perf_counter()
        result = analyze(gp.source, "family.c", config=cfg)
        dt = time.perf_counter() - t0
        print(f"  {name:28s} {result.alarm_count:5d} alarms   {dt:6.2f}s")
        final = result
    assert final is not None and final.alarm_count == 0, \
        "the refined analyzer proves the family program"

    print("\n== packing optimization (Sect. 7.2.2) ==")
    print(f"  packs: {final.octagon_pack_count} total, "
          f"{len(final.useful_octagon_packs)} useful, "
          f"avg size {final.octagon_pack_avg_size:.1f}")
    t0 = time.perf_counter()
    restricted = analyze(gp.source, "family.c", config=base_cfg.with_overrides(
        restrict_octagon_packs=final.useful_octagon_packs))
    dt_restricted = time.perf_counter() - t0
    print(f"  re-run with useful packs only: {restricted.alarm_count} alarms, "
          f"{dt_restricted:.2f}s vs {final.analysis_time:.2f}s full")
    assert restricted.alarm_count == final.alarm_count, \
        "restricting to useful packs is safe (same precision)"


if __name__ == "__main__":
    main()
