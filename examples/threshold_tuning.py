#!/usr/bin/env python3
"""End-user adaptation by parametrization (Sect. 3.2 and 7.1.2).

The paper's central economic argument: once specialists have built the
analyzer, *end-users* adapt it to new programs in the family through
parameters alone — "we have left to the user the simpler parametrizations
only (such as widening thresholds easily found in the program
documentation)".

This example shows that workflow on a saturated counter whose
documentation-specified ceiling (137) is not on the default threshold
ladder:

1. the default run leaves a false alarm (widening overshoots the ceiling,
   and narrowing cannot retract past the abstract fixpoint);
2. reading the "documentation", the end-user adds 137 to the thresholds;
3. the re-run proves the program — no analyzer-internals expertise needed.

Run:  python examples/threshold_tuning.py
"""

from repro import AnalyzerConfig, analyze
from repro.domains.thresholds import default_thresholds

SOURCE = r"""
/* Documented constraint: burst counter saturates at BURST_LIMIT = 137. */
#define BURST_LIMIT 137

volatile int request;
int burst;              /* requests in the current burst */
float weight[138];      /* table sized for the documented limit */
float served;

int main(void) {
    burst = 0;
    while (1) {
        if (request) {
            if (burst < BURST_LIMIT) { burst = burst + 1; }
        } else {
            burst = 0;
        }
        /* Index into the table sized by the documented limit: in-bounds
           only if the analysis knows burst <= 137. */
        served = weight[burst];
        __ASTREE_wait_for_clock();
    }
    return 0;
}
"""


def main() -> None:
    ranges = {"request": (0, 1)}

    print("== default thresholds (ladder of powers of 4) ==")
    default_run = analyze(SOURCE, "burst.c",
                          config=AnalyzerConfig(input_ranges=ranges))
    print(f"alarms: {default_run.alarm_count}")
    for alarm in default_run.alarms:
        print(f"  {alarm}")

    print("\n== user-supplied threshold 137 (from the documentation) ==")
    tuned = AnalyzerConfig(
        input_ranges=ranges,
        thresholds=default_thresholds().with_extra([137.0]),
    )
    tuned_run = analyze(SOURCE, "burst.c", config=tuned)
    print(f"alarms: {tuned_run.alarm_count}")

    assert default_run.alarm_count > 0, "the default run must leave an alarm"
    assert tuned_run.alarm_count == 0, "the tuned run proves the program"
    print("\n-> one parameter, zero analyzer-code changes: the Sect. 3.2 "
          "adaptation story.")


if __name__ == "__main__":
    main()
