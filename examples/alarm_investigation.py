#!/usr/bin/env python3
"""Investigate an alarm with the slicer (Sect. 3.3).

When the analyzer reports an alarm, the human reviewer must decide whether
it is a true error or analysis imprecision.  The paper's workflow: slice
backward from the alarm point to extract "the computations that led to the
alarm", and — because classical slices are prohibitively large — restrict
to the *abstract slice*: only the computations of variables whose invariant
is too weak at that point.

This example plants a genuine (unguarded) division into a program, lets
the analyzer find it, and compares the classical slice with the abstract
slice.

Run:  python examples/alarm_investigation.py
"""

from repro import AnalyzerConfig, analyze
from repro.slicer import Slicer

SOURCE = r"""
volatile int rpm_raw;
volatile int load_raw;

int rpm;              /* well-bounded after clamping */
int load;             /* well-bounded after clamping */
int ratio;            /* computed from an UNGUARDED division */
int duty;             /* unrelated, well-bounded computation */
int total;            /* depends on the division result */

int clamp_int(int v, int lo, int hi) {
    if (v < lo) { return lo; }
    if (v > hi) { return hi; }
    return v;
}

int main(void) {
    rpm = clamp_int(rpm_raw, 0, 8000);
    load = clamp_int(load_raw, 0, 100);

    duty = rpm / 100 + 1;          /* safe: divisor is constant */

    ratio = rpm / load;            /* BUG: load may be zero */
    total = ratio + duty;

    return 0;
}
"""


def main() -> None:
    config = AnalyzerConfig(
        input_ranges={"rpm_raw": (-100000, 100000),
                      "load_raw": (-100000, 100000)},
        collect_invariants=True,
    )
    result = analyze(SOURCE, "engine.c", config=config)
    print(f"alarms: {result.alarm_count}")
    for alarm in result.alarms:
        print(f"  {alarm}")
    assert result.alarm_count >= 1

    target = next(a for a in result.alarms if a.kind == "division-by-zero")
    slicer = Slicer(result.ctx.prog, result.ctx.table)

    full = slicer.slice_for_alarm(target)
    print(f"\nclassical backward slice: {len(full)} statements")
    print(full.format())

    abstract = slicer.abstract_slice(target.sid, result.final_state)
    print(f"\nabstract slice (weak-invariant variables only): "
          f"{len(abstract)} statements")
    print(abstract.format())

    assert len(abstract) <= len(full), \
        "the abstract slice never exceeds the classical one"
    print("\n-> inspect the statements above: 'load' comes from an input "
          "clamped to [0, 100], which includes 0 — a true alarm.")


if __name__ == "__main__":
    main()
