"""Synthetic periodic synchronous program family (Sect. 4 substitute)."""

from .blocks import ALL_BLOCK_TYPES, Block
from .generator import FamilySpec, GeneratedProgram, generate_program

__all__ = [
    "ALL_BLOCK_TYPES",
    "Block",
    "FamilySpec",
    "GeneratedProgram",
    "generate_program",
]
