"""Generator of periodic synchronous C programs (the Sect. 4 family).

Programs have exactly the paper's shape::

    declare volatile input, state and output variables;
    initialize state variables;
    loop forever
        read volatile input variables,
        compute output and state variables,
        write to volatile output variables;
        wait for next clock tick;
    end loop

The generator is size-parametric (target kLOC) and seeded, producing a
*family* of related programs: the same block mix at different scales, the
setting for the Fig. 2 scaling experiment.  Each instance returns both the
C source and the environment specification (volatile input ranges and the
maximal operating time) needed to analyze it.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Type

from .blocks import ALL_BLOCK_TYPES, Block, BlockContext

__all__ = ["GeneratedProgram", "generate_program", "FamilySpec"]

_PRELUDE_TEMPLATE = """\
/* Generated periodic synchronous control program (ASTREE repro family). */
#define VERSION %(version)d
typedef _Bool BOOL;

#if VERSION >= 1
/* Later versions add a shared deadband to the clamp helper. */
void clamp_ref(float *v, float lo, float hi) {
    if (*v < lo) { *v = lo; }
    if (*v > hi) { *v = hi; }
    if (*v > -0.001f && *v < 0.001f) { *v = 0.0f; }
}
#else
void clamp_ref(float *v, float lo, float hi) {
    if (*v < lo) { *v = lo; }
    if (*v > hi) { *v = hi; }
}
#endif
"""


@dataclass
class FamilySpec:
    """Parameters of one program of the family."""

    target_kloc: float = 1.0
    seed: int = 42
    # Relative weights of the block types, in ALL_BLOCK_TYPES order.
    weights: Optional[Sequence[float]] = None
    modules_per_function: int = 8
    max_clock: int = 3_600_000
    # Program *version* (Sect. 8: alarm counts vary "depending on the
    # versions of the analyzed program"): versions share the same source
    # with #if VERSION conditionals selecting alternate constants/glue.
    version: int = 0


@dataclass
class GeneratedProgram:
    source: str
    input_ranges: Dict[str, Tuple[float, float]]
    max_clock: int
    block_counts: Dict[str, int]
    loc: int

    def analyzer_config(self, **overrides):
        from ..config import AnalyzerConfig

        cfg = AnalyzerConfig(input_ranges=dict(self.input_ranges),
                             max_clock=self.max_clock)
        return cfg.with_overrides(**overrides) if overrides else cfg


_DEFAULT_WEIGHTS = {
    "SecondOrderFilter": 2.0, "FirstOrderLag": 2.0, "EventCounter": 2.0,
    "RateLimiter": 1.5, "SwitchedDivider": 1.5, "Saturator": 2.0,
    "InterpolationTable": 1.0, "Hysteresis": 1.5, "Accumulator": 2.0,
    "BooleanCombiner": 1.5, "ModeSelector": 1.0, "Debouncer": 1.5,
    "PIController": 1.5, "DeltaIndexer": 1.5,
}


def generate_program(spec: FamilySpec) -> GeneratedProgram:
    rng = random.Random(spec.seed)
    weights = list(spec.weights) if spec.weights is not None else \
        [_DEFAULT_WEIGHTS[t.__name__] for t in ALL_BLOCK_TYPES]
    if len(weights) != len(ALL_BLOCK_TYPES):
        raise ValueError("weights must match ALL_BLOCK_TYPES")

    target_lines = int(spec.target_kloc * 1000)
    blocks: List[Block] = []
    budget = target_lines - 40  # prelude + main-loop scaffolding
    index = 0
    while budget > 0:
        btype: Type[Block] = rng.choices(ALL_BLOCK_TYPES, weights)[0]
        block = btype(index)
        blocks.append(block)
        budget -= btype.approx_lines + 3
        index += 1

    ctx = BlockContext(index=0)
    volatile_lines: List[str] = []
    global_lines: List[str] = []
    step_functions: List[str] = []
    step_calls: List[str] = []
    block_counts: Dict[str, int] = {}

    # Group blocks into step functions (the family's per-component layout).
    for group_start in range(0, len(blocks), spec.modules_per_function):
        group = blocks[group_start: group_start + spec.modules_per_function]
        body_lines: List[str] = []
        for block in group:
            ctx.index = block.index
            volatile_lines.extend(block.volatile_decls(ctx))
            global_lines.extend(block.global_decls(ctx))
            body_lines.append(f"    /* block {block.index}: "
                              f"{type(block).__name__} */")
            for line in block.step_body(ctx, rng):
                body_lines.append(f"    {line}")
            block_counts[type(block).__name__] = \
                block_counts.get(type(block).__name__, 0) + 1
        fn_name = f"step_{group_start // spec.modules_per_function}"
        step_functions.append(
            f"void {fn_name}(void) {{\n" + "\n".join(body_lines) + "\n}\n")
        step_calls.append(f"        {fn_name}();")

    main_fn = (
        "int main(void) {\n"
        "    while (1) {\n"
        + "\n".join(step_calls) + "\n"
        "        __ASTREE_wait_for_clock();\n"
        "    }\n"
        "    return 0;\n"
        "}\n"
    )
    source = "\n".join(
        [_PRELUDE_TEMPLATE % {"version": spec.version}]
        + volatile_lines
        + [""]
        + global_lines
        + [""]
        + step_functions
        + [main_fn]
    )
    return GeneratedProgram(
        source=source,
        input_ranges=dict(ctx.input_ranges),
        max_clock=spec.max_clock,
        block_counts=block_counts,
        loc=source.count("\n") + 1,
    )


def generate_units(spec: FamilySpec, files: int = 3):
    """Split a generated program into several translation units for the
    linker (Sect. 5.1: "a simple linker allows programs consisting of
    several source files to be processed").

    Returns (units, GeneratedProgram) where units is a list of
    (filename, source) pairs: one file with the shared declarations and
    ``main``, the others with groups of step functions plus ``extern``
    declarations for the globals they use.
    """
    gp = generate_program(spec)
    # File-local 'static const' tables become ordinary const globals so the
    # implementation units can reference them through extern declarations.
    lines = gp.source.replace("static const", "const").split("\n")
    # Locate the step functions and main in the flat source.
    fn_starts = [i for i, line in enumerate(lines)
                 if line.startswith("void step_") or line.startswith("int main")]
    header_end = fn_starts[0] if fn_starts else len(lines)
    header = lines[:header_end]
    # Group the step functions round-robin into (files - 1) implementation
    # units; main and all declarations stay in the first unit.
    fn_blocks = []
    for start, end in zip(fn_starts, fn_starts[1:] + [len(lines)]):
        fn_blocks.append(lines[start:end])
    main_block = fn_blocks.pop()  # int main is last
    impl_units = max(1, files - 1)
    groups = [[] for _ in range(impl_units)]
    protos = []
    for i, block in enumerate(fn_blocks):
        groups[i % impl_units].append(block)
        name = block[0].split("(")[0].replace("void ", "")
        protos.append(f"void {name}(void);")
    # Globals become extern declarations in the implementation units.
    extern_decls = []
    for line in header:
        stripped = line.strip()
        if not stripped or stripped.startswith(("/*", "typedef", "void", "}",
                                                "if", "*", "#")):
            continue
        decl = stripped
        if "=" in decl:
            decl = decl.split("=")[0].rstrip() + ";"
        extern_decls.append("extern " + decl)
    units = []
    main_unit = header + [""] + protos + [""] + main_block
    units.append(("main.c", "\n".join(main_unit) + "\n"))
    for idx, group in enumerate(groups):
        body = ["/* implementation unit */", "typedef _Bool BOOL;",
                "void clamp_ref(float *v, float lo, float hi);"]
        body += extern_decls
        body.append("")
        for block in group:
            body.extend(block)
        units.append((f"unit{idx}.c", "\n".join(body) + "\n"))
    return units, gp
