"""Block library for the synthetic program family (Sect. 4 substitute).

The paper's programs are generated from synchronous operator networks
(block diagrams, Fig. 1).  Each :class:`Block` here emits the C code a
code generator would produce for one operator instance: global state
variables, an optional step function body fragment, and the volatile input
declarations it consumes.  The blocks deliberately reproduce the idioms the
paper describes:

* second-order digital filters with reinitialization (Sect. 6.2.3),
* event counters bounded only by the operating time (clocked domain),
* rate limiters whose safety needs octagonal reasoning (Sect. 6.2.2),
* test results stored into boolean variables and consulted later
  (Sect. 6.2.4 and the Sect. 10 remark about generated-code style),
* saturations/clamps via shared library functions (call-by-reference),
* interpolation tables with constant contents (optimized away, Sect. 5.1),
* a large number of state variables with local scope but unlimited
  lifetime.

Every block keeps its output within a documented range so downstream
blocks can be wired to it without creating genuine (true-positive) errors:
the family is correct by construction, as the paper's 10-years-in-service
reference program is assumed to be.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = [
    "Block", "BlockContext", "SecondOrderFilter", "FirstOrderLag",
    "EventCounter", "RateLimiter", "SwitchedDivider", "Saturator",
    "InterpolationTable", "Hysteresis", "Accumulator", "BooleanCombiner",
    "ALL_BLOCK_TYPES",
]


@dataclass
class BlockContext:
    """Wiring context handed to each block while emitting code."""

    index: int
    # name -> (lo, hi) collected volatile input ranges
    input_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    # (expr, lo, hi) pool of bounded float signals available as inputs
    float_signals: List[Tuple[str, float, float]] = field(default_factory=list)
    # expr pool of boolean signals
    bool_signals: List[str] = field(default_factory=list)

    def fresh_float_input(self, prefix: str, lo: float, hi: float) -> str:
        name = f"{prefix}_{self.index}"
        self.input_ranges[name] = (lo, hi)
        return name

    def fresh_bool_input(self, prefix: str) -> str:
        name = f"{prefix}_{self.index}"
        self.input_ranges[name] = (0, 1)
        return name

    def pick_float(self, rng, lo: float, hi: float) -> Tuple[str, float, float]:
        """A bounded float signal: either an existing one or a new input."""
        candidates = [s for s in self.float_signals if s[1] >= lo and s[2] <= hi]
        if candidates and rng.random() < 0.5:
            return rng.choice(candidates)
        name = self.fresh_float_input("f_in", lo, hi)
        return name, lo, hi


class Block:
    """One operator instance; emits globals, input decls and a step body."""

    #: Rough line count contributed (for size targeting).
    approx_lines = 10

    def __init__(self, index: int):
        self.index = index
        self.n = f"b{index}"

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        return []

    def global_decls(self, ctx: BlockContext) -> List[str]:
        raise NotImplementedError

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        raise NotImplementedError


class SecondOrderFilter(Block):
    """The Fig. 1 digital filter with reinitialization switch."""

    approx_lines = 16

    # Stable (a, b) pairs: 0 < b < 1, a^2 < 4b — and |a| + b >= 1, so the
    # interval map M -> (|a|+b)M + t diverges: these filters genuinely
    # require the ellipsoid domain, as in the paper.
    COEFFS = [(1.5, 0.7), (1.2, 0.5), (0.8, 0.9), (1.7, 0.8), (1.3, 0.6)]

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("flt_in", -1.0, 1.0)
        self.reset = ctx.fresh_bool_input("flt_rst")
        return [f"volatile float {self.input};",
                f"volatile int {self.reset};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_X;", f"float {self.n}_Y;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        a, b = rng.choice(self.COEFFS)
        # Output bound used for downstream wiring: generous post-hoc bound.
        ctx.float_signals.append((f"{self.n}_X", -60.0, 60.0))
        return [
            f"float {self.n}_t;",
            f"float {self.n}_Xp;",
            f"{self.n}_t = {self.input};",
            f"if ({self.reset}) {{",
            f"    {self.n}_Y = 0.5f;",
            f"    {self.n}_X = 0.5f;",
            "} else {",
            f"    {self.n}_Xp = {a}f * {self.n}_X - {b}f * {self.n}_Y + {self.n}_t;",
            f"    {self.n}_Y = {self.n}_X;",
            f"    {self.n}_X = {self.n}_Xp;",
            "}",
        ]


class FirstOrderLag(Block):
    """X := a*X + (1-a)*in with 0 <= a < 1 — stabilized by the widening
    threshold ladder (Sect. 7.1.2)."""

    approx_lines = 6

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("lag_in", -10.0, 10.0)
        return [f"volatile float {self.input};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_S;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        a = rng.choice([0.5, 0.25, 0.75, 0.9])
        ctx.float_signals.append((f"{self.n}_S", -45.0, 45.0))
        return [f"{self.n}_S = {a}f * {self.n}_S + {round(1.0 - a, 4)}f * {self.input};"]


class EventCounter(Block):
    """A counter of external events, bounded only by the maximal operating
    time (the clocked-domain motivation of Sect. 6.2.1)."""

    approx_lines = 7

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.event = ctx.fresh_bool_input("cnt_ev")
        return [f"volatile int {self.event};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"int {self.n}_count;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        return [
            f"if ({self.event}) {{",
            f"    {self.n}_count = {self.n}_count + 1;",
            "}",
        ]


class RateLimiter(Block):
    """out := prev + clamped-delta — the Sect. 6.2.2 octagon pattern
    (R := X - Z; if (R > V) L := Z + V)."""

    approx_lines = 14

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("rl_in", -50.0, 50.0)
        self.vmax = ctx.fresh_float_input("rl_vmax", 0.0, 5.0)
        return [f"volatile float {self.input};",
                f"volatile float {self.vmax};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_L;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.float_signals.append((f"{self.n}_L", -60.0, 60.0))
        return [
            f"float {self.n}_X;",
            f"float {self.n}_R;",
            f"float {self.n}_V;",
            "{",
            f"    {self.n}_X = {self.input};",
            f"    {self.n}_V = {self.vmax};",
            f"    {self.n}_R = {self.n}_X - {self.n}_L;",
            f"    if ({self.n}_R > {self.n}_V) {{ {self.n}_L = {self.n}_L + {self.n}_V; }}",
            f"    else {{ {self.n}_L = {self.n}_X; }}",
            f"    if ({self.n}_L > 55.0f) {{ {self.n}_L = 55.0f; }}",
            f"    if ({self.n}_L < -55.0f) {{ {self.n}_L = -55.0f; }}",
            "}",
        ]


class SwitchedDivider(Block):
    """The Sect. 6.2.4 pattern: a test stored into a boolean variable that
    later guards a division."""

    approx_lines = 8

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("div_in", 0.0, 100.0)
        return [f"volatile float {self.input};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"int {self.n}_raw;", f"BOOL {self.n}_B;", f"float {self.n}_q;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.float_signals.append((f"{self.n}_q", -1000.0, 1000.0))
        ctx.bool_signals.append(f"{self.n}_B")
        return [
            f"{self.n}_raw = (int){self.input};",
            f"{self.n}_B = ({self.n}_raw == 0);",
            f"if (!{self.n}_B) {{",
            f"    {self.n}_q = 1000.0f / {self.n}_raw;",
            "}",
        ]


class Saturator(Block):
    """Clamp through the shared call-by-reference helper."""

    approx_lines = 5

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("sat_in", -200.0, 200.0)
        return [f"volatile float {self.input};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_out;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        lim = rng.choice([10.0, 25.0, 50.0, 100.0])
        ctx.float_signals.append((f"{self.n}_out", -lim, lim))
        return [
            f"{self.n}_out = {self.input};",
            f"clamp_ref(&{self.n}_out, -{lim}f, {lim}f);",
        ]


class InterpolationTable(Block):
    """A constant lookup table with a guarded dynamic index.  The table is
    const, so constant-subscript references are folded away (Sect. 5.1);
    the dynamic access exercises array-bound checking."""

    approx_lines = 12

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.idx_in = ctx.fresh_float_input("tab_idx", 0.0, 100.0)
        return [f"volatile float {self.idx_in};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        values = ", ".join(f"{i}.5f" for i in range(8))
        return [
            f"static const float {self.n}_tab[8] = {{ {values} }};",
            f"float {self.n}_y;",
            f"int {self.n}_i;",
        ]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.float_signals.append((f"{self.n}_y", 0.0, 8.0))
        return [
            f"{self.n}_i = (int)({self.idx_in} * 0.07f);",
            f"if ({self.n}_i < 0) {{ {self.n}_i = 0; }}",
            f"if ({self.n}_i > 7) {{ {self.n}_i = 7; }}",
            f"{self.n}_y = {self.n}_tab[{self.n}_i];",
        ]


class Hysteresis(Block):
    """Two-threshold switch with a boolean state variable."""

    approx_lines = 10

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("hys_in", -100.0, 100.0)
        return [f"volatile float {self.input};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"BOOL {self.n}_on;", f"float {self.n}_cmd;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.bool_signals.append(f"{self.n}_on")
        ctx.float_signals.append((f"{self.n}_cmd", 0.0, 1.0))
        return [
            f"if ({self.input} > 50.0f) {{ {self.n}_on = 1; }}",
            f"if ({self.input} < -50.0f) {{ {self.n}_on = 0; }}",
            f"if ({self.n}_on) {{ {self.n}_cmd = 1.0f; }}",
            f"else {{ {self.n}_cmd = 0.0f; }}",
        ]


class Accumulator(Block):
    """A saturated integrator: S := clamp(S + k*in)."""

    approx_lines = 8

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("acc_in", -1.0, 1.0)
        return [f"volatile float {self.input};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_S;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        k = rng.choice([0.125, 0.25, 0.5])
        ctx.float_signals.append((f"{self.n}_S", -100.0, 100.0))
        return [
            f"{self.n}_S = {self.n}_S + {k}f * {self.input};",
            f"if ({self.n}_S > 100.0f) {{ {self.n}_S = 100.0f; }}",
            f"if ({self.n}_S < -100.0f) {{ {self.n}_S = -100.0f; }}",
        ]


class BooleanCombiner(Block):
    """Generated-code style boolean plumbing: one test per statement,
    results stored into booleans and recombined later (Sect. 10)."""

    approx_lines = 9

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.input = ctx.fresh_float_input("cmb_in", -10.0, 10.0)
        return [f"volatile float {self.input};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"BOOL {self.n}_p;", f"BOOL {self.n}_q;", f"BOOL {self.n}_r;",
                f"float {self.n}_o;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.bool_signals.append(f"{self.n}_r")
        ctx.float_signals.append((f"{self.n}_o", 0.0, 10.0))
        other = rng.choice(ctx.bool_signals) if ctx.bool_signals else f"{self.n}_p"
        return [
            f"{self.n}_p = ({self.input} > 0.0f);",
            f"{self.n}_q = {other};",
            f"{self.n}_r = {self.n}_p;",
            f"if ({self.n}_r) {{ {self.n}_o = {self.input}; }}",
            f"else {{ {self.n}_o = 0.0f; }}",
            f"if ({self.n}_o < 0.0f) {{ {self.n}_o = 0.0f; }}",
        ]


class ModeSelector(Block):
    """A switch-dispatched mode computation (generated dispatch glue)."""

    approx_lines = 14

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.mode = ctx.fresh_float_input("mode_in", 0.0, 3.0)
        return [f"volatile int {self.mode};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"int {self.n}_m;", f"float {self.n}_gain;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.float_signals.append((f"{self.n}_gain", 0.0, 4.0))
        return [
            f"{self.n}_m = {self.mode};",
            f"switch ({self.n}_m) {{",
            f"    case 0: {self.n}_gain = 0.5f; break;",
            f"    case 1: {self.n}_gain = 1.0f; break;",
            f"    case 2: {self.n}_gain = 2.0f; break;",
            f"    default: {self.n}_gain = 0.0f; break;",
            "}",
        ]


class Debouncer(Block):
    """A debounced boolean: raw input must persist N cycles to latch —
    a saturated counter feeding a boolean (clock + tree interplay)."""

    approx_lines = 12

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.raw = ctx.fresh_bool_input("dbn_raw")
        return [f"volatile int {self.raw};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"int {self.n}_cnt;", f"BOOL {self.n}_state;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        n = rng.choice([3, 5, 8])
        ctx.bool_signals.append(f"{self.n}_state")
        return [
            f"if ({self.raw}) {{",
            f"    if ({self.n}_cnt < {n}) {{ {self.n}_cnt = {self.n}_cnt + 1; }}",
            f"}} else {{",
            f"    {self.n}_cnt = 0;",
            "}",
            f"{self.n}_state = ({self.n}_cnt >= {n});",
        ]


class PIController(Block):
    """Proportional-integral controller with anti-windup clamps —
    combines the saturated-integrator and lag idioms."""

    approx_lines = 12

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.sp = ctx.fresh_float_input("pi_sp", -10.0, 10.0)
        self.pv = ctx.fresh_float_input("pi_pv", -10.0, 10.0)
        return [f"volatile float {self.sp};", f"volatile float {self.pv};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_I;", f"float {self.n}_u;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        kp = rng.choice([0.5, 1.0, 2.0])
        ki = rng.choice([0.0625, 0.125])
        ctx.float_signals.append((f"{self.n}_u", -100.0, 100.0))
        return [
            f"float {self.n}_e;",
            f"{self.n}_e = {self.sp} - {self.pv};",
            f"{self.n}_I = {self.n}_I + {ki}f * {self.n}_e;",
            f"if ({self.n}_I > 50.0f) {{ {self.n}_I = 50.0f; }}",
            f"if ({self.n}_I < -50.0f) {{ {self.n}_I = -50.0f; }}",
            f"{self.n}_u = {kp}f * {self.n}_e + {self.n}_I;",
            f"clamp_ref(&{self.n}_u, -100.0f, 100.0f);",
        ]


class DeltaIndexer(Block):
    """Array access whose in-boundedness needs the octagonal fact
    ``b - a in [1, 5]`` (plain intervals see b - a in [-99, 105] and
    report an out-of-bounds access): the Sect. 6.2.2 motivation."""

    approx_lines = 12

    def volatile_decls(self, ctx: BlockContext) -> List[str]:
        self.base_in = ctx.fresh_float_input("dix_base", 0.0, 100.0)
        self.offs_in = ctx.fresh_float_input("dix_offs", 1.0, 5.0)
        return [f"volatile float {self.base_in};",
                f"volatile float {self.offs_in};"]

    def global_decls(self, ctx: BlockContext) -> List[str]:
        return [f"float {self.n}_tab[8];", f"float {self.n}_y;",
                f"float {self.n}_a;", f"float {self.n}_b;",
                f"int {self.n}_i;"]

    def step_body(self, ctx: BlockContext, rng) -> List[str]:
        ctx.float_signals.append((f"{self.n}_y", -1.0, 1.0))
        return [
            f"float {self.n}_o;",
            "{",
            f"    {self.n}_a = {self.base_in};",
            f"    {self.n}_o = {self.offs_in};",
            f"    {self.n}_b = {self.n}_a + {self.n}_o;",
            f"    {self.n}_i = (int)({self.n}_b - {self.n}_a);",
            f"    {self.n}_y = {self.n}_tab[{self.n}_i];",
            "}",
        ]


ALL_BLOCK_TYPES = [
    SecondOrderFilter, FirstOrderLag, EventCounter, RateLimiter,
    SwitchedDivider, Saturator, InterpolationTable, Hysteresis,
    Accumulator, BooleanCombiner, ModeSelector, Debouncer, PIController,
    DeltaIndexer,
]
