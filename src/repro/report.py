"""Analysis report generation (the end-user facing output of Sect. 3.3).

Produces human-readable (markdown) and machine-readable (JSON) reports
from an :class:`~repro.analysis.AnalysisResult`: alarms grouped by kind
and location, invariant statistics, packing feedback for the next run,
and the analyzer configuration fingerprint.
"""

from __future__ import annotations

import json
from dataclasses import asdict
from typing import Dict, List, Optional

from .analysis import AnalysisResult

__all__ = ["render_campaign_markdown", "render_markdown", "render_json",
           "render_serve_stats", "write_report"]


def render_markdown(result: AnalysisResult, title: str = "Analysis report") -> str:
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"* analysis time: **{result.analysis_time:.2f} s**")
    lines.append(f"* widening iterations: {result.widening_iterations}")
    total_stmts = result.stmts_executed + result.stmts_skipped
    if total_stmts:
        mode = "incremental" if result.incremental else "full"
        pct = 100.0 * result.stmts_skipped / total_stmts
        lines.append(f"* statements ({mode}): {result.stmts_executed} "
                     f"executed, {result.stmts_skipped} skipped "
                     f"({pct:.1f}%)")
    if result.vectorize:
        lines.append(f"* vectorized kernels: {result.vector_batches} "
                     f"batches over {result.vector_cells} cells "
                     f"({result.vector_scalar_fallbacks} scalar fallbacks)")
    else:
        lines.append("* vectorized kernels: off (scalar oracle)")
    if result.dispatch != "none":
        lines.append(
            f"* dispatch ({result.dispatch}, {result.jobs} jobs): "
            f"{result.dispatch_jobs_dispatched} dispatched, "
            f"{result.dispatch_jobs_stolen} stolen, "
            f"{result.dispatch_jobs_retried} retried, "
            f"{result.dispatch_bytes_shipped} bytes shipped")
        if result.worker_rss_kib:
            lines.append(
                f"* fleet peak RSS: "
                f"{result.fleet_peak_rss_kib / 1024.0:.1f} MiB over "
                f"{len(result.worker_rss_kib)} worker(s)")
    lines.append(f"* octagon packs: {result.octagon_pack_count} "
                 f"({len(result.useful_octagon_packs)} useful, "
                 f"avg size {result.octagon_pack_avg_size:.1f})")
    lines.append(f"* boolean packs: {result.bool_pack_count}")
    lines.append(f"* filter sites: {result.filter_site_count}")
    lines.append("")
    lines.append(f"## Alarms ({result.alarm_count})")
    lines.append("")
    if not result.alarms:
        lines.append("No alarms: the analyzed properties are **proved**.")
    else:
        by_kind = result.alarms_by_kind()
        lines.append("| kind | count |")
        lines.append("|---|---|")
        for kind, count in sorted(by_kind.items()):
            lines.append(f"| {kind} | {count} |")
        lines.append("")
        for alarm in result.alarms:
            lines.append(f"* `{alarm.loc}` — **{alarm.kind}**: {alarm.message}")
    if result.degraded or result.incidents or result.resumed:
        lines.append("")
        lines.append("## Robustness")
        lines.append("")
        if result.degraded:
            lines.append("**DEGRADED** — a resource budget tripped and the "
                         "supervisor stepped down the degradation ladder; "
                         "the verdict is sound but coarser than the "
                         "configured precision.")
            lines.append("")
            lines.append("Rungs applied: "
                         + ", ".join(f"`{s}`" for s in
                                     result.degradation_steps))
        if result.resumed:
            lines.append("")
            lines.append("Resumed from a checkpoint (bit-identical to an "
                         "uninterrupted run).")
        if result.incidents:
            lines.append("")
            lines.append("| t (s) | kind | action | detail |")
            lines.append("|---|---|---|---|")
            for inc in result.incidents:
                lines.append(f"| {inc.at_s:.3f} | {inc.kind} | {inc.action} "
                             f"| {inc.detail} |")
    stats = result.invariant_stats()
    if stats.total():
        lines.append("")
        lines.append("## Main loop invariant")
        lines.append("")
        lines.append("| assertion kind | count |")
        lines.append("|---|---|")
        lines.append(f"| boolean interval | {stats.boolean_interval_assertions} |")
        lines.append(f"| interval | {stats.interval_assertions} |")
        lines.append(f"| clock | {stats.clock_assertions} |")
        lines.append(f"| octagonal (additive) | {stats.octagonal_additive_assertions} |")
        lines.append(f"| octagonal (subtractive) | {stats.octagonal_subtractive_assertions} |")
        lines.append(f"| decision trees | {stats.decision_trees} |")
        lines.append(f"| ellipsoidal | {stats.ellipsoidal_assertions} |")
    return "\n".join(lines) + "\n"


def render_json(result: AnalysisResult) -> str:
    stats = result.invariant_stats()
    payload: Dict[str, object] = {
        "alarm_count": result.alarm_count,
        "alarms": [
            {"kind": a.kind, "file": a.loc.filename, "line": a.loc.line,
             "col": a.loc.col, "message": a.message, "sid": a.sid}
            for a in result.alarms
        ],
        "analysis_time_s": result.analysis_time,
        "widening_iterations": result.widening_iterations,
        "incremental": {
            "enabled": result.incremental,
            "stmts_executed": result.stmts_executed,
            "stmts_skipped": result.stmts_skipped,
            "lattice_memo_hits": result.lattice_memo_hits,
            "lattice_memo_misses": result.lattice_memo_misses,
            "cross_run_seeded": result.cross_run_seeded,
            "cross_run_hits": result.cross_run_hits,
            "cross_run_spliced": result.cross_run_spliced,
        },
        "vectorize": {
            "enabled": result.vectorize,
            "batches": result.vector_batches,
            "cells": result.vector_cells,
            "scalar_fallbacks": result.vector_scalar_fallbacks,
        },
        "dispatch": {
            "backend": result.dispatch,
            "jobs": result.jobs,
            "jobs_dispatched": result.dispatch_jobs_dispatched,
            "jobs_stolen": result.dispatch_jobs_stolen,
            "jobs_retried": result.dispatch_jobs_retried,
            "bytes_shipped": result.dispatch_bytes_shipped,
            "workers_joined": result.dispatch_workers_joined,
            "workers_lost": result.dispatch_workers_lost,
            "worker_rss_kib": dict(sorted(result.worker_rss_kib.items())),
            "fleet_peak_rss_kib": result.fleet_peak_rss_kib,
        },
        "packing": {
            "octagon_packs": result.octagon_pack_count,
            "octagon_pack_avg_size": result.octagon_pack_avg_size,
            "useful_octagon_packs": [list(k) for k in
                                     sorted(result.useful_octagon_packs)],
            "bool_packs": result.bool_pack_count,
            "filter_sites": result.filter_site_count,
        },
        "invariant_stats": asdict(stats),
        "robustness": {
            "degraded": result.degraded,
            "degradation_steps": result.degradation_steps,
            "resumed": result.resumed,
            "exit_code": result.exit_code,
            "incidents": [
                {"kind": i.kind, "action": i.action, "detail": i.detail,
                 "at_s": i.at_s}
                for i in result.incidents
            ],
        },
    }
    return json.dumps(payload, indent=2)


def render_serve_stats(stats: Dict, title: str = "Serve stats") -> str:
    """Human-readable rendering of the daemon's ``stats`` protocol
    response (``astree-repro client --op stats``)."""
    runs = stats.get("runs", {})
    queue = stats.get("queue", {})
    rc = stats.get("result_cache", {})
    js = stats.get("journal_store", {})
    fc = stats.get("frontend_cache", {})
    cm = stats.get("closure_memo", {})
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"* daemon pid {stats.get('pid')}, up "
                 f"{stats.get('uptime_s', 0.0):.1f} s, "
                 f"{stats.get('requests', 0)} request(s) served")
    lines.append(f"* queue: depth {queue.get('depth', 0)}, "
                 f"submitted {queue.get('submitted', 0)}, "
                 f"completed {queue.get('completed', 0)}, "
                 f"failed {queue.get('failed', 0)}, "
                 f"rejected {queue.get('rejected', 0)}, "
                 f"cancelled {queue.get('cancelled', 0)}")
    worker = stats.get("worker", {})
    if worker:
        alive = "alive" if worker.get("alive") else "down"
        lines.append(
            f"* worker: {worker.get('mode', '?')} "
            f"(pid {worker.get('pid')}, {alive}), "
            f"{worker.get('spawns', 0)} spawn(s), "
            f"{worker.get('restarts', 0)} restart(s)"
            + (f", last exit {worker['last_exit']}"
               if worker.get("last_exit") else ""))
    quarantine = stats.get("quarantine", {})
    if quarantine.get("poisoned") or quarantine.get("refusals"):
        lines.append(
            f"* quarantine: {quarantine.get('poisoned', 0)} poisoned "
            f"key(s), {quarantine.get('refusals', 0)} refusal(s) "
            f"({', '.join(quarantine.get('signatures', [])) or '-'})")
    lines.append("")
    lines.append("| layer | hits | misses | evictions | entries |")
    lines.append("|---|---|---|---|---|")
    lines.append(f"| exact results | {rc.get('hits', 0)} "
                 f"| {rc.get('misses', 0)} | {rc.get('evictions', 0)} "
                 f"| {rc.get('disk_entries', rc.get('memory_entries', 0))} |")
    lines.append(f"| fixpoint journals | "
                 f"{js.get('memory_hits', 0) + js.get('disk_hits', 0)} "
                 f"| {js.get('misses', 0)} | {js.get('evictions', 0)} "
                 f"| {js.get('disk_entries', js.get('memory_entries', 0))} |")
    lines.append(f"| frontend | {fc.get('hits', 0)} | {fc.get('misses', 0)} "
                 f"| - | {fc.get('entries', 0)} |")
    lines.append(f"| closure memo | {cm.get('hits', 0)} | - "
                 f"| {cm.get('evictions', 0)} | {cm.get('entries', 0)} |")
    lines.append("")
    lines.append(f"* runs: {runs.get('cold', 0)} cold "
                 f"(avg {runs.get('cold_avg_wall_s', 0.0):.3f} s), "
                 f"{runs.get('warm', 0)} warm "
                 f"(avg {runs.get('warm_avg_wall_s', 0.0):.3f} s), "
                 f"{runs.get('degraded', 0)} degraded, "
                 f"{runs.get('retries', 0)} crash-retried")
    lines.append(f"* journal harvests: {js.get('harvests', 0)}")
    certify = stats.get("certify", {})
    if certify.get("mode", "off") != "off":
        lines.append(
            f"* certification ({certify.get('mode')}): "
            f"{certify.get('certified', 0)} warm result(s) certified, "
            f"{certify.get('rejections', 0)} rejected and re-run cold")
    return "\n".join(lines) + "\n"


def render_campaign_markdown(report, title: str = "Fuzz campaign") -> str:
    """Human-readable summary of a :class:`repro.fuzz.CampaignReport`."""
    lines: List[str] = [f"# {title}", ""]
    lines.append(f"* campaign seed: `{report.config.campaign_seed}`")
    lines.append(f"* cases: {len(report.results)} run / "
                 f"{report.cases_planned} planned")
    lines.append(f"* wall time: {report.wall_time_s:.1f} s")
    if report.stopped_reason:
        lines.append(f"* stopped early: **{report.stopped_reason}**")
    lines.append("")
    lines.append("| outcome | count |")
    lines.append("|---|---|")
    for outcome, count in report.outcome_counts.items():
        lines.append(f"| {outcome} | {count} |")
    lines.append("")
    verdict = ("**PASS** — no unsound or crash outcomes." if report.ok
               else "**FAIL** — soundness violations or analyzer crashes.")
    lines.append(verdict)
    triage = report.triage
    if triage:
        lines.append("")
        lines.append(f"## Failure signatures ({len(triage)})")
        lines.append("")
        for sig, case_ids in triage.items():
            lines.append(f"* `{sig}` — {len(case_ids)} case(s): "
                         + ", ".join(f"`{c}`" for c in case_ids[:5])
                         + (" …" if len(case_ids) > 5 else ""))
    if report.reductions:
        lines.append("")
        lines.append("## Reductions")
        lines.append("")
        lines.append("| case | size | reduced | passes |")
        lines.append("|---|---|---|---|")
        for red in report.reductions:
            lines.append(f"| `{red.original.case_id}` "
                         f"| {red.original_size} | {red.reduced_size} "
                         f"| {len(red.accepted_passes)} |")
    return "\n".join(lines) + "\n"


def write_report(result: AnalysisResult, path: str,
                 fmt: Optional[str] = None) -> None:
    """Write a report; format inferred from the extension when omitted."""
    if fmt is None:
        fmt = "json" if path.endswith(".json") else "markdown"
    text = render_json(result) if fmt == "json" else render_markdown(result)
    with open(path, "w") as f:
        f.write(text)
