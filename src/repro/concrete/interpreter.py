"""A concrete interpreter for the analyzed C subset.

This is testing infrastructure for the reproduction (not part of the
paper's analyzer): it executes lowered IR programs with the *concrete*
semantics the abstract interpreter claims to over-approximate —

* 32-bit two's-complement integers (wrap-around on overflow),
* IEEE-754 binary32/binary64 floats with round-to-nearest
  (via ``numpy.float32`` / Python floats),
* volatile reads drawn fresh from an input provider on every read,
* run-time errors (division by zero, out-of-bounds access, invalid
  operations) recorded as :class:`ConcreteError` events.

Its purpose is differential validation: every state reached by a concrete
run must be contained in the analyzer's invariants, and every concrete
error must be covered by an alarm.
"""

from __future__ import annotations

import hashlib
import math
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

import numpy as np

from ..frontend import ir as I
from ..frontend.c_types import (
    ArrayType, CType, EnumType, FLOAT, FloatType, IntType, PointerType,
    RecordType,
)

__all__ = ["ConcreteError", "ConcreteInterpreter", "RandomInputs",
           "TraceEntry", "derive_seed"]


def derive_seed(*parts) -> int:
    """A stable 63-bit seed derived from heterogeneous parts.

    Every differential/fuzz run draws its volatile inputs from a
    :class:`RandomInputs` seeded through this function, so a whole
    campaign is reproducible from a single root seed:
    ``derive_seed(campaign_seed, case_index, "stream", k)`` names the
    k-th input stream of one case, independent of Python's hash
    randomization and of any module-level ``random`` state.
    """
    h = hashlib.sha256(repr(parts).encode("utf-8"))
    return int.from_bytes(h.digest()[:8], "big") >> 1


class ConcreteError(Exception):
    """A genuine run-time error encountered during concrete execution."""

    def __init__(self, kind: str, loc, message: str):
        self.kind = kind
        self.loc = loc
        super().__init__(f"{loc}: [{kind}] {message}")


class _Break(Exception):
    pass


class _Continue(Exception):
    pass


class _Return(Exception):
    def __init__(self, value):
        self.value = value


class _OutOfFuel(Exception):
    pass


class RandomInputs:
    """Volatile input provider: fresh uniform draw per read.

    The seed is *explicit* (no default): every consumer must say which
    stream it is drawing, so differential and fuzzing runs replay
    bit-identically from a single campaign seed (see :func:`derive_seed`).
    The provider owns its own :class:`random.Random` — it never touches
    module-level ``random`` state.
    """

    def __init__(self, ranges: Dict[str, Tuple[float, float]], seed: int):
        self.ranges = ranges
        self.seed = seed
        self.rng = random.Random(seed)

    def fork(self, stream: int) -> "RandomInputs":
        """An independent, reproducible substream over the same ranges."""
        return RandomInputs(self.ranges, derive_seed(self.seed, "fork", stream))

    def read(self, var: I.Var):
        lo, hi = self.ranges.get(var.name, (0, 0))
        if isinstance(var.ctype, FloatType):
            v = self.rng.uniform(float(lo), float(hi))
            return float(np.float32(v)) if var.ctype is FLOAT else v
        return self.rng.randint(int(math.ceil(lo)), int(math.floor(hi)))


@dataclass
class TraceEntry:
    """Snapshot of scalar global values at one loop-head visit."""

    tick: int
    values: Dict[str, Union[int, float]]


class ConcreteInterpreter:
    """Executes an IR program concretely for a bounded number of ticks."""

    def __init__(self, prog: I.IRProgram, inputs: RandomInputs,
                 max_ticks: int = 100, max_steps: int = 2_000_000):
        self.prog = prog
        self.inputs = inputs
        self.max_ticks = max_ticks
        self.max_steps = max_steps
        self.memory: Dict[int, object] = {}
        self.ticks = 0
        self.steps = 0
        self.trace: List[TraceEntry] = []
        self.errors: List[ConcreteError] = []
        self._bindings: List[Dict[int, I.LValue]] = [{}]

    # -- top level -------------------------------------------------------------

    def run(self) -> List[TraceEntry]:
        """Execute from the entry point until the tick budget is exhausted."""
        for var in self.prog.globals:
            init = self.prog.initializers.get(var.uid)
            self.memory[var.uid] = _materialize(var.ctype, init)
        fn = self.prog.functions[self.prog.entry]
        try:
            self._exec_call(fn, [])
        except _OutOfFuel:
            pass
        except _Return:
            pass
        return self.trace

    def snapshot(self) -> Dict[str, Union[int, float]]:
        out: Dict[str, Union[int, float]] = {}
        for var in self.prog.globals:
            value = self.memory.get(var.uid)
            if isinstance(value, (int, float)):
                out[var.name] = value
        return out

    # -- statements ---------------------------------------------------------------

    def _exec_block(self, stmts) -> None:
        for s in stmts:
            self._exec_stmt(s)

    def _exec_stmt(self, s: I.Stmt) -> None:
        self.steps += 1
        if self.steps > self.max_steps:
            raise _OutOfFuel()
        if isinstance(s, I.SAssign):
            value = self._eval(s.value, s)
            self._store(s.target, value, s)
        elif isinstance(s, I.SIf):
            if _truthy(self._eval(s.cond, s)):
                self._exec_block(s.then)
            else:
                self._exec_block(s.other)
        elif isinstance(s, I.SWhile):
            first = s.run_body_first
            while True:
                if not first and not _truthy(self._eval(s.cond, s)):
                    break
                first = False
                try:
                    self._exec_block(s.body)
                except _Break:
                    break
                except _Continue:
                    pass
                self._exec_block(s.step)
        elif isinstance(s, I.SSwitch):
            scrutinee = self._eval(s.scrutinee, s)
            chosen = None
            default = None
            for values, body in s.cases:
                if values is None:
                    default = body
                elif scrutinee in values:
                    chosen = body
                    break
            body = chosen if chosen is not None else default
            if body is not None:
                try:
                    self._exec_block(body)
                except _Break:
                    pass
        elif isinstance(s, I.SCall):
            fn = self.prog.functions[s.func]
            result = self._exec_call(fn, s.args, s)
            if s.result is not None:
                self._store(s.result, _convert(result, s.result.ctype), s)
        elif isinstance(s, I.SReturn):
            raise _Return(self._eval(s.value, s) if s.value is not None else None)
        elif isinstance(s, I.SBreak):
            raise _Break()
        elif isinstance(s, I.SContinue):
            raise _Continue()
        elif isinstance(s, I.SWait):
            self.trace.append(TraceEntry(self.ticks, self.snapshot()))
            self.ticks += 1
            if self.ticks >= self.max_ticks:
                raise _OutOfFuel()
        elif isinstance(s, I.SAssume):
            pass  # trusted environment facts hold by construction
        elif isinstance(s, I.SCheck):
            if not _truthy(self._eval(s.cond, s)):
                self._error("user-assertion", s, "assertion failed")
        elif isinstance(s, I.SNop):
            pass
        else:  # pragma: no cover
            raise TypeError(f"unknown statement {s!r}")

    def _exec_call(self, fn: I.IRFunction, args, site: Optional[I.Stmt] = None):
        bindings: Dict[int, I.LValue] = {}
        local_values: List[Tuple[int, object]] = []
        for param, arg in zip(fn.params, args):
            if isinstance(param.ctype, PointerType):
                bindings[param.uid] = self._resolve_binding(arg)
            else:
                local_values.append((param.uid, self._eval(arg, site)))
        for uid, value in local_values:
            self.memory[uid] = value
        for local in fn.locals:
            self.memory[local.uid] = _materialize(local.ctype, None)
        self._bindings.append(bindings)
        try:
            self._exec_block(fn.body)
            return None
        except _Return as r:
            return r.value
        finally:
            self._bindings.pop()

    def _resolve_binding(self, lv: I.LValue) -> I.LValue:
        if isinstance(lv, I.LDeref):
            return self._lookup_binding(lv.var)
        if isinstance(lv, I.LIndex):
            # Freeze the index now (caller context evaluation).
            idx = self._eval(lv.index, None)
            return I.LIndex(self._resolve_binding(lv.base),
                            I.Const(idx, lv.index.ctype if hasattr(lv.index, "ctype") else None),
                            lv.element_type)
        if isinstance(lv, I.LField):
            return I.LField(self._resolve_binding(lv.base), lv.fieldname,
                            lv.field_type)
        return lv

    def _lookup_binding(self, var: I.Var) -> I.LValue:
        for frame in reversed(self._bindings):
            if var.uid in frame:
                return frame[var.uid]
        raise KeyError(var.name)

    # -- l-values --------------------------------------------------------------------

    def _store(self, lv: I.LValue, value, site) -> None:
        container, key = self._locate(lv, site)
        container[key] = _convert(value, lv.ctype)

    def _load(self, lv: I.LValue, site):
        container, key = self._locate(lv, site)
        return container[key]

    def _locate(self, lv: I.LValue, site):
        """Resolve to (container, key) for reading/writing."""
        if isinstance(lv, I.LVar):
            if lv.var.volatile:
                # Reads handled in _eval; writes land in memory normally.
                pass
            return self.memory, lv.var.uid
        if isinstance(lv, I.LDeref):
            return self._locate(self._lookup_binding(lv.var), site)
        if isinstance(lv, I.LField):
            container, key = self._locate(lv.base, site)
            record = container[key]
            return record, lv.fieldname
        if isinstance(lv, I.LIndex):
            container, key = self._locate(lv.base, site)
            array = container[key]
            idx = self._eval(lv.index, site)
            if not isinstance(array, list) or not (0 <= idx < len(array)):
                self._error("array-index-out-of-bounds", site,
                            f"index {idx} outside [0, {len(array) - 1 if isinstance(array, list) else '?'}]")
                idx = max(0, min(idx, len(array) - 1))
            return array, idx
        raise TypeError(f"unknown lvalue {lv!r}")  # pragma: no cover

    # -- expressions --------------------------------------------------------------------

    def _eval(self, e: I.Expr, site):
        if isinstance(e, I.Const):
            return e.value
        if isinstance(e, I.Load):
            root = I.lvalue_root(e.lval)
            if isinstance(e.lval, I.LVar) and root.volatile:
                return self.inputs.read(root)
            return self._load(e.lval, site)
        if isinstance(e, I.UnaryOp):
            v = self._eval(e.arg, site)
            if e.op == "neg":
                return _convert(-v, e.ctype)
            if e.op == "bnot":
                return _wrap_int(~int(v), e.ctype)
            if e.op == "fabs":
                return _convert(abs(v), e.ctype)
            if e.op == "sqrt":
                if v < 0:
                    self._error("invalid-float-operation", site, "sqrt(<0)")
                    return 0.0
                return _convert(math.sqrt(v), e.ctype)
        if isinstance(e, I.BinOp):
            a = self._eval(e.left, site)
            b = self._eval(e.right, site)
            return self._binop(e, a, b, site)
        if isinstance(e, I.BoolOp):
            a = _truthy(self._eval(e.left, site))
            b = _truthy(self._eval(e.right, site))
            return int(a and b) if e.op == "and" else int(a or b)
        if isinstance(e, I.NotOp):
            return int(not _truthy(self._eval(e.arg, site)))
        if isinstance(e, I.Cast):
            v = self._eval(e.arg, site)
            if isinstance(v, float) and isinstance(e.ctype, (IntType, EnumType)):
                # C leaves out-of-range float->int casts undefined; the
                # analyzer alarms cast-out-of-range and wipes.  Mirror it:
                # record the error and saturate so execution stays total.
                bits, signed = _int_layout(e.ctype)
                lo = -(1 << (bits - 1)) if signed else 0
                hi = (1 << (bits - 1 if signed else bits)) - 1
                if math.isnan(v):
                    self._error("cast-out-of-range", site,
                                "NaN cast to integer")
                    return 0
                if not (lo - 1.0 < v < hi + 1.0):
                    self._error("cast-out-of-range", site,
                                f"{v!r} outside [{lo}, {hi}]")
                    return lo if v < 0 else hi
            out = _convert(v, e.ctype)
            if (isinstance(out, float) and not math.isfinite(out)
                    and isinstance(v, (int, float))
                    and math.isfinite(float(v))):
                self._error("float-overflow", site,
                            f"{v!r} overflows {e.ctype}")
            return out
        raise TypeError(f"unknown expression {e!r}")  # pragma: no cover

    def _binop(self, e: I.BinOp, a, b, site):
        op = e.op
        if e.is_comparison:
            return {
                "lt": int(a < b), "le": int(a <= b), "gt": int(a > b),
                "ge": int(a >= b), "eq": int(a == b), "ne": int(a != b),
            }[op]
        if isinstance(e.ctype, FloatType):
            if op == "div" and b == 0.0:
                self._error("division-by-zero", site, "float division by 0")
                return 0.0
            raw = {"add": a + b, "sub": a - b, "mul": a * b,
                   "div": a / b if b != 0.0 else 0.0}[op]
            out = _convert(raw, e.ctype)
            if (not math.isfinite(out) and math.isfinite(a)
                    and math.isfinite(b)):
                # Overflow past the format's range (the analyzer's
                # FLOAT_OVERFLOW alarm wipes these executions).
                self._error("float-overflow" if math.isinf(out)
                            else "invalid-float-operation", site,
                            f"{op} produced {out!r}")
            return out
        ia, ib = int(a), int(b)
        if op in ("div", "mod") and ib == 0:
            self._error("division-by-zero" if op == "div" else "modulo-by-zero",
                        site, "by zero")
            return 0
        if op == "add":
            raw = ia + ib
        elif op == "sub":
            raw = ia - ib
        elif op == "mul":
            raw = ia * ib
        elif op == "div":
            q = abs(ia) // abs(ib)
            raw = q if (ia >= 0) == (ib >= 0) else -q
        elif op == "mod":
            r = abs(ia) % abs(ib)
            raw = r if ia >= 0 else -r
        elif op == "shl":
            if not (0 <= ib < 32):
                self._error("shift-out-of-range", site, f"shift by {ib}")
                ib = max(0, min(ib, 31))
            raw = ia << ib
        elif op == "shr":
            if not (0 <= ib < 32):
                self._error("shift-out-of-range", site, f"shift by {ib}")
                ib = max(0, min(ib, 31))
            raw = ia >> ib
        elif op == "band":
            raw = ia & ib
        elif op == "bor":
            raw = ia | ib
        elif op == "bxor":
            raw = ia ^ ib
        else:  # pragma: no cover
            raise TypeError(op)
        wrapped = _wrap_int(raw, e.ctype)
        if wrapped != raw:
            self._error("integer-overflow", site,
                        f"{raw} wraps to {wrapped}")
        return wrapped

    def _error(self, kind: str, site, message: str) -> None:
        loc = site.loc if site is not None else None
        self.errors.append(ConcreteError(kind, loc, message))


# ---------------------------------------------------------------------------


def _materialize(ctype: CType, init):
    if isinstance(ctype, ArrayType):
        items = init if init is not None else [None] * ctype.length
        return [_materialize(ctype.element, item) for item in items]
    if isinstance(ctype, RecordType):
        src = init if isinstance(init, dict) else {}
        return {fname: _materialize(ftype, src.get(fname))
                for fname, ftype in ctype.fields}
    if isinstance(ctype, FloatType):
        return float(init) if init is not None else 0.0
    if init is None:
        return 0
    return int(init)


def _truthy(v) -> bool:
    return v != 0


def _int_layout(ctype) -> Tuple[int, bool]:
    if isinstance(ctype, IntType):
        return ctype.bits, ctype.signed
    return 32, True


def _wrap_int(value: int, ctype) -> int:
    bits, signed = _int_layout(ctype)
    mask = (1 << bits) - 1
    value &= mask
    if signed and value >= (1 << (bits - 1)):
        value -= 1 << bits
    return value


def _convert(value, ctype):
    if value is None:
        return None
    if isinstance(ctype, FloatType):
        if ctype is FLOAT:
            return float(np.float32(value))
        return float(value)
    if isinstance(ctype, (IntType, EnumType)):
        if isinstance(value, float) and not math.isfinite(value):
            # Backstop for conversions without an explicit Cast node;
            # the Cast path records the error before reaching here.
            return 0
        return _wrap_int(int(value), ctype)
    return value
