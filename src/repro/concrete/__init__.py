"""Concrete interpreter for the C subset (differential-testing substrate)."""

from .interpreter import (
    ConcreteError, ConcreteInterpreter, RandomInputs, TraceEntry,
    derive_seed,
)

__all__ = ["ConcreteError", "ConcreteInterpreter", "RandomInputs",
           "TraceEntry", "derive_seed"]
