"""Interval arithmetic with sound outward rounding (Sect. 6.2.1).

Two interval types back the analyzer's non-relational layer:

* :class:`FloatInterval` — a set of *real* numbers bounded by binary64
  floats.  All bound computations round outward (see
  :mod:`repro.numeric.float_utils`), so every operation over-approximates the
  corresponding operation on real numbers.  The concrete program's
  floating-point rounding is accounted for separately, either by
  :meth:`FloatInterval.round_to` (direct interval evaluation) or by the
  error terms of the linear forms (Sect. 6.3).

* :class:`IntInterval` — a set of integers with arbitrary-precision bounds
  (``None`` encodes an infinite bound), exact arithmetic, and C-style
  truncated division.

Both support the lattice operations required by the iterator: join, meet,
inclusion, widening (plain and with thresholds, Sect. 7.1.2) and narrowing.
"""

from __future__ import annotations

import bisect
import math
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

from .float_utils import (
    add_down,
    add_up,
    div_down,
    div_up,
    mul_down,
    mul_up,
    next_down,
    next_up,
    sqrt_down,
    sqrt_up,
    sub_down,
    sub_up,
    FloatFormat,
)

__all__ = ["FloatInterval", "IntInterval"]

_INF = math.inf


@dataclass(frozen=True)
class FloatInterval:
    """A closed interval of real numbers, or the empty set.

    The canonical empty interval is ``FloatInterval(inf, -inf)``.
    NaN never appears in bounds: operations that could produce NaN on the
    concrete level (inf - inf, 0 * inf) widen to the relevant infinity,
    which is sound for a set-of-reals semantics.
    """

    lo: float
    hi: float

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty() -> "FloatInterval":
        return _FLOAT_EMPTY

    @staticmethod
    def top() -> "FloatInterval":
        return _FLOAT_TOP

    @staticmethod
    def const(x: float) -> "FloatInterval":
        if math.isnan(x):
            return _FLOAT_TOP
        return FloatInterval(x, x)

    @staticmethod
    def of(lo: float, hi: float) -> "FloatInterval":
        if math.isnan(lo) or math.isnan(hi) or lo > hi:
            return _FLOAT_EMPTY
        return FloatInterval(lo, hi)

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo == -_INF and self.hi == _INF

    @property
    def is_const(self) -> bool:
        return self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return not self.is_empty and self.lo > -_INF and self.hi < _INF

    def contains(self, x: float) -> bool:
        return not self.is_empty and self.lo <= x <= self.hi

    def contains_zero(self) -> bool:
        return self.contains(0.0)

    def includes(self, other: "FloatInterval") -> bool:
        """Whether ``other`` is a subset of ``self``."""
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        return self.lo <= other.lo and other.hi <= self.hi

    def magnitude(self) -> float:
        """Upper bound on ``|x|`` for x in the interval (0 for empty)."""
        if self.is_empty:
            return 0.0
        return max(abs(self.lo), abs(self.hi))

    def width(self) -> float:
        if self.is_empty:
            return 0.0
        return sub_up(self.hi, self.lo)

    # -- lattice -----------------------------------------------------------

    def join(self, other: "FloatInterval") -> "FloatInterval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        return FloatInterval(min(self.lo, other.lo), max(self.hi, other.hi))

    def meet(self, other: "FloatInterval") -> "FloatInterval":
        if self.is_empty or other.is_empty:
            return _FLOAT_EMPTY
        return FloatInterval.of(max(self.lo, other.lo), min(self.hi, other.hi))

    def widen(
        self, other: "FloatInterval", thresholds: Optional[Sequence[float]] = None
    ) -> "FloatInterval":
        """Widening with thresholds (Sect. 7.1.2).

        ``thresholds`` must be sorted ascending and contain -inf and +inf.
        Without thresholds the unstable bound jumps straight to infinity
        (classical interval widening, [10, Sect. 2.1.2]).
        """
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo, hi = self.lo, self.hi
        if other.lo < lo:
            if thresholds is None:
                lo = -_INF
            else:
                lo = _largest_leq(thresholds, other.lo)
        if other.hi > hi:
            if thresholds is None:
                hi = _INF
            else:
                hi = _smallest_geq(thresholds, other.hi)
        return FloatInterval(lo, hi)

    def narrow(self, other: "FloatInterval") -> "FloatInterval":
        """Standard interval narrowing: refine only infinite bounds."""
        if self.is_empty or other.is_empty:
            return _FLOAT_EMPTY
        lo = other.lo if self.lo == -_INF else self.lo
        hi = other.hi if self.hi == _INF else self.hi
        return FloatInterval.of(lo, hi)

    # -- arithmetic over the reals (outward rounded) -----------------------

    def neg(self) -> "FloatInterval":
        if self.is_empty:
            return self
        return FloatInterval(-self.hi, -self.lo)

    def add(self, other: "FloatInterval") -> "FloatInterval":
        if self.is_empty or other.is_empty:
            return _FLOAT_EMPTY
        return FloatInterval(add_down(self.lo, other.lo), add_up(self.hi, other.hi))

    def sub(self, other: "FloatInterval") -> "FloatInterval":
        if self.is_empty or other.is_empty:
            return _FLOAT_EMPTY
        return FloatInterval(sub_down(self.lo, other.hi), sub_up(self.hi, other.lo))

    def mul(self, other: "FloatInterval") -> "FloatInterval":
        if self.is_empty or other.is_empty:
            return _FLOAT_EMPTY
        candidates_lo = (
            mul_down(self.lo, other.lo),
            mul_down(self.lo, other.hi),
            mul_down(self.hi, other.lo),
            mul_down(self.hi, other.hi),
        )
        candidates_hi = (
            mul_up(self.lo, other.lo),
            mul_up(self.lo, other.hi),
            mul_up(self.hi, other.lo),
            mul_up(self.hi, other.hi),
        )
        return FloatInterval(min(candidates_lo), max(candidates_hi))

    def div(self, other: "FloatInterval") -> "FloatInterval":
        """Quotient over the reals, assuming the divisor avoids zero.

        Callers in checking mode must report a division-by-zero alarm when
        ``other.contains_zero()``; the returned interval is the sound result
        for the *non-erroneous* executions (Sect. 5.3), i.e. the divisor
        restricted to its nonzero part.  If the divisor is exactly {0} the
        result is empty (no non-erroneous execution).
        """
        if self.is_empty or other.is_empty:
            return _FLOAT_EMPTY
        lo, hi = other.lo, other.hi
        if lo == 0.0 and hi == 0.0:
            return _FLOAT_EMPTY
        if lo < 0.0 < hi:
            # Split at zero; the quotient may reach any magnitude.
            neg_part = self.div(FloatInterval(lo, -0.0))
            pos_part = self.div(FloatInterval(0.0, hi))
            return neg_part.join(pos_part)
        # Divisor has constant sign; zero endpoints give infinite quotients.
        def qd(a: float, b: float) -> float:
            if b == 0.0:
                if a == 0.0:
                    return 0.0
                # sign of quotient determined by a and the side of zero
                return -_INF
            return div_down(a, b)

        def qu(a: float, b: float) -> float:
            if b == 0.0:
                if a == 0.0:
                    return 0.0
                return _INF
            return div_up(a, b)

        if hi == 0.0 or lo == 0.0:
            # One endpoint touches zero: compute with open-end semantics.
            res_lo = -_INF
            res_hi = _INF
            nz = FloatInterval(lo if lo != 0.0 else next_up(0.0) if hi > 0 else lo,
                               hi if hi != 0.0 else next_down(0.0) if lo < 0 else hi)
            # Conservative: bound by dividing by the far (nonzero) endpoint,
            # the near-zero side contributes +/- infinity unless numerator
            # straddles accordingly.
            far = lo if hi == 0.0 else hi
            cands_lo = [qd(self.lo, far), qd(self.hi, far)]
            cands_hi = [qu(self.lo, far), qu(self.hi, far)]
            if self.lo <= 0.0 <= self.hi:
                cands_lo.append(0.0)
                cands_hi.append(0.0)
            if self.hi > 0.0:
                if hi == 0.0:  # positive / tiny-negative -> -inf
                    cands_lo.append(-_INF)
                else:
                    cands_hi.append(_INF)
            if self.lo < 0.0:
                if hi == 0.0:
                    cands_hi.append(_INF)
                else:
                    cands_lo.append(-_INF)
            res_lo = min(cands_lo)
            res_hi = max(cands_hi)
            _ = nz
            return FloatInterval(res_lo, res_hi)
        candidates_lo = (qd(self.lo, lo), qd(self.lo, hi), qd(self.hi, lo), qd(self.hi, hi))
        candidates_hi = (qu(self.lo, lo), qu(self.lo, hi), qu(self.hi, lo), qu(self.hi, hi))
        return FloatInterval(min(candidates_lo), max(candidates_hi))

    def abs(self) -> "FloatInterval":
        if self.is_empty:
            return self
        if self.lo >= 0.0:
            return self
        if self.hi <= 0.0:
            return self.neg()
        return FloatInterval(0.0, max(-self.lo, self.hi))

    def sqrt(self) -> "FloatInterval":
        """Square root of the nonnegative part (callers alarm on negatives)."""
        nonneg = self.meet(FloatInterval(0.0, _INF))
        if nonneg.is_empty:
            return _FLOAT_EMPTY
        return FloatInterval(sqrt_down(nonneg.lo), sqrt_up(nonneg.hi))

    # -- concrete float rounding model --------------------------------------

    def round_to(self, fmt: FloatFormat) -> tuple["FloatInterval", bool]:
        """Model storing a real from this interval into format ``fmt``.

        Returns ``(interval, may_overflow)``: the interval of representable
        results of round-to-nearest for the non-overflowing executions, and
        a flag telling checking mode to raise an overflow alarm.  Following
        Sect. 5.3, overflowing values are "wiped out": the returned interval
        clamps to the format's finite range.
        """
        if self.is_empty:
            return self, False
        err_lo = _rounding_slack(fmt, self.lo)
        err_hi = _rounding_slack(fmt, self.hi)
        lo = sub_down(self.lo, err_lo)
        hi = add_up(self.hi, err_hi)
        may_overflow = hi > fmt.max_value or lo < -fmt.max_value
        lo = max(lo, -fmt.max_value)
        hi = min(hi, fmt.max_value)
        return FloatInterval.of(lo, hi), may_overflow

    # -- guards --------------------------------------------------------------

    def restrict_le(self, bound: float) -> "FloatInterval":
        return self.meet(FloatInterval(-_INF, bound))

    def restrict_ge(self, bound: float) -> "FloatInterval":
        return self.meet(FloatInterval(bound, _INF))

    def restrict_lt(self, bound: float) -> "FloatInterval":
        # Over the reals there is no "previous" value; for float-valued
        # program variables the predecessor float is a sound tightening.
        return self.meet(FloatInterval(-_INF, next_down(bound)))

    def restrict_gt(self, bound: float) -> "FloatInterval":
        return self.meet(FloatInterval(next_up(bound), _INF))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "FloatInterval.empty()"
        return f"[{self.lo!r}, {self.hi!r}]"


_FLOAT_EMPTY = FloatInterval(_INF, -_INF)
_FLOAT_TOP = FloatInterval(-_INF, _INF)


def _rounding_slack(fmt: FloatFormat, x: float) -> float:
    """Absolute round-to-nearest error bound for a real near ``x``."""
    if math.isinf(x):
        return 0.0
    return add_up(mul_up(fmt.rel_err, abs(x)), fmt.abs_err)


def _largest_leq(thresholds: Sequence[float], x: float) -> float:
    """Largest threshold <= x.

    ``thresholds`` is the shared widening ladder: sorted ascending (see
    ``FloatInterval.widen``), so the lookup is a ``bisect`` instead of a
    linear scan.  Degenerate inputs keep the scan's exact semantics: an
    empty ladder or a NaN ``x`` (which no threshold compares against)
    yield -inf.
    """
    if not thresholds or x != x:
        return -_INF
    idx = bisect.bisect_right(thresholds, x)
    if idx == 0:
        return -_INF
    return thresholds[idx - 1]


def _smallest_geq(thresholds: Sequence[float], x: float) -> float:
    """Smallest threshold >= x over the sorted ladder; +inf when none
    qualifies (empty ladder, NaN ``x``, or x above every rung)."""
    if not thresholds or x != x:
        return _INF
    idx = bisect.bisect_left(thresholds, x)
    if idx == len(thresholds):
        return _INF
    return thresholds[idx]


# ---------------------------------------------------------------------------


_NEG_INF = None  # sentinel docs only; integer infinities are encoded as None


@dataclass(frozen=True)
class IntInterval:
    """A closed interval of integers; ``None`` bounds encode infinities.

    ``lo is None`` means -infinity, ``hi is None`` means +infinity.  The
    canonical empty interval is ``IntInterval(1, 0)``... represented by the
    dedicated :meth:`empty` singleton (``lo=1, hi=0``).
    """

    lo: Optional[int]
    hi: Optional[int]

    @staticmethod
    def empty() -> "IntInterval":
        return _INT_EMPTY

    @staticmethod
    def top() -> "IntInterval":
        return _INT_TOP

    @staticmethod
    def const(x: int) -> "IntInterval":
        return IntInterval(x, x)

    @staticmethod
    def of(lo: Optional[int], hi: Optional[int]) -> "IntInterval":
        if lo is not None and hi is not None and lo > hi:
            return _INT_EMPTY
        return IntInterval(lo, hi)

    # -- predicates --------------------------------------------------------

    @property
    def is_empty(self) -> bool:
        return self.lo is not None and self.hi is not None and self.lo > self.hi

    @property
    def is_top(self) -> bool:
        return self.lo is None and self.hi is None

    @property
    def is_const(self) -> bool:
        return self.lo is not None and self.lo == self.hi

    @property
    def is_bounded(self) -> bool:
        return not self.is_empty and self.lo is not None and self.hi is not None

    def contains(self, x: int) -> bool:
        if self.is_empty:
            return False
        if self.lo is not None and x < self.lo:
            return False
        if self.hi is not None and x > self.hi:
            return False
        return True

    def contains_zero(self) -> bool:
        return self.contains(0)

    def includes(self, other: "IntInterval") -> bool:
        if other.is_empty:
            return True
        if self.is_empty:
            return False
        lo_ok = self.lo is None or (other.lo is not None and other.lo >= self.lo)
        hi_ok = self.hi is None or (other.hi is not None and other.hi <= self.hi)
        return lo_ok and hi_ok

    def magnitude(self) -> Optional[int]:
        """Max |x| over the interval; ``None`` when unbounded, 0 when empty."""
        if self.is_empty:
            return 0
        if self.lo is None or self.hi is None:
            return None
        return max(abs(self.lo), abs(self.hi))

    # -- lattice -----------------------------------------------------------

    def join(self, other: "IntInterval") -> "IntInterval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo = None if self.lo is None or other.lo is None else min(self.lo, other.lo)
        hi = None if self.hi is None or other.hi is None else max(self.hi, other.hi)
        return IntInterval(lo, hi)

    def meet(self, other: "IntInterval") -> "IntInterval":
        if self.is_empty or other.is_empty:
            return _INT_EMPTY
        lo = _max_opt_lo(self.lo, other.lo)
        hi = _min_opt_hi(self.hi, other.hi)
        return IntInterval.of(lo, hi)

    def widen(
        self, other: "IntInterval", thresholds: Optional[Sequence[float]] = None
    ) -> "IntInterval":
        if self.is_empty:
            return other
        if other.is_empty:
            return self
        lo: Optional[int] = self.lo
        hi: Optional[int] = self.hi
        if _lt_opt_lo(other.lo, self.lo):
            lo = None
            if thresholds is not None and other.lo is not None:
                t = _largest_leq(thresholds, float(other.lo))
                lo = None if t == -_INF else math.floor(t)
        if _gt_opt_hi(other.hi, self.hi):
            hi = None
            if thresholds is not None and other.hi is not None:
                t = _smallest_geq(thresholds, float(other.hi))
                hi = None if t == _INF else math.ceil(t)
        return IntInterval(lo, hi)

    def narrow(self, other: "IntInterval") -> "IntInterval":
        if self.is_empty or other.is_empty:
            return _INT_EMPTY
        lo = other.lo if self.lo is None else self.lo
        hi = other.hi if self.hi is None else self.hi
        return IntInterval.of(lo, hi)

    # -- arithmetic (exact over the integers) --------------------------------

    def neg(self) -> "IntInterval":
        if self.is_empty:
            return self
        lo = None if self.hi is None else -self.hi
        hi = None if self.lo is None else -self.lo
        return IntInterval(lo, hi)

    def add(self, other: "IntInterval") -> "IntInterval":
        if self.is_empty or other.is_empty:
            return _INT_EMPTY
        lo = None if self.lo is None or other.lo is None else self.lo + other.lo
        hi = None if self.hi is None or other.hi is None else self.hi + other.hi
        return IntInterval(lo, hi)

    def sub(self, other: "IntInterval") -> "IntInterval":
        return self.add(other.neg())

    def mul(self, other: "IntInterval") -> "IntInterval":
        if self.is_empty or other.is_empty:
            return _INT_EMPTY
        prods = [
            _mul_opt(a, b)
            for a in (("lo", self.lo), ("hi", self.hi))
            for b in (("lo", other.lo), ("hi", other.hi))
        ]
        # _mul_opt returns (value, is_neg_inf, is_pos_inf) triples.
        lo: Optional[int] = 0
        hi: Optional[int] = 0
        finite = [p for p in prods if isinstance(p, int)]
        has_neg_inf = any(p == "-inf" for p in prods)
        has_pos_inf = any(p == "+inf" for p in prods)
        if has_neg_inf:
            lo = None
        elif finite:
            lo = min(finite)
        if has_pos_inf:
            hi = None
        elif finite:
            hi = max(finite)
        if not finite and not has_neg_inf and not has_pos_inf:
            return _INT_EMPTY  # unreachable in practice
        return IntInterval(lo, hi)

    def div_trunc(self, other: "IntInterval") -> "IntInterval":
        """C99 truncated integer division, divisor restricted to nonzero."""
        if self.is_empty or other.is_empty:
            return _INT_EMPTY
        neg = other.meet(IntInterval(None, -1))
        pos = other.meet(IntInterval(1, None))
        out = _INT_EMPTY
        for d in (neg, pos):
            if d.is_empty:
                continue
            out = out.join(self._div_const_sign(d))
        return out

    def _div_const_sign(self, d: "IntInterval") -> "IntInterval":
        """Division by a divisor interval of constant nonzero sign."""
        cands: list[Optional[int]] = []
        unbounded_hi = False
        unbounded_lo = False
        for a, a_inf in ((self.lo, "-"), (self.hi, "+")):
            for b, b_inf in ((d.lo, "-"), (d.hi, "+")):
                if a is None and b is None:
                    # inf / inf: quotient can be anything of the combined sign;
                    # conservatively unbounded both ways is not needed — the
                    # magnitude can be arbitrarily large.
                    unbounded_lo = unbounded_hi = True
                elif a is None:
                    assert b is not None
                    if (a_inf == "+") == (b > 0):
                        unbounded_hi = True
                    else:
                        unbounded_lo = True
                elif b is None:
                    cands.append(0)  # finite / inf tends to 0 (trunc)
                else:
                    cands.append(_c_div(a, b))
        # Quotient range also includes values for interior points; with
        # monotonicity per sign region the endpoint candidates plus 0-crossing
        # suffice. Add 0 if numerator spans it.
        if self.contains(0):
            cands.append(0)
        finite = [c for c in cands if c is not None]
        lo = None if unbounded_lo else (min(finite) if finite else None)
        hi = None if unbounded_hi else (max(finite) if finite else None)
        if lo is None and hi is None and not (unbounded_lo or unbounded_hi):
            return _INT_EMPTY
        return IntInterval(lo, hi)

    def mod_trunc(self, other: "IntInterval") -> "IntInterval":
        """C99 ``%`` (sign follows dividend), divisor nonzero part."""
        if self.is_empty or other.is_empty:
            return _INT_EMPTY
        mags = [abs(b) for b in (other.lo, other.hi) if b is not None and b != 0]
        if other.lo is None or other.hi is None:
            max_mag = None
        else:
            if other.lo <= -1:
                mags.append(abs(other.lo))
            if other.hi >= 1:
                mags.append(other.hi)
            max_mag = max(mags) if mags else 0
        if max_mag == 0:
            return _INT_EMPTY
        bound = None if max_mag is None else max_mag - 1
        lo = 0 if self.lo is not None and self.lo >= 0 else (None if bound is None else -bound)
        hi = 0 if self.hi is not None and self.hi <= 0 else bound
        res = IntInterval(lo, hi)
        # |a % b| <= |a| as well.
        m = self.magnitude()
        if m is not None:
            res = res.meet(IntInterval(-m, m))
        return res

    # -- conversions --------------------------------------------------------

    def to_float_interval(self) -> FloatInterval:
        lo = -_INF if self.lo is None else next_down(float(self.lo))
        hi = _INF if self.hi is None else next_up(float(self.hi))
        if self.is_empty:
            return FloatInterval.empty()
        # Exactly representable small ints need no nudge.
        if self.lo is not None and abs(self.lo) <= 2**53:
            lo = float(self.lo)
        if self.hi is not None and abs(self.hi) <= 2**53:
            hi = float(self.hi)
        return FloatInterval(lo, hi)

    @staticmethod
    def from_float_interval(iv: FloatInterval) -> "IntInterval":
        """Integers obtained by C truncation of reals in ``iv``."""
        if iv.is_empty:
            return _INT_EMPTY
        lo = None if iv.lo == -_INF else math.trunc(iv.lo)
        hi = None if iv.hi == _INF else math.trunc(iv.hi)
        # trunc rounds toward zero, matching C float->int conversion.
        return IntInterval.of(lo, hi)

    # -- guards --------------------------------------------------------------

    def restrict_le(self, bound: int) -> "IntInterval":
        return self.meet(IntInterval(None, bound))

    def restrict_ge(self, bound: int) -> "IntInterval":
        return self.meet(IntInterval(bound, None))

    def restrict_lt(self, bound: int) -> "IntInterval":
        return self.meet(IntInterval(None, bound - 1))

    def restrict_gt(self, bound: int) -> "IntInterval":
        return self.meet(IntInterval(bound + 1, None))

    def restrict_ne(self, value: int) -> "IntInterval":
        """Remove ``value`` when it is an endpoint (interval-representable)."""
        if self.is_empty:
            return self
        if self.lo == value and self.hi == value:
            return _INT_EMPTY
        if self.lo == value:
            return IntInterval(value + 1, self.hi)
        if self.hi == value:
            return IntInterval(self.lo, value - 1)
        return self

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_empty:
            return "IntInterval.empty()"
        lo = "-oo" if self.lo is None else str(self.lo)
        hi = "+oo" if self.hi is None else str(self.hi)
        return f"[{lo}, {hi}]"


_INT_EMPTY = IntInterval(1, 0)
_INT_TOP = IntInterval(None, None)


def _c_div(a: int, b: int) -> int:
    """C99 truncated division."""
    q = abs(a) // abs(b)
    return q if (a >= 0) == (b >= 0) else -q


def _mul_opt(a: tuple[str, Optional[int]], b: tuple[str, Optional[int]]):
    """Multiply possibly-infinite endpoints; returns int, '+inf' or '-inf'."""
    a_kind, a_val = a
    b_kind, b_val = b
    if a_val is not None and b_val is not None:
        return a_val * b_val
    # Determine signs of the infinite endpoint(s).
    def sign_of(kind: str, val: Optional[int]) -> int:
        if val is not None:
            return (val > 0) - (val < 0)
        return 1 if kind == "hi" else -1

    sa = sign_of(a_kind, a_val)
    sb = sign_of(b_kind, b_val)
    if (a_val == 0) or (b_val == 0):
        return 0
    return "+inf" if sa * sb > 0 else "-inf"


def _max_opt_lo(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return max(a, b)


def _min_opt_hi(a: Optional[int], b: Optional[int]) -> Optional[int]:
    if a is None:
        return b
    if b is None:
        return a
    return min(a, b)


def _lt_opt_lo(a: Optional[int], b: Optional[int]) -> bool:
    """a < b where None means -inf (for lower bounds)."""
    if a is None:
        return b is not None
    if b is None:
        return False
    return a < b


def _gt_opt_hi(a: Optional[int], b: Optional[int]) -> bool:
    """a > b where None means +inf (for upper bounds)."""
    if a is None:
        return b is not None
    if b is None:
        return False
    return a > b
