"""Interval linear forms and expression linearization (Sect. 6.3).

A linear form is ``sum_i [a_i, b_i] * v_i + [a, b]`` over program variables
``v_i`` with interval coefficients.  Linearizing expressions before feeding
them to the abstract domains recovers correlations lost by bottom-up interval
evaluation (the paper's ``X - 0.2 * X`` example evaluates to ``0.8 * X``),
and is also the channel through which concrete floating-point rounding is
soundly over-approximated: each float operator contributes an absolute error
interval to the constant term (the paper's chosen error model).

The linear forms are correct *over the reals*; the octagon and ellipsoid
domains consume them directly (Sect. 6.2.2's two-step recipe for
floating-point relational domains).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, Iterable, Mapping, Optional, Tuple

from .float_utils import FloatFormat, add_up, mul_up
from .intervals import FloatInterval

__all__ = ["LinearForm"]

VarId = Hashable


@dataclass(frozen=True)
class LinearForm:
    """``sum coeffs[v] * v + const`` with :class:`FloatInterval` coefficients.

    Immutable; all operations return new forms.  Coefficients never store a
    zero-constant interval (those are dropped to keep forms sparse).
    """

    coeffs: Tuple[Tuple[VarId, FloatInterval], ...]
    const: FloatInterval

    # -- constructors ------------------------------------------------------

    @staticmethod
    def constant(iv: FloatInterval) -> "LinearForm":
        return LinearForm((), iv)

    @staticmethod
    def of_const(x: float) -> "LinearForm":
        return LinearForm((), FloatInterval.const(x))

    @staticmethod
    def var(v: VarId) -> "LinearForm":
        return LinearForm(((v, FloatInterval.const(1.0)),), FloatInterval.const(0.0))

    @staticmethod
    def make(coeffs: Mapping[VarId, FloatInterval], const: FloatInterval) -> "LinearForm":
        items = tuple(
            sorted(
                ((v, c) for v, c in coeffs.items() if not (c.is_const and c.lo == 0.0)),
                key=lambda it: repr(it[0]),
            )
        )
        return LinearForm(items, const)

    def coeff_map(self) -> Dict[VarId, FloatInterval]:
        return dict(self.coeffs)

    @property
    def is_constant(self) -> bool:
        return not self.coeffs

    @property
    def variables(self) -> Tuple[VarId, ...]:
        return tuple(v for v, _ in self.coeffs)

    def coeff(self, v: VarId) -> FloatInterval:
        for w, c in self.coeffs:
            if w == v:
                return c
        return FloatInterval.const(0.0)

    # -- linear operations (sound over the reals) ---------------------------

    def neg(self) -> "LinearForm":
        return LinearForm(
            tuple((v, c.neg()) for v, c in self.coeffs), self.const.neg()
        )

    def add(self, other: "LinearForm") -> "LinearForm":
        merged = dict(self.coeffs)
        for v, c in other.coeffs:
            if v in merged:
                merged[v] = merged[v].add(c)
            else:
                merged[v] = c
        return LinearForm.make(merged, self.const.add(other.const))

    def sub(self, other: "LinearForm") -> "LinearForm":
        return self.add(other.neg())

    def scale(self, k: FloatInterval) -> "LinearForm":
        """Multiply by a constant interval."""
        return LinearForm.make(
            {v: c.mul(k) for v, c in self.coeffs}, self.const.mul(k)
        )

    def add_error(self, err: FloatInterval) -> "LinearForm":
        """Absorb an absolute error interval into the constant term."""
        return LinearForm(self.coeffs, self.const.add(err))

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, lookup: Callable[[VarId], FloatInterval]) -> FloatInterval:
        """Interval evaluation under a variable-range environment."""
        acc = self.const
        for v, c in self.coeffs:
            acc = acc.add(c.mul(lookup(v)))
        return acc

    def intervalize(self, lookup: Callable[[VarId], FloatInterval]) -> FloatInterval:
        return self.evaluate(lookup)

    # -- float rounding model (Sect. 6.3) ------------------------------------

    def with_float_rounding(
        self, fmt: FloatFormat, lookup: Callable[[VarId], FloatInterval]
    ) -> "LinearForm":
        """Over-approximate one round-to-nearest of this form's value.

        The rounded value ``rnd(x)`` satisfies
        ``|rnd(x) - x| <= rel_err * |x| + abs_err``; we bound ``|x|`` by the
        interval evaluation of the form and add the corresponding absolute
        error interval to the constant (the absolute-error model the paper
        reports as "more easily implemented and precise enough").
        """
        mag = self.evaluate(lookup).magnitude()
        if math.isinf(mag):
            return LinearForm(self.coeffs, FloatInterval.top())
        e = add_up(mul_up(fmt.rel_err, mag), fmt.abs_err)
        return self.add_error(FloatInterval(-e, e))

    # -- substitution and solving ---------------------------------------------

    def substitute(self, v: VarId, replacement: "LinearForm") -> "LinearForm":
        """Replace variable ``v`` by a linear form (for assignment transfer)."""
        c = self.coeff(v)
        if c.is_const and c.lo == 0.0:
            return self
        rest = LinearForm(
            tuple((w, k) for w, k in self.coeffs if w != v), self.const
        )
        return rest.add(replacement.scale(c))

    def drop_to_interval(
        self, keep: Iterable[VarId], lookup: Callable[[VarId], FloatInterval]
    ) -> "LinearForm":
        """Intervalize every variable not in ``keep`` into the constant."""
        keep_set = set(keep)
        const = self.const
        kept = []
        for v, c in self.coeffs:
            if v in keep_set:
                kept.append((v, c))
            else:
                const = const.add(c.mul(lookup(v)))
        return LinearForm(tuple(kept), const)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"{c!r}*{v}" for v, c in self.coeffs]
        parts.append(repr(self.const))
        return " + ".join(parts)
