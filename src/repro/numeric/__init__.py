"""Numeric substrate: sound directed rounding, intervals, linear forms."""

from .float_utils import BINARY32, BINARY64, FloatFormat
from .intervals import FloatInterval, IntInterval
from .linear_forms import LinearForm

__all__ = [
    "BINARY32",
    "BINARY64",
    "FloatFormat",
    "FloatInterval",
    "IntInterval",
    "LinearForm",
]
