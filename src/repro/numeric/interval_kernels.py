"""Batched FloatInterval lattice kernels over parallel numpy bound planes.

The cell-wise environment lattice (Sect. 6.1) spends its time in tiny
per-cell :class:`~repro.numeric.intervals.FloatInterval` operations.
When two environments differ on many float cells at once — wide loop-head
joins, threshold widening after a big iteration step — the per-cell
Python dispatch dominates.  This module provides the batched
counterparts: each kernel takes the gathered ``lo``/``hi`` float64
planes of the two operand environments and produces the result planes
in a handful of numpy operations.

Bit-identity contract
---------------------

Every kernel is **bit-identical** to the scalar implementation it
replaces, which stays in ``numeric/intervals.py`` as the differential
oracle (``--no-vectorize``).  That property is what lets the
``vectorize`` knob stay out of the checkpoint and serve compat
fingerprints (like ``incremental``), and what keeps incremental slicing
and serve-mode donor replay exact across the two backends.

The scalar lattice ops are pure *picks*: a join selects one of the two
existing bounds, a widening selects a rung of the shared threshold
ladder.  No new floating values are computed, so — unlike the octagon
DBM kernels, whose additions need an outward ``nextafter`` nudge — these
kernels need no directed rounding of their own; the rounding discipline
lives in the bounds they select from, which were produced by the
outward-rounded interval arithmetic.  Preserving bit-identity is then a
matter of replicating Python's exact pick semantics:

* ``min(a, b)`` keeps the *first* argument unless ``b < a`` — on a
  signed-zero tie (``-0.0`` vs ``0.0``) or against a NaN the first
  argument survives.  ``np.minimum``/``np.maximum`` differ (they
  propagate NaN and prefer a canonical zero), so the kernels use
  explicit ``np.where(b < a, b, a)`` formulations instead.
* NaN bounds behave as in scalar code: every comparison is false, so a
  NaN bound never tests as empty (``lo > hi`` is false) and never wins
  a pick.
* The threshold lookups mirror ``bisect`` over the sorted ladder:
  ``searchsorted(side='right') - 1`` is "largest rung <= x" and
  ``searchsorted(side='left')`` is "smallest rung >= x", with NaN and
  out-of-ladder inputs saturating to ∓inf exactly like the scalar
  helpers.
* The canonical empty interval is ``(+inf, -inf)`` and ``is_empty`` is
  ``lo > hi``; ``FloatInterval.of`` normalization (NaN or inverted
  bounds become empty) is replicated where the scalar path applies it
  (meet, narrow).

The counters below feed ``--stats``/``--json``/``report.py``: how many
kernel invocations ran, how many cells they covered, and how many
differing cells fell back to the scalar path while a batch was engaged
(non-float cells, clocked cells, frozen widening cells).
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

__all__ = [
    "batch_includes", "batch_join", "batch_meet", "batch_narrow",
    "batch_widen", "ladder_array", "note_batch", "note_fallback",
    "planes", "reset_stats", "stats",
]

_INF = math.inf

# -- counters (wired into AnalysisResult / --stats / report.py) --------------

_STATS = {"batches": 0, "cells": 0, "fallbacks": 0}


def reset_stats() -> None:
    """Zero the per-run counters (called by ``analyze_program``)."""
    _STATS["batches"] = 0
    _STATS["cells"] = 0
    _STATS["fallbacks"] = 0


def stats() -> Dict[str, int]:
    """Snapshot of the counters: batches, cells batched, scalar
    fallbacks among the differing cells of engaged batches."""
    return dict(_STATS)


def note_batch(cells: int) -> None:
    _STATS["batches"] += 1
    _STATS["cells"] += cells


def note_fallback(cells: int = 1) -> None:
    _STATS["fallbacks"] += cells


# -- plane gathering ---------------------------------------------------------


def planes(intervals: Sequence) -> Tuple[np.ndarray, np.ndarray]:
    """Gather a sequence of FloatIntervals into (lo, hi) float64 planes."""
    n = len(intervals)
    lo = np.fromiter((iv.lo for iv in intervals), dtype=np.float64, count=n)
    hi = np.fromiter((iv.hi for iv in intervals), dtype=np.float64, count=n)
    return lo, hi


# Small identity-keyed cache for the shared threshold ladder: one
# analysis context passes the *same* sorted list to every widening, so
# the float64 conversion is paid once.  Strong references are fine —
# ladders are few and live as long as their AnalysisContext.
_LADDER_CACHE: Dict[int, Tuple[object, np.ndarray]] = {}


def ladder_array(thresholds: Sequence[float]) -> np.ndarray:
    """The threshold ladder as a float64 array (cached per list object)."""
    key = id(thresholds)
    hit = _LADDER_CACHE.get(key)
    if hit is not None and hit[0] is thresholds:
        return hit[1]
    arr = np.asarray(thresholds, dtype=np.float64)
    if len(_LADDER_CACHE) >= 8:
        _LADDER_CACHE.clear()
    _LADDER_CACHE[key] = (thresholds, arr)
    return arr


# -- kernels -----------------------------------------------------------------


def batch_join(a_lo: np.ndarray, a_hi: np.ndarray,
               b_lo: np.ndarray, b_hi: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Element-wise ``FloatInterval.join``: empty yields the other
    operand, else ``(min(a.lo, b.lo), max(a.hi, b.hi))`` with Python's
    first-argument-wins pick semantics."""
    a_empty = a_lo > a_hi
    b_empty = b_lo > b_hi
    lo = np.where(b_lo < a_lo, b_lo, a_lo)
    hi = np.where(b_hi > a_hi, b_hi, a_hi)
    lo = np.where(a_empty, b_lo, np.where(b_empty, a_lo, lo))
    hi = np.where(a_empty, b_hi, np.where(b_empty, a_hi, hi))
    return lo, hi


def batch_meet(a_lo: np.ndarray, a_hi: np.ndarray,
               b_lo: np.ndarray, b_hi: np.ndarray
               ) -> Tuple[np.ndarray, np.ndarray]:
    """Element-wise ``FloatInterval.meet``: either empty yields empty,
    else ``of(max(a.lo, b.lo), min(a.hi, b.hi))`` — ``of`` sends NaN or
    inverted bounds to the canonical empty ``(+inf, -inf)``."""
    a_empty = a_lo > a_hi
    b_empty = b_lo > b_hi
    lo = np.where(b_lo > a_lo, b_lo, a_lo)
    hi = np.where(b_hi < a_hi, b_hi, a_hi)
    empty = (a_empty | b_empty | np.isnan(lo) | np.isnan(hi) | (lo > hi))
    lo = np.where(empty, _INF, lo)
    hi = np.where(empty, -_INF, hi)
    return lo, hi


def _largest_leq_vec(ladder: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Vector mirror of ``intervals._largest_leq``: the largest rung
    <= x, -inf when none qualifies (NaN included — no rung compares)."""
    if ladder.size == 0:
        return np.full_like(x, -_INF)
    idx = np.searchsorted(ladder, x, side="right") - 1
    out = ladder[np.maximum(idx, 0)]
    out = np.where(idx < 0, -_INF, out)
    return np.where(np.isnan(x), -_INF, out)


def _smallest_geq_vec(ladder: np.ndarray, x: np.ndarray) -> np.ndarray:
    """Vector mirror of ``intervals._smallest_geq``: the smallest rung
    >= x, +inf when none qualifies."""
    if ladder.size == 0:
        return np.full_like(x, _INF)
    idx = np.searchsorted(ladder, x, side="left")
    out = ladder[np.minimum(idx, ladder.size - 1)]
    out = np.where(idx >= ladder.size, _INF, out)
    return np.where(np.isnan(x), _INF, out)


def batch_widen(a_lo: np.ndarray, a_hi: np.ndarray,
                b_lo: np.ndarray, b_hi: np.ndarray,
                ladder: Optional[np.ndarray] = None
                ) -> Tuple[np.ndarray, np.ndarray]:
    """Element-wise ``FloatInterval.widen`` with threshold ladder
    (Sect. 7.1.2): an unstable bound jumps to the enclosing rung (or to
    infinity without a ladder); NaN on the unstable side never triggers
    (comparisons are false), exactly as in the scalar code."""
    a_empty = a_lo > a_hi
    b_empty = b_lo > b_hi
    lo_unstable = b_lo < a_lo
    hi_unstable = b_hi > a_hi
    if ladder is None:
        lo_pick = np.full_like(a_lo, -_INF)
        hi_pick = np.full_like(a_hi, _INF)
    else:
        lo_pick = _largest_leq_vec(ladder, b_lo)
        hi_pick = _smallest_geq_vec(ladder, b_hi)
    lo = np.where(lo_unstable, lo_pick, a_lo)
    hi = np.where(hi_unstable, hi_pick, a_hi)
    lo = np.where(a_empty, b_lo, np.where(b_empty, a_lo, lo))
    hi = np.where(a_empty, b_hi, np.where(b_empty, a_hi, hi))
    return lo, hi


def batch_narrow(a_lo: np.ndarray, a_hi: np.ndarray,
                 b_lo: np.ndarray, b_hi: np.ndarray
                 ) -> Tuple[np.ndarray, np.ndarray]:
    """Element-wise ``FloatInterval.narrow``: refine only infinite
    bounds, then ``of``-normalize (the refinement can invert)."""
    a_empty = a_lo > a_hi
    b_empty = b_lo > b_hi
    lo = np.where(a_lo == -_INF, b_lo, a_lo)
    hi = np.where(a_hi == _INF, b_hi, a_hi)
    empty = (a_empty | b_empty | np.isnan(lo) | np.isnan(hi) | (lo > hi))
    lo = np.where(empty, _INF, lo)
    hi = np.where(empty, -_INF, hi)
    return lo, hi


def batch_includes(a_lo: np.ndarray, a_hi: np.ndarray,
                   b_lo: np.ndarray, b_hi: np.ndarray) -> np.ndarray:
    """Element-wise ``FloatInterval.includes``: empty ``other`` is
    always included, empty ``self`` includes nothing, else the bound
    comparison (false against NaN, as in scalar code)."""
    a_empty = a_lo > a_hi
    b_empty = b_lo > b_hi
    ok = (a_lo <= b_lo) & (b_hi <= a_hi)
    return np.where(b_empty, True, np.where(a_empty, False, ok))
