"""Sound directed-rounding primitives on IEEE-754 floats.

The analyzer must over-approximate concrete floating-point semantics
(Sect. 6.2.1 of the paper: "Special care has to be taken in the case of
floating-point values and operations to always perform rounding in the right
direction and to handle special IEEE values such as infinities and NaNs").

CPython floats are IEEE-754 binary64 evaluated with round-to-nearest-even.
We cannot switch the hardware rounding mode from pure Python, so we obtain
*sound* directed rounding by nudging the round-to-nearest result one ulp
outward with :func:`math.nextafter`.  For any exact real ``r`` and its
round-to-nearest image ``n``, the true round-down (resp. round-up) image lies
in ``[nextafter(n, -inf), n]`` (resp. ``[n, nextafter(n, +inf)]``), so the
nudged value is always a sound lower (resp. upper) bound.  The cost is at
most one ulp of precision per abstract operation, which the paper's interval
framework absorbs by construction.

The analyzed programs themselves compute in binary32 or binary64
(round-to-nearest); per-type parameters live in :class:`FloatFormat`.
"""

from __future__ import annotations

import math
import struct
from dataclasses import dataclass

__all__ = [
    "BINARY32",
    "BINARY64",
    "FloatFormat",
    "add_down",
    "add_up",
    "div_down",
    "div_up",
    "is_finite",
    "mul_down",
    "mul_up",
    "next_down",
    "next_up",
    "round_down",
    "round_up",
    "sqrt_down",
    "sqrt_up",
    "sub_down",
    "sub_up",
    "ulp_error_bound",
]

_INF = math.inf


@dataclass(frozen=True)
class FloatFormat:
    """Parameters of an IEEE-754 binary interchange format.

    ``rel_err`` is the greatest relative error of a rounded operation with
    respect to the exact real result (the ``f`` of Sect. 6.2.3's delta
    function): ``2**-precision`` for round-to-nearest.
    ``abs_err`` bounds the absolute error in the subnormal range (half the
    smallest subnormal for round-to-nearest).
    """

    name: str
    precision: int  # significand bits, including the implicit bit
    emax: int
    max_value: float
    min_normal: float
    min_subnormal: float

    @property
    def rel_err(self) -> float:
        return math.ldexp(1.0, -self.precision)

    @property
    def abs_err(self) -> float:
        return self.min_subnormal / 2.0

    def contains(self, x: float) -> bool:
        """Whether finite ``x`` is representable in magnitude (ignoring precision)."""
        return abs(x) <= self.max_value


BINARY32 = FloatFormat(
    name="binary32",
    precision=24,
    emax=127,
    max_value=(2.0 - math.ldexp(1.0, -23)) * math.ldexp(1.0, 127),
    min_normal=math.ldexp(1.0, -126),
    min_subnormal=math.ldexp(1.0, -149),
)

BINARY64 = FloatFormat(
    name="binary64",
    precision=53,
    emax=1023,
    max_value=math.ldexp(1.0, 1023) * (2.0 - math.ldexp(1.0, -52)),
    min_normal=math.ldexp(1.0, -1022),
    min_subnormal=math.ldexp(1.0, -1074),
)


def is_finite(x: float) -> bool:
    return not (math.isinf(x) or math.isnan(x))


def next_up(x: float) -> float:
    """Smallest binary64 float strictly greater than ``x`` (inf maps to inf)."""
    if math.isnan(x) or x == _INF:
        return x
    return math.nextafter(x, _INF)


def next_down(x: float) -> float:
    """Greatest binary64 float strictly less than ``x`` (-inf maps to -inf)."""
    if math.isnan(x) or x == -_INF:
        return x
    return math.nextafter(x, -_INF)


def round_down(x: float) -> float:
    """Sound lower bound for a value whose round-to-nearest image is ``x``."""
    return next_down(x)


def round_up(x: float) -> float:
    """Sound upper bound for a value whose round-to-nearest image is ``x``."""
    return next_up(x)


def _exact_add(a: float, b: float) -> bool:
    """True when ``a + b`` is exact in binary64 (via the TwoSum residual)."""
    s = a + b
    if not is_finite(s):
        return False
    bb = s - a
    err = (a - (s - bb)) + (b - bb)
    return err == 0.0


def add_down(a: float, b: float) -> float:
    """Sound lower bound of the real sum ``a + b``."""
    s = a + b
    if math.isnan(s):
        # inf + -inf: the real sum is unconstrained by these abstract bounds.
        return -_INF
    if is_finite(s) and _exact_add(a, b):
        return s
    return next_down(s)


def add_up(a: float, b: float) -> float:
    """Sound upper bound of the real sum ``a + b``."""
    s = a + b
    if math.isnan(s):
        return _INF
    if is_finite(s) and _exact_add(a, b):
        return s
    return next_up(s)


def sub_down(a: float, b: float) -> float:
    return add_down(a, -b)


def sub_up(a: float, b: float) -> float:
    return add_up(a, -b)


_HAS_FMA = hasattr(math, "fma")


def _exact_mul(a: float, b: float) -> bool:
    """True when ``a * b`` is exact in binary64.

    A conservative (may return False for some exact products) but cheap
    test: returning False merely costs one ulp of outward slack, never
    soundness.
    """
    if a == 0.0 or b == 0.0:
        return True
    p = a * b
    if not is_finite(p) or not is_finite(a) or not is_finite(b):
        return False
    if _HAS_FMA:  # pragma: no cover - Python >= 3.13 only
        return math.fma(a, b, -p) == 0.0
    # Fast conservative path: exact when both operands are smallish
    # integers (covers the common const*const and 2**k scalings).
    if (a == int(a) and b == int(b)
            and abs(a) < 67108864.0 and abs(b) < 67108864.0):
        return abs(p) < 9007199254740992.0  # 2**53
    return False


def mul_down(a: float, b: float) -> float:
    """Sound lower bound of the real product ``a * b``."""
    p = a * b
    if math.isnan(p):
        # 0 * inf. A finite-times-unbounded product is unconstrained below.
        return -_INF
    if _exact_mul(a, b):
        return p
    return next_down(p)


def mul_up(a: float, b: float) -> float:
    """Sound upper bound of the real product ``a * b``."""
    p = a * b
    if math.isnan(p):
        return _INF
    if _exact_mul(a, b):
        return p
    return next_up(p)


def div_down(a: float, b: float) -> float:
    """Sound lower bound of the real quotient ``a / b`` (``b`` nonzero)."""
    if b == 0.0:
        raise ZeroDivisionError("div_down with zero divisor")
    try:
        q = a / b
    except OverflowError:  # pragma: no cover - cannot happen with floats
        q = math.copysign(_INF, a) * math.copysign(1.0, b)
    if math.isnan(q):
        return -_INF
    # Division is exact only in special cases; detect with a multiply-back.
    if is_finite(q) and _exact_mul(q, b) and q * b == a:
        return q
    return next_down(q)


def div_up(a: float, b: float) -> float:
    """Sound upper bound of the real quotient ``a / b`` (``b`` nonzero)."""
    if b == 0.0:
        raise ZeroDivisionError("div_up with zero divisor")
    q = a / b
    if math.isnan(q):
        return _INF
    if is_finite(q) and _exact_mul(q, b) and q * b == a:
        return q
    return next_up(q)


def sqrt_down(x: float) -> float:
    """Sound lower bound of the real square root of ``x >= 0``."""
    if x < 0.0:
        raise ValueError("sqrt_down of negative value")
    r = math.sqrt(x)
    if r * r == x and is_finite(r):
        return r
    return next_down(r)


def sqrt_up(x: float) -> float:
    """Sound upper bound of the real square root of ``x >= 0``."""
    if x < 0.0:
        raise ValueError("sqrt_up of negative value")
    r = math.sqrt(x)
    if r * r == x and is_finite(r):
        return r
    return next_up(r)


def ulp_error_bound(fmt: FloatFormat, magnitude: float) -> float:
    """Absolute rounding-error bound for one round-to-nearest operation.

    For a result of magnitude at most ``magnitude`` in format ``fmt``, the
    absolute error of round-to-nearest is at most
    ``rel_err * magnitude + abs_err`` (the linear-form error model of
    Sect. 6.3, absolute-error variant).
    """
    if math.isinf(magnitude):
        return _INF
    return add_up(mul_up(fmt.rel_err, abs(magnitude)), fmt.abs_err)


def float_to_bits(x: float) -> int:
    """Raw binary64 bit pattern (testing helper)."""
    return struct.unpack("<Q", struct.pack("<d", x))[0]
