"""repro — a reproduction of "A Static Analyzer for Large Safety-Critical
Software" (Blanchet, Cousot, Cousot, Feret, Mauborgne, Mine, Monniaux,
Rival; PLDI 2003): the ASTREE static analyzer.

Public API
----------

* :func:`analyze` / :func:`analyze_program` — run the full refined analyzer
  on C source text (or a lowered IR program) and obtain an
  :class:`AnalysisResult` with alarms, invariants and packing feedback.
* :class:`AnalyzerConfig` — every end-user parameter of Sect. 7
  (thresholds, unrolling, partitioning, packing, domain toggles).
* :func:`analyze_baseline` — the interval-only analyzer the refinement
  started from.
* :mod:`repro.synth` — the generator of periodic synchronous control
  programs standing in for the proprietary program family of Sect. 4.
* :mod:`repro.slicer` — backward/abstract slicing for alarm inspection.

Quickstart
----------

>>> from repro import analyze, AnalyzerConfig
>>> result = analyze('''
...     volatile int sensor;
...     int out;
...     int main(void) {
...         if (sensor > 0) { out = 1000 / sensor; }
...         return 0;
...     }
... ''', config=AnalyzerConfig(input_ranges={"sensor": (0, 100)}))
>>> result.alarm_count
0
"""

from .analysis import AnalysisResult, InvariantStats, analyze, analyze_program
from .baseline import analyze_baseline, refinement_stages
from .config import AnalyzerConfig, baseline_config

__version__ = "1.0.0"

__all__ = [
    "AnalysisResult",
    "AnalyzerConfig",
    "InvariantStats",
    "analyze",
    "analyze_baseline",
    "analyze_program",
    "baseline_config",
    "refinement_stages",
    "__version__",
]
