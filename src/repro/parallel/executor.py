"""Process-based parallel execution of independent work units.

Two dispatch shapes, both following Monniaux's parallelization of the
analyzer:

* **sequences** — a block's top-level statements are partitioned into
  maximal footprint-independent units (see :mod:`.footprints`); each unit
  abstractly executes from the *region pre-state* in a worker process and
  returns a delta, which the parent applies in program order;
* **trace-partition branches** — the two sides of a partitioned ``if``
  each carry their own guarded pre-state to a worker and come back as
  independent flows that the iterator joins as usual.

Determinism: a worker's post-state is encoded as the pointer-diff of its
state against the unpickled pre-state (per cell / octagon pack / boolean
pack / filter site, both directions, plus bottom flags).  The parent
patches its *own* objects with those deltas in unit order, so unchanged
entries keep their physical identity — downstream sharing shortcuts and
diff-based joins behave exactly as in the sequential run, and alarms are
replayed through the parent's collector in program order.  The result is
bit-identical to ``jobs=1``.

*Where* a batch of work units executes is a pluggable
:class:`~repro.parallel.backends.DispatchBackend` (``--dispatch``):
in-process zero-copy (``inline``), a local process pool (``pool``, the
default), or a socket-connected worker fleet with work-stealing and
elastic join/leave (``socket``, :mod:`repro.parallel.remote`).  All
backends share the job protocol above and the ordinal-sorted merge here,
so every backend at every jobs=N is bit-identical to sequential.

Fault tolerance (Monniaux: a distributed analysis must tolerate worker
failure without losing soundness): dispatch failures are *classified*,
not blanket-caught.

* **transport failures** (worker SIGKILL/OOM, socket partition, mid-job
  disconnect — surfaced by the backend as
  :class:`~repro.parallel.backends.BackendUnavailable` with an incident
  kind): the dispatch is retried with exponential backoff against a
  recovered backend; deltas have no parent-side effects until the whole
  dispatch succeeds, so a retry is exactly a re-run.  After the retry
  budget or the run-wide recovery budget is spent, the engine degrades
  to sequential execution (identical results, just slower);
* **pickling errors** (unpicklable state): parallelism is permanently
  disabled and the region runs sequentially;
* **analyzer bugs** (any exception raised by the analysis itself inside
  a worker): re-raised to the caller — a bug must never be masked as a
  silent sequential retry.

Every failure and recovery action is recorded in the shared
:class:`~repro.supervisor.IncidentLog`.  The env knobs
``REPRO_FAULT_WORKER_CRASH`` (path to a marker file: the first worker to
claim it hard-exits, simulating an OOM kill) and
``REPRO_FAULT_WORKER_RAISE`` (raise an AnalysisError in every worker)
inject faults for tests and CI on every out-of-process backend.
"""

from __future__ import annotations

import os
import pickle
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..frontend import ir as I
from ..iterator.alarms import AlarmCollector
from ..iterator.state import AbstractState, set_active_context
from ..memory.environment import MemoryEnv
from ..memory.fmap import PMap
from ..supervisor.incidents import IncidentLog
from .footprints import Footprint, FootprintAnalyzer

__all__ = ["ParallelEngine", "plan_sequence", "PlanSegment",
           "DispatchFailed", "execute_tasks"]


class DispatchFailed(Exception):
    """Internal: a dispatch could not be completed after recovery
    attempts.  ``permanent`` asks the engine to disable parallelism for
    the rest of the run instead of just falling back for one region."""

    def __init__(self, message: str, permanent: bool = False):
        super().__init__(message)
        self.permanent = permanent


# ---------------------------------------------------------------------------
# Partition planning
# ---------------------------------------------------------------------------

@dataclass
class PlanSegment:
    kind: str                                   # 'seq' | 'par'
    start: int                                  # [start, end) into the block
    end: int
    units: Optional[List[Tuple[int, int]]] = None
    unit_fps: Optional[List[Footprint]] = None


def plan_sequence(stmts: Sequence[I.Stmt], fps: Sequence[Footprint],
                  min_weight: int) -> Optional[List[PlanSegment]]:
    """Greedy left-to-right partition of a block into work units.

    A statement conflicting with unit ``k`` coalesces units ``k..last``
    plus itself into one unit: interleaved units are forbidden because
    per-cell last-writer order could not be reproduced by whole-unit
    delta application.  Barrier statements (escaping control flow, clock
    ticks, unresolved effects) flush the open region.  Returns ``None``
    when no segment is worth dispatching.

    A region is dispatched only when it has at least two units heavy
    enough to amortize a worker round-trip (weight >= min_weight / 2
    each) and its total weight reaches ``min_weight``.
    """
    segments: List[PlanSegment] = []
    units: List[Tuple[int, int, Footprint]] = []
    unit_floor = max(1, min_weight // 2)

    def emit_seq(a: int, b: int) -> None:
        if segments and segments[-1].kind == "seq" and segments[-1].end == a:
            segments[-1].end = b
        else:
            segments.append(PlanSegment("seq", a, b))

    def flush() -> None:
        nonlocal units
        weight = sum(u[2].weight for u in units)
        heavy = sum(1 for u in units if u[2].weight >= unit_floor)
        if len(units) >= 2 and heavy >= 2 and weight >= min_weight:
            segments.append(PlanSegment(
                "par", units[0][0], units[-1][1],
                units=[(a, b) for a, b, _ in units],
                unit_fps=[fp for _, _, fp in units]))
        elif units:
            emit_seq(units[0][0], units[-1][1])
        units = []

    for i, (s, fp) in enumerate(zip(stmts, fps)):
        if fp.is_barrier:
            flush()
            emit_seq(i, i + 1)
            continue
        first_conflict = None
        for j, (_, _, ufp) in enumerate(units):
            if ufp.conflicts_with(fp):
                first_conflict = j
                break
        if first_conflict is None:
            units.append((i, i + 1, fp))
        else:
            start = units[first_conflict][0]
            merged = Footprint()
            for _, _, ufp in units[first_conflict:]:
                merged.merge(ufp)
            merged.merge(fp)
            units[first_conflict:] = [(start, i + 1, merged)]
    flush()
    if not any(seg.kind == "par" for seg in segments):
        return None
    return segments


# ---------------------------------------------------------------------------
# State deltas (pointer diffs against a task's pre-state)
# ---------------------------------------------------------------------------

# A delta is (bottom, clock, cells, octs, trees, ells) where each map
# delta is a list of (key, value-or-None); None means "absent on the
# worker side".  ``cells`` is None when the worker state is bottom (its
# cell map is empty by construction of to_bottom()).


def _map_delta(after: PMap, before: PMap) -> List[Tuple]:
    missing = object()
    out = []
    for key in after.diff_keys(before):
        v = after.get(key, missing)
        out.append((key, None if v is missing else v))
    return out


def _state_delta(base: AbstractState, st: AbstractState):
    bottom = st.env.is_bottom
    cells = None if bottom else _map_delta(st.env.cells, base.env.cells)
    return (bottom, st.env.clock,
            cells,
            _map_delta(st.octagons, base.octagons),
            _map_delta(st.dtrees, base.dtrees),
            _map_delta(st.ellipsoids, base.ellipsoids))


def _apply_map_delta(m: PMap, delta) -> PMap:
    for key, v in delta:
        m = m.remove(key) if v is None else m.set(key, v)
    return m


def _apply_delta(ctx, base: AbstractState, delta) -> AbstractState:
    bottom, clock, cells_d, octs_d, trees_d, ells_d = delta
    if bottom:
        env = MemoryEnv(PMap.empty(), clock, bottom=True)
    else:
        env = MemoryEnv(_apply_map_delta(base.env.cells, cells_d), clock)
    return AbstractState(ctx, env,
                         _apply_map_delta(base.octagons, octs_d),
                         _apply_map_delta(base.dtrees, trees_d),
                         _apply_map_delta(base.ellipsoids, ells_d))


def _flow_delta(base: AbstractState, flow) -> Tuple:
    return (_state_delta(base, flow.normal),
            None if flow.brk is None else _state_delta(base, flow.brk),
            None if flow.cont is None else _state_delta(base, flow.cont),
            None if flow.ret is None else _state_delta(base, flow.ret),
            flow.ret_val)


# ---------------------------------------------------------------------------
# Footprint projection: the slice of the state a work unit can touch
# ---------------------------------------------------------------------------

def _projection(ctx, fp: Footprint):
    """Closure of the footprint over domain structure: all cells of every
    touched octagon/boolean pack (guard injection and tree refinement may
    consult any member) and the X/Y/T cells of every touched filter site
    (pre-join ellipsoid reduction reads their intervals)."""
    cids = set(fp.reads) | set(fp.writes)
    packs = fp.read_packs | fp.write_packs
    bpacks = fp.read_bpacks | fp.write_bpacks
    for pid in packs:
        cids.update(ctx.oct_packs.pack(pid).cids)
    for pid in bpacks:
        p = ctx.bool_packs.pack(pid)
        cids.update(p.bool_cids)
        cids.update(p.numeric_cids)
    for site_id in fp.sites:
        site = ctx.filter_sites.site(site_id)
        cids.update((site.x_cid, site.y_cid, site.t_cid))
    return cids, packs, bpacks, set(fp.sites)


def _project_state(ctx, state: AbstractState, proj) -> AbstractState:
    """Restrict a state to a projection.  Sound because the unit only
    ever touches projected entries (footprint over-approximation), and
    lattice operations treat a key absent from both operands exactly as
    one whose operands are physically identical: it stays unchanged —
    which is what the parent-side delta application implements."""
    cids, packs, bpacks, sites = proj
    missing = object()

    def pick(m: PMap, keys):
        items = []
        for k in sorted(keys):
            v = m.get(k, missing)
            if v is not missing:
                items.append((k, v))
        return PMap.from_items(items)

    env = MemoryEnv(pick(state.env.cells, cids), state.env.clock)
    return AbstractState(ctx, env,
                         pick(state.octagons, packs),
                         pick(state.dtrees, bpacks),
                         pick(state.ellipsoids, sites))


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

_WORKER_CTX = None
_WORKER_SIDS: Optional[Dict[int, I.Stmt]] = None
_FORK_CTX = None  # staging slot read by forked children's initializer


def _install_context(ctx) -> None:
    global _WORKER_CTX, _WORKER_SIDS
    _WORKER_CTX = ctx
    set_active_context(ctx)
    # Size this worker's process-global sharing caches (value intern
    # pool, octagon closure memo) the same way the parent did.
    from ..analysis import _configure_sharing

    _configure_sharing(ctx.config)
    index: Dict[int, I.Stmt] = {}
    for fn in ctx.prog.functions.values():
        if fn.body:
            for s in I.iter_stmts(fn.body):
                index[s.sid] = s
    _WORKER_SIDS = index


def _worker_init_fork() -> None:
    _install_context(_FORK_CTX)


def _worker_init_spawn(ctx_blob: bytes) -> None:
    _install_context(pickle.loads(ctx_blob))


def _maybe_inject_fault() -> None:
    """Test/CI fault injection (see module docstring).  The crash marker
    is claimed by unlink, so exactly one worker dies per marker file."""
    marker = os.environ.get("REPRO_FAULT_WORKER_CRASH")
    if marker:
        try:
            os.unlink(marker)
        except OSError:
            pass
        else:
            os._exit(42)  # hard exit: indistinguishable from SIGKILL/OOM
    if os.environ.get("REPRO_FAULT_WORKER_RAISE"):
        from ..errors import AnalysisError

        raise AnalysisError(
            "injected analyzer fault (REPRO_FAULT_WORKER_RAISE)")


def _worker_rss_kib() -> int:
    from ..supervisor.budget import peak_rss_self_kib

    return peak_rss_self_kib()


def execute_tasks(ctx, sid_index: Dict[int, I.Stmt],
                  states: Sequence[AbstractState],
                  tasks: Sequence[Tuple[int, int, List[int], bool]],
                  common: dict, inject_faults: bool = True,
                  worker_label: Optional[str] = None
                  ) -> List[Tuple[int, dict]]:
    """Execute a batch of work units and encode their results as deltas.

    The shared core of every dispatch backend: pool workers call it
    through :func:`_run_tasks` after unpickling their payload, the
    socket worker (:mod:`.remote`) calls it per job frame, and the
    inline backend calls it directly on the projected parent states
    (safe because transfer functions never mutate their inputs — the
    sequential iterator runs on the live states).  ``common`` carries
    the iterator context every task shares: ``fn_stack``, ``bindings``,
    ``budget`` and ``checking``.
    """
    from ..iterator.iterator import Iterator

    if inject_faults:
        _maybe_inject_fault()
    label = worker_label if worker_label is not None else f"pid-{os.getpid()}"
    out = []
    for task_id, state_idx, sids, unit in tasks:
        base = states[state_idx]
        collector = AlarmCollector()
        collector.checking = common["checking"]
        it = Iterator(ctx, collector)
        it._fn_stack = list(common["fn_stack"])
        it.tr.bindings = [dict(frame) for frame in common["bindings"]]
        it._partition_budget = common["budget"]
        ctx.useful_oct_packs.clear()
        ctx.useful_bool_packs.clear()
        stmts = [sid_index[sid] for sid in sids]
        flow = it.exec_block(base, stmts)
        if unit and (flow.brk is not None or flow.cont is not None
                     or flow.ret is not None):
            raise RuntimeError(
                "parallel work unit escaped; the partitioner should have "
                "treated it as a barrier")
        out.append((task_id, {
            "flow": _flow_delta(base, flow),
            "alarms": [(a.kind, a.sid, a.loc, a.message)
                       for a in collector._alarms],
            "useful_oct": set(ctx.useful_oct_packs),
            "useful_bool": set(ctx.useful_bool_packs),
            "widening": it.widening_iterations,
            "executed": it.stmts_executed,
            "skipped": it.stmts_skipped,
            "visits": sorted(it.visit_counts.items()),
            "invariants": sorted(
                (lid, _state_delta(base, inv))
                for lid, inv in it.loop_invariants.items()),
            # Certificate records (repro.certify) in encounter order —
            # unlike "invariants", the order is the stream position the
            # emitter consumes at, so it must never be sorted.
            "cert_invariants": [
                (ordv, _state_delta(base, pf), _state_delta(base, used))
                for ordv, pf, used in it.cert_invariants],
            "worker": label,
            "rss_kib": 0 if worker_label == "inline" else _worker_rss_kib(),
        }))
    return out


def _run_tasks(payload: dict) -> List[Tuple[int, dict]]:
    """Pool/remote worker entry: unpickle the shipped pre-states and run
    the batch against this process's installed context."""
    states = [pickle.loads(blob) for blob in payload["states"]]
    return execute_tasks(_WORKER_CTX, _WORKER_SIDS, states,
                         payload["tasks"], payload)


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class ParallelEngine:
    """Owns the partition plans, the deterministic merge, the dispatch
    retry loop and a pluggable :class:`~repro.parallel.backends
    .DispatchBackend` that decides where batches execute."""

    def __init__(self, ctx, jobs: int,
                 incidents: Optional[IncidentLog] = None,
                 dispatch: Optional[str] = None,
                 workers: Optional[Sequence[str]] = None):
        from .backends import make_backend

        self.ctx = ctx
        self.jobs = max(1, int(jobs))
        self.analyzer = FootprintAnalyzer(ctx)
        self.incidents = incidents if incidents is not None else IncidentLog()
        self._plans: Dict[Tuple, Optional[List[PlanSegment]]] = {}
        self._disabled = False
        self._rebuilds = 0
        self._sid_index: Optional[Dict[int, I.Stmt]] = None
        cfg = ctx.config
        self.dispatch = (dispatch if dispatch is not None
                         else getattr(cfg, "dispatch", "pool")) or "pool"
        fleet = (workers if workers is not None
                 else getattr(cfg, "workers", ()) or ())
        self.backend = make_backend(self.dispatch, self, tuple(fleet))
        # Statistics surfaced through AnalysisResult.
        self.parallel_regions = 0
        self.parallel_tasks = 0
        self.branch_dispatches = 0
        set_active_context(ctx)

    @property
    def stats(self):
        return self.backend.stats

    @property
    def sid_index(self) -> Dict[int, I.Stmt]:
        """sid -> statement over the whole program (the parent-side twin
        of the index workers build in :func:`_install_context`)."""
        if self._sid_index is None:
            index: Dict[int, I.Stmt] = {}
            for fn in self.ctx.prog.functions.values():
                if fn.body:
                    for s in I.iter_stmts(fn.body):
                        index[s.sid] = s
            self._sid_index = index
        return self._sid_index

    # -- lifecycle -------------------------------------------------------------

    def close(self) -> None:
        self.backend.close()

    def shutdown(self, reason: str) -> None:
        """Externally requested stop (budget trip): free the workers and
        run the rest of the analysis sequentially — results identical."""
        self._disable(reason)

    def _disable(self, reason: str) -> None:
        if not self._disabled:
            self._disabled = True
            self.incidents.record("parallel-disabled",
                                  action="sequential-fallback",
                                  detail=reason)
        self.backend.close()

    # -- dispatch --------------------------------------------------------------

    def _dispatch(self, it, bases: List[AbstractState],
                  tasks: List[Tuple[int, int, List[int], bool]]) -> List[dict]:
        """Run one batch of tasks, recovering from transport failures.

        Retries re-run the *whole* batch: workers have no parent-visible
        side effects, so a re-run is exactly a fresh dispatch and the
        merged result stays bit-identical.  Raises :class:`DispatchFailed`
        when recovery is exhausted; analyzer exceptions raised inside a
        worker propagate unchanged.
        """
        from .backends import BackendUnavailable, StateNotPicklable

        cfg = self.ctx.config
        retries = max(0, getattr(cfg, "dispatch_retries", 2))
        backoff = max(0.0, getattr(cfg, "retry_backoff_s", 0.05))
        max_rebuilds = max(0, getattr(cfg, "max_pool_rebuilds", 3))
        common = {
            "fn_stack": list(it._fn_stack),
            "bindings": [dict(frame) for frame in it.tr.bindings],
            "budget": it._partition_budget,
            "checking": it.alarms.checking,
        }
        attempt = 0
        while True:
            try:
                return self.backend.run_batch(bases, tasks, common)
            except BackendUnavailable as exc:
                self.backend.recover()
                self._rebuilds += 1
                attempt += 1
                out_of_budget = (attempt > retries
                                 or self._rebuilds > max_rebuilds)
                self.incidents.record(
                    exc.kind,
                    action=("gave-up" if out_of_budget
                            else f"retry-{attempt}"),
                    detail=(f"{exc.detail} ({len(tasks)} task(s)); "
                            f"backend recovery {self._rebuilds}"))
                if out_of_budget:
                    raise DispatchFailed(
                        f"{exc.kind} exhausted the retry budget "
                        f"({attempt - 1} retries, {self._rebuilds} "
                        f"backend recoveries)",
                        permanent=self._rebuilds > max_rebuilds)
                time.sleep(backoff * (2 ** (attempt - 1)))
            except StateNotPicklable as exc:
                self.incidents.record("pickling-error",
                                      action="sequential-fallback",
                                      detail=str(exc))
                raise DispatchFailed(str(exc), permanent=True)

    def _merge_stats(self, it, base: AbstractState, res: dict) -> None:
        for kind, sid, loc, msg in res["alarms"]:
            it.alarms.report(kind, sid, loc, msg)
        self.ctx.useful_oct_packs.update(res["useful_oct"])
        self.ctx.useful_bool_packs.update(res["useful_bool"])
        it.widening_iterations += res["widening"]
        it.stmts_executed += res["executed"]
        it.stmts_skipped += res["skipped"]
        for sid, n in res["visits"]:
            it.visit_counts[sid] = it.visit_counts.get(sid, 0) + n
        for lid, delta in res["invariants"]:
            inv = _apply_delta(self.ctx, base, delta)
            prev = it.loop_invariants.get(lid)
            it.loop_invariants[lid] = inv if prev is None else prev.join(inv)
        # .get(): socket workers running an older protocol may omit the
        # certificate stream (certify off ships an empty list anyway).
        for ordv, pf_d, used_d in res.get("cert_invariants", ()):
            it.cert_invariants.append(
                (ordv, _apply_delta(self.ctx, base, pf_d),
                 _apply_delta(self.ctx, base, used_d)))

    def _flow_from(self, base: AbstractState, delta):
        from ..iterator.iterator import Flow

        normal_d, brk_d, cont_d, ret_d, ret_val = delta
        return Flow(
            normal=_apply_delta(self.ctx, base, normal_d),
            brk=None if brk_d is None else _apply_delta(self.ctx, base, brk_d),
            cont=(None if cont_d is None
                  else _apply_delta(self.ctx, base, cont_d)),
            ret=None if ret_d is None else _apply_delta(self.ctx, base, ret_d),
            ret_val=ret_val,
        )

    # -- iterator hooks --------------------------------------------------------

    def try_exec_sequence(self, it, state: AbstractState,
                          stmts: Sequence[I.Stmt]):
        """Partitioned execution of a block; None defers to sequential."""
        if self._disabled or self.jobs < 2:
            return None
        plan = self._plan_for(it, stmts)
        if plan is None:
            return None
        from ..iterator.iterator import Flow

        flow = Flow(normal=state)
        for seg in plan:
            for i in range(seg.start, seg.end) if seg.kind == "seq" else ():
                if flow.normal.is_bottom:
                    return flow
                sub = it.exec_stmt(flow.normal, stmts[i])
                flow = _fold_flow(flow, sub)
            if seg.kind != "par":
                continue
            if flow.normal.is_bottom:
                return flow
            out = self._run_region(it, flow, stmts, seg)
            if out is None:  # dispatch failure: fall back mid-block
                for i in range(seg.start, seg.end):
                    if flow.normal.is_bottom:
                        return flow
                    sub = it.exec_stmt(flow.normal, stmts[i])
                    flow = _fold_flow(flow, sub)
            else:
                flow = out
        return flow

    def _run_region(self, it, flow, stmts, seg: PlanSegment):
        base = flow.normal
        # Each unit ships only its footprint's slice of the state: job
        # payloads stay small no matter how large the program grows.
        # Serialization (where needed) is the backend's business — the
        # inline backend runs on these projections directly.
        bases = [
            _project_state(self.ctx, base, self._projection_for(seg, ti))
            for ti in range(len(seg.units))
        ]
        tasks = [
            (ti, ti, [stmts[i].sid for i in range(a, b)], True)
            for ti, (a, b) in enumerate(seg.units)
        ]
        try:
            results = self._dispatch(it, bases, tasks)
        except DispatchFailed as exc:
            # Worker-death recovery exhausted: run this region inline;
            # permanent failures disable parallelism for the whole run.
            # Analyzer exceptions raised inside a worker are NOT caught
            # here — they propagate to the caller unchanged.
            if exc.permanent:
                self._disable(str(exc))
            return None
        self.parallel_regions += 1
        self.parallel_tasks += len(tasks)
        cur = flow.normal
        for res in results:
            if cur.is_bottom:
                # Sequential execution would never have reached the
                # remaining units: drop their results entirely.
                break
            # Invariant deltas are rebuilt against the composite *before*
            # this unit's writes land: cells outside the unit's footprint
            # must show the values earlier units gave them, exactly as in
            # the sequential snapshot.
            self._merge_stats(it, cur, res)
            cur = _apply_delta(self.ctx, cur, res["flow"][0])
        from ..iterator.iterator import Flow

        return Flow(normal=cur, brk=flow.brk, cont=flow.cont, ret=flow.ret,
                    ret_val=flow.ret_val)

    def _projection_for(self, seg: PlanSegment, ti: int):
        key = ("proj", id(seg), ti)
        proj = self._plans.get(key)
        if proj is None:
            proj = _projection(self.ctx, seg.unit_fps[ti])
            self._plans[key] = proj
        return proj

    def try_exec_branches(self, it, t_task, f_task):
        """Run the two sides of a trace-partition split in parallel.

        Unlike sequence units the two branches are *alternatives*: no
        conflict analysis is needed, only resolvability (a worker must
        not grow the cell table) and enough weight to pay for dispatch.
        """
        if self._disabled or self.jobs < 2:
            return None
        t_state, t_stmts = t_task
        f_state, f_stmts = f_task
        if t_state.is_bottom or f_state.is_bottom:
            return None  # one side is free: not worth a round-trip
        fps = self._branch_footprints(it, t_stmts, f_stmts)
        if fps is None:
            return None
        tasks = [(0, 0, [s.sid for s in t_stmts], False),
                 (1, 1, [s.sid for s in f_stmts], False)]
        try:
            res_t, res_f = self._dispatch(it, [t_state, f_state], tasks)
        except DispatchFailed as exc:
            if exc.permanent:
                self._disable(str(exc))
            return None
        self.branch_dispatches += 1
        self.parallel_tasks += 2
        # Program order: the sequential iterator analyzes the then-side
        # first, so its alarms replay first.
        self._merge_stats(it, t_state, res_t)
        self._merge_stats(it, f_state, res_f)
        return (self._flow_from(t_state, res_t["flow"]),
                self._flow_from(f_state, res_f["flow"]))

    # -- plans -----------------------------------------------------------------

    def _bindings_key(self, it) -> Tuple:
        return tuple(sorted(
            (uid, repr(lv))
            for frame in it.tr.bindings for uid, lv in frame.items()))

    def _plan_for(self, it, stmts) -> Optional[List[PlanSegment]]:
        key = (stmts[0].sid, stmts[-1].sid, len(stmts),
               self._bindings_key(it))
        if key in self._plans:
            return self._plans[key]
        fps = [self.analyzer.stmt_footprint(s, it.tr.bindings)
               for s in stmts]
        plan = plan_sequence(stmts, fps,
                             self.ctx.config.parallel_min_stmts)
        self._plans[key] = plan
        return plan

    def _branch_footprints(self, it, t_stmts, f_stmts) -> Optional[int]:
        """Combined weight of both branches, or None if undispatchable."""
        key = ("branch",
               t_stmts[0].sid if t_stmts else -1, len(t_stmts),
               f_stmts[0].sid if f_stmts else -1, len(f_stmts),
               self._bindings_key(it))
        if key in self._plans:
            return self._plans[key]
        weight = 0
        ok = True
        for s in list(t_stmts) + list(f_stmts):
            fp = self.analyzer.stmt_footprint(s, it.tr.bindings)
            if fp.unresolved:
                ok = False
                break
            weight += fp.weight
        result = (weight if ok
                  and weight >= self.ctx.config.parallel_min_stmts else None)
        self._plans[key] = result
        return result


def _fold_flow(flow, sub):
    from ..iterator.iterator import Flow, _join_opt, _join_opt_val

    return Flow(
        normal=sub.normal,
        brk=_join_opt(flow.brk, sub.brk),
        cont=_join_opt(flow.cont, sub.cont),
        ret=_join_opt(flow.ret, sub.ret),
        ret_val=_join_opt_val(flow.ret_val, sub.ret_val),
    )
