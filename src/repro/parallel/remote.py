"""Socket-distributed dispatch: remote workers and the parent backend.

A worker is a standalone process (``python -m repro.parallel.remote
--listen HOST:PORT`` or ``unix:PATH``; also ``repro worker``) serving
one analyzer connection at a time over length-prefixed JSON frames
(:mod:`repro.ipc.frames` — the same framing the serve-mode supervisor
speaks to its job worker).  Pickled payloads travel base64-encoded
inside the frames, so the wire stays a pure frame stream and framing
errors are distinguishable from payload corruption.

Protocol (version :data:`REMOTE_PROTOCOL_VERSION`)::

    -> {"op": "hello", "version": N, "context": b64(pickle(ctx))}
    <- {"ok": true, "version": N, "pid": P}      (or ok=false: mismatch)
    -> {"op": "run", "task": i, "payload": b64(pickle(job))}
    <- {"ok": true, "task": i, "results": b64(pickle(out)),
        "rss_kib": K}                            (or ok=false: analyzer
                                                  exception, re-raised
                                                  verbatim by the parent)
    -> {"op": "ping"} / {"op": "shutdown"}

The job payload is exactly what :func:`repro.parallel.executor._run_tasks`
consumes, one task per frame — small frames are what make work-stealing
meaningful.  The parent (:class:`SocketBackend`) keeps a per-worker task
queue (round-robin ``tasks[i::n]``), and an idle worker *steals from the
tail* of the longest peer queue.  Stealing, retries and elastic
membership only decide **where** a task runs; results are merged by task
ordinal in the engine, so any fleet shape stays bit-identical to the
sequential analysis.

Failure handling extends the pool backend's crash taxonomy to the
network: a spawned worker whose process died is a ``worker-crash``
(classified via :func:`repro.fuzz.triage.crash_signature` over its
stderr tail, like serve-mode workers); a connection that drops with a
job in flight is a ``worker-disconnect`` (the job is retried once on a
fresh worker); a drop with no job in flight — or an unreachable fleet —
is a ``worker-partition``; a handshake version mismatch excludes the
worker permanently (``worker-version-mismatch``).  Lost workers rejoin
elastically: every address is re-dialled on a seeded
:class:`~repro.supervisor.restart.RestartPolicy` backoff, and a worker
that comes (back) up joins the fleet at the next batch boundary.

Chaos knobs (workers only, never the analyzer process):

* ``REPRO_FAULT_WORKER_CRASH`` / ``REPRO_FAULT_WORKER_RAISE`` — shared
  with the pool backend (see :func:`executor._maybe_inject_fault`).
* ``REPRO_FAULT_REMOTE_CLOSE`` — marker file; the worker that claims it
  (by unlink) drops the connection mid-job without replying: a network
  partition from the parent's point of view.
* ``REPRO_FAULT_REMOTE_SLOW_S`` — sleep this many seconds before each
  job (makes a worker steal-bait for the scheduler tests).
* ``REPRO_FAULT_REMOTE_VERSION`` — advertise this protocol version
  instead of the real one (handshake-mismatch tests).
"""

from __future__ import annotations

import base64
import os
import pickle
import select
import socket as socketlib
import subprocess
import sys
import threading
import time
from collections import deque
from typing import Dict, List, Optional, Sequence, Tuple

from ..ipc.frames import FrameBuffer, ProtocolError, encode_frame, \
    recv_frame, send_frame
from .backends import BackendUnavailable, DispatchBackend, StateNotPicklable

__all__ = ["REMOTE_PROTOCOL_VERSION", "SocketBackend", "main",
           "parse_worker_addr"]

REMOTE_PROTOCOL_VERSION = 1

_LISTEN_MARKER = "listening on "


# ---------------------------------------------------------------------------
# Addresses
# ---------------------------------------------------------------------------

def parse_worker_addr(addr: str) -> Tuple[str, object]:
    """``HOST:PORT`` -> ("tcp", (host, port)); ``unix:PATH`` -> ("unix",
    path)."""
    if addr.startswith("unix:"):
        path = addr[len("unix:"):]
        if not path:
            raise ValueError(f"bad worker address {addr!r}: empty unix path")
        return "unix", path
    host, sep, port = addr.rpartition(":")
    if not sep or not host:
        raise ValueError(f"bad worker address {addr!r} "
                         f"(expected HOST:PORT or unix:PATH)")
    try:
        return "tcp", (host, int(port))
    except ValueError:
        raise ValueError(f"bad worker address {addr!r}: port is not a number")


def _format_addr(kind: str, target) -> str:
    if kind == "unix":
        return f"unix:{target}"
    host, port = target[0], target[1]
    return f"{host}:{port}"


def _connect(addr: str, timeout_s: float) -> socketlib.socket:
    kind, target = parse_worker_addr(addr)
    if kind == "unix":
        sock = socketlib.socket(socketlib.AF_UNIX)
    else:
        sock = socketlib.socket(socketlib.AF_INET)
    sock.settimeout(timeout_s)
    try:
        sock.connect(target)
    except OSError:
        sock.close()
        raise
    if kind == "tcp":
        sock.setsockopt(socketlib.IPPROTO_TCP, socketlib.TCP_NODELAY, 1)
    return sock


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------

def _advertised_version() -> int:
    fake = os.environ.get("REPRO_FAULT_REMOTE_VERSION")
    return int(fake) if fake else REMOTE_PROTOCOL_VERSION


def _claim_marker(env_var: str) -> bool:
    """Marker-file fault knob, claimed by unlink so exactly one worker
    in a fleet acts on it (same discipline as the pool crash knob)."""
    marker = os.environ.get(env_var)
    if not marker:
        return False
    try:
        os.unlink(marker)
    except OSError:
        return False
    return True


def _serve_connection(conn: socketlib.socket) -> bool:
    """Serve one analyzer connection; return True iff asked to shut
    down (False: go back to accepting — the parent may reconnect)."""
    rfile = conn.makefile("rb")
    wfile = conn.makefile("wb")
    installed = False
    try:
        while True:
            try:
                msg = recv_frame(rfile)
            except ProtocolError:
                return False  # parent died mid-write
            if msg is None:
                return False  # clean EOF: parent hung up
            op = msg.get("op")
            if op == "shutdown":
                send_frame(wfile, {"ok": True})
                return True
            if op == "ping":
                send_frame(wfile, {"ok": True, "pid": os.getpid(),
                                   "version": _advertised_version()})
            elif op == "hello":
                version = _advertised_version()
                if msg.get("version") != version:
                    send_frame(wfile, {
                        "ok": False, "version": version,
                        "error": (f"protocol version mismatch (worker "
                                  f"speaks {version}, parent sent "
                                  f"{msg.get('version')})")})
                    return False
                from . import executor

                ctx = pickle.loads(base64.b64decode(msg["context"]))
                executor._install_context(ctx)
                installed = True
                send_frame(wfile, {"ok": True, "version": version,
                                   "pid": os.getpid()})
            elif op == "run":
                if not installed:
                    send_frame(wfile, {"ok": False, "task": msg.get("task"),
                                       "error_class": "ProtocolError",
                                       "error": "run before hello"})
                    continue
                slow = float(os.environ.get("REPRO_FAULT_REMOTE_SLOW_S",
                                            "0") or 0.0)
                if slow > 0:
                    time.sleep(slow)
                if _claim_marker("REPRO_FAULT_REMOTE_CLOSE"):
                    return False  # simulated partition: vanish mid-job
                _run_job(wfile, msg)
            else:
                send_frame(wfile, {"ok": False,
                                   "error": f"unknown op {op!r}"})
    except (BrokenPipeError, ConnectionResetError, OSError):
        return False
    finally:
        for f in (wfile, rfile):
            try:
                f.close()
            except OSError:
                pass


def _run_job(wfile, msg: dict) -> None:
    from ..supervisor.budget import peak_rss_self_kib
    from . import executor

    task = msg.get("task")
    payload = pickle.loads(base64.b64decode(msg["payload"]))
    try:
        out = executor._run_tasks(payload)
    except Exception as exc:  # analyzer bug: ship it back verbatim
        import traceback

        traceback.print_exc()
        try:
            exc_b64 = base64.b64encode(
                pickle.dumps(exc, pickle.HIGHEST_PROTOCOL)).decode("ascii")
        except Exception:
            exc_b64 = None
        send_frame(wfile, {"ok": False, "task": task,
                           "error_class": type(exc).__name__,
                           "error": str(exc), "exc": exc_b64})
        return
    blob = base64.b64encode(
        pickle.dumps(out, pickle.HIGHEST_PROTOCOL)).decode("ascii")
    send_frame(wfile, {"ok": True, "task": task, "results": blob,
                       "rss_kib": peak_rss_self_kib()})


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Worker entry point: bind, announce, and serve analyzers forever
    (or once, with ``--once``)."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="repro-worker",
        description="Socket dispatch worker for the parallel fixpoint "
                    "engine (repro analyze --dispatch socket).")
    ap.add_argument("--listen", required=True, metavar="HOST:PORT|unix:PATH",
                    help="address to listen on (port 0 picks a free port; "
                         "the chosen address is printed on stdout)")
    ap.add_argument("--once", action="store_true",
                    help="serve a single connection, then exit")
    args = ap.parse_args(argv)

    kind, target = parse_worker_addr(args.listen)
    if kind == "unix":
        try:
            os.unlink(target)
        except OSError:
            pass
        srv = socketlib.socket(socketlib.AF_UNIX)
        srv.bind(target)
    else:
        srv = socketlib.socket(socketlib.AF_INET)
        srv.setsockopt(socketlib.SOL_SOCKET, socketlib.SO_REUSEADDR, 1)
        srv.bind(target)
        target = srv.getsockname()[:2]
    srv.listen(1)
    print(f"repro-worker {_LISTEN_MARKER}{_format_addr(kind, target)}",
          flush=True)
    try:
        while True:
            conn, _peer = srv.accept()
            if kind == "tcp":
                # Without this, large multi-segment replies stall on
                # Nagle + delayed-ACK (~40ms per frame boundary).
                conn.setsockopt(socketlib.IPPROTO_TCP,
                                socketlib.TCP_NODELAY, 1)
            try:
                stop = _serve_connection(conn)
            finally:
                try:
                    conn.close()
                except OSError:
                    pass
            if stop or args.once:
                return 0
    except KeyboardInterrupt:  # pragma: no cover - interactive use
        return 0
    finally:
        srv.close()
        if kind == "unix":
            try:
                os.unlink(target)
            except OSError:
                pass


# ---------------------------------------------------------------------------
# Parent side
# ---------------------------------------------------------------------------

class _LocalProc:
    """A locally auto-spawned worker process.  Its stderr is pumped into
    a bounded tail for crash-signature classification, mirroring the
    serve-mode WorkerHandle."""

    def __init__(self, proc: subprocess.Popen):
        self.proc = proc
        self._tail: deque = deque(maxlen=200)
        self._pump = threading.Thread(target=self._drain, daemon=True,
                                      name="dispatch-worker-stderr")
        self._pump.start()

    def _drain(self) -> None:
        try:
            for line in self.proc.stderr:
                self._tail.append(line)
        except (OSError, ValueError):  # pragma: no cover - pipe torn down
            pass

    def alive(self) -> bool:
        return self.proc.poll() is None

    def stderr_tail(self) -> str:
        self._pump.join(timeout=2.0)
        return b"".join(self._tail).decode("utf-8", "replace")

    def read_listen_addr(self, deadline: float) -> Optional[str]:
        """Read the worker's ``listening on ADDR`` stdout line."""
        fd = self.proc.stdout.fileno()
        data = b""
        while b"\n" not in data:
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                return None
            ready, _, _ = select.select([fd], [], [], min(0.2, remaining))
            if not ready:
                continue
            chunk = os.read(fd, 4096)
            if not chunk:
                return None
            data += chunk
        line = data.split(b"\n", 1)[0].decode("utf-8", "replace")
        pos = line.find(_LISTEN_MARKER)
        if pos < 0:
            return None
        return line[pos + len(_LISTEN_MARKER):].strip()

    def stop(self) -> None:
        if self.proc.poll() is None:
            try:
                self.proc.terminate()
                self.proc.wait(timeout=2.0)
            except (OSError, subprocess.TimeoutExpired):
                try:
                    self.proc.kill()
                    self.proc.wait(timeout=2.0)
                except (OSError, subprocess.TimeoutExpired):
                    pass
        for stream in (self.proc.stdout, self.proc.stderr):
            try:
                stream.close()
            except OSError:
                pass


class _WorkerLink:
    """One live connection in the fleet: its socket, frame reassembly
    buffer, task queue and the single in-flight task ordinal."""

    def __init__(self, addr: str, sock: socketlib.socket, index: int,
                 buf: FrameBuffer):
        self.addr = addr
        self.sock = sock
        self.index = index
        self.buf = buf
        self.queue: deque = deque()
        self.inflight: Optional[int] = None

    def fileno(self) -> int:
        return self.sock.fileno()

    def close(self) -> None:
        try:
            self.sock.close()
        except OSError:
            pass


class SocketBackend(DispatchBackend):
    """Distributed dispatch over a socket worker fleet.

    With an explicit ``--workers`` fleet the backend dials the given
    addresses; with none it auto-spawns ``jobs`` local workers on
    loopback (functionally a process pool, but exercising the full wire
    path).  Membership is elastic: unreachable workers are skipped and
    re-dialled with seeded exponential backoff at batch boundaries, so
    a worker started late simply joins the next batch.
    """

    name = "socket"

    def __init__(self, engine, workers: Tuple[str, ...] = ()):
        super().__init__(engine)
        cfg = engine.ctx.config
        self._configured: List[str] = list(workers)
        self._spawn_local = not self._configured
        self._spawned: Dict[str, _LocalProc] = {}
        self._links: Dict[str, _WorkerLink] = {}
        self._excluded: Dict[str, str] = {}  # addr -> why (permanent)
        self._policies: Dict[str, object] = {}
        self._retry_at: Dict[str, float] = {}
        self._down_logged: set = set()
        self._ctx_b64: Optional[str] = None
        self._connect_timeout = max(
            0.1, float(getattr(cfg, "worker_connect_timeout_s", 5.0)))
        self._version = REMOTE_PROTOCOL_VERSION
        self._pending_spawn: List[_LocalProc] = []
        if self._spawn_local and (os.cpu_count() or 1) > 1:
            # Local worker interpreters take a few hundred ms to boot
            # (imports dominate); starting them here overlaps that with
            # the analysis prefix instead of letting the first dispatched
            # batch absorb the whole cold start.  Only worth it with a
            # spare core — on a single CPU the boot would steal cycles
            # from the prefix instead of overlapping it.
            self._start_spawn()

    # -- fleet membership ------------------------------------------------------

    def _context_b64(self) -> str:
        if self._ctx_b64 is None:
            try:
                blob = pickle.dumps(self.engine.ctx, pickle.HIGHEST_PROTOCOL)
            except (pickle.PicklingError, TypeError, AttributeError) as exc:
                raise StateNotPicklable(
                    f"analysis context not picklable: {exc}")
            self._ctx_b64 = base64.b64encode(blob).decode("ascii")
        return self._ctx_b64

    def _start_spawn(self) -> None:
        env = dict(os.environ)
        src_root = os.path.dirname(os.path.dirname(
            os.path.dirname(os.path.abspath(__file__))))
        env["PYTHONPATH"] = os.pathsep.join(
            p for p in (src_root, env.get("PYTHONPATH")) if p)
        for _ in range(max(1, self.engine.jobs)):
            self._pending_spawn.append(_LocalProc(subprocess.Popen(
                [sys.executable, "-m", "repro.parallel.remote",
                 "--listen", "127.0.0.1:0"],
                stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)))

    def _ensure_spawned(self) -> None:
        if not self._spawn_local or self._spawned:
            return
        if not self._pending_spawn:
            self._start_spawn()
        procs, self._pending_spawn = self._pending_spawn, []
        deadline = time.monotonic() + 60.0
        for lp in procs:
            addr = lp.read_listen_addr(deadline)
            if addr is None:
                tail = lp.stderr_tail()
                lp.stop()
                for other in procs:
                    if other is not lp:
                        other.stop()
                self._spawned.clear()
                raise BackendUnavailable(
                    "worker-crash",
                    f"spawned dispatch worker failed to listen: "
                    f"{tail.strip() or 'no stderr'}")
            self._configured.append(addr)
            self._spawned[addr] = lp

    def _policy_for(self, addr: str):
        from ..supervisor.restart import RestartPolicy

        policy = self._policies.get(addr)
        if policy is None:
            policy = RestartPolicy(base_s=0.05, cap_s=2.0,
                                   seed=self._configured.index(addr))
            self._policies[addr] = policy
        return policy

    def _refresh_fleet(self) -> None:
        """Elastic join: (re)dial every configured address that is not
        connected, excluded, or still inside its backoff window."""
        now = time.monotonic()
        for index, addr in enumerate(self._configured):
            if addr in self._links or addr in self._excluded:
                continue
            if now < self._retry_at.get(addr, 0.0):
                continue
            self._try_join(addr, index)

    def _try_join(self, addr: str, index: int) -> None:
        policy = self._policy_for(addr)
        try:
            sock = _connect(addr, self._connect_timeout)
            hello = encode_frame({"op": "hello", "version": self._version,
                                  "context": self._context_b64()})
            sock.sendall(hello)
            self.stats.bytes_sent += len(hello)
            reply, buf = self._recv_blocking(
                sock, time.monotonic() + max(10.0, self._connect_timeout))
        except StateNotPicklable:
            raise
        except (OSError, ProtocolError, TimeoutError) as exc:
            self._retry_at[addr] = time.monotonic() + policy.next_delay()
            if addr not in self._down_logged:
                self._down_logged.add(addr)
                self.engine.incidents.record(
                    "worker-unreachable", action="deferred-join",
                    detail=f"worker {addr}: {exc}")
            return
        if not reply.get("ok"):
            try:
                sock.close()
            except OSError:
                pass
            self._excluded[addr] = reply.get("error", "handshake rejected")
            self.engine.incidents.record(
                "worker-version-mismatch", action="excluded",
                detail=f"worker {addr}: {self._excluded[addr]}")
            return
        sock.setblocking(True)
        self._links[addr] = _WorkerLink(addr, sock, index, buf)
        self._down_logged.discard(addr)
        policy.reset()
        self.stats.workers_joined += 1

    @staticmethod
    def _recv_blocking(sock: socketlib.socket,
                       deadline: float) -> Tuple[dict, FrameBuffer]:
        """Receive one frame with a deadline (handshake only; batches
        use the select loop)."""
        buf = FrameBuffer()
        while True:
            msg = buf.next_frame()
            if msg is not None:
                return msg, buf
            remaining = deadline - time.monotonic()
            if remaining <= 0:
                raise TimeoutError("worker handshake timed out")
            ready, _, _ = select.select([sock], [], [], min(0.2, remaining))
            if not ready:
                continue
            chunk = sock.recv(1 << 16)
            if not chunk:
                raise ProtocolError("worker closed during handshake")
            buf.feed(chunk)

    # -- batch execution -------------------------------------------------------

    def run_batch(self, bases, tasks, common):
        t0 = time.perf_counter()
        try:
            blobs = [pickle.dumps(b, pickle.HIGHEST_PROTOCOL)
                     for b in bases]
            frames = []
            for i, (tid, si, sids, unit) in enumerate(tasks):
                payload = dict(common, states=[blobs[si]],
                               tasks=[(tid, 0, sids, unit)])
                frames.append(encode_frame({
                    "op": "run", "task": i,
                    "payload": base64.b64encode(pickle.dumps(
                        payload, pickle.HIGHEST_PROTOCOL)).decode("ascii")}))
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise StateNotPicklable(f"state not picklable: {exc}")
        finally:
            self.stats.serialize_s += time.perf_counter() - t0
        self._ensure_spawned()
        self._refresh_fleet()
        if not self._links:
            raise BackendUnavailable(
                "worker-partition",
                f"no dispatch workers reachable "
                f"(fleet: {', '.join(self._configured) or 'empty'})")
        return self._harvest(self._event_loop(tasks, frames))

    def _live(self) -> List[_WorkerLink]:
        return [self._links[a] for a in self._configured
                if a in self._links]

    def _event_loop(self, tasks, frames: List[bytes]) -> List[dict]:
        live = self._live()
        n = len(live)
        for k, link in enumerate(live):
            link.queue = deque(range(k, len(tasks), n))
            link.inflight = None
        attempts = [0] * len(tasks)
        results: Dict[int, dict] = {}
        for link in list(live):
            self._feed(link, frames, attempts)
        while len(results) < len(tasks):
            live = self._live()
            if not live:
                raise BackendUnavailable(
                    "worker-partition", "all dispatch workers lost mid-batch")
            ready, _, _ = select.select(live, [], [], 0.5)
            for link in ready:
                if link.addr in self._links:  # not killed by an earlier peer
                    self._pump(link, results, frames, attempts)
        return [results[i] for i in range(len(tasks))]

    def _feed(self, link: _WorkerLink, frames: List[bytes],
              attempts: List[int]) -> None:
        """Give an idle link its next task: own queue first, else steal
        from the tail of the longest peer queue."""
        if self._links.get(link.addr) is not link or link.inflight is not None:
            return
        if link.queue:
            i = link.queue.popleft()
        else:
            victim = None
            for peer in self._live():
                if peer is link or not peer.queue:
                    continue
                if victim is None or (len(peer.queue), -peer.index) > \
                        (len(victim.queue), -victim.index):
                    victim = peer
            if victim is None:
                return
            i = victim.queue.pop()
            self.stats.jobs_stolen += 1
        try:
            link.sock.sendall(frames[i])
        except OSError as exc:
            link.inflight = i  # count it as in flight so it is retried
            self._on_death(link, f"send failed: {exc}", frames, attempts)
            return
        link.inflight = i
        self.stats.bytes_sent += len(frames[i])
        self.stats.jobs_dispatched += 1

    def _pump(self, link: _WorkerLink, results: Dict[int, dict],
              frames: List[bytes], attempts: List[int]) -> None:
        try:
            chunk = link.sock.recv(1 << 16)
        except OSError as exc:
            self._on_death(link, f"recv failed: {exc}", frames, attempts)
            return
        if not chunk:
            self._on_death(link, "connection closed", frames, attempts)
            return
        self.stats.bytes_received += len(chunk)
        try:
            link.buf.feed(chunk)
            msgs = list(link.buf.frames())
        except ProtocolError as exc:
            self._on_death(link, f"garbage frame: {exc}", frames, attempts)
            return
        for msg in msgs:
            self._on_reply(link, msg, results, frames, attempts)

    def _on_reply(self, link: _WorkerLink, msg: dict,
                  results: Dict[int, dict], frames: List[bytes],
                  attempts: List[int]) -> None:
        i = msg.get("task")
        link.inflight = None
        if not msg.get("ok"):
            raise _rebuild_exception(msg)
        t0 = time.perf_counter()
        out = pickle.loads(base64.b64decode(msg["results"]))
        self.stats.deserialize_s += time.perf_counter() - t0
        _tid, res = out[0]
        res["worker"] = link.addr
        res["rss_kib"] = int(msg.get("rss_kib", res.get("rss_kib", 0)))
        results[i] = res
        self._feed(link, frames, attempts)

    def _on_death(self, link: _WorkerLink, detail: str,
                  frames: List[bytes], attempts: List[int]) -> None:
        """A fleet member died mid-batch: classify, pace its rejoin,
        redistribute its queue, and retry its in-flight task once on a
        surviving worker."""
        addr = link.addr
        self._links.pop(addr, None)
        link.close()
        self.stats.workers_lost += 1
        self._retry_at[addr] = (time.monotonic()
                                + self._policy_for(addr).next_delay())
        kind, signature = self._classify(addr, link.inflight is not None)
        pending = list(link.queue)
        link.queue.clear()
        inflight, link.inflight = link.inflight, None
        if inflight is not None:
            attempts[inflight] += 1
            if attempts[inflight] > 1:
                raise BackendUnavailable(
                    kind, f"worker {addr} [{signature}] {detail}; "
                          f"task lost twice, batch restart required")
            self.stats.jobs_retried += 1
            pending.insert(0, inflight)
        self.engine.incidents.record(
            kind,
            action="in-batch-retry" if inflight is not None
            else "redistributed",
            detail=(f"worker {addr} [{signature}] {detail}; "
                    f"{len(pending)} task(s) moved to surviving workers"))
        live = self._live()
        if not live:
            raise BackendUnavailable(
                kind, f"worker {addr} [{signature}] {detail}; "
                      f"no surviving workers")
        for t in pending:
            target = min(live, key=lambda l: (len(l.queue), l.index))
            target.queue.append(t)
        for peer in live:
            self._feed(peer, frames, attempts)

    def _classify(self, addr: str, had_inflight: bool) -> Tuple[str, str]:
        lp = self._spawned.get(addr)
        if lp is not None:
            try:
                status = lp.proc.wait(timeout=2.0)
            except subprocess.TimeoutExpired:
                status = None
            if status is not None:
                from ..fuzz.triage import crash_signature

                signature = crash_signature(lp.stderr_tail())
                if signature.startswith("UnknownError|?|"):
                    signature = f"worker-exit|{status}|"
                return "worker-crash", signature
        if had_inflight:
            return "worker-disconnect", "connection-lost"
        return "worker-partition", "connection-lost"

    # -- recovery / teardown ---------------------------------------------------

    def recover(self) -> None:
        """Engine-level retry: drop every link (workers loop back to
        accept) and clear the backoff clocks so the next batch re-dials
        the whole fleet immediately."""
        for link in list(self._links.values()):
            link.close()
        self._links.clear()
        for addr in self._configured:
            self._retry_at[addr] = 0.0

    def close(self) -> None:
        for addr, link in list(self._links.items()):
            if addr in self._spawned:
                try:
                    link.sock.sendall(encode_frame({"op": "shutdown"}))
                except OSError:
                    pass
            link.close()
        self._links.clear()
        for lp in self._spawned.values():
            lp.stop()
        self._spawned.clear()
        for lp in self._pending_spawn:
            lp.stop()
        self._pending_spawn.clear()


def _rebuild_exception(msg: dict) -> BaseException:
    """Reconstruct an analyzer exception shipped by a worker so it
    propagates to the caller exactly as with in-process dispatch."""
    exc_b64 = msg.get("exc")
    if exc_b64:
        try:
            exc = pickle.loads(base64.b64decode(exc_b64))
            if isinstance(exc, BaseException):
                return exc
        except Exception:
            pass
    from .. import errors

    cls = getattr(errors, str(msg.get("error_class", "")), None)
    detail = msg.get("error", "remote worker error")
    if isinstance(cls, type) and issubclass(cls, Exception):
        return cls(detail)
    return RuntimeError(f"{msg.get('error_class', 'Error')}: {detail}")


if __name__ == "__main__":
    sys.exit(main())
