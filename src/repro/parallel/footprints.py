"""Static read/write footprints of IR statements.

The partitioner needs to know, for every top-level statement of a block,
which parts of the abstract state its abstract execution may read and
which it may write.  The footprint is deliberately coarse but must be
*sound as an over-approximation*: a missed dependence would let two
conflicting statements run in different workers and break the bit-exact
equivalence with the sequential analysis.

The abstract state has four conflict granularities:

* **environment cells** — note that *reading* a cell that belongs to an
  octagon pack or is a tracked numeric of a boolean pack is a
  read-modify-write: evaluation reduces the cell's interval from the
  relational domains in place (``Transfer.read_cell``);
* **octagon packs** — every update is a transform of the pack's previous
  octagon, so pack writes are RMW at pack granularity;
* **boolean packs** — likewise for decision trees;
* **filter sites** — the ellipsoid bound of a site is advanced by the
  rotate/commit statements and invalidated by outside writes to X/Y.

Guard refinement (``GuardEngine``) may tighten every cell of the
condition, inject constraints into the octagon packs of those cells, and
restrict the decision trees of boolean condition cells (feeding their
numeric refinements back into the intervals) — all of which the
condition footprint records as writes.

Function calls are folded in by abstract inlining, mirroring the
iterator: value parameters and locals are written-before-read scratch
cells, so the callee body's reads of them do not escape to the caller.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..frontend import ir as I
from ..frontend.c_types import PointerType
from ..memory.cells import (
    AtomicLayout, CellInfo, CellLayout, ExpandedArrayLayout, RecordLayout,
    ShrunkArrayLayout,
)

__all__ = ["Footprint", "FootprintAnalyzer"]


class _Unresolved(Exception):
    """An l-value or callee that cannot be resolved statically.

    The statement becomes a partition barrier: resolving it in a worker
    could mutate the cell table (``add_var``) and diverge cell numbering
    between processes.
    """


@dataclass
class Footprint:
    """Over-approximate effect of abstractly executing one statement."""

    reads: Set[int] = field(default_factory=set)
    writes: Set[int] = field(default_factory=set)
    read_packs: Set[int] = field(default_factory=set)
    write_packs: Set[int] = field(default_factory=set)
    read_bpacks: Set[int] = field(default_factory=set)
    write_bpacks: Set[int] = field(default_factory=set)
    sites: Set[int] = field(default_factory=set)
    may_break: bool = False
    may_continue: bool = False
    may_return: bool = False
    has_wait: bool = False
    unresolved: bool = False
    # Rough statement count (loop bodies scaled up): the work-unit size
    # gate compares the region's total weight against
    # ``config.parallel_min_stmts`` so tiny regions stay sequential.
    weight: int = 0

    def merge(self, other: "Footprint") -> None:
        self.reads |= other.reads
        self.writes |= other.writes
        self.read_packs |= other.read_packs
        self.write_packs |= other.write_packs
        self.read_bpacks |= other.read_bpacks
        self.write_bpacks |= other.write_bpacks
        self.sites |= other.sites
        self.may_break |= other.may_break
        self.may_continue |= other.may_continue
        self.may_return |= other.may_return
        self.has_wait |= other.has_wait
        self.unresolved |= other.unresolved
        self.weight += other.weight

    @property
    def is_barrier(self) -> bool:
        """True when the statement cannot be a (non-final part of a)
        parallel work unit of a sequence.

        Escaping statements are barriers because a unit's break/continue/
        return state would capture pre-state values of cells written by
        earlier units.  A clock tick writes every clocked cell at once.
        """
        return (self.unresolved or self.has_wait or self.may_break
                or self.may_continue or self.may_return)

    def conflicts_with(self, later: "Footprint") -> bool:
        """Would executing ``later`` from this unit's *pre*-state change
        its result?  Write/write on cells is fine (the later delta wins,
        as in sequential execution); weak and clocked writes read their
        old value and therefore appear in ``reads``.  Pack/tree/site
        updates are RMW transforms, so a write on either side of those
        granularities conflicts with any touch of the same pack."""
        return bool(
            self.writes & later.reads
            or self.write_packs & (later.read_packs | later.write_packs)
            or self.write_bpacks & (later.read_bpacks | later.write_bpacks)
            or self.sites & later.sites)


class FootprintAnalyzer:
    """Computes and memoizes statement footprints for one analysis."""

    def __init__(self, ctx):
        self.ctx = ctx
        # (fn name, resolved byref bindings) -> body footprint.
        self._fn_memo: Dict[Tuple, Footprint] = {}
        self._visiting: Set[str] = set()

    def stmt_footprint(self, s: I.Stmt, frames: Sequence[Dict[int, I.LValue]]) -> Footprint:
        fp = Footprint()
        try:
            self._stmt(s, tuple(frames), fp)
        except _Unresolved:
            fp.unresolved = True
        return fp

    # -- statements ------------------------------------------------------------

    def _stmt(self, s: I.Stmt, frames, fp: Footprint) -> None:
        fp.weight += 1
        if isinstance(s, I.SAssign):
            self._assign(s, frames, fp)
        elif isinstance(s, I.SIf):
            self._cond(s.cond, frames, fp)
            for branch in (s.then, s.other):
                for st in branch:
                    self._stmt(st, frames, fp)
        elif isinstance(s, I.SWhile):
            self._cond(s.cond, frames, fp)
            body = Footprint()
            for st in list(s.body) + list(s.step):
                self._stmt(st, frames, body)
            # The loop absorbs break/continue of its body.
            body.may_break = False
            body.may_continue = False
            body.weight *= 4  # widening iterations make loops heavy
            fp.merge(body)
        elif isinstance(s, I.SSwitch):
            self._expr(s.scrutinee, frames, fp)
            if isinstance(s.scrutinee, I.Load):
                cells = self._lv_cells(s.scrutinee.lval, frames, fp)
                if len(cells) == 1 and cells[0][1] and not cells[0][0].is_summary:
                    # Case guards restrict the scrutinee cell in place.
                    fp.reads.add(cells[0][0].cid)
                    fp.writes.add(cells[0][0].cid)
            body = Footprint()
            for _, case_body in s.cases:
                for st in case_body:
                    self._stmt(st, frames, body)
            body.may_break = False  # the switch consumes breaks
            fp.merge(body)
        elif isinstance(s, I.SCall):
            self._call(s, frames, fp)
        elif isinstance(s, I.SReturn):
            if s.value is not None:
                self._expr(s.value, frames, fp)
            fp.may_return = True
        elif isinstance(s, I.SBreak):
            fp.may_break = True
        elif isinstance(s, I.SContinue):
            fp.may_continue = True
        elif isinstance(s, I.SWait):
            fp.has_wait = True
        elif isinstance(s, (I.SAssume, I.SCheck)):
            self._cond(s.cond, frames, fp)
        elif isinstance(s, I.SNop):
            pass
        else:  # pragma: no cover - future statement kinds
            raise _Unresolved

    def _assign(self, s: I.SAssign, frames, fp: Footprint) -> None:
        cfg = self.ctx.config
        self._expr(s.value, frames, fp)
        cells = self._lv_cells(s.target, frames, fp)
        if not cells:
            raise _Unresolved
        strong = len(cells) == 1 and cells[0][1] and not cells[0][0].is_summary
        for cell, exact in cells:
            self._write_cell(cell, exact and strong, fp)
        if strong:
            target = cells[0][0]
            if cfg.enable_octagons:
                ids = self.ctx.oct_packs.packs_of_cell(target.cid)
                fp.write_packs.update(ids)
                fp.read_packs.update(ids)
                if cfg.octagon_pivot_reduction and ids:
                    # Pivot propagation spills into neighbouring packs;
                    # modelling its reach is not worth it (off by default).
                    raise _Unresolved
            if cfg.enable_decision_trees:
                from ..packing.common import is_bool_cell

                if is_bool_cell(target):
                    ids = self.ctx.bool_packs.packs_of_bool(target.cid)
                else:
                    ids = self.ctx.bool_packs.packs_of_numeric(target.cid)
                fp.write_bpacks.update(ids)
                fp.read_bpacks.update(ids)
        if cfg.enable_ellipsoids and len(self.ctx.filter_sites):
            sites = self.ctx.filter_sites
            if s.sid in sites.member_sids:
                site = sites.by_sid.get(s.sid)
                if site is not None:
                    fp.sites.add(site.site_id)
                    # rotate/commit read X/Y/T and tighten them back.
                    for cid in (site.x_cid, site.y_cid, site.t_cid):
                        self._read_cell(self.ctx.table.cell(cid), fp)
                        fp.writes.add(cid)

    def _call(self, s: I.SCall, frames, fp: Footprint) -> None:
        fn = self.ctx.prog.functions.get(s.func)
        if fn is None or fn.body is None:
            raise _Unresolved
        child: Dict[int, I.LValue] = {}
        scratch: Set[int] = set()
        for param, arg in zip(fn.params, s.args):
            if isinstance(param.ctype, PointerType):
                if not isinstance(arg, I.LValue):
                    raise _Unresolved
                child[param.uid] = self._resolve_lv(arg, frames)
            else:
                self._expr(arg, frames, fp)
                if not self.ctx.table.has_var(param.uid):
                    raise _Unresolved
                cell = self.ctx.table.scalar_cell(param.uid)
                scratch.add(cell.cid)
        for local in fn.locals:
            if not self.ctx.table.has_var(local.uid):
                raise _Unresolved
            for cell in self.ctx.table.cells_of_var(local.uid):
                scratch.add(cell.cid)
        body = self._function_footprint(fn, child)
        # Value params and locals are written (raw set_cell) before the
        # body runs, so body reads of them never see the caller's state.
        fp.reads |= (body.reads - scratch)
        fp.writes |= body.writes | scratch
        fp.read_packs |= body.read_packs
        fp.write_packs |= body.write_packs
        fp.read_bpacks |= body.read_bpacks
        fp.write_bpacks |= body.write_bpacks
        fp.sites |= body.sites
        # The call absorbs returns but propagates break/continue.
        fp.may_break |= body.may_break
        fp.may_continue |= body.may_continue
        fp.has_wait |= body.has_wait
        fp.weight += body.weight
        if s.result is not None:
            cells = self._lv_cells(s.result, frames, fp)
            for cell, exact in cells:
                self._write_cell(cell, exact and len(cells) == 1, fp)
            if len(cells) == 1 and cells[0][1]:
                self._forget_cell(cells[0][0], fp)

    def _function_footprint(self, fn: I.IRFunction,
                            bindings: Dict[int, I.LValue]) -> Footprint:
        key = (fn.name,
               tuple(sorted((uid, repr(lv)) for uid, lv in bindings.items())))
        cached = self._fn_memo.get(key)
        if cached is not None:
            return cached
        if fn.name in self._visiting:
            raise _Unresolved  # recursion: outside the analyzed family
        self._visiting.add(fn.name)
        try:
            fp = Footprint()
            unresolved = False
            try:
                for st in fn.body:
                    self._stmt(st, (bindings,), fp)
            except _Unresolved:
                unresolved = True
            fp.unresolved = unresolved
        finally:
            self._visiting.discard(fn.name)
        self._fn_memo[key] = fp
        if unresolved:
            raise _Unresolved
        return fp

    # -- conditions --------------------------------------------------------------

    def _cond(self, cond: I.Expr, frames, fp: Footprint) -> None:
        """Footprint of guarding on a condition (either polarity)."""
        cfg = self.ctx.config
        sub = Footprint()
        self._expr(cond, frames, sub)
        fp.merge(sub)
        for cid in sub.reads:
            cell = self.ctx.table.cell(cid)
            if cell.volatile or cell.is_summary:
                continue
            # Interval / linear-form backward refinement writes the cell.
            fp.reads.add(cid)
            fp.writes.add(cid)
            if cfg.enable_octagons:
                ids = self.ctx.oct_packs.packs_of_cell(cid)
                fp.write_packs.update(ids)
                fp.read_packs.update(ids)
            if cfg.enable_decision_trees:
                bids = self.ctx.bool_packs.packs_of_bool(cid)
                fp.write_bpacks.update(bids)
                fp.read_bpacks.update(bids)
                for pid in bids:
                    # Tree restriction feeds numeric refinements back
                    # into the pack's tracked cells.
                    for ncid in self.ctx.bool_packs.pack(pid).numeric_cids:
                        fp.reads.add(ncid)
                        fp.writes.add(ncid)

    # -- expressions -------------------------------------------------------------

    def _expr(self, e: I.Expr, frames, fp: Footprint) -> None:
        if isinstance(e, I.Const):
            return
        if isinstance(e, I.Load):
            for cell, _ in self._lv_cells(e.lval, frames, fp):
                self._read_cell(cell, fp)
            return
        if isinstance(e, (I.UnaryOp, I.NotOp, I.Cast)):
            self._expr(e.arg, frames, fp)
            return
        if isinstance(e, (I.BinOp, I.BoolOp)):
            self._expr(e.left, frames, fp)
            self._expr(e.right, frames, fp)
            return
        raise _Unresolved  # pragma: no cover - future expression kinds

    def _read_cell(self, cell: CellInfo, fp: Footprint) -> None:
        fp.reads.add(cell.cid)
        if cell.volatile:
            return  # read from the environment spec, not the state
        cfg = self.ctx.config
        # Reading reduces the cell from its relational domains *in place*
        # (Transfer.read_cell), so a packed cell read is a cell write
        # plus a pack read.
        reduced = False
        if cfg.enable_octagons:
            ids = self.ctx.oct_packs.packs_of_cell(cell.cid)
            if ids:
                fp.read_packs.update(ids)
                reduced = True
        if cfg.enable_decision_trees:
            ids = self.ctx.bool_packs.packs_of_numeric(cell.cid)
            if ids:
                fp.read_bpacks.update(ids)
                reduced = True
        if reduced:
            fp.writes.add(cell.cid)

    def _write_cell(self, cell: CellInfo, strong: bool, fp: Footprint) -> None:
        fp.writes.add(cell.cid)
        weak = not strong or cell.is_summary
        if weak:
            # Weak update joins with the old value and drops relational
            # facts about the cell.
            fp.reads.add(cell.cid)
            self._forget_cell(cell, fp)
        elif cell.is_integer and self.ctx.config.enable_clock:
            # Clocked maintenance reads the old value (X := X + e keeps
            # the clock deltas).
            fp.reads.add(cell.cid)
        if self.ctx.config.enable_ellipsoids:
            fp.sites.update(self.ctx.filter_sites.sites_writing(cell.cid))

    def _forget_cell(self, cell: CellInfo, fp: Footprint) -> None:
        cfg = self.ctx.config
        if cfg.enable_octagons:
            fp.write_packs.update(self.ctx.oct_packs.packs_of_cell(cell.cid))
        if cfg.enable_decision_trees:
            fp.write_bpacks.update(
                self.ctx.bool_packs.packs_of_numeric(cell.cid))
            fp.write_bpacks.update(self.ctx.bool_packs.packs_of_bool(cell.cid))
        if cfg.enable_ellipsoids:
            fp.sites.update(self.ctx.filter_sites.sites_writing(cell.cid))

    # -- l-values ---------------------------------------------------------------

    def _resolve_lv(self, lv: I.LValue, frames) -> I.LValue:
        """Substitute by-reference bindings (bindings hold already-resolved
        l-values, mirroring Iterator._resolve_binding)."""
        if isinstance(lv, I.LDeref):
            for frame in reversed(frames):
                if lv.var.uid in frame:
                    return frame[lv.var.uid]
            raise _Unresolved
        if isinstance(lv, I.LIndex):
            return I.LIndex(self._resolve_lv(lv.base, frames), lv.index,
                            lv.element_type)
        if isinstance(lv, I.LField):
            return I.LField(self._resolve_lv(lv.base, frames), lv.fieldname,
                            lv.field_type)
        return lv

    def _lv_cells(self, lv: I.LValue, frames,
                  fp: Footprint) -> List[Tuple[CellInfo, bool]]:
        """Mirror of Transfer.resolve_lvalue: [(cell, exact)] pairs, with a
        dynamic index over-approximated by all elements (weak)."""
        layouts = self._lv_layouts(self._resolve_lv(lv, frames), frames, fp)
        cells: List[Tuple[CellInfo, bool]] = []
        for layout, exact in layouts:
            if isinstance(layout, AtomicLayout):
                cells.append((layout.cell, exact))
            elif isinstance(layout, ShrunkArrayLayout):
                cells.append((layout.cell, False))
            else:
                raise _Unresolved
        return cells

    def _lv_layouts(self, lv: I.LValue, frames,
                    fp: Footprint) -> List[Tuple[CellLayout, bool]]:
        if isinstance(lv, I.LVar):
            if not self.ctx.table.has_var(lv.var.uid):
                raise _Unresolved  # resolving would grow the cell table
            return [(self.ctx.table.layout(lv.var.uid), True)]
        if isinstance(lv, I.LField):
            out: List[Tuple[CellLayout, bool]] = []
            for base, exact in self._lv_layouts(lv.base, frames, fp):
                if isinstance(base, RecordLayout):
                    try:
                        out.append((base.field(lv.fieldname), exact))
                    except KeyError:
                        raise _Unresolved from None
                elif isinstance(base, ShrunkArrayLayout):
                    out.append((base, False))
                else:
                    raise _Unresolved
            return out
        if isinstance(lv, I.LIndex):
            bases = self._lv_layouts(lv.base, frames, fp)
            self._expr(lv.index, frames, fp)
            out = []
            for base, exact in bases:
                if isinstance(base, ExpandedArrayLayout):
                    if isinstance(lv.index, I.Const):
                        idx = int(lv.index.value)
                        if 0 <= idx < base.length:
                            out.append((base.elements[idx], exact))
                            continue
                    # Dynamic or out-of-range index: any element, weakly.
                    for el in base.elements:
                        out.append((el, False))
                elif isinstance(base, ShrunkArrayLayout):
                    out.append((base, False))
                else:
                    raise _Unresolved
            return out
        raise _Unresolved  # LDeref must have been substituted already
