"""Dispatch backends: where a parallel region's work units execute.

The :class:`~repro.parallel.executor.ParallelEngine` owns partition
planning and the deterministic delta merge; *how* a batch of work units
reaches compute is a :class:`DispatchBackend`:

* ``inline`` — in-process, zero-copy: tasks run on the projected states
  directly (transfer functions never mutate states, so no pickling or
  process hop is needed).  The floor for dispatch overhead, and the
  reference the other backends are measured against.
* ``pool`` — a local :class:`~concurrent.futures.ProcessPoolExecutor`,
  the engine's historical path: projected states are pickled once and
  chunked round-robin over ``jobs`` forked workers.
* ``socket`` — a fleet of ``repro.parallel.remote`` workers reached over
  Unix/TCP sockets with work-stealing and elastic join/leave (see
  :mod:`.remote`).

All three speak the same projected-state/pointer-diff job protocol and
merge through the same ordinal-sorted delta application, so **any
backend at any jobs=N is bit-identical to sequential** — scheduling
(chunking, stealing, retries) never influences merge order.

Failure contract: a backend raises

* :class:`BackendUnavailable` for *transient* transport-level failures
  (worker crash, socket partition, mid-job disconnect) after restoring
  itself to a retryable state — the engine retries the whole batch with
  backoff and records the incident under the exception's ``kind``;
* :class:`StateNotPicklable` when the job payload cannot be serialized
  (permanent: the engine disables parallelism);
* analyzer exceptions raised *inside* a worker propagate unchanged — a
  bug must never be masked as a silent sequential retry.
"""

from __future__ import annotations

import pickle
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

__all__ = ["BackendUnavailable", "DispatchBackend", "DispatchStats",
           "InlineBackend", "PoolBackend", "StateNotPicklable",
           "make_backend"]


class BackendUnavailable(Exception):
    """Transient dispatch-transport failure.  ``kind`` is the incident
    classification (``worker-crash``, ``worker-partition``,
    ``worker-disconnect``, ``worker-version-mismatch``) the engine
    records before retrying."""

    def __init__(self, kind: str, detail: str):
        super().__init__(f"{kind}: {detail}")
        self.kind = kind
        self.detail = detail


class StateNotPicklable(Exception):
    """The job payload cannot be serialized: parallelism is pointless
    for this run (permanent; the engine falls back to sequential)."""


@dataclass
class DispatchStats:
    """Per-backend counters surfaced through ``--stats``/``--json``.

    ``worker_rss_kib`` maps a worker label (``pid-N`` for pool workers,
    the address for socket workers) to its peak RSS — remote workers are
    not children of the analyzer, so the parent's ``ru_maxrss`` reading
    cannot see them (see :func:`repro.supervisor.budget.peak_rss_kib`).
    """

    jobs_dispatched: int = 0
    jobs_stolen: int = 0
    jobs_retried: int = 0
    bytes_sent: int = 0
    bytes_received: int = 0
    serialize_s: float = 0.0
    deserialize_s: float = 0.0
    workers_joined: int = 0
    workers_lost: int = 0
    worker_rss_kib: Dict[str, int] = field(default_factory=dict)

    @property
    def bytes_shipped(self) -> int:
        return self.bytes_sent + self.bytes_received

    def note_rss(self, label: str, rss_kib: int) -> None:
        if rss_kib > self.worker_rss_kib.get(label, 0):
            self.worker_rss_kib[label] = int(rss_kib)

    def fleet_peak_rss_kib(self, parent_kib: int) -> int:
        return max([int(parent_kib)] + list(self.worker_rss_kib.values()))


class DispatchBackend:
    """One way of executing a batch of work units.  Subclasses implement
    :meth:`run_batch`; the engine owns planning, retries and merging."""

    name = "?"

    def __init__(self, engine) -> None:
        self.engine = engine
        self.stats = DispatchStats()

    def run_batch(self, bases: Sequence, tasks: List[Tuple],
                  common: Dict) -> List[dict]:
        """Execute ``tasks`` (``(task_id, state_idx, sids, unit)``
        tuples over the projected pre-states ``bases``) and return their
        result dicts ordered by ``task_id``.  See the module docstring
        for the failure contract."""
        raise NotImplementedError

    def recover(self) -> None:
        """Restore the backend after a :class:`BackendUnavailable` so
        the next :meth:`run_batch` is a fresh attempt."""

    def close(self) -> None:
        """Release workers/sockets; idempotent."""

    def _harvest(self, ordered: List[dict]) -> List[dict]:
        """Pull per-task worker telemetry (RSS) into the stats."""
        for res in ordered:
            label = res.get("worker")
            if label:
                self.stats.note_rss(str(label), int(res.get("rss_kib", 0)))
        return ordered


class InlineBackend(DispatchBackend):
    """Zero-copy in-process execution.

    Transfer functions never mutate their input states (the sequential
    iterator runs on the live parent states), so the projected bases can
    be executed directly — no pickling, no worker round-trip.  The
    worker-side useful-pack scratch (workers clear their *own* process
    copies) is snapshotted and restored around the batch so the parent's
    accumulators only change through the engine's merge, exactly as with
    out-of-process backends.  Fault-injection env knobs target worker
    processes and are disabled here (killing the worker would kill the
    analyzer itself).
    """

    name = "inline"

    def run_batch(self, bases, tasks, common):
        from .executor import execute_tasks

        ctx = self.engine.ctx
        saved_oct = set(ctx.useful_oct_packs)
        saved_bool = set(ctx.useful_bool_packs)
        try:
            out = execute_tasks(ctx, self.engine.sid_index, list(bases),
                                tasks, common, inject_faults=False,
                                worker_label="inline")
        finally:
            ctx.useful_oct_packs.clear()
            ctx.useful_oct_packs.update(saved_oct)
            ctx.useful_bool_packs.clear()
            ctx.useful_bool_packs.update(saved_bool)
        results = {tid: res for tid, res in out}
        self.stats.jobs_dispatched += len(tasks)
        return self._harvest([results[i] for i in range(len(tasks))])


class PoolBackend(DispatchBackend):
    """Local ``ProcessPoolExecutor`` dispatch (fork preferred, spawn
    fallback), unchanged semantics from the pre-backend engine: states
    are pickled once, tasks are chunked ``tasks[i::n]`` over the
    workers, and each chunk ships only the pre-states it references.
    A :class:`BrokenProcessPool` (worker SIGKILL/OOM) discards the pool
    and surfaces as ``worker-crash``; the engine's retry re-forks it.
    """

    name = "pool"

    def __init__(self, engine) -> None:
        super().__init__(engine)
        self._pool: Optional[ProcessPoolExecutor] = None

    # -- pool lifecycle -------------------------------------------------------

    def _ensure_pool(self) -> ProcessPoolExecutor:
        if self._pool is None:
            import multiprocessing as mp

            from . import executor

            try:
                mpctx = mp.get_context("fork")
                executor._FORK_CTX = self.engine.ctx
                self._pool = ProcessPoolExecutor(
                    self.engine.jobs, mp_context=mpctx,
                    initializer=executor._worker_init_fork)
            except ValueError:
                mpctx = mp.get_context("spawn")
                blob = pickle.dumps(self.engine.ctx,
                                    pickle.HIGHEST_PROTOCOL)
                self._pool = ProcessPoolExecutor(
                    self.engine.jobs, mp_context=mpctx,
                    initializer=executor._worker_init_spawn,
                    initargs=(blob,))
        return self._pool

    def _discard_pool(self) -> None:
        if self._pool is None:
            return
        pool, self._pool = self._pool, None
        try:
            procs = list(getattr(pool, "_processes", {}).values())
        except Exception:  # pragma: no cover - interpreter internals moved
            procs = []
        try:
            pool.shutdown(wait=False, cancel_futures=True)
        except Exception:  # pragma: no cover - already broken
            pass
        for p in procs:
            try:
                p.terminate()
            except Exception:  # pragma: no cover - already dead
                pass

    def recover(self) -> None:
        self._discard_pool()

    def close(self) -> None:
        self._discard_pool()

    # -- dispatch -------------------------------------------------------------

    def run_batch(self, bases, tasks, common):
        from .executor import _run_tasks

        t0 = time.perf_counter()
        try:
            blobs = [pickle.dumps(b, pickle.HIGHEST_PROTOCOL)
                     for b in bases]
        except (pickle.PicklingError, TypeError, AttributeError) as exc:
            raise StateNotPicklable(f"state not picklable: {exc}")
        self.stats.serialize_s += time.perf_counter() - t0
        n = min(self.engine.jobs, len(tasks))
        chunks = [tasks[i::n] for i in range(n)]
        try:
            pool = self._ensure_pool()
            futures = []
            for chunk in chunks:
                if not chunk:
                    continue
                # Ship only the pre-states this chunk's tasks reference.
                used = sorted({state_idx for _, state_idx, _, _ in chunk})
                remap = {orig: local for local, orig in enumerate(used)}
                local_tasks = [(tid, remap[si], sids, unit)
                               for tid, si, sids, unit in chunk]
                payload = dict(common, states=[blobs[i] for i in used],
                               tasks=local_tasks)
                self.stats.bytes_sent += sum(len(blobs[i]) for i in used)
                futures.append(pool.submit(_run_tasks, payload))
            results: Dict[int, dict] = {}
            for f in futures:
                for task_id, res in f.result():
                    results[task_id] = res
        except BrokenProcessPool as exc:
            self._discard_pool()
            raise BackendUnavailable(
                "worker-crash", f"worker died mid-dispatch: {exc}")
        self.stats.jobs_dispatched += len(tasks)
        return self._harvest([results[i] for i in range(len(tasks))])


def make_backend(name: str, engine,
                 workers: Tuple[str, ...] = ()) -> DispatchBackend:
    if name == "inline":
        return InlineBackend(engine)
    if name == "pool":
        return PoolBackend(engine)
    if name == "socket":
        from .remote import SocketBackend

        return SocketBackend(engine, workers)
    raise ValueError(f"unknown dispatch backend: {name!r} "
                     f"(expected inline, pool or socket)")
