"""Parallel fixpoint engine (Monniaux's scheme).

The analysis of the synchronous main loop parallelizes by partitioning
the program's control flow into independent work units — maximal runs of
top-level statements with disjoint read/write footprints, and the two
sides of a trace-partition split — each carrying its pre-state to a
worker process.  Worker post-states come back as deltas against the
pre-state and are merged deterministically in program order, so parallel
results are bit-identical to the sequential analysis.

Where the work units execute is a pluggable dispatch backend
(:mod:`.backends`): in-process (``inline``), a local process pool
(``pool``), or a socket-connected worker fleet with work-stealing and
elastic membership (``socket``, :mod:`.remote`).
"""

from .backends import (BackendUnavailable, DispatchBackend, DispatchStats,
                       InlineBackend, PoolBackend, StateNotPicklable)
from .executor import ParallelEngine

__all__ = ["BackendUnavailable", "DispatchBackend", "DispatchStats",
           "InlineBackend", "ParallelEngine", "PoolBackend",
           "StateNotPicklable"]
