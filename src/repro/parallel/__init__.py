"""Parallel fixpoint engine (Monniaux's scheme).

The analysis of the synchronous main loop parallelizes by partitioning
the program's control flow into independent work units — maximal runs of
top-level statements with disjoint read/write footprints, and the two
sides of a trace-partition split — each carrying its pre-state to a
worker process.  Worker post-states come back as deltas against the
pre-state and are merged deterministically in program order, so parallel
results are bit-identical to the sequential analysis.
"""

from .executor import ParallelEngine

__all__ = ["ParallelEngine"]
