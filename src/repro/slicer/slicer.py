"""Backward program slicing for alarm inspection (Sect. 3.3).

"We implemented and used a slicer to help in the alarm inspection process.
If the slicing criterion is an alarm point, the extracted slice contains
the computations that led to the alarm.  However, the classical data and
control dependence-based backward slicing turned out to yield prohibitively
large slices."

Both flavours from the paper are provided:

* :func:`backward_slice` — the classical dependence-based slice from an
  alarm point;
* :func:`abstract_slice` — the paper's proposed restriction: keep only the
  computations of variables "we lack information about", i.e. whose
  invariant at the alarm point is too weak (unbounded or full-range).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set

from ..frontend import ir as I
from ..frontend.ast_nodes import Location
from ..iterator.alarms import Alarm
from ..iterator.state import AbstractState
from ..memory.cells import CellTable
from ..numeric import FloatInterval, IntInterval
from .dependences import DependenceGraph, build_dependence_graph

__all__ = ["Slice", "Slicer", "backward_slice", "abstract_slice"]


@dataclass
class Slice:
    """A set of statements relevant to a criterion."""

    criterion_sid: int
    sids: Set[int]
    graph: DependenceGraph

    def __len__(self) -> int:
        return len(self.sids)

    def locations(self) -> List[Location]:
        out = []
        for sid in sorted(self.sids):
            if sid in self.graph.graph:
                out.append(self.graph.graph.nodes[sid]["loc"])
        return out

    def statements(self) -> List[I.Stmt]:
        return [self.graph.stmt(sid) for sid in sorted(self.sids)
                if sid in self.graph.graph]

    def format(self) -> str:
        lines = []
        for sid in sorted(self.sids):
            if sid not in self.graph.graph:
                continue
            loc = self.graph.graph.nodes[sid]["loc"]
            stmt = self.graph.stmt(sid)
            lines.append(f"{loc}: {type(stmt).__name__}")
        return "\n".join(lines)


class Slicer:
    def __init__(self, prog: I.IRProgram, table: CellTable):
        self.prog = prog
        self.table = table
        self.graph = build_dependence_graph(prog, table)

    def backward_slice(self, sid: int) -> Slice:
        """Classical data+control dependence backward slice."""
        return Slice(sid, self.graph.backward_reachable([sid]), self.graph)

    def slice_for_alarm(self, alarm: Alarm) -> Slice:
        return self.backward_slice(alarm.sid)

    def abstract_slice(self, sid: int, state: AbstractState,
                       weak_only: bool = True) -> Slice:
        """The paper's refinement: restrict the slice to the computations
        of variables whose invariant is too weak at the alarm point
        (unbounded intervals, or booleans that may take any value)."""
        full = self.graph.backward_reachable([sid])
        if not weak_only:
            return Slice(sid, full, self.graph)
        weak_cells = self._weak_cells(state)
        keep: Set[int] = {sid}
        # Keep statements that define a weak cell, plus the control
        # statements they depend on.
        for s in full:
            if self.graph.defs.get(s, set()) & weak_cells:
                keep.add(s)
        # Close over control dependences so the slice stays executable.
        changed = True
        while changed:
            changed = False
            for s in list(keep):
                if s not in self.graph.graph:
                    continue
                for pred in self.graph.graph.predecessors(s):
                    edge = self.graph.graph.edges[pred, s]
                    if edge.get("kind") == "control" and pred not in keep:
                        keep.add(pred)
                        changed = True
        return Slice(sid, keep & (full | keep), self.graph)

    def _weak_cells(self, state: AbstractState) -> Set[int]:
        weak: Set[int] = set()
        if state.is_bottom:
            return weak
        for cid, v in state.env.cells.items():
            itv = v.itv
            if isinstance(itv, IntInterval):
                if not itv.is_bounded:
                    weak.add(cid)
                else:
                    cell = self.table.cell(cid)
                    from ..packing.common import is_bool_cell

                    if is_bool_cell(cell) and itv.lo == 0 and itv.hi == 1:
                        weak.add(cid)  # boolean that may take any value
                    elif (itv.magnitude() or 0) > 10**6:
                        weak.add(cid)  # "may contain large values"
            else:
                if not itv.is_bounded or itv.magnitude() > 1e18:
                    weak.add(cid)
        return weak


def backward_slice(prog: I.IRProgram, table: CellTable, sid: int) -> Slice:
    return Slicer(prog, table).backward_slice(sid)


def abstract_slice(prog: I.IRProgram, table: CellTable, sid: int,
                   state: AbstractState) -> Slice:
    return Slicer(prog, table).abstract_slice(sid, state)
