"""Data and control dependences over the lowered IR (Sect. 3.3 substrate).

Builds a program dependence graph at statement granularity:

* a **data dependence** edge s1 -> s2 when s2 may read a variable that s1
  may write (flow-insensitive def/use over cell ids, which is sound and
  sufficient for slicing);
* a **control dependence** edge c -> s when statement s executes under the
  test or loop condition c.

The graph is a :class:`networkx.DiGraph` whose nodes are statement ids;
node attributes carry the statement and location for reporting.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..frontend import ir as I
from ..memory.cells import CellTable
from ..packing.common import expr_cells

__all__ = ["DependenceGraph", "build_dependence_graph"]


class DependenceGraph:
    """Statement-level PDG with def/use tables."""

    def __init__(self, graph: nx.DiGraph, defs: Dict[int, Set[int]],
                 uses: Dict[int, Set[int]]):
        self.graph = graph
        self.defs = defs  # sid -> cell ids possibly written
        self.uses = uses  # sid -> cell ids possibly read

    def statements(self) -> List[int]:
        return list(self.graph.nodes)

    def stmt(self, sid: int) -> I.Stmt:
        return self.graph.nodes[sid]["stmt"]

    def backward_reachable(self, sids) -> Set[int]:
        """All statements the given ones transitively depend on."""
        out: Set[int] = set()
        work = list(sids)
        while work:
            sid = work.pop()
            if sid in out or sid not in self.graph:
                continue
            out.add(sid)
            work.extend(self.graph.predecessors(sid))
        return out

    def defining_statements(self, cid: int) -> List[int]:
        return [sid for sid, cells in self.defs.items() if cid in cells]


def build_dependence_graph(prog: I.IRProgram, table: CellTable) -> DependenceGraph:
    g = nx.DiGraph()
    defs: Dict[int, Set[int]] = {}
    uses: Dict[int, Set[int]] = {}
    # Call-by-reference effects: function name -> (cells read, cells written)
    summaries = _function_summaries(prog, table)

    def lv_cells(lv: I.LValue) -> Set[int]:
        out: Set[int] = set()
        _collect_lvalue_cells(lv, table, out)
        return out

    def add_stmt(s: I.Stmt, d: Set[int], u: Set[int],
                 controls: Sequence[int]) -> None:
        g.add_node(s.sid, stmt=s, loc=s.loc)
        defs[s.sid] = d
        uses[s.sid] = u
        for c in controls:
            g.add_edge(c, s.sid, kind="control")

    def visit(stmts: Sequence[I.Stmt], controls: Tuple[int, ...]) -> None:
        for s in stmts:
            if isinstance(s, I.SAssign):
                add_stmt(s, lv_cells(s.target),
                         expr_cells(s.value, table) | _index_cells(s.target, table),
                         controls)
            elif isinstance(s, I.SIf):
                add_stmt(s, set(), expr_cells(s.cond, table), controls)
                visit(s.then, controls + (s.sid,))
                visit(s.other, controls + (s.sid,))
            elif isinstance(s, I.SWhile):
                add_stmt(s, set(), expr_cells(s.cond, table), controls)
                visit(s.body, controls + (s.sid,))
                visit(s.step, controls + (s.sid,))
            elif isinstance(s, I.SSwitch):
                add_stmt(s, set(), expr_cells(s.scrutinee, table), controls)
                for _, body in s.cases:
                    visit(body, controls + (s.sid,))
            elif isinstance(s, I.SCall):
                fn = prog.functions.get(s.func)
                reads, writes = summaries.get(s.func, (set(), set()))
                u: Set[int] = set(reads)
                d: Set[int] = set(writes)
                if fn is not None:
                    for param, arg in zip(fn.params, s.args):
                        if isinstance(arg, I.LValue):
                            cells = lv_cells(arg)
                            d |= cells
                            u |= cells
                        else:
                            u |= expr_cells(arg, table)
                            for cell in table.cells_of_var(param.uid):
                                d.add(cell.cid)
                if s.result is not None:
                    d |= lv_cells(s.result)
                add_stmt(s, d, u, controls)
            elif isinstance(s, (I.SReturn,)):
                u = expr_cells(s.value, table) if s.value is not None else set()
                add_stmt(s, set(), u, controls)
            elif isinstance(s, (I.SAssume, I.SCheck)):
                add_stmt(s, set(), expr_cells(s.cond, table), controls)
            elif isinstance(s, (I.SBreak, I.SContinue, I.SWait, I.SNop)):
                add_stmt(s, set(), set(), controls)

    for fn in prog.functions.values():
        if fn.body is not None:
            visit(fn.body, ())

    # Data dependence edges (flow-insensitive def-use).
    writers: Dict[int, List[int]] = {}
    for sid, cells in defs.items():
        for cid in cells:
            writers.setdefault(cid, []).append(sid)
    for sid, cells in uses.items():
        for cid in cells:
            for w in writers.get(cid, ()):
                if w != sid:
                    g.add_edge(w, sid, kind="data")
    return DependenceGraph(g, defs, uses)


def _collect_lvalue_cells(lv: I.LValue, table: CellTable, out: Set[int]) -> None:
    from ..memory.cells import iter_layout_cells

    if isinstance(lv, I.LVar):
        if table.has_var(lv.var.uid):
            for cell in table.cells_of_var(lv.var.uid):
                out.add(cell.cid)
        return
    if isinstance(lv, I.LDeref):
        # Unknown referent at slicing time: conservatively, any cell of
        # variables the parameter could alias — approximated as no cells
        # here; the call-summary path adds actual-argument cells instead.
        return
    if isinstance(lv, (I.LIndex, I.LField)):
        _collect_lvalue_cells(lv.base, table, out)


def _index_cells(lv: I.LValue, table: CellTable) -> Set[int]:
    """Cells read to compute the indices inside an l-value."""
    out: Set[int] = set()
    while isinstance(lv, (I.LIndex, I.LField)):
        if isinstance(lv, I.LIndex):
            out |= expr_cells(lv.index, table)
        lv = lv.base
    return out


def _function_summaries(prog: I.IRProgram, table: CellTable):
    """Flow-insensitive read/write cell summaries per function."""
    out: Dict[str, Tuple[Set[int], Set[int]]] = {}
    for name, fn in prog.functions.items():
        if fn.body is None:
            continue
        reads: Set[int] = set()
        writes: Set[int] = set()
        for s in I.iter_stmts(fn.body):
            if isinstance(s, I.SAssign):
                _collect_lvalue_cells(s.target, table, writes)
                reads |= expr_cells(s.value, table)
            elif isinstance(s, (I.SIf, I.SWhile)):
                reads |= expr_cells(s.cond, table)
            elif isinstance(s, I.SSwitch):
                reads |= expr_cells(s.scrutinee, table)
            elif isinstance(s, I.SReturn) and s.value is not None:
                reads |= expr_cells(s.value, table)
            elif isinstance(s, (I.SAssume, I.SCheck)):
                reads |= expr_cells(s.cond, table)
        out[name] = (reads, writes)
    return out
