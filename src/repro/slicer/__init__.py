"""Program slicer for alarm inspection (Sect. 3.3)."""

from .dependences import DependenceGraph, build_dependence_graph
from .slicer import Slice, Slicer, abstract_slice, backward_slice

__all__ = [
    "DependenceGraph",
    "Slice",
    "Slicer",
    "abstract_slice",
    "backward_slice",
    "build_dependence_graph",
]
