"""Exception hierarchy and the CLI exit-code contract."""

from __future__ import annotations

import enum

__all__ = [
    "ReproError",
    "PreprocessorError",
    "LexerError",
    "ParseError",
    "TypeError_",
    "UnsupportedConstructError",
    "LinkError",
    "AnalysisError",
    "CertificateError",
    "CheckpointError",
    "SupervisorHalt",
    "ServeError",
    "ServeConnectionError",
    "ExitCode",
]


class ExitCode(enum.IntEnum):
    """The documented exit-code contract of the ``astree-repro`` CLI.

    * ``PROVED`` (0) — the analysis terminated at full precision and
      reported no alarms: the checked properties are proved.
    * ``ALARMS`` (1) — the analysis terminated at full precision with one
      or more alarms.
    * ``DEGRADED`` (2) — a resource budget tripped and the supervisor
      stepped down the degradation ladder: the verdict is still *sound*
      but coarser than the configured precision (alarms may include
      degradation-induced false positives).  Takes precedence over
      ``ALARMS``.
    * ``INTERNAL_ERROR`` (3) — no verdict was produced: frontend or
      analyzer error, unusable checkpoint, or a simulated kill.
    """

    PROVED = 0
    ALARMS = 1
    DEGRADED = 2
    INTERNAL_ERROR = 3


class ReproError(Exception):
    """Base class for all analyzer errors."""


class SourceError(ReproError):
    """An error attached to a source location."""

    def __init__(self, message: str, filename: str = "<input>", line: int = 0, col: int = 0):
        self.filename = filename
        self.line = line
        self.col = col
        super().__init__(f"{filename}:{line}:{col}: {message}")


class PreprocessorError(SourceError):
    """Error during the C preprocessing phase."""


class LexerError(SourceError):
    """Error during tokenization."""


class ParseError(SourceError):
    """Error during parsing."""


class TypeError_(SourceError):
    """Error during type checking."""


class UnsupportedConstructError(SourceError):
    """A C construct outside the supported subset (rejected per Sect. 5.1)."""


class LinkError(ReproError):
    """Error while linking several translation units."""


class AnalysisError(ReproError):
    """Internal error during abstract execution."""


class CheckpointError(ReproError):
    """A checkpoint file is missing, corrupt, or belongs to a different
    program/configuration (fingerprint mismatch)."""


class CertificateError(ReproError):
    """An invariant certificate could not be emitted or did not validate:
    the file is missing/corrupt/wrong-version, or an independent
    re-application of the transfer functions found a certified state that
    is not a post-fixpoint (``F(pre) ⊑ post`` or loop-head stability or
    the alarm-superset check failed).  The CLI maps this to the
    ``certificate-invalid`` incident (phase ``certify``, exit 3)."""


class ServeError(ReproError):
    """Serving-layer failure (daemon startup, worker supervision)."""


class ServeConnectionError(ServeError):
    """The connection to the daemon could not be established, timed
    out, or died mid-response (EOF/ECONNRESET).  Always *retryable*: the
    analyzer is deterministic and results are cached by content, so
    resubmitting the same request is safe."""


class SupervisorHalt(ReproError):
    """Simulated kill for fault-injection tests and CI: raised by the
    supervisor after writing a configured number of checkpoints, leaving
    a resumable checkpoint behind exactly as a SIGKILL would."""
