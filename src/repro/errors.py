"""Exception hierarchy for the analyzer."""

from __future__ import annotations

__all__ = [
    "ReproError",
    "PreprocessorError",
    "LexerError",
    "ParseError",
    "TypeError_",
    "UnsupportedConstructError",
    "LinkError",
    "AnalysisError",
]


class ReproError(Exception):
    """Base class for all analyzer errors."""


class SourceError(ReproError):
    """An error attached to a source location."""

    def __init__(self, message: str, filename: str = "<input>", line: int = 0, col: int = 0):
        self.filename = filename
        self.line = line
        self.col = col
        super().__init__(f"{filename}:{line}:{col}: {message}")


class PreprocessorError(SourceError):
    """Error during the C preprocessing phase."""


class LexerError(SourceError):
    """Error during tokenization."""


class ParseError(SourceError):
    """Error during parsing."""


class TypeError_(SourceError):
    """Error during type checking."""


class UnsupportedConstructError(SourceError):
    """A C construct outside the supported subset (rejected per Sect. 5.1)."""


class LinkError(ReproError):
    """Error while linking several translation units."""


class AnalysisError(ReproError):
    """Internal error during abstract execution."""
