"""Command-line interface: ``astree-repro``.

Subcommands:

* ``analyze FILE...`` — analyze C sources and print alarms;
* ``generate --kloc N --seed S`` — emit a family program to stdout;
* ``slice FILE --line L`` — backward slice from the alarm nearest a line;
* ``fuzz`` — run a soundness fuzzing campaign (or ``--replay`` one case);
* ``check-certificate CERT`` — independently validate an invariant
  certificate written by ``analyze --emit-certificate`` (exit 0 valid and
  alarm-free, 1 valid with alarms, 3 invalid — ``phase=certify``).

Exit codes (``analyze``; see :class:`repro.errors.ExitCode` and
docs/robustness.md): 0 all properties proved, 1 alarms at full
precision, 2 sound-but-degraded verdict (a resource budget tripped),
3 internal error / no verdict.  ``fuzz``: 0 campaign clean, 1 unsound
or crash outcomes found, 3 internal error.

On internal errors the CLI prints a structured one-line diagnostic to
stderr (``astree-repro: internal-error: phase=<...> class=<...>:
<message>``) before exiting 3, so wrappers never see a silent failure.
"""

from __future__ import annotations

import argparse
import json
import sys
from typing import List, Optional

from .analysis import analyze
from .config import AnalyzerConfig, baseline_config
from .errors import (
    AnalysisError, CertificateError, CheckpointError, ExitCode, LinkError,
    ReproError, ServeError, SourceError, SupervisorHalt,
)
from .frontend import read_source_file

__all__ = ["main"]


def _parse_ranges(items: Optional[List[str]]):
    out = {}
    for item in items or []:
        name, _, rng = item.partition("=")
        lo, _, hi = rng.partition(":")
        out[name] = (float(lo), float(hi))
    return out


def _build_config(args) -> AnalyzerConfig:
    base = baseline_config() if args.baseline else AnalyzerConfig()
    overrides = dict(input_ranges=_parse_ranges(args.input_range))
    if args.max_clock is not None:
        overrides["max_clock"] = args.max_clock
    if args.unroll is not None:
        overrides["default_unroll"] = args.unroll
    if args.partition:
        overrides["partition_functions"] = set(args.partition)
    if args.no_octagons:
        overrides["enable_octagons"] = False
    if args.no_ellipsoids:
        overrides["enable_ellipsoids"] = False
    if args.no_trees:
        overrides["enable_decision_trees"] = False
    if args.invariants:
        overrides["collect_invariants"] = True
    if getattr(args, "jobs", None) is not None:
        overrides["jobs"] = args.jobs
    if getattr(args, "dispatch", None) is not None:
        overrides["dispatch"] = args.dispatch
    if getattr(args, "workers", None):
        overrides["workers"] = tuple(
            w.strip() for w in args.workers.split(",") if w.strip())
        # An explicit fleet only makes sense over the socket backend.
        overrides.setdefault("dispatch", "socket")
    if getattr(args, "parallel_min_stmts", None) is not None:
        overrides["parallel_min_stmts"] = args.parallel_min_stmts
    if getattr(args, "incremental", None) is not None:
        overrides["incremental"] = args.incremental
    if getattr(args, "vectorize", None) is not None:
        overrides["vectorize"] = args.vectorize
    if getattr(args, "vectorize_min_cells", None) is not None:
        overrides["vectorize_min_cells"] = args.vectorize_min_cells
    if getattr(args, "deadline", None) is not None:
        overrides["wall_deadline_s"] = args.deadline
    if getattr(args, "max_rss", None) is not None:
        overrides["rss_limit_kib"] = int(args.max_rss * 1024)
    if getattr(args, "stmt_timeout", None) is not None:
        overrides["stmt_timeout_s"] = args.stmt_timeout
    if getattr(args, "checkpoint", None) is not None:
        overrides["checkpoint_path"] = args.checkpoint
    if getattr(args, "checkpoint_every", None) is not None:
        overrides["checkpoint_every"] = args.checkpoint_every
    if getattr(args, "resume", None) is not None:
        overrides["resume_path"] = args.resume
    if getattr(args, "certify", False) or \
            getattr(args, "emit_certificate", None):
        overrides["certify"] = True
    return base.with_overrides(**overrides)


def _print_stats(result) -> None:
    pt = result.phase_times
    print("-- stats --")
    phases = ["parse", "packing", "iteration", "checking"]
    if "certify" in pt:
        phases.append("certify")
    for phase in phases:
        print(f"  {phase:<10} {pt.get(phase, 0.0):8.3f}s")
        if phase == "iteration" and "iteration-transfer" in pt:
            print(f"    transfer {pt['iteration-transfer']:8.3f}s")
            print(f"    lattice  {pt['iteration-lattice']:8.3f}s")
    print(f"  total      {result.analysis_time:8.3f}s")
    print(f"  peak RSS   {result.peak_rss_kib / 1024.0:8.1f} MiB")
    print(f"  widening iterations: {result.widening_iterations}")
    mode = "incremental" if result.incremental else "full"
    total = result.stmts_executed + result.stmts_skipped
    pct = 100.0 * result.stmts_skipped / total if total else 0.0
    print(f"  statements ({mode}): executed={result.stmts_executed} "
          f"skipped={result.stmts_skipped} ({pct:.1f}% skipped)")
    if result.incremental:
        print(f"  lattice memo: hits={result.lattice_memo_hits} "
              f"misses={result.lattice_memo_misses}")
    if result.vectorize:
        print(f"  vectorized kernels: batches={result.vector_batches} "
              f"cells={result.vector_cells} "
              f"scalar fallbacks={result.vector_scalar_fallbacks}")
    else:
        print("  vectorized kernels: off (scalar oracle)")
    if result.cross_run_seeded or result.cross_run_hits:
        print(f"  cross-run cache: seeded={result.cross_run_seeded} "
              f"hits={result.cross_run_hits} "
              f"spliced={result.cross_run_spliced}")
    if result.jobs > 1:
        print(f"  jobs: {result.jobs} "
              f"(regions={result.parallel_regions}, "
              f"tasks={result.parallel_tasks}, "
              f"branch dispatches={result.branch_dispatches})")
    if result.dispatch != "none":
        print(f"  dispatch ({result.dispatch}): "
              f"dispatched={result.dispatch_jobs_dispatched} "
              f"stolen={result.dispatch_jobs_stolen} "
              f"retried={result.dispatch_jobs_retried}")
        print(f"    bytes shipped={result.dispatch_bytes_shipped} "
              f"serialize={pt.get('dispatch-serialize', 0.0):.3f}s "
              f"deserialize={pt.get('dispatch-deserialize', 0.0):.3f}s")
        if result.dispatch == "socket":
            print(f"    fleet: joined={result.dispatch_workers_joined} "
                  f"lost={result.dispatch_workers_lost}")
        if result.worker_rss_kib:
            fleet = ", ".join(
                f"{label}={kib / 1024.0:.1f} MiB"
                for label, kib in sorted(result.worker_rss_kib.items()))
            print(f"    worker RSS: {fleet}")
            print(f"    fleet peak RSS: "
                  f"{result.fleet_peak_rss_kib / 1024.0:.1f} MiB")
    if result.incidents:
        print(f"  incidents ({len(result.incidents)}):")
        for inc in result.incidents:
            print(f"    [{inc.at_s:8.3f}s] {inc.kind}: {inc.action} "
                  f"— {inc.detail}")


def cmd_analyze(args) -> int:
    # read_source_file rejects BOMs, CRLF line endings and non-UTF-8
    # bytes with a located PreprocessorError (exit 3) instead of letting
    # a UnicodeDecodeError escape.
    sources = [(path, read_source_file(path)) for path in args.files]
    cfg = _build_config(args)
    result = analyze(sources, config=cfg, entry=args.entry)
    certification = None
    if args.certify or args.emit_certificate:
        import time as _time

        from .certify import (build_certificate, certify_result,
                              save_certificate)

        t0 = _time.perf_counter()
        if args.emit_certificate:
            cert = build_certificate(result, sources)
            save_certificate(cert, args.emit_certificate)
            meta = cert["payload"]["meta"]
            certification = {
                "stmt_records": len(cert["payload"]["stmt_records"]),
                "loop_records": len(cert["payload"]["loop_records"]),
                "substitutions": meta["substitutions"],
                "claimed_alarms": len(cert["payload"]["alarms"]),
                "digest": cert["digest"],
                "path": args.emit_certificate,
            }
        else:
            summ = certify_result(result, sources)
            certification = {
                "stmt_records": summ.stmt_records,
                "loop_records": summ.loop_records,
                "substitutions": summ.substitutions,
                "claimed_alarms": summ.claimed_alarms,
            }
        result.phase_times["certify"] = _time.perf_counter() - t0
    if args.json:
        payload = {
            "alarms": [
                {"kind": a.kind, "file": a.loc.filename, "line": a.loc.line,
                 "col": a.loc.col, "message": a.message}
                for a in result.alarms
            ],
            "alarm_count": result.alarm_count,
            "analysis_time_s": result.analysis_time,
            "octagon_packs": result.octagon_pack_count,
            "useful_octagon_packs": len(result.useful_octagon_packs),
            "bool_packs": result.bool_pack_count,
            "filter_sites": result.filter_site_count,
            "degraded": result.degraded,
            "degradation_steps": result.degradation_steps,
            "resumed": result.resumed,
            "incidents": [
                {"kind": i.kind, "action": i.action, "detail": i.detail,
                 "at_s": i.at_s}
                for i in result.incidents
            ],
            "exit_code": result.exit_code,
        }
        if certification is not None:
            payload["certification"] = certification
        if args.stats or args.profile_phases:
            payload["phase_times_s"] = result.phase_times
            payload["peak_rss_kib"] = result.peak_rss_kib
            payload["jobs"] = result.jobs
            payload["parallel_regions"] = result.parallel_regions
            payload["parallel_tasks"] = result.parallel_tasks
            payload["dispatch"] = result.dispatch
            payload["dispatch_jobs_dispatched"] = \
                result.dispatch_jobs_dispatched
            payload["dispatch_jobs_stolen"] = result.dispatch_jobs_stolen
            payload["dispatch_jobs_retried"] = result.dispatch_jobs_retried
            payload["dispatch_bytes_shipped"] = result.dispatch_bytes_shipped
            payload["dispatch_workers_joined"] = \
                result.dispatch_workers_joined
            payload["dispatch_workers_lost"] = result.dispatch_workers_lost
            payload["worker_rss_kib"] = dict(
                sorted(result.worker_rss_kib.items()))
            payload["fleet_peak_rss_kib"] = result.fleet_peak_rss_kib
            payload["widening_iterations"] = result.widening_iterations
            payload["incremental"] = result.incremental
            payload["stmts_executed"] = result.stmts_executed
            payload["stmts_skipped"] = result.stmts_skipped
            payload["lattice_memo_hits"] = result.lattice_memo_hits
            payload["lattice_memo_misses"] = result.lattice_memo_misses
            payload["vectorize"] = result.vectorize
            payload["vector_batches"] = result.vector_batches
            payload["vector_cells"] = result.vector_cells
            payload["vector_scalar_fallbacks"] = result.vector_scalar_fallbacks
            payload["cross_run_seeded"] = result.cross_run_seeded
            payload["cross_run_hits"] = result.cross_run_hits
            payload["cross_run_spliced"] = result.cross_run_spliced
        print(json.dumps(payload, indent=2))
    else:
        for a in result.alarms:
            print(a)
        print(f"-- {result.alarm_count} alarm(s) in "
              f"{result.analysis_time:.2f}s "
              f"({result.octagon_pack_count} octagon packs, "
              f"{len(result.useful_octagon_packs)} useful; "
              f"{result.bool_pack_count} boolean packs; "
              f"{result.filter_site_count} filter sites)")
        if certification is not None:
            where = (f", written to {certification['path']}"
                     if "path" in certification else "")
            print(f"-- certified: {certification['stmt_records']} "
                  f"statement record(s), "
                  f"{certification['loop_records']} loop invariant(s), "
                  f"{certification['substitutions']} narrowing "
                  f"substitution(s){where}")
        if result.degraded:
            print("-- DEGRADED: a resource budget tripped; the verdict is "
                  "sound but coarser than the configured precision "
                  f"(rungs applied: {', '.join(result.degradation_steps)})")
        if result.resumed:
            print("-- resumed from checkpoint")
        if args.stats or args.profile_phases:
            _print_stats(result)
        if args.invariants:
            print("-- main loop invariant --")
            print(result.dump_invariant_text())
    return result.exit_code


def cmd_generate(args) -> int:
    from .synth import FamilySpec, generate_program

    gp = generate_program(FamilySpec(target_kloc=args.kloc, seed=args.seed))
    if args.spec_out:
        with open(args.spec_out, "w") as f:
            json.dump({"input_ranges": gp.input_ranges,
                       "max_clock": gp.max_clock}, f, indent=2)
    sys.stdout.write(gp.source)
    return 0


def cmd_slice(args) -> int:
    from .slicer import Slicer

    text = read_source_file(args.file)
    cfg = _build_config(args)
    result = analyze(text, args.file, config=cfg, entry=args.entry)
    if not result.alarms:
        print("no alarms; nothing to slice")
        return 0
    target = min(result.alarms,
                 key=lambda a: abs(a.loc.line - (args.line or a.loc.line)))
    slicer = Slicer(result.ctx.prog, result.ctx.table)
    sl = slicer.slice_for_alarm(target)
    print(f"criterion: {target}")
    print(sl.format())
    return 0


def cmd_fuzz(args) -> int:
    from .fuzz import CampaignConfig, replay_case, run_campaign
    from .report import render_campaign_markdown

    if args.replay:
        res = replay_case(args.replay, isolation=not args.in_process,
                          case_timeout_s=args.case_timeout)
        verdict = res.to_json(full=True)
        # The replayed verdict is bit-identical run to run; keep the
        # printed form that way too (timing is not part of the verdict).
        del verdict["wall_time_s"]
        print(json.dumps(verdict, indent=2, sort_keys=True))
        return 1 if res.outcome in ("crash", "unsound", "timeout") else 0

    config = CampaignConfig(
        campaign_seed=args.seed,
        cases=args.cases,
        max_wall_s=args.max_wall,
        case_timeout_s=args.case_timeout,
        isolation=not args.in_process,
        corpus_dir=args.corpus,
        reduce_failures=not args.no_reduce,
        min_kloc=args.min_kloc,
        max_kloc=args.max_kloc,
        max_mutations=args.max_mutations,
        streams=args.streams,
        max_ticks=args.max_ticks,
        inject_crash=args.inject_crash,
        exercise_no_vectorize=args.no_vectorize,
    )

    def progress(res) -> None:
        if not args.quiet:
            print(f"[{res.spec.case_id}] {res.outcome} "
                  f"({res.wall_time_s:.1f}s)", flush=True)

    report = run_campaign(config, progress=progress)
    if args.json_out:
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report.to_json(), f, indent=1, sort_keys=True)
            f.write("\n")
    if args.json:
        print(json.dumps(report.to_json(), indent=1, sort_keys=True))
    else:
        print(render_campaign_markdown(report), end="")
    return 0 if report.ok else 1


def cmd_check_certificate(args) -> int:
    from .certify import check_certificate

    chk = check_certificate(args.certificate)
    if args.json:
        print(json.dumps({
            "valid": True,
            "entry": chk.entry,
            "source_digest": chk.source_digest,
            "config_fingerprint": chk.config_fingerprint,
            "stmts_checked": chk.stmts_checked,
            "loops_checked": chk.loops_checked,
            "claimed_alarms": chk.claimed_alarms,
            "replay_alarms": chk.replay_alarms,
            "wall_s": chk.wall_s,
            "exit_code": chk.exit_code,
        }, indent=2))
    else:
        print(f"certificate valid: {chk.stmts_checked} statement "
              f"record(s), {chk.loops_checked} loop invariant(s) "
              f"re-verified in {chk.wall_s:.3f}s "
              f"(entry {chk.entry}, sources {chk.source_digest[:12]})")
        if chk.claimed_alarms:
            print(f"-- the certified run carries {chk.claimed_alarms} "
                  f"alarm(s) ({chk.replay_alarms} re-raised by the "
                  f"replay): exit 1")
        else:
            print("-- the certified run proved every property: exit 0")
    return chk.exit_code


def cmd_serve(args) -> int:
    import signal
    import threading

    from .serve.server import AnalysisServer, ServeConfig

    sc = ServeConfig(
        socket_path=args.socket,
        cache_dir=args.cache_dir,
        max_queue=args.max_queue,
        job_deadline_s=args.job_deadline,
        job_rss_limit_kib=(int(args.job_max_rss * 1024)
                           if args.job_max_rss else None),
        job_hard_timeout_s=args.job_hard_timeout,
        isolate_jobs=args.isolate_jobs,
        drain_deadline_s=args.drain_deadline,
        backoff_seed=args.backoff_seed,
        certify_serve=args.certify_serve,
    )
    server = AnalysisServer(sc)
    # SIGTERM/SIGINT start a graceful drain: stop accepting, settle the
    # in-flight job within the drain deadline, flush stores, remove the
    # socket, exit 0.  Only the main thread may install handlers.
    previous = {}
    on_main = threading.current_thread() is threading.main_thread()
    if on_main:
        for sig in (signal.SIGTERM, signal.SIGINT):
            previous[sig] = signal.signal(
                sig, lambda signum, frame: server.stop())
    mode = "isolated worker" if sc.isolate_jobs else "in-process"
    print(f"astree-repro serve: listening on {args.socket} ({mode})"
          + (f", cache at {args.cache_dir}" if args.cache_dir else
             ", in-memory caches"), flush=True)
    try:
        server.serve_forever()
    finally:
        for sig, handler in previous.items():
            signal.signal(sig, handler)
    print("astree-repro serve: stopped", flush=True)
    return 0


def cmd_worker(args) -> int:
    from .parallel import remote

    argv = ["--listen", args.listen]
    if args.once:
        argv.append("--once")
    return remote.main(argv)


def cmd_client(args) -> int:
    from .report import render_serve_stats
    from .serve.client import ServeClient

    with ServeClient(args.socket, timeout=args.timeout) as client:
        if args.op == "ping":
            print(json.dumps(client.ping(), indent=2))
            return 0
        if args.op == "health":
            reply = client.health()
            if not reply.get("ok"):
                print(f"error: {reply.get('error')}", file=sys.stderr)
                return int(ExitCode.INTERNAL_ERROR)
            print(json.dumps(reply["health"], indent=2, sort_keys=True))
            return 0
        if args.op == "stats":
            reply = client.stats()
            if not reply.get("ok"):
                print(f"error: {reply.get('error')}", file=sys.stderr)
                return int(ExitCode.INTERNAL_ERROR)
            if args.json:
                print(json.dumps(reply["stats"], indent=2, sort_keys=True))
            else:
                print(render_serve_stats(reply["stats"]), end="")
            return 0
        if args.op == "shutdown":
            print(json.dumps(client.shutdown(), indent=2))
            return 0

        if not args.files:
            print("error: submit needs at least one source file",
                  file=sys.stderr)
            return int(ExitCode.INTERNAL_ERROR)
        sources = [(path, read_source_file(path)) for path in args.files]
        overrides = {}
        ranges = _parse_ranges(args.input_range)
        if ranges:
            overrides["input_ranges"] = {k: list(v)
                                         for k, v in ranges.items()}
        if args.max_clock is not None:
            overrides["max_clock"] = args.max_clock

        if args.edit_loop:
            if len(sources) != 1:
                print("error: --edit-loop takes exactly one source file",
                      file=sys.stderr)
                return int(ExitCode.INTERNAL_ERROR)
            name, text = sources[0]
            summary = client.edit_loop(name, text, args.edit_loop,
                                       entry=args.entry, config=overrides)
            if args.json:
                print(json.dumps(summary, indent=2))
            else:
                for row in summary["rounds"]:
                    tag = "exact-hit" if row["cached"] else "run"
                    ident = ("" if "bit_identical" not in row else
                             " bit-identical" if row["bit_identical"]
                             else " MISMATCH")
                    print(f"round {row['round']:>3}: {tag:<9} "
                          f"{row['server_wall_s']*1000:9.2f} ms  "
                          f"cross-run hits {row['cross_run_hits']:>4}"
                          f"{ident}")
                print(f"cold {summary['cold_wall_s']*1000:.1f} ms, "
                      f"warm avg {summary['warm_avg_wall_s']*1000:.1f} ms, "
                      f"{summary['mismatches']} mismatch(es)")
            return 0 if summary["mismatches"] == 0 else 1

        reply = client.submit(sources, entry=args.entry, config=overrides,
                              bypass_cache=args.bypass_cache,
                              retries=args.retries)
        if not reply.get("ok"):
            kind = ("quarantined" if reply.get("poisoned") else
                    "retryable" if reply.get("retryable") else "failed")
            print(f"error ({kind}): {reply.get('error')}", file=sys.stderr)
            return int(ExitCode.INTERNAL_ERROR)
        result = reply["result"]
        if args.json:
            out = dict(result)
            out["cached"] = reply["cached"]
            out["digest"] = reply["digest"]
            out["server_wall_s"] = reply["wall_s"]
            out["queue_depth"] = reply.get("queue_depth", 0)
            print(json.dumps(out, indent=2))
        else:
            for a in result["alarms"]:
                print(f"{a['file']}:{a['line']}:{a['col']}: "
                      f"[{a['kind']}] {a['message']}")
            disposition = "cached" if reply["cached"] else "analyzed"
            print(f"-- {result['alarm_count']} alarm(s), {disposition} in "
                  f"{reply['wall_s']:.3f}s (digest {reply['digest'][:12]})")
            if args.stats:
                print(f"   cross-run: seeded={result['cross_run_seeded']} "
                      f"hits={result['cross_run_hits']} "
                      f"spliced={result['cross_run_spliced']}")
                print(f"   queue depth at submit: "
                      f"{reply.get('queue_depth', 0)}")
        return int(result["exit_code"])


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="astree-repro",
        description="Abstract-interpretation analyzer for periodic "
                    "synchronous C programs (PLDI 2003 reproduction)")
    sub = parser.add_subparsers(dest="cmd", required=True)

    pa = sub.add_parser("analyze", help="analyze C source files")
    pa.add_argument("files", nargs="+")
    pa.add_argument("--entry", default="main")
    pa.add_argument("--input-range", action="append", metavar="NAME=LO:HI",
                    help="volatile input range (repeatable)")
    pa.add_argument("--max-clock", type=int, default=None)
    pa.add_argument("--unroll", type=int, default=None)
    pa.add_argument("--partition", action="append", metavar="FUNC",
                    help="enable trace partitioning in a function")
    pa.add_argument("--baseline", action="store_true",
                    help="use the interval-only baseline analyzer")
    pa.add_argument("--no-octagons", action="store_true")
    pa.add_argument("--no-ellipsoids", action="store_true")
    pa.add_argument("--no-trees", action="store_true")
    pa.add_argument("--invariants", action="store_true",
                    help="dump the main loop invariant")
    pa.add_argument("--jobs", type=int, default=None, metavar="N",
                    help="analysis worker processes (default 1 = "
                         "sequential; results are identical either way)")
    pa.add_argument("--dispatch", choices=("inline", "pool", "socket"),
                    default=None,
                    help="where parallel work units execute: a local "
                         "process pool (the default), in-process "
                         "(zero-copy overhead floor), or a socket worker "
                         "fleet with work-stealing (bit-identical "
                         "results in every case)")
    pa.add_argument("--workers", default=None, metavar="ADDR,...",
                    help="socket-dispatch fleet: comma-separated "
                         "HOST:PORT or unix:PATH worker addresses "
                         "(implies --dispatch socket; omit to auto-spawn "
                         "local workers)")
    pa.add_argument("--parallel-min-stmts", dest="parallel_min_stmts",
                    type=int, default=None, metavar="N",
                    help="minimum footprint weight of a block region "
                         "before its units are dispatched to workers "
                         "(default 48)")
    pa.add_argument("--incremental", dest="incremental",
                    action="store_true", default=None,
                    help="dependency-sliced body re-execution inside "
                         "fixpoints (the default; bit-identical results)")
    pa.add_argument("--no-incremental", dest="incremental",
                    action="store_false",
                    help="fall back to full body re-execution (the "
                         "pre-incremental engine, no sharing caches)")
    pa.add_argument("--vectorize", dest="vectorize",
                    action="store_true", default=None,
                    help="batched numpy lattice kernels for environment "
                         "merges and octagon closure (the default; "
                         "bit-identical results)")
    pa.add_argument("--no-vectorize", dest="vectorize",
                    action="store_false",
                    help="fall back to the scalar-oracle kernels "
                         "(the differential-testing reference)")
    pa.add_argument("--vectorize-min-cells", dest="vectorize_min_cells",
                    type=int, default=None, metavar="N",
                    help="crossover heuristic: minimum differing float "
                         "cells in one environment merge before the "
                         "batched kernel engages (default 16)")
    pa.add_argument("--certify", action="store_true",
                    help="record invariant certificates during the run and "
                         "validate the result by an independent "
                         "one-application replay (fails exit 3 with "
                         "phase=certify if the result is not a "
                         "re-verifiable post-fixpoint)")
    pa.add_argument("--emit-certificate", dest="emit_certificate",
                    default=None, metavar="PATH",
                    help="write the validated, content-addressed "
                         "certificate artifact to PATH (implies "
                         "--certify; check later with "
                         "'astree-repro check-certificate PATH')")
    pa.add_argument("--stats", action="store_true",
                    help="report per-phase wall time and peak RSS")
    pa.add_argument("--profile-phases", dest="profile_phases",
                    action="store_true",
                    help="alias of --stats (phase breakdown)")
    pa.add_argument("--json", action="store_true")
    pa.add_argument("--strict", action="store_true",
                    help="deprecated no-op: alarms now exit 1 by default "
                         "(see the exit-code contract)")
    pa.add_argument("--deadline", type=float, default=None, metavar="SECONDS",
                    help="wall-clock budget; on overrun the analysis "
                         "degrades to a sound coarser verdict (exit 2)")
    pa.add_argument("--max-rss", type=float, default=None, metavar="MIB",
                    help="peak-RSS budget (analyzer + workers) in MiB")
    pa.add_argument("--stmt-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="soft per-statement budget sampled at statement "
                         "boundaries")
    pa.add_argument("--checkpoint", default=None, metavar="PATH",
                    help="serialize resumable checkpoints to PATH at "
                         "outermost fixpoint-iteration boundaries")
    pa.add_argument("--checkpoint-every", type=int, default=None, metavar="N",
                    help="write every Nth iteration checkpoint (default 1)")
    pa.add_argument("--resume", default=None, metavar="PATH",
                    help="resume from a checkpoint written by --checkpoint "
                         "(bit-identical to an uninterrupted run)")
    pa.set_defaults(func=cmd_analyze)

    pg = sub.add_parser("generate", help="generate a family program")
    pg.add_argument("--kloc", type=float, default=1.0)
    pg.add_argument("--seed", type=int, default=42)
    pg.add_argument("--spec-out", default=None,
                    help="write input-range spec JSON to this path")
    pg.set_defaults(func=cmd_generate)

    ps = sub.add_parser("slice", help="slice from an alarm point")
    ps.add_argument("file")
    ps.add_argument("--line", type=int, default=None)
    ps.add_argument("--entry", default="main")
    ps.add_argument("--input-range", action="append", metavar="NAME=LO:HI")
    ps.add_argument("--max-clock", type=int, default=None)
    ps.add_argument("--unroll", type=int, default=None)
    ps.add_argument("--partition", action="append")
    ps.add_argument("--baseline", action="store_true")
    ps.add_argument("--no-octagons", action="store_true")
    ps.add_argument("--no-ellipsoids", action="store_true")
    ps.add_argument("--no-trees", action="store_true")
    ps.add_argument("--invariants", action="store_true")
    ps.set_defaults(func=cmd_slice)

    pf = sub.add_parser("fuzz", help="run a soundness fuzzing campaign")
    pf.add_argument("--seed", type=int, default=0,
                    help="campaign seed; every case spec, mutation and "
                         "input stream derives from it (default 0)")
    pf.add_argument("--cases", type=int, default=50,
                    help="number of cases to generate (default 50)")
    pf.add_argument("--max-wall", type=float, default=None,
                    metavar="SECONDS",
                    help="campaign wall-clock budget; remaining cases "
                         "are skipped once it trips")
    pf.add_argument("--case-timeout", type=float, default=120.0,
                    metavar="SECONDS",
                    help="per-case subprocess timeout (default 120)")
    pf.add_argument("--in-process", action="store_true",
                    help="run cases in this process instead of isolated "
                         "workers (faster, but a crash kills the run)")
    pf.add_argument("--corpus", default=None, metavar="DIR",
                    help="persist failing case specs (and reductions) "
                         "as replayable JSON files in DIR")
    pf.add_argument("--replay", default=None, metavar="CASE.json",
                    help="re-execute one corpus case and print its "
                         "verdict (bit-identical digest)")
    pf.add_argument("--no-reduce", action="store_true",
                    help="skip delta-debugging reduction of failures")
    pf.add_argument("--streams", type=int, default=3,
                    help="concrete input streams per case (default 3)")
    pf.add_argument("--max-ticks", type=int, default=48,
                    help="concrete ticks per stream (default 48)")
    pf.add_argument("--min-kloc", type=float, default=0.06)
    pf.add_argument("--max-kloc", type=float, default=0.2)
    pf.add_argument("--max-mutations", type=int, default=3)
    pf.add_argument("--no-vectorize", dest="no_vectorize",
                    action="store_true",
                    help="run every other case with the scalar-oracle "
                         "kernels and differentially compare its "
                         "verdict against the vectorized backend")
    pf.add_argument("--inject-crash", default=None, metavar="BLOCK",
                    help="fault injection: crash the worker on cases "
                         "whose program contains this block type "
                         "(validates triage and reduction)")
    pf.add_argument("--json", action="store_true",
                    help="print the campaign report as JSON")
    pf.add_argument("--json-out", default=None, metavar="PATH",
                    help="also write the campaign report JSON to PATH")
    pf.add_argument("--quiet", action="store_true",
                    help="suppress per-case progress lines")
    pf.set_defaults(func=cmd_fuzz)

    pcc = sub.add_parser(
        "check-certificate",
        help="independently validate an invariant certificate")
    pcc.add_argument("certificate", metavar="CERT",
                     help="certificate file written by "
                          "analyze --emit-certificate")
    pcc.add_argument("--json", action="store_true")
    pcc.set_defaults(func=cmd_check_certificate)

    pv = sub.add_parser("serve",
                        help="run the analysis daemon on a Unix socket")
    pv.add_argument("--socket", default="astree-serve.sock", metavar="PATH",
                    help="Unix socket path to listen on")
    pv.add_argument("--cache-dir", default=None, metavar="DIR",
                    help="persistent cache directory (results + fixpoint "
                         "journals); omit for in-memory caches only")
    pv.add_argument("--max-queue", type=int, default=64, metavar="N",
                    help="bound on pending jobs before submits are refused")
    pv.add_argument("--job-deadline", type=float, default=300.0,
                    metavar="SECONDS",
                    help="default per-job wall budget (supervisor)")
    pv.add_argument("--job-max-rss", type=float, default=None, metavar="MIB",
                    help="default per-job RSS budget (supervisor)")
    pv.add_argument("--job-hard-timeout", type=float, default=None,
                    metavar="SECONDS",
                    help="parent-side hard ceiling per job: the analysis "
                         "worker is killed after this long (outer backstop "
                         "over the in-analysis budgets)")
    pv.add_argument("--no-isolate-jobs", dest="isolate_jobs",
                    action="store_false", default=True,
                    help="run jobs in the daemon process instead of the "
                         "supervised worker subprocess (no crash "
                         "isolation)")
    pv.add_argument("--drain-deadline", type=float, default=10.0,
                    metavar="SECONDS",
                    help="graceful-shutdown budget for the in-flight job "
                         "before escalation (default 10)")
    pv.add_argument("--backoff-seed", type=int, default=None, metavar="N",
                    help="seed for worker restart backoff jitter "
                         "(deterministic chaos tests)")
    pv.add_argument("--certify-serve", dest="certify_serve",
                    choices=("off", "sampled", "all"), default="sampled",
                    help="validate journal-warmed results by invariant "
                         "certification before they are cached or "
                         "returned: every warm hit (all), a "
                         "deterministic 1-in-8 sample (sampled, the "
                         "default), or never (off); a warm result that "
                         "fails certification is discarded and re-run "
                         "cold")
    pv.set_defaults(func=cmd_serve)

    pc = sub.add_parser("client",
                        help="submit analyses to a running daemon")
    pc.add_argument("files", nargs="*")
    pc.add_argument("--socket", default="astree-serve.sock", metavar="PATH")
    pc.add_argument("--entry", default="main")
    pc.add_argument("--input-range", action="append", metavar="NAME=LO:HI")
    pc.add_argument("--max-clock", type=int, default=None)
    pc.add_argument("--op",
                    choices=["submit", "stats", "health", "shutdown",
                             "ping"],
                    default="submit")
    pc.add_argument("--retries", type=int, default=2, metavar="N",
                    help="resubmit attempts on connection loss or "
                         "retryable refusals (queue full, draining; "
                         "default 2)")
    pc.add_argument("--bypass-cache", action="store_true",
                    help="force a cold run (reference for differential "
                         "checks)")
    pc.add_argument("--edit-loop", type=int, default=None, metavar="N",
                    help="benchmark driver: submit the source plus N "
                         "perturbed near-duplicates, checking each warm "
                         "result against a bypass-cache reference")
    pc.add_argument("--timeout", type=float, default=600.0, metavar="SECONDS")
    pc.add_argument("--stats", action="store_true",
                    help="print per-request cache/queue feedback")
    pc.add_argument("--json", action="store_true")
    pc.set_defaults(func=cmd_client)

    pw = sub.add_parser(
        "worker",
        help="run a socket dispatch worker for --dispatch socket")
    pw.add_argument("--listen", "--worker-listen", dest="listen",
                    required=True, metavar="HOST:PORT|unix:PATH",
                    help="address to serve on (port 0 picks a free port "
                         "and prints the chosen address)")
    pw.add_argument("--once", action="store_true",
                    help="serve a single analyzer connection, then exit")
    pw.set_defaults(func=cmd_worker)

    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except Exception as exc:  # noqa: BLE001 — single structured funnel
        return _internal_error(exc)


def _error_phase(exc: BaseException) -> str:
    """Coarse phase classification for the structured diagnostic."""
    if isinstance(exc, (SourceError, LinkError)):
        return "frontend"
    if isinstance(exc, CertificateError):
        return "certify"
    if isinstance(exc, CheckpointError):
        return "checkpoint"
    if isinstance(exc, ServeError):
        return "serve"
    if isinstance(exc, (AnalysisError, SupervisorHalt)):
        return "analysis"
    if isinstance(exc, ReproError):
        return "analyzer"
    if isinstance(exc, OSError):
        return "io"
    return "unexpected"


def _internal_error(exc: BaseException) -> int:
    """No verdict was produced.  Emit a structured one-line diagnostic
    (phase, exception class, message) to stderr — never exit 3 silently
    — with a traceback first for genuinely unexpected exceptions."""
    phase = _error_phase(exc)
    if phase == "unexpected":
        import traceback

        traceback.print_exc()
    message = str(exc) or exc.__class__.__name__
    print(f"astree-repro: internal-error: phase={phase} "
          f"class={type(exc).__name__}: {message}", file=sys.stderr)
    return int(ExitCode.INTERNAL_ERROR)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
