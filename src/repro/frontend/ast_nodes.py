"""Abstract syntax tree produced by the parser (untyped).

The type checker decorates expressions with types; :mod:`repro.frontend.
lowering` then compiles the AST into the simplified intermediate
representation of :mod:`repro.frontend.ir` (Sect. 5.1: "a simplified version
of the abstract syntax tree with all types explicit and variables given
unique identifiers").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Tuple

__all__ = [
    "Location",
    # expressions
    "Expr", "IntLit", "FloatLit", "Ident", "Unary", "Binary", "Assign",
    "Conditional", "Call", "Index", "Member", "Cast", "SizeOf", "Comma",
    # statements
    "Stmt", "ExprStmt", "CompoundStmt", "IfStmt", "WhileStmt", "DoWhileStmt",
    "ForStmt", "ReturnStmt", "BreakStmt", "ContinueStmt", "EmptyStmt",
    "DeclStmt", "SwitchStmt", "CaseLabel", "GotoStmt", "LabelStmt",
    # declarations
    "TypeSpec", "NamedType", "StructSpec", "EnumSpec", "Declarator",
    "InitItem", "VarDecl", "ParamDecl", "FuncDef", "TypedefDecl",
    "TranslationUnit",
]


@dataclass(frozen=True)
class Location:
    filename: str
    line: int
    col: int

    def __str__(self) -> str:
        return f"{self.filename}:{self.line}:{self.col}"


UNKNOWN_LOC = Location("<unknown>", 0, 0)


# --------------------------------------------------------------------------
# Expressions


@dataclass
class Expr:
    loc: Location = field(default=UNKNOWN_LOC, kw_only=True)
    ctype: object = field(default=None, kw_only=True)  # set by the typechecker


@dataclass
class IntLit(Expr):
    value: int = 0
    suffix: str = ""


@dataclass
class FloatLit(Expr):
    value: float = 0.0
    suffix: str = ""


@dataclass
class Ident(Expr):
    name: str = ""


@dataclass
class Unary(Expr):
    op: str = ""  # -, +, !, ~, &, *, ++pre, --pre, post++, post--
    operand: Expr = None


@dataclass
class Binary(Expr):
    op: str = ""
    left: Expr = None
    right: Expr = None


@dataclass
class Assign(Expr):
    op: str = "="  # =, +=, -=, ...
    target: Expr = None
    value: Expr = None


@dataclass
class Conditional(Expr):
    cond: Expr = None
    then: Expr = None
    other: Expr = None


@dataclass
class Call(Expr):
    func: str = ""
    args: List[Expr] = field(default_factory=list)


@dataclass
class Index(Expr):
    base: Expr = None
    index: Expr = None


@dataclass
class Member(Expr):
    base: Expr = None
    name: str = ""
    arrow: bool = False


@dataclass
class Cast(Expr):
    target_type: "TypeSpec" = None
    operand: Expr = None


@dataclass
class SizeOf(Expr):
    target_type: Optional["TypeSpec"] = None
    operand: Optional[Expr] = None


@dataclass
class Comma(Expr):
    parts: List[Expr] = field(default_factory=list)


# --------------------------------------------------------------------------
# Type specifiers (syntactic)


@dataclass
class TypeSpec:
    loc: Location = field(default=UNKNOWN_LOC, kw_only=True)


@dataclass
class NamedType(TypeSpec):
    """Builtin combination ('unsigned int') or a typedef name."""

    name: str = ""
    pointer_depth: int = 0


@dataclass
class StructSpec(TypeSpec):
    tag: str = ""
    # None for a reference to a previously declared struct.
    fields: Optional[List["VarDecl"]] = None
    pointer_depth: int = 0


@dataclass
class EnumSpec(TypeSpec):
    tag: str = ""
    # (name, explicit value or None)
    members: Optional[List[Tuple[str, Optional[Expr]]]] = None
    pointer_depth: int = 0


# --------------------------------------------------------------------------
# Statements


@dataclass
class Stmt:
    loc: Location = field(default=UNKNOWN_LOC, kw_only=True)


@dataclass
class ExprStmt(Stmt):
    expr: Expr = None


@dataclass
class CompoundStmt(Stmt):
    items: List[Stmt] = field(default_factory=list)
    block_id: int = -1  # filled by the parser; used by packing (Sect. 7.2.1)


@dataclass
class IfStmt(Stmt):
    cond: Expr = None
    then: Stmt = None
    other: Optional[Stmt] = None


@dataclass
class WhileStmt(Stmt):
    cond: Expr = None
    body: Stmt = None


@dataclass
class DoWhileStmt(Stmt):
    body: Stmt = None
    cond: Expr = None


@dataclass
class ForStmt(Stmt):
    init: Optional[Stmt] = None
    cond: Optional[Expr] = None
    step: Optional[Expr] = None
    body: Stmt = None


@dataclass
class ReturnStmt(Stmt):
    value: Optional[Expr] = None


@dataclass
class BreakStmt(Stmt):
    pass


@dataclass
class ContinueStmt(Stmt):
    pass


@dataclass
class EmptyStmt(Stmt):
    pass


@dataclass
class CaseLabel:
    value: Optional[Expr]  # None for default:
    body: List[Stmt] = field(default_factory=list)
    falls_through: bool = False


@dataclass
class SwitchStmt(Stmt):
    scrutinee: Expr = None
    cases: List[CaseLabel] = field(default_factory=list)


@dataclass
class GotoStmt(Stmt):
    label: str = ""


@dataclass
class LabelStmt(Stmt):
    label: str = ""
    body: Stmt = None


@dataclass
class DeclStmt(Stmt):
    decls: List["VarDecl"] = field(default_factory=list)


# --------------------------------------------------------------------------
# Declarations


@dataclass
class Declarator:
    name: str = ""
    # Array dimensions, outermost first; empty for scalars.
    array_dims: List[Expr] = field(default_factory=list)
    pointer_depth: int = 0


@dataclass
class InitItem:
    """An initializer: a single expression or a brace list."""

    expr: Optional[Expr] = None
    items: Optional[List["InitItem"]] = None


@dataclass
class VarDecl:
    name: str = ""
    type_spec: TypeSpec = None
    declarator: Declarator = None
    init: Optional[InitItem] = None
    is_volatile: bool = False
    is_const: bool = False
    is_static: bool = False
    is_extern: bool = False
    loc: Location = UNKNOWN_LOC


@dataclass
class ParamDecl:
    name: str = ""
    type_spec: TypeSpec = None
    declarator: Declarator = None
    loc: Location = UNKNOWN_LOC


@dataclass
class FuncDef:
    name: str = ""
    ret_type: TypeSpec = None
    params: List[ParamDecl] = field(default_factory=list)
    body: Optional[CompoundStmt] = None  # None for prototypes
    is_static: bool = False
    loc: Location = UNKNOWN_LOC


@dataclass
class TypedefDecl:
    name: str = ""
    type_spec: TypeSpec = None
    declarator: Declarator = None
    loc: Location = UNKNOWN_LOC


@dataclass
class TranslationUnit:
    filename: str = "<input>"
    decls: List[object] = field(default_factory=list)  # VarDecl | FuncDef | TypedefDecl
