"""The C type system of the supported subset (Sect. 5.1, 5.3).

Machine-dependent aspects (sizes of arithmetic types, signedness of plain
``char``) follow a fixed 32-bit target description, as the paper's analyzer
takes "some information about the target environment (... the sizes of the
arithmetic types, etc.)" as an input.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from ..numeric import BINARY32, BINARY64, FloatFormat

__all__ = [
    "CType",
    "IntType",
    "FloatType",
    "VoidType",
    "ArrayType",
    "RecordType",
    "PointerType",
    "FunctionType",
    "EnumType",
    "BOOL",
    "CHAR",
    "SCHAR",
    "UCHAR",
    "SHORT",
    "USHORT",
    "INT",
    "UINT",
    "LONG",
    "ULONG",
    "FLOAT",
    "DOUBLE",
    "VOID",
    "usual_arithmetic_conversion",
    "integer_promotion",
]


class CType:
    """Base class of all C types."""

    def is_scalar(self) -> bool:
        return isinstance(self, (IntType, FloatType, EnumType, PointerType))

    def is_arithmetic(self) -> bool:
        return isinstance(self, (IntType, FloatType, EnumType))

    def is_integer(self) -> bool:
        return isinstance(self, (IntType, EnumType))

    def is_float(self) -> bool:
        return isinstance(self, FloatType)


@dataclass(frozen=True)
class IntType(CType):
    """An integer type with explicit width and signedness."""

    name: str
    bits: int
    signed: bool

    @property
    def min_value(self) -> int:
        return -(1 << (self.bits - 1)) if self.signed else 0

    @property
    def max_value(self) -> int:
        return (1 << (self.bits - 1)) - 1 if self.signed else (1 << self.bits) - 1

    @property
    def rank(self) -> int:
        return self.bits

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class FloatType(CType):
    """A floating-point type backed by an IEEE format."""

    name: str
    fmt: FloatFormat

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True)
class VoidType(CType):
    def __str__(self) -> str:
        return "void"


@dataclass(frozen=True)
class EnumType(CType):
    """An enumeration; values behave as ``int`` (Sect. 6.1.1)."""

    tag: str
    members: Tuple[Tuple[str, int], ...] = ()

    @property
    def min_value(self) -> int:
        return INT.min_value

    @property
    def max_value(self) -> int:
        return INT.max_value

    @property
    def bits(self) -> int:
        return INT.bits

    @property
    def signed(self) -> bool:
        return True

    def __str__(self) -> str:
        return f"enum {self.tag}"


@dataclass(frozen=True)
class ArrayType(CType):
    element: CType
    length: int

    def __str__(self) -> str:
        return f"{self.element}[{self.length}]"


@dataclass(frozen=True)
class RecordType(CType):
    """A struct; field order is significant."""

    tag: str
    fields: Tuple[Tuple[str, CType], ...]

    def field_type(self, name: str) -> Optional[CType]:
        for fname, ftype in self.fields:
            if fname == name:
                return ftype
        return None

    def __str__(self) -> str:
        return f"struct {self.tag}"


@dataclass(frozen=True)
class PointerType(CType):
    """Only used for call-by-reference parameters (Sect. 4)."""

    pointee: CType

    def __str__(self) -> str:
        return f"{self.pointee}*"


@dataclass(frozen=True)
class FunctionType(CType):
    ret: CType
    params: Tuple[CType, ...]

    def __str__(self) -> str:
        ps = ", ".join(str(p) for p in self.params)
        return f"{self.ret}({ps})"


BOOL = IntType("_Bool", 8, False)
CHAR = IntType("char", 8, True)  # plain char is signed on the target
SCHAR = IntType("signed char", 8, True)
UCHAR = IntType("unsigned char", 8, False)
SHORT = IntType("short", 16, True)
USHORT = IntType("unsigned short", 16, False)
INT = IntType("int", 32, True)
UINT = IntType("unsigned int", 32, False)
LONG = IntType("long", 32, True)  # 32-bit target: long is 32 bits
ULONG = IntType("unsigned long", 32, False)
FLOAT = FloatType("float", BINARY32)
DOUBLE = FloatType("double", BINARY64)
VOID = VoidType()


def integer_promotion(t: CType) -> CType:
    """C99 6.3.1.1: small integer types promote to ``int``."""
    if isinstance(t, EnumType):
        return INT
    if isinstance(t, IntType) and t.rank < INT.rank:
        # int can represent all values of the smaller types on this target.
        return INT
    return t


def usual_arithmetic_conversion(a: CType, b: CType) -> CType:
    """C99 6.3.1.8 usual arithmetic conversions for the supported types."""
    if isinstance(a, FloatType) or isinstance(b, FloatType):
        fa = a if isinstance(a, FloatType) else None
        fb = b if isinstance(b, FloatType) else None
        if fa is DOUBLE or fb is DOUBLE:
            return DOUBLE
        return FLOAT
    a = integer_promotion(a)
    b = integer_promotion(b)
    assert isinstance(a, IntType) and isinstance(b, IntType)
    if a == b:
        return a
    if a.signed == b.signed:
        return a if a.rank >= b.rank else b
    unsigned, signed = (a, b) if not a.signed else (b, a)
    if unsigned.rank >= signed.rank:
        return unsigned
    # Signed type can represent all unsigned values (not on this 32-bit
    # target for equal ranks, handled above).
    return signed
