"""Tokenizer for the supported C subset."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Optional

from ..errors import LexerError

__all__ = ["Token", "TokenKind", "tokenize", "KEYWORDS"]


class TokenKind:
    IDENT = "ident"
    KEYWORD = "keyword"
    INT_LIT = "int"
    FLOAT_LIT = "float"
    CHAR_LIT = "char"
    STRING_LIT = "string"
    PUNCT = "punct"
    EOF = "eof"


KEYWORDS = frozenset(
    {
        "auto", "break", "case", "char", "const", "continue", "default", "do",
        "double", "else", "enum", "extern", "float", "for", "goto", "if",
        "inline", "int", "long", "register", "restrict", "return", "short",
        "signed", "sizeof", "static", "struct", "switch", "typedef", "union",
        "unsigned", "void", "volatile", "while", "_Bool",
    }
)

# Longest-match punctuation, ordered by length.
_PUNCTS3 = ("<<=", ">>=", "...")
_PUNCTS2 = (
    "<<", ">>", "<=", ">=", "==", "!=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "&=", "|=", "^=", "++", "--", "->",
)
_PUNCTS1 = "+-*/%<>=!&|^~?:;,.(){}[]"


@dataclass(frozen=True)
class Token:
    kind: str
    text: str
    filename: str
    line: int
    col: int
    # For numeric literals, the parsed value and a suffix summary.
    value: object = None
    suffix: str = ""

    def is_punct(self, text: str) -> bool:
        return self.kind == TokenKind.PUNCT and self.text == text

    def is_keyword(self, text: str) -> bool:
        return self.kind == TokenKind.KEYWORD and self.text == text

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind}, {self.text!r}, {self.line}:{self.col})"


def tokenize(source: str, filename: str = "<input>") -> List[Token]:
    """Tokenize preprocessed C source (comments already stripped)."""
    tokens: List[Token] = []
    i = 0
    line = 1
    col = 1
    n = len(source)

    def error(msg: str) -> LexerError:
        return LexerError(msg, filename, line, col)

    while i < n:
        c = source[i]
        # Line markers from the preprocessor: "# <line> "file"" — honor them.
        if c == "#" and (i == 0 or source[i - 1] == "\n"):
            j = source.find("\n", i)
            if j < 0:
                j = n
            directive = source[i:j]
            parts = directive.split()
            if len(parts) >= 2 and parts[1].isdigit():
                line = int(parts[1]) - 1
                if len(parts) >= 3 and parts[2].startswith('"'):
                    filename = parts[2].strip('"')
            i = j
            continue
        if c == "\n":
            line += 1
            col = 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            col += 1
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                raise error("unterminated comment")
            skipped = source[i : j + 2]
            line += skipped.count("\n")
            if "\n" in skipped:
                col = len(skipped) - skipped.rfind("\n")
            else:
                col += len(skipped)
            i = j + 2
            continue
        start_col = col
        if c.isalpha() or c == "_":
            j = i + 1
            while j < n and (source[j].isalnum() or source[j] == "_"):
                j += 1
            text = source[i:j]
            kind = TokenKind.KEYWORD if text in KEYWORDS else TokenKind.IDENT
            tokens.append(Token(kind, text, filename, line, start_col))
            col += j - i
            i = j
            continue
        if c.isdigit() or (c == "." and i + 1 < n and source[i + 1].isdigit()):
            tok, j = _lex_number(source, i, filename, line, start_col)
            tokens.append(tok)
            col += j - i
            i = j
            continue
        if c == "'":
            tok, j = _lex_char(source, i, filename, line, start_col)
            tokens.append(tok)
            col += j - i
            i = j
            continue
        if c == '"':
            j = i + 1
            while j < n and source[j] != '"':
                if source[j] == "\\":
                    j += 1
                j += 1
            if j >= n:
                raise error("unterminated string literal")
            tokens.append(
                Token(TokenKind.STRING_LIT, source[i : j + 1], filename, line, start_col,
                      value=source[i + 1 : j])
            )
            col += j + 1 - i
            i = j + 1
            continue
        matched = None
        for p in _PUNCTS3:
            if source.startswith(p, i):
                matched = p
                break
        if matched is None:
            for p in _PUNCTS2:
                if source.startswith(p, i):
                    matched = p
                    break
        if matched is None and c in _PUNCTS1:
            matched = c
        if matched is None:
            raise error(f"unexpected character {c!r}")
        tokens.append(Token(TokenKind.PUNCT, matched, filename, line, start_col))
        col += len(matched)
        i += len(matched)
    tokens.append(Token(TokenKind.EOF, "", filename, line, col))
    return tokens


def _lex_number(source: str, i: int, filename: str, line: int, col: int):
    n = len(source)
    j = i
    is_float = False
    if source.startswith(("0x", "0X"), i):
        j = i + 2
        while j < n and (source[j] in "0123456789abcdefABCDEF"):
            j += 1
        digits = source[i:j]
        value: object = int(digits, 16)
    else:
        while j < n and source[j].isdigit():
            j += 1
        if j < n and source[j] == ".":
            is_float = True
            j += 1
            while j < n and source[j].isdigit():
                j += 1
        if j < n and source[j] in "eE":
            k = j + 1
            if k < n and source[k] in "+-":
                k += 1
            if k < n and source[k].isdigit():
                is_float = True
                j = k
                while j < n and source[j].isdigit():
                    j += 1
        digits = source[i:j]
        if is_float:
            value = float(digits)
        elif digits.startswith("0") and len(digits) > 1:
            value = int(digits, 8)
        else:
            value = int(digits)
    suffix = ""
    while j < n and source[j] in "uUlLfF":
        suffix += source[j].lower()
        j += 1
    if "f" in suffix and not is_float:
        # 1f is invalid C; but 1.0f handled above. Treat "f" on an int
        # literal as a float suffix only after a decimal point.
        if isinstance(value, int):
            is_float = True
            value = float(value)
    kind = TokenKind.FLOAT_LIT if is_float else TokenKind.INT_LIT
    return Token(kind, source[i:j], filename, line, col, value=value, suffix=suffix), j


_ESCAPES = {
    "n": "\n", "t": "\t", "r": "\r", "0": "\0", "\\": "\\", "'": "'",
    '"': '"', "a": "\a", "b": "\b", "f": "\f", "v": "\v",
}


def _lex_char(source: str, i: int, filename: str, line: int, col: int):
    n = len(source)
    j = i + 1
    if j >= n:
        raise LexerError("unterminated character literal", filename, line, col)
    if source[j] == "\\":
        if j + 1 >= n:
            raise LexerError("unterminated escape", filename, line, col)
        ch = _ESCAPES.get(source[j + 1])
        if ch is None:
            raise LexerError(f"unknown escape \\{source[j+1]}", filename, line, col)
        j += 2
    else:
        ch = source[j]
        j += 1
    if j >= n or source[j] != "'":
        raise LexerError("unterminated character literal", filename, line, col)
    return (
        Token(TokenKind.CHAR_LIT, source[i : j + 1], filename, line, col, value=ord(ch)),
        j + 1,
    )
