"""A simple linker for multi-file programs (Sect. 5.1).

"Optionally, a simple linker allows programs consisting of several source
files to be processed."  Each file is preprocessed and parsed separately;
all translation units are then lowered through a single :class:`~repro.
frontend.lowering.Lowerer`, which resolves cross-unit references to globals
and functions (``extern`` declarations match definitions by name and type).
"""

from __future__ import annotations

from typing import Dict, Optional, Sequence

from ..errors import LinkError, TypeError_, UnsupportedConstructError
from .ir import IRProgram
from .lowering import Lowerer
from .parser import parse
from .preprocessor import preprocess, read_source_file

__all__ = ["link_sources", "compile_source"]


def compile_source(
    source: str,
    filename: str = "<input>",
    entry: str = "main",
    include_dirs: Sequence[str] = (),
    predefined: Optional[Dict[str, str]] = None,
    delete_unused_globals: bool = True,
) -> IRProgram:
    """Preprocess, parse, type-check and lower a single source text."""
    return link_sources([(filename, source)], entry=entry,
                        include_dirs=include_dirs, predefined=predefined,
                        delete_unused_globals=delete_unused_globals)


def link_sources(
    sources: Sequence[tuple],
    entry: str = "main",
    include_dirs: Sequence[str] = (),
    predefined: Optional[Dict[str, str]] = None,
    delete_unused_globals: bool = True,
) -> IRProgram:
    """Link several (filename, source-text) units into one IR program."""
    if not sources:
        raise LinkError("no source files provided")
    lowerer = Lowerer()
    for filename, text in sources:
        preprocessed = preprocess(text, filename, include_dirs=include_dirs,
                                  predefined=predefined)
        try:
            unit = parse(preprocessed, filename)
            lowerer.add_unit(unit)
        except TypeError_ as exc:
            raise LinkError(f"while linking {filename}: {exc}") from exc
        except RecursionError as exc:
            raise UnsupportedConstructError(
                "construct nested too deeply for the frontend",
                filename, 0, 0) from exc
    try:
        return lowerer.finish(entry, delete_unused_globals)
    except RecursionError as exc:
        raise UnsupportedConstructError(
            "construct nested too deeply for the frontend") from exc


def compile_files(
    paths: Sequence[str],
    entry: str = "main",
    include_dirs: Sequence[str] = (),
    predefined: Optional[Dict[str, str]] = None,
) -> IRProgram:
    """Compile and link source files from disk."""
    sources = []
    for path in paths:
        sources.append((path, read_source_file(path)))
    return link_sources(sources, entry=entry, include_dirs=include_dirs,
                        predefined=predefined)
