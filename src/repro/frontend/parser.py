"""Recursive-descent parser for the supported C subset.

Grammar coverage follows the program family of Sect. 4: declarations of
scalar/array/struct/enum globals and locals, functions without recursion,
``if``/``while``/``do``/``for``/``switch`` statements, the full C expression
grammar over arithmetic and boolean operators, and pointers restricted to
call-by-reference parameters.  Anything else is rejected with an
:class:`~repro.errors.UnsupportedConstructError` (Sect. 5.1: "Unsupported
constructs are rejected at this point with an error message").
"""

from __future__ import annotations

from typing import List, Optional, Set, Tuple

from ..errors import ParseError, UnsupportedConstructError
from . import ast_nodes as A
from .lexer import Token, TokenKind, tokenize

__all__ = ["Parser", "parse"]

_TYPE_KEYWORDS = frozenset(
    {"void", "char", "short", "int", "long", "float", "double", "signed",
     "unsigned", "_Bool", "struct", "enum", "union"}
)
_QUALIFIERS = frozenset({"const", "volatile", "static", "extern", "register", "inline", "restrict", "auto"})

_ASSIGN_OPS = frozenset({"=", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=", "<<=", ">>="})


def parse(source: str, filename: str = "<input>") -> A.TranslationUnit:
    """Parse preprocessed C source into a translation unit."""
    return Parser(tokenize(source, filename), filename).parse_translation_unit()


class Parser:
    def __init__(self, tokens: List[Token], filename: str = "<input>"):
        self._tokens = tokens
        self._pos = 0
        self._filename = filename
        self._typedef_names: Set[str] = set()
        self._block_counter = 0

    # -- token helpers -------------------------------------------------------

    def _peek(self, ahead: int = 0) -> Token:
        idx = min(self._pos + ahead, len(self._tokens) - 1)
        return self._tokens[idx]

    def _advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != TokenKind.EOF:
            self._pos += 1
        return tok

    def _loc(self, tok: Optional[Token] = None) -> A.Location:
        tok = tok or self._peek()
        return A.Location(tok.filename, tok.line, tok.col)

    def _error(self, msg: str, tok: Optional[Token] = None) -> ParseError:
        tok = tok or self._peek()
        return ParseError(msg, tok.filename, tok.line, tok.col)

    def _unsupported(self, msg: str, tok: Optional[Token] = None) -> UnsupportedConstructError:
        tok = tok or self._peek()
        return UnsupportedConstructError(msg, tok.filename, tok.line, tok.col)

    def _expect_punct(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_punct(text):
            raise self._error(f"expected {text!r}, found {tok.text!r}")
        return self._advance()

    def _expect_keyword(self, text: str) -> Token:
        tok = self._peek()
        if not tok.is_keyword(text):
            raise self._error(f"expected {text!r}, found {tok.text!r}")
        return self._advance()

    def _expect_ident(self) -> Token:
        tok = self._peek()
        if tok.kind != TokenKind.IDENT:
            raise self._error(f"expected identifier, found {tok.text!r}")
        return self._advance()

    def _accept_punct(self, text: str) -> Optional[Token]:
        if self._peek().is_punct(text):
            return self._advance()
        return None

    def _accept_keyword(self, text: str) -> Optional[Token]:
        if self._peek().is_keyword(text):
            return self._advance()
        return None

    # -- translation unit ------------------------------------------------------

    def parse_translation_unit(self) -> A.TranslationUnit:
        unit = A.TranslationUnit(filename=self._filename)
        while self._peek().kind != TokenKind.EOF:
            unit.decls.extend(self._parse_external_declaration())
        return unit

    def _parse_external_declaration(self) -> List[object]:
        if self._peek().is_keyword("typedef"):
            return [self._parse_typedef()]
        quals = self._parse_qualifiers()
        spec = self._parse_type_spec()
        # A lone "struct S { ... };" or "enum E { ... };" declaration.
        if self._accept_punct(";"):
            return [A.VarDecl(name="", type_spec=spec, declarator=A.Declarator(),
                              loc=spec.loc, **quals)]
        decl = self._parse_declarator()
        if self._peek().is_punct("("):
            return [self._parse_function(spec, decl, quals)]
        return self._parse_var_decl_list(spec, decl, quals)

    def _parse_qualifiers(self) -> dict:
        quals = {"is_volatile": False, "is_const": False, "is_static": False,
                 "is_extern": False}
        while True:
            tok = self._peek()
            if tok.is_keyword("volatile"):
                quals["is_volatile"] = True
            elif tok.is_keyword("const"):
                quals["is_const"] = True
            elif tok.is_keyword("static"):
                quals["is_static"] = True
            elif tok.is_keyword("extern"):
                quals["is_extern"] = True
            elif tok.kind == TokenKind.KEYWORD and tok.text in ("register", "inline", "auto", "restrict"):
                pass  # accepted and ignored
            else:
                return quals
            self._advance()

    def _starts_type(self, tok: Token) -> bool:
        if tok.kind == TokenKind.KEYWORD and (tok.text in _TYPE_KEYWORDS or tok.text in _QUALIFIERS or tok.text == "typedef"):
            return True
        return tok.kind == TokenKind.IDENT and tok.text in self._typedef_names

    def _parse_type_spec(self) -> A.TypeSpec:
        tok = self._peek()
        loc = self._loc(tok)
        if tok.is_keyword("union"):
            raise self._unsupported("unions are outside the supported subset")
        if tok.is_keyword("struct"):
            self._advance()
            tag = ""
            if self._peek().kind == TokenKind.IDENT:
                tag = self._advance().text
            fields = None
            if self._accept_punct("{"):
                fields = []
                while not self._peek().is_punct("}"):
                    fquals = self._parse_qualifiers()
                    fspec = self._parse_type_spec()
                    while True:
                        fdecl = self._parse_declarator()
                        fields.append(
                            A.VarDecl(name=fdecl.name, type_spec=fspec,
                                      declarator=fdecl, loc=loc, **fquals)
                        )
                        if not self._accept_punct(","):
                            break
                    self._expect_punct(";")
                self._expect_punct("}")
            return A.StructSpec(tag=tag, fields=fields, loc=loc)
        if tok.is_keyword("enum"):
            self._advance()
            tag = ""
            if self._peek().kind == TokenKind.IDENT:
                tag = self._advance().text
            members = None
            if self._accept_punct("{"):
                members = []
                while not self._peek().is_punct("}"):
                    name = self._expect_ident().text
                    value = None
                    if self._accept_punct("="):
                        value = self._parse_conditional()
                    members.append((name, value))
                    if not self._accept_punct(","):
                        break
                self._expect_punct("}")
            return A.EnumSpec(tag=tag, members=members, loc=loc)
        if tok.kind == TokenKind.IDENT and tok.text in self._typedef_names:
            self._advance()
            return A.NamedType(name=tok.text, loc=loc)
        # Builtin type: a sequence of type keywords.
        words = []
        while self._peek().kind == TokenKind.KEYWORD and self._peek().text in (
            "void", "char", "short", "int", "long", "float", "double",
            "signed", "unsigned", "_Bool",
        ):
            words.append(self._advance().text)
        if not words:
            raise self._error(f"expected type, found {tok.text!r}")
        return A.NamedType(name=" ".join(words), loc=loc)

    def _parse_declarator(self) -> A.Declarator:
        depth = 0
        while self._accept_punct("*"):
            depth += 1
        name_tok = self._expect_ident()
        dims: List[A.Expr] = []
        while self._accept_punct("["):
            if self._peek().is_punct("]"):
                raise self._unsupported("arrays must have explicit constant size")
            dims.append(self._parse_conditional())
            self._expect_punct("]")
        return A.Declarator(name=name_tok.text, array_dims=dims, pointer_depth=depth)

    def _parse_initializer(self) -> A.InitItem:
        if self._accept_punct("{"):
            items = []
            while not self._peek().is_punct("}"):
                items.append(self._parse_initializer())
                if not self._accept_punct(","):
                    break
            self._expect_punct("}")
            return A.InitItem(items=items)
        return A.InitItem(expr=self._parse_assignment_expr())

    def _parse_var_decl_list(self, spec: A.TypeSpec, first: A.Declarator, quals: dict) -> List[A.VarDecl]:
        decls = []
        decl = first
        while True:
            init = None
            if self._accept_punct("="):
                init = self._parse_initializer()
            decls.append(
                A.VarDecl(name=decl.name, type_spec=spec, declarator=decl,
                          init=init, loc=spec.loc, **quals)
            )
            if not self._accept_punct(","):
                break
            decl = self._parse_declarator()
        self._expect_punct(";")
        return decls

    def _parse_typedef(self) -> A.TypedefDecl:
        loc = self._loc()
        self._expect_keyword("typedef")
        self._parse_qualifiers()
        spec = self._parse_type_spec()
        decl = self._parse_declarator()
        self._expect_punct(";")
        self._typedef_names.add(decl.name)
        return A.TypedefDecl(name=decl.name, type_spec=spec, declarator=decl, loc=loc)

    def _parse_function(self, ret_spec: A.TypeSpec, decl: A.Declarator, quals: dict) -> A.FuncDef:
        loc = ret_spec.loc
        if decl.array_dims:
            raise self._error("function returning array")
        self._expect_punct("(")
        params: List[A.ParamDecl] = []
        if self._accept_keyword("void") and self._peek().is_punct(")"):
            pass
        elif not self._peek().is_punct(")"):
            while True:
                self._parse_qualifiers()
                pspec = self._parse_type_spec()
                pdecl = self._parse_declarator()
                params.append(A.ParamDecl(name=pdecl.name, type_spec=pspec,
                                          declarator=pdecl, loc=self._loc()))
                if not self._accept_punct(","):
                    break
        self._expect_punct(")")
        if self._accept_punct(";"):
            return A.FuncDef(name=decl.name, ret_type=ret_spec, params=params,
                             body=None, is_static=quals["is_static"], loc=loc)
        body = self._parse_compound()
        return A.FuncDef(name=decl.name, ret_type=ret_spec, params=params,
                         body=body, is_static=quals["is_static"], loc=loc)

    # -- statements -------------------------------------------------------------

    def _parse_compound(self) -> A.CompoundStmt:
        loc = self._loc()
        self._expect_punct("{")
        self._block_counter += 1
        block = A.CompoundStmt(items=[], block_id=self._block_counter, loc=loc)
        while not self._peek().is_punct("}"):
            block.items.append(self._parse_statement())
        self._expect_punct("}")
        return block

    def _parse_statement(self) -> A.Stmt:
        tok = self._peek()
        loc = self._loc(tok)
        if tok.is_punct("{"):
            return self._parse_compound()
        if tok.is_punct(";"):
            self._advance()
            return A.EmptyStmt(loc=loc)
        if tok.is_keyword("if"):
            self._advance()
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            then = self._parse_statement()
            other = None
            if self._accept_keyword("else"):
                other = self._parse_statement()
            return A.IfStmt(cond=cond, then=then, other=other, loc=loc)
        if tok.is_keyword("while"):
            self._advance()
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            body = self._parse_statement()
            return A.WhileStmt(cond=cond, body=body, loc=loc)
        if tok.is_keyword("do"):
            self._advance()
            body = self._parse_statement()
            self._expect_keyword("while")
            self._expect_punct("(")
            cond = self._parse_expr()
            self._expect_punct(")")
            self._expect_punct(";")
            return A.DoWhileStmt(body=body, cond=cond, loc=loc)
        if tok.is_keyword("for"):
            self._advance()
            self._expect_punct("(")
            init: Optional[A.Stmt] = None
            if not self._peek().is_punct(";"):
                if self._starts_type(self._peek()):
                    init = self._parse_decl_stmt()
                else:
                    init = A.ExprStmt(expr=self._parse_expr(), loc=loc)
                    self._expect_punct(";")
            else:
                self._advance()
            cond = None
            if not self._peek().is_punct(";"):
                cond = self._parse_expr()
            self._expect_punct(";")
            step = None
            if not self._peek().is_punct(")"):
                step = self._parse_expr()
            self._expect_punct(")")
            body = self._parse_statement()
            return A.ForStmt(init=init, cond=cond, step=step, body=body, loc=loc)
        if tok.is_keyword("return"):
            self._advance()
            value = None
            if not self._peek().is_punct(";"):
                value = self._parse_expr()
            self._expect_punct(";")
            return A.ReturnStmt(value=value, loc=loc)
        if tok.is_keyword("break"):
            self._advance()
            self._expect_punct(";")
            return A.BreakStmt(loc=loc)
        if tok.is_keyword("continue"):
            self._advance()
            self._expect_punct(";")
            return A.ContinueStmt(loc=loc)
        if tok.is_keyword("switch"):
            return self._parse_switch()
        if tok.is_keyword("goto"):
            raise self._unsupported("goto is outside the supported subset")
        if tok.kind == TokenKind.KEYWORD and tok.text in ("case", "default"):
            raise self._error("case label outside switch")
        if self._starts_type(tok):
            return self._parse_decl_stmt()
        expr = self._parse_expr()
        self._expect_punct(";")
        return A.ExprStmt(expr=expr, loc=loc)

    def _parse_decl_stmt(self) -> A.DeclStmt:
        loc = self._loc()
        quals = self._parse_qualifiers()
        spec = self._parse_type_spec()
        decl = self._parse_declarator()
        decls = self._parse_var_decl_list(spec, decl, quals)
        return A.DeclStmt(decls=decls, loc=loc)

    def _parse_switch(self) -> A.SwitchStmt:
        loc = self._loc()
        self._expect_keyword("switch")
        self._expect_punct("(")
        scrutinee = self._parse_expr()
        self._expect_punct(")")
        self._expect_punct("{")
        cases: List[A.CaseLabel] = []
        current: Optional[A.CaseLabel] = None
        while not self._peek().is_punct("}"):
            if self._accept_keyword("case"):
                value = self._parse_conditional()
                self._expect_punct(":")
                if current is not None and not current.body:
                    current.falls_through = True
                current = A.CaseLabel(value=value)
                cases.append(current)
                continue
            if self._accept_keyword("default"):
                self._expect_punct(":")
                if current is not None and not current.body:
                    current.falls_through = True
                current = A.CaseLabel(value=None)
                cases.append(current)
                continue
            if current is None:
                raise self._error("statement before first case label")
            stmt = self._parse_statement()
            current.body.append(stmt)
            if isinstance(stmt, A.BreakStmt):
                current = None  # subsequent statements need a new label
        self._expect_punct("}")
        # Reject fall-through between non-empty cases (rare in the family and
        # hard to analyze precisely; empty-body stacked labels are fine).
        for c in cases:
            if c.body and not any(isinstance(s, A.BreakStmt) for s in c.body) and c is not cases[-1]:
                raise self._unsupported("switch fall-through from a non-empty case", None)
        # Strip trailing breaks.
        for c in cases:
            while c.body and isinstance(c.body[-1], A.BreakStmt):
                c.body.pop()
        return A.SwitchStmt(scrutinee=scrutinee, cases=cases, loc=loc)

    # -- expressions -----------------------------------------------------------

    def _parse_expr(self) -> A.Expr:
        first = self._parse_assignment_expr()
        if not self._peek().is_punct(","):
            return first
        parts = [first]
        while self._accept_punct(","):
            parts.append(self._parse_assignment_expr())
        return A.Comma(parts=parts, loc=first.loc)

    def _parse_assignment_expr(self) -> A.Expr:
        left = self._parse_conditional()
        tok = self._peek()
        if tok.kind == TokenKind.PUNCT and tok.text in _ASSIGN_OPS:
            self._advance()
            value = self._parse_assignment_expr()
            return A.Assign(op=tok.text, target=left, value=value, loc=left.loc)
        return left

    def _parse_conditional(self) -> A.Expr:
        cond = self._parse_binary(0)
        if self._accept_punct("?"):
            then = self._parse_expr()
            self._expect_punct(":")
            other = self._parse_conditional()
            return A.Conditional(cond=cond, then=then, other=other, loc=cond.loc)
        return cond

    _BINARY_LEVELS: List[Tuple[str, ...]] = [
        ("||",),
        ("&&",),
        ("|",),
        ("^",),
        ("&",),
        ("==", "!="),
        ("<", ">", "<=", ">="),
        ("<<", ">>"),
        ("+", "-"),
        ("*", "/", "%"),
    ]

    def _parse_binary(self, level: int) -> A.Expr:
        if level >= len(self._BINARY_LEVELS):
            return self._parse_cast()
        ops = self._BINARY_LEVELS[level]
        left = self._parse_binary(level + 1)
        while True:
            tok = self._peek()
            if tok.kind == TokenKind.PUNCT and tok.text in ops:
                self._advance()
                right = self._parse_binary(level + 1)
                left = A.Binary(op=tok.text, left=left, right=right, loc=left.loc)
            else:
                return left

    def _parse_cast(self) -> A.Expr:
        tok = self._peek()
        if tok.is_punct("(") and self._starts_type(self._peek(1)):
            loc = self._loc(tok)
            self._advance()
            self._parse_qualifiers()
            spec = self._parse_type_spec()
            depth = 0
            while self._accept_punct("*"):
                depth += 1
            if depth:
                if isinstance(spec, A.NamedType):
                    spec.pointer_depth = depth
                elif isinstance(spec, A.StructSpec):
                    spec.pointer_depth = depth
                else:
                    raise self._unsupported("pointer cast to enum")
            self._expect_punct(")")
            operand = self._parse_cast()
            return A.Cast(target_type=spec, operand=operand, loc=loc)
        return self._parse_unary()

    def _parse_unary(self) -> A.Expr:
        tok = self._peek()
        loc = self._loc(tok)
        if tok.kind == TokenKind.PUNCT and tok.text in ("-", "+", "!", "~", "&", "*"):
            self._advance()
            operand = self._parse_cast()
            return A.Unary(op=tok.text, operand=operand, loc=loc)
        if tok.is_punct("++") or tok.is_punct("--"):
            self._advance()
            operand = self._parse_unary()
            return A.Unary(op=tok.text + "pre", operand=operand, loc=loc)
        if tok.is_keyword("sizeof"):
            self._advance()
            if self._peek().is_punct("(") and self._starts_type(self._peek(1)):
                self._advance()
                self._parse_qualifiers()
                spec = self._parse_type_spec()
                while self._accept_punct("*"):
                    pass
                self._expect_punct(")")
                return A.SizeOf(target_type=spec, loc=loc)
            operand = self._parse_unary()
            return A.SizeOf(operand=operand, loc=loc)
        return self._parse_postfix()

    def _parse_postfix(self) -> A.Expr:
        expr = self._parse_primary()
        while True:
            tok = self._peek()
            if tok.is_punct("["):
                self._advance()
                index = self._parse_expr()
                self._expect_punct("]")
                expr = A.Index(base=expr, index=index, loc=expr.loc)
            elif tok.is_punct("."):
                self._advance()
                name = self._expect_ident().text
                expr = A.Member(base=expr, name=name, arrow=False, loc=expr.loc)
            elif tok.is_punct("->"):
                self._advance()
                name = self._expect_ident().text
                expr = A.Member(base=expr, name=name, arrow=True, loc=expr.loc)
            elif tok.is_punct("++") or tok.is_punct("--"):
                self._advance()
                expr = A.Unary(op="post" + tok.text, operand=expr, loc=expr.loc)
            else:
                return expr

    def _parse_primary(self) -> A.Expr:
        tok = self._peek()
        loc = self._loc(tok)
        if tok.kind == TokenKind.INT_LIT:
            self._advance()
            return A.IntLit(value=tok.value, suffix=tok.suffix, loc=loc)
        if tok.kind == TokenKind.FLOAT_LIT:
            self._advance()
            return A.FloatLit(value=tok.value, suffix=tok.suffix, loc=loc)
        if tok.kind == TokenKind.CHAR_LIT:
            self._advance()
            return A.IntLit(value=tok.value, loc=loc)
        if tok.kind == TokenKind.STRING_LIT:
            raise self._unsupported("string literals are outside the supported subset", tok)
        if tok.kind == TokenKind.IDENT:
            self._advance()
            if self._peek().is_punct("("):
                self._advance()
                args: List[A.Expr] = []
                if not self._peek().is_punct(")"):
                    while True:
                        args.append(self._parse_assignment_expr())
                        if not self._accept_punct(","):
                            break
                self._expect_punct(")")
                return A.Call(func=tok.text, args=args, loc=loc)
            return A.Ident(name=tok.text, loc=loc)
        if tok.is_punct("("):
            self._advance()
            expr = self._parse_expr()
            self._expect_punct(")")
            return expr
        raise self._error(f"unexpected token {tok.text!r} in expression")
