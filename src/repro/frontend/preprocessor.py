"""A standard-C preprocessor sufficient for the program family (Sect. 5.1).

Supports object-like and function-like ``#define`` (with rescanning),
``#undef``, ``#include "file"`` with include directories, conditional
compilation (``#ifdef``, ``#ifndef``, ``#if``, ``#elif``, ``#else``,
``#endif`` with ``defined`` and integer constant expressions), line
continuations and comment stripping.  Line markers (``# <n> "file"``) are
emitted so downstream diagnostics point at original source locations.
"""

from __future__ import annotations

import os
import re
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..errors import PreprocessorError

__all__ = ["preprocess", "Preprocessor", "MacroDef", "decode_source",
           "check_source_text", "read_source_file"]

_UTF8_BOM = b"\xef\xbb\xbf"


def decode_source(data: bytes, filename: str = "<input>") -> str:
    """Decode raw source bytes, rejecting malformed encodings up front.

    A production frontend must never die with a ``UnicodeDecodeError`` on
    user input: a UTF-8 BOM, CRLF/CR line endings, NUL bytes and
    non-UTF-8 bytes are all rejected with a located
    :class:`PreprocessorError` (CLI exit 3 under the contract).
    """
    if data.startswith(_UTF8_BOM):
        raise PreprocessorError(
            "file starts with a UTF-8 byte-order mark; save it as plain "
            "UTF-8 without BOM", filename, 1, 1)
    try:
        text = data.decode("utf-8")
    except UnicodeDecodeError as exc:
        line = data[:exc.start].count(b"\n") + 1
        raise PreprocessorError(
            f"file is not valid UTF-8 (byte 0x{data[exc.start]:02x} at "
            f"offset {exc.start}: {exc.reason})", filename, line, 0)
    check_source_text(text, filename)
    return text


def check_source_text(text: str, filename: str = "<input>") -> None:
    """Reject source *text* the lexer must never see: BOM characters,
    CRLF (or bare CR) line endings and embedded NUL characters."""
    if text.startswith("\ufeff"):
        raise PreprocessorError(
            "file starts with a UTF-8 byte-order mark; save it as plain "
            "UTF-8 without BOM", filename, 1, 1)
    for ch, what in (("\r", "CRLF (or bare CR) line endings; convert the "
                            "file to LF line endings"),
                     ("\x00", "an embedded NUL character")):
        pos = text.find(ch)
        if pos >= 0:
            line = text.count("\n", 0, pos) + 1
            raise PreprocessorError(f"file contains {what}",
                                    filename, line, 0)


def read_source_file(path: str) -> str:
    """Read and decode one source file with the checks above applied."""
    with open(path, "rb") as f:
        return decode_source(f.read(), path)

_TOKEN_RE = re.compile(
    r"""
    (?P<ident>[A-Za-z_]\w*)
  | (?P<number>(?:\d+\.\d*|\.\d+|\d+)(?:[eE][+-]?\d+)?[uUlLfF]*|0[xX][0-9a-fA-F]+[uUlL]*)
  | (?P<string>"(?:[^"\\]|\\.)*"|'(?:[^'\\]|\\.)*')
  | (?P<punct><<=|>>=|\.\.\.|<<|>>|<=|>=|==|!=|&&|\|\||\+=|-=|\*=|/=|%=|&=|\|=|\^=|\+\+|--|->|\#\#|[-+*/%<>=!&|^~?:;,.(){}\[\]\#])
  | (?P<space>\s+)
    """,
    re.VERBOSE,
)


def _split_tokens(text: str) -> List[str]:
    """Split a line into preprocessor tokens (whitespace collapsed out)."""
    out: List[str] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if not m:
            out.append(text[pos])
            pos += 1
            continue
        if not m.lastgroup == "space":
            out.append(m.group())
        pos = m.end()
    return out


@dataclass
class MacroDef:
    name: str
    params: Optional[List[str]]  # None for object-like macros
    body: List[str]  # token list
    variadic: bool = False


def preprocess(
    source: str,
    filename: str = "<input>",
    include_dirs: Sequence[str] = (),
    predefined: Optional[Dict[str, str]] = None,
    file_reader: Optional[Callable[[str], str]] = None,
) -> str:
    """Preprocess C source text, returning text with line markers."""
    pp = Preprocessor(include_dirs=include_dirs, file_reader=file_reader)
    if predefined:
        for name, body in predefined.items():
            pp.define(name, body)
    return pp.run(source, filename)


class Preprocessor:
    def __init__(
        self,
        include_dirs: Sequence[str] = (),
        file_reader: Optional[Callable[[str], str]] = None,
    ):
        self._include_dirs = list(include_dirs)
        self._macros: Dict[str, MacroDef] = {}
        self._file_reader = file_reader or _default_reader
        self._include_depth = 0

    def define(self, name: str, body: str = "1") -> None:
        m = re.match(r"([A-Za-z_]\w*)\((.*?)\)$", name)
        if m:
            params = [p.strip() for p in m.group(2).split(",") if p.strip()]
            self._macros[m.group(1)] = MacroDef(m.group(1), params, _split_tokens(body))
        else:
            self._macros[name] = MacroDef(name, None, _split_tokens(body))

    def undef(self, name: str) -> None:
        self._macros.pop(name, None)

    def run(self, source: str, filename: str) -> str:
        check_source_text(source, filename)
        out: List[str] = []
        self._process(source, filename, out)
        return "\n".join(out) + "\n"

    # -- main loop -----------------------------------------------------------

    def _process(self, source: str, filename: str, out: List[str]) -> None:
        source = _strip_comments(_splice_lines(source))
        lines = source.split("\n")
        out.append(f'# {1} "{filename}"')
        # Conditional-compilation stack: (taken_now, any_branch_taken, parent_active)
        stack: List[List[bool]] = []

        def active() -> bool:
            return all(frame[0] for frame in stack)

        lineno = 0
        for raw in lines:
            lineno += 1
            stripped = raw.strip()
            if stripped.startswith("#"):
                directive = stripped[1:].strip()
                self._handle_directive(directive, filename, lineno, out, stack, active)
                continue
            if not active():
                continue
            expanded = self._expand_tokens(_split_tokens(raw), set())
            out.append(_join_tokens(expanded))
        if stack:
            raise PreprocessorError("unterminated #if", filename, lineno, 0)

    def _handle_directive(
        self,
        directive: str,
        filename: str,
        lineno: int,
        out: List[str],
        stack: List[List[bool]],
        active: Callable[[], bool],
    ) -> None:
        def err(msg: str) -> PreprocessorError:
            return PreprocessorError(msg, filename, lineno, 0)

        name, _, rest = directive.partition(" ")
        rest = rest.strip()
        if name == "ifdef":
            taken = active() and rest.split()[0] in self._macros if rest else False
            stack.append([taken, taken])
            return
        if name == "ifndef":
            taken = active() and (not rest or rest.split()[0] not in self._macros)
            if not rest:
                raise err("#ifndef without a macro name")
            stack.append([taken, taken])
            return
        if name == "if":
            taken = active() and bool(self._eval_condition(rest, filename, lineno))
            stack.append([taken, taken])
            return
        if name == "elif":
            if not stack:
                raise err("#elif without #if")
            frame = stack[-1]
            parent_ok = all(f[0] for f in stack[:-1])
            if frame[1] or not parent_ok:
                frame[0] = False
            else:
                frame[0] = bool(self._eval_condition(rest, filename, lineno))
                frame[1] = frame[0]
            return
        if name == "else":
            if not stack:
                raise err("#else without #if")
            frame = stack[-1]
            parent_ok = all(f[0] for f in stack[:-1])
            frame[0] = parent_ok and not frame[1]
            frame[1] = True
            return
        if name == "endif":
            if not stack:
                raise err("#endif without #if")
            stack.pop()
            return
        if not active():
            return
        if name == "define":
            self._parse_define(rest, filename, lineno)
            return
        if name == "undef":
            self.undef(rest.split()[0]) if rest else None
            return
        if name == "include":
            self._handle_include(rest, filename, lineno, out)
            return
        if name in ("pragma", "warning"):
            return  # ignored
        if name == "error":
            raise err(f"#error {rest}")
        if name == "line" or name.isdigit():
            return  # line markers pass through untouched conceptually
        raise err(f"unknown preprocessor directive #{name}")

    def _parse_define(self, rest: str, filename: str, lineno: int) -> None:
        m = re.match(r"([A-Za-z_]\w*)", rest)
        if not m:
            raise PreprocessorError("malformed #define", filename, lineno, 0)
        name = m.group(1)
        after = rest[m.end():]
        if after.startswith("("):
            close = after.find(")")
            if close < 0:
                raise PreprocessorError("malformed macro parameter list", filename, lineno, 0)
            params_text = after[1:close]
            params = [p.strip() for p in params_text.split(",") if p.strip()]
            body = _split_tokens(after[close + 1:])
            self._macros[name] = MacroDef(name, params, body)
        else:
            self._macros[name] = MacroDef(name, None, _split_tokens(after))

    def _handle_include(self, rest: str, filename: str, lineno: int, out: List[str]) -> None:
        if self._include_depth > 50:
            raise PreprocessorError("#include nesting too deep", filename, lineno, 0)
        m = re.match(r'"([^"]+)"', rest)
        if not m:
            if re.match(r"<[^>]+>", rest):
                # System headers: the family's code is freestanding; ignore.
                return
            raise PreprocessorError(f"malformed #include: {rest}", filename, lineno, 0)
        target = m.group(1)
        search = [os.path.dirname(filename) or "."] + self._include_dirs
        for d in search:
            path = os.path.join(d, target)
            try:
                text = self._file_reader(path)
            except FileNotFoundError:
                continue
            self._include_depth += 1
            try:
                self._process(text, path, out)
            finally:
                self._include_depth -= 1
            out.append(f'# {lineno + 1} "{filename}"')
            return
        raise PreprocessorError(f"include file not found: {target}", filename, lineno, 0)

    # -- macro expansion -------------------------------------------------------

    def _expand_tokens(self, tokens: List[str], hide: set) -> List[str]:
        out: List[str] = []
        i = 0
        n = len(tokens)
        while i < n:
            tok = tokens[i]
            macro = self._macros.get(tok)
            if macro is None or tok in hide:
                out.append(tok)
                i += 1
                continue
            if macro.params is None:
                body = self._expand_tokens(list(macro.body), hide | {tok})
                out.extend(body)
                i += 1
                continue
            # Function-like: require '('.
            if i + 1 >= n or tokens[i + 1] != "(":
                out.append(tok)
                i += 1
                continue
            args, next_i = _collect_args(tokens, i + 2)
            if next_i is None:
                out.append(tok)
                i += 1
                continue
            if len(args) != len(macro.params) and not (len(macro.params) == 0 and args == [[]]):
                # Arity mismatch: leave unexpanded (an error surfaces later).
                out.append(tok)
                i += 1
                continue
            expanded_args = [self._expand_tokens(a, hide) for a in args]
            body: List[str] = []
            for btok in macro.body:
                if btok in macro.params:
                    body.extend(expanded_args[macro.params.index(btok)])
                else:
                    body.append(btok)
            out.extend(self._expand_tokens(body, hide | {tok}))
            i = next_i
        return out

    def _eval_condition(self, text: str, filename: str, lineno: int) -> int:
        tokens = _split_tokens(text)
        # Resolve defined(X) / defined X before macro expansion.
        resolved: List[str] = []
        i = 0
        while i < len(tokens):
            if tokens[i] == "defined":
                if i + 1 < len(tokens) and tokens[i + 1] == "(":
                    name = tokens[i + 2] if i + 2 < len(tokens) else ""
                    resolved.append("1" if name in self._macros else "0")
                    i += 4  # defined ( name )
                else:
                    name = tokens[i + 1] if i + 1 < len(tokens) else ""
                    resolved.append("1" if name in self._macros else "0")
                    i += 2
            else:
                resolved.append(tokens[i])
                i += 1
        expanded = self._expand_tokens(resolved, set())
        # Remaining identifiers evaluate to 0 (C semantics).
        pythonized: List[str] = []
        for tok in expanded:
            if re.match(r"[A-Za-z_]\w*$", tok):
                pythonized.append("0")
            elif tok == "&&":
                pythonized.append(" and ")
            elif tok == "||":
                pythonized.append(" or ")
            elif tok == "!":
                pythonized.append(" not ")
            elif tok == "/":
                pythonized.append("//")
            else:
                m = re.match(r"(0[xX][0-9a-fA-F]+|\d+)[uUlL]*$", tok)
                pythonized.append(m.group(1) if m else tok)
        try:
            value = eval("".join(pythonized) or "0", {"__builtins__": {}}, {})  # noqa: S307
        except Exception as exc:
            raise PreprocessorError(f"cannot evaluate #if condition: {text} ({exc})",
                                    filename, lineno, 0)
        return int(bool(value)) if isinstance(value, bool) else int(value)


def _collect_args(tokens: List[str], start: int) -> Tuple[List[List[str]], Optional[int]]:
    """Collect macro call arguments from ``tokens[start:]`` (after '(')."""
    args: List[List[str]] = [[]]
    depth = 0
    i = start
    while i < len(tokens):
        tok = tokens[i]
        if tok == "(":
            depth += 1
            args[-1].append(tok)
        elif tok == ")":
            if depth == 0:
                return args, i + 1
            depth -= 1
            args[-1].append(tok)
        elif tok == "," and depth == 0:
            args.append([])
        else:
            args[-1].append(tok)
        i += 1
    return args, None


def _splice_lines(source: str) -> str:
    return source.replace("\\\r\n", "").replace("\\\n", "")


def _strip_comments(source: str) -> str:
    """Remove comments, preserving newlines for line numbering."""
    out: List[str] = []
    i = 0
    n = len(source)
    while i < n:
        c = source[i]
        if c == "/" and i + 1 < n and source[i + 1] == "*":
            j = source.find("*/", i + 2)
            if j < 0:
                j = n - 2
            out.append(" ")
            out.extend("\n" for ch in source[i:j + 2] if ch == "\n")
            i = j + 2
            continue
        if c == "/" and i + 1 < n and source[i + 1] == "/":
            j = source.find("\n", i)
            i = n if j < 0 else j
            continue
        if c in "\"'":
            quote = c
            j = i + 1
            while j < n and source[j] != quote:
                if source[j] == "\\":
                    j += 1
                j += 1
            out.append(source[i : j + 1])
            i = j + 1
            continue
        out.append(c)
        i += 1
    return "".join(out)


def _join_tokens(tokens: List[str]) -> str:
    """Rejoin tokens with spaces, avoiding accidental pasting."""
    return " ".join(tokens)


def _default_reader(path: str) -> str:
    return read_source_file(path)
