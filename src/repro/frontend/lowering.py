"""Type checking and lowering of the AST to the typed IR (Sect. 5.1).

This pass performs, in order:

* name resolution (typedefs, struct/enum tags, enum constants, variables,
  functions) with unique identifiers per variable;
* type checking with C99 usual arithmetic conversions and explicit
  :class:`~repro.frontend.ir.Cast` nodes at every implicit conversion;
* side-effect hoisting: assignments, ``++``/``--`` and function calls inside
  expressions are pulled out into prefix statements so IR expressions are
  pure (the program transformation assumed in Sect. 5.4);
* evaluation of syntactically constant expressions (constant folding),
  including reads of ``const`` scalars and of ``const`` arrays at constant
  subscripts — which is what lets the large constant hardware-description
  arrays be optimized away (Sect. 5.1);
* deletion of unused global variables.

Intrinsics understood by the analyzer:

* ``__ASTREE_wait_for_clock()`` — the periodic synchronous wait;
* ``__ASTREE_known_fact(cond)`` — a trusted environment fact (assume);
* ``__ASTREE_assert(cond)`` — a user assertion checked in checking mode;
* ``fabs/fabsf/sqrt/sqrtf`` — pure math builtins with precise transfer
  functions.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from ..errors import TypeError_, UnsupportedConstructError
from . import ast_nodes as A
from . import ir as I
from .c_types import (
    BOOL, CHAR, DOUBLE, FLOAT, INT, LONG, SCHAR, SHORT, UCHAR, UINT, ULONG,
    USHORT, VOID, ArrayType, CType, EnumType, FloatType, FunctionType,
    IntType, PointerType, RecordType, VoidType, integer_promotion,
    usual_arithmetic_conversion,
)

__all__ = ["lower", "Lowerer"]

WAIT_INTRINSICS = frozenset({"__ASTREE_wait_for_clock", "wait_for_clock_tick"})
ASSUME_INTRINSIC = "__ASTREE_known_fact"
ASSERT_INTRINSIC = "__ASTREE_assert"
MATH_BUILTINS = {"fabs": "fabs", "fabsf": "fabs", "sqrt": "sqrt", "sqrtf": "sqrt"}

_BUILTIN_TYPES: Dict[str, CType] = {
    "void": VOID,
    "char": CHAR,
    "signed char": SCHAR,
    "unsigned char": UCHAR,
    "short": SHORT, "short int": SHORT, "signed short": SHORT, "signed short int": SHORT,
    "unsigned short": USHORT, "unsigned short int": USHORT,
    "int": INT, "signed": INT, "signed int": INT,
    "unsigned": UINT, "unsigned int": UINT,
    "long": LONG, "long int": LONG, "signed long": LONG, "signed long int": LONG,
    "unsigned long": ULONG, "unsigned long int": ULONG,
    "float": FLOAT,
    "double": DOUBLE,
    "long double": DOUBLE,  # target maps long double to binary64
    "_Bool": BOOL,
}


def lower(unit: A.TranslationUnit, entry: str = "main",
          delete_unused_globals: bool = True) -> I.IRProgram:
    """Type-check and lower a translation unit into an IR program."""
    return Lowerer().lower_unit(unit, entry, delete_unused_globals)


@dataclass
class _VarInfo:
    var: I.Var
    is_const: bool = False
    const_value: object = None  # folded initializer for const scalars
    const_array: Optional[Dict[Tuple[int, ...], object]] = None


class _Scope:
    def __init__(self, parent: Optional["_Scope"] = None):
        self.parent = parent
        self.names: Dict[str, _VarInfo] = {}

    def lookup(self, name: str) -> Optional[_VarInfo]:
        scope: Optional[_Scope] = self
        while scope is not None:
            if name in scope.names:
                return scope.names[name]
            scope = scope.parent
        return None

    def declare(self, name: str, info: _VarInfo) -> None:
        self.names[name] = info


class Lowerer:
    """Stateful AST-to-IR compiler for one or more translation units."""

    def __init__(self) -> None:
        self._uid_counter = itertools.count(1)
        self._typedefs: Dict[str, CType] = {}
        self._structs: Dict[str, RecordType] = {}
        self._enums: Dict[str, EnumType] = {}
        self._enum_constants: Dict[str, int] = {}
        self._globals_scope = _Scope()
        self._functions: Dict[str, I.IRFunction] = {}
        self._func_defs: Dict[str, A.FuncDef] = {}
        self._program = I.IRProgram()
        self._anon_counter = itertools.count(1)
        # Per-function state:
        self._scope: _Scope = self._globals_scope
        self._current_fn: Optional[I.IRFunction] = None
        self._temp_counter = itertools.count(1)
        self._call_counter = itertools.count(1)
        self._loop_counter = itertools.count(1)

    # -- public API ----------------------------------------------------------

    def lower_unit(self, unit: A.TranslationUnit, entry: str = "main",
                   delete_unused_globals: bool = True) -> I.IRProgram:
        self.add_unit(unit)
        return self.finish(entry, delete_unused_globals)

    def add_unit(self, unit: A.TranslationUnit) -> None:
        """Add one translation unit (the linker calls this repeatedly)."""
        for decl in unit.decls:
            if isinstance(decl, A.TypedefDecl):
                self._handle_typedef(decl)
            elif isinstance(decl, A.VarDecl):
                self._handle_global(decl)
            elif isinstance(decl, A.FuncDef):
                self._handle_function_decl(decl)
            else:  # pragma: no cover - parser produces only the above
                raise TypeError_(f"unexpected declaration {decl!r}")

    def finish(self, entry: str = "main", delete_unused_globals: bool = True) -> I.IRProgram:
        # Lower function bodies (two-phase so forward calls type-check).
        for name, fdef in self._func_defs.items():
            if fdef.body is not None:
                self._lower_function_body(name, fdef)
        for name, fn in self._functions.items():
            if fn.body is None and any(
                self._calls_in_program(name)
            ):
                raise TypeError_(f"function {name!r} declared but never defined")
        self._program.entry = entry
        if entry not in self._functions or self._functions[entry].body is None:
            raise TypeError_(f"entry function {entry!r} is not defined")
        self._program.functions = self._functions
        self._reject_recursion()
        if delete_unused_globals:
            self._delete_unused_globals()
        return self._program

    def _reject_recursion(self) -> None:
        """The family does not use recursion (Sect. 4); the analyzer's
        inlining semantics (Sect. 5.4) requires its absence."""
        edges: Dict[str, Set[str]] = {}
        for name, fn in self._functions.items():
            if fn.body is None:
                continue
            callees: Set[str] = set()
            for s in I.iter_stmts(fn.body):
                if isinstance(s, I.SCall):
                    callees.add(s.func)
            edges[name] = callees
        # Iterative DFS cycle detection.
        WHITE, GRAY, BLACK = 0, 1, 2
        color: Dict[str, int] = {name: WHITE for name in edges}
        for root in edges:
            if color[root] != WHITE:
                continue
            stack: List[Tuple[str, List[str]]] = [(root, sorted(edges[root]))]
            color[root] = GRAY
            while stack:
                node, todo = stack[-1]
                if not todo:
                    color[node] = BLACK
                    stack.pop()
                    continue
                nxt = todo.pop()
                if nxt not in color:
                    continue
                if color[nxt] == GRAY:
                    fn = self._functions[nxt]
                    raise UnsupportedConstructError(
                        f"recursion through function {nxt!r} is outside "
                        f"the supported subset",
                        fn.loc.filename, fn.loc.line, fn.loc.col)
                if color[nxt] == WHITE:
                    color[nxt] = GRAY
                    stack.append((nxt, sorted(edges.get(nxt, set()))))

    # -- declarations ----------------------------------------------------------

    def _handle_typedef(self, decl: A.TypedefDecl) -> None:
        base = self._resolve_type_spec(decl.type_spec)
        ctype = self._apply_declarator(base, decl.declarator, decl.loc)
        self._typedefs[decl.name] = ctype

    def _handle_global(self, decl: A.VarDecl) -> None:
        # Side-effect-only declarations (struct/enum definitions).
        self._resolve_type_spec(decl.type_spec)
        if not decl.name:
            return
        base = self._resolve_type_spec(decl.type_spec)
        ctype = self._apply_declarator(base, decl.declarator, decl.loc)
        if isinstance(ctype, PointerType):
            raise UnsupportedConstructError(
                "global pointers are outside the supported subset "
                "(pointers are restricted to call-by-reference)",
                decl.loc.filename, decl.loc.line, decl.loc.col)
        existing = self._globals_scope.lookup(decl.name)
        if existing is not None:
            if existing.var.ctype != ctype:
                raise TypeError_(
                    f"conflicting types for global {decl.name!r}",
                    decl.loc.filename, decl.loc.line, decl.loc.col)
            if decl.is_extern or decl.init is None:
                return  # re-declaration
        var = I.Var(next(self._uid_counter), decl.name, ctype,
                    kind=I.VarKind.GLOBAL, volatile=decl.is_volatile)
        info = _VarInfo(var, is_const=decl.is_const)
        self._globals_scope.declare(decl.name, info)
        if decl.is_extern and decl.init is None:
            # Tentative definition; keep the variable, value from linker/init.
            pass
        self._program.globals.append(var)
        if decl.is_volatile:
            self._program.volatile_inputs.append(var)
        if decl.init is not None:
            init_value = self._fold_initializer(ctype, decl.init, decl.loc)
            self._program.initializers[var.uid] = init_value
            if decl.is_const:
                if isinstance(ctype, (ArrayType,)):
                    info.const_array = _flatten_array_init(ctype, init_value)
                elif ctype.is_scalar():
                    info.const_value = init_value
        elif not decl.is_extern:
            # C semantics: globals without initializer are zero-initialized.
            self._program.initializers[var.uid] = _zero_init(ctype)

    def _handle_function_decl(self, fdef: A.FuncDef) -> None:
        ret = self._resolve_type_spec(fdef.ret_type)
        params: List[I.Var] = []
        byref: List[int] = []
        for idx, p in enumerate(fdef.params):
            base = self._resolve_type_spec(p.type_spec)
            ptype = self._apply_declarator(base, p.declarator, p.loc)
            if isinstance(ptype, ArrayType):
                raise UnsupportedConstructError(
                    "array parameters are outside the supported subset",
                    p.loc.filename, p.loc.line, p.loc.col)
            if isinstance(ptype, PointerType):
                byref.append(idx)
            params.append(I.Var(next(self._uid_counter), p.name, ptype,
                                kind=I.VarKind.PARAM))
        ftype = FunctionType(ret, tuple(p.ctype for p in params))
        if fdef.name in self._functions:
            old = self._functions[fdef.name]
            if old.ftype != ftype:
                raise TypeError_(f"conflicting types for function {fdef.name!r}",
                                 fdef.loc.filename, fdef.loc.line, fdef.loc.col)
            if fdef.body is None:
                return
            if old.body is not None:
                raise TypeError_(f"redefinition of function {fdef.name!r}",
                                 fdef.loc.filename, fdef.loc.line, fdef.loc.col)
        fn = I.IRFunction(name=fdef.name, params=params, ret_type=ret, body=None,
                          loc=fdef.loc, ftype=ftype, byref_params=tuple(byref))
        self._functions[fdef.name] = fn
        if fdef.body is not None:
            self._func_defs[fdef.name] = fdef

    def _lower_function_body(self, name: str, fdef: A.FuncDef) -> None:
        fn = self._functions[name]
        self._current_fn = fn
        self._scope = _Scope(self._globals_scope)
        for p in fn.params:
            self._scope.declare(p.name, _VarInfo(p))
        body = self._lower_block(fdef.body)
        fn.body = body
        self._scope = self._globals_scope
        self._current_fn = None

    # -- type resolution ---------------------------------------------------------

    def _resolve_type_spec(self, spec: A.TypeSpec) -> CType:
        if isinstance(spec, A.NamedType):
            if spec.name in self._typedefs:
                base = self._typedefs[spec.name]
            elif spec.name in _BUILTIN_TYPES:
                base = _BUILTIN_TYPES[spec.name]
            else:
                raise TypeError_(f"unknown type name {spec.name!r}",
                                 spec.loc.filename, spec.loc.line, spec.loc.col)
            for _ in range(spec.pointer_depth):
                base = PointerType(base)
            return base
        if isinstance(spec, A.StructSpec):
            tag = spec.tag or f"<anon{next(self._anon_counter)}>"
            if spec.fields is not None:
                fields: List[Tuple[str, CType]] = []
                for f in spec.fields:
                    fbase = self._resolve_type_spec(f.type_spec)
                    ftype = self._apply_declarator(fbase, f.declarator, f.loc)
                    if isinstance(ftype, PointerType):
                        raise UnsupportedConstructError(
                            "pointer struct fields are outside the supported subset",
                            f.loc.filename, f.loc.line, f.loc.col)
                    fields.append((f.name, ftype))
                rec = RecordType(tag, tuple(fields))
                self._structs[tag] = rec
            else:
                rec = self._structs.get(tag)
                if rec is None:
                    raise TypeError_(f"unknown struct tag {tag!r}",
                                     spec.loc.filename, spec.loc.line, spec.loc.col)
            base: CType = rec
            for _ in range(spec.pointer_depth):
                base = PointerType(base)
            return base
        if isinstance(spec, A.EnumSpec):
            tag = spec.tag or f"<anon{next(self._anon_counter)}>"
            if spec.members is not None:
                members: List[Tuple[str, int]] = []
                next_value = 0
                for mname, mexpr in spec.members:
                    if mexpr is not None:
                        value = self._const_int(mexpr)
                        next_value = value
                    members.append((mname, next_value))
                    self._enum_constants[mname] = next_value
                    next_value += 1
                en = EnumType(tag, tuple(members))
                self._enums[tag] = en
            else:
                en = self._enums.get(tag)
                if en is None:
                    raise TypeError_(f"unknown enum tag {tag!r}",
                                     spec.loc.filename, spec.loc.line, spec.loc.col)
            return en
        raise TypeError_(f"unresolvable type spec {spec!r}")

    def _apply_declarator(self, base: CType, decl: A.Declarator, loc: A.Location) -> CType:
        ctype = base
        for _ in range(decl.pointer_depth):
            ctype = PointerType(ctype)
        if decl.pointer_depth > 1:
            raise UnsupportedConstructError(
                "multi-level pointers are outside the supported subset",
                loc.filename, loc.line, loc.col)
        # Array dims apply outermost-first: int a[2][3] is array 2 of array 3.
        for dim in reversed(decl.array_dims):
            size = self._const_int(dim)
            if size <= 0:
                raise TypeError_("array size must be positive",
                                 loc.filename, loc.line, loc.col)
            ctype = ArrayType(ctype, size)
        return ctype

    # -- constant expressions -----------------------------------------------------

    def _const_int(self, expr: A.Expr) -> int:
        value = self._const_eval(expr)
        if not isinstance(value, int):
            raise TypeError_("expected integer constant expression",
                             expr.loc.filename, expr.loc.line, expr.loc.col)
        return value

    def _const_eval(self, expr: A.Expr):
        """Evaluate a syntactically constant expression, or raise."""

        def err() -> TypeError_:
            return TypeError_("expected constant expression",
                              expr.loc.filename, expr.loc.line, expr.loc.col)

        if isinstance(expr, A.IntLit):
            return expr.value
        if isinstance(expr, A.FloatLit):
            return expr.value
        if isinstance(expr, A.Ident):
            if expr.name in self._enum_constants:
                return self._enum_constants[expr.name]
            info = self._scope.lookup(expr.name)
            if info is not None and info.is_const and info.const_value is not None:
                return info.const_value
            raise err()
        if isinstance(expr, A.Unary):
            v = self._const_eval(expr.operand)
            if expr.op == "-":
                return -v
            if expr.op == "+":
                return v
            if expr.op == "!":
                return int(not v)
            if expr.op == "~" and isinstance(v, int):
                return ~v
            raise err()
        if isinstance(expr, A.Binary):
            left = self._const_eval(expr.left)
            right = self._const_eval(expr.right)
            return _fold_binary(expr.op, left, right, expr.loc)
        if isinstance(expr, A.Conditional):
            return (self._const_eval(expr.then) if self._const_eval(expr.cond)
                    else self._const_eval(expr.other))
        if isinstance(expr, A.Cast):
            v = self._const_eval(expr.operand)
            target = self._resolve_type_spec(expr.target_type)
            if isinstance(target, IntType):
                return _wrap_int(int(v), target)
            if isinstance(target, FloatType):
                return float(v)
            raise err()
        if isinstance(expr, A.SizeOf):
            return self._sizeof(expr)
        raise err()

    def _sizeof(self, expr: A.SizeOf) -> int:
        if expr.target_type is not None:
            ctype = self._resolve_type_spec(expr.target_type)
        else:
            _, e = self._lower_expr(expr.operand, [])
            ctype = _expr_type(e)
        return _type_size(ctype)

    def _fold_initializer(self, ctype: CType, init: A.InitItem, loc: A.Location):
        if isinstance(ctype, ArrayType):
            if init.items is None:
                raise TypeError_("array initializer must be a brace list",
                                 loc.filename, loc.line, loc.col)
            values = [self._fold_initializer(ctype.element, item, loc)
                      for item in init.items]
            if len(values) > ctype.length:
                raise TypeError_("too many array initializer elements",
                                 loc.filename, loc.line, loc.col)
            while len(values) < ctype.length:
                values.append(_zero_init(ctype.element))
            return values
        if isinstance(ctype, RecordType):
            if init.items is None:
                raise TypeError_("struct initializer must be a brace list",
                                 loc.filename, loc.line, loc.col)
            out = {}
            for (fname, ftype), item in zip(ctype.fields, init.items):
                out[fname] = self._fold_initializer(ftype, item, loc)
            for fname, ftype in ctype.fields[len(init.items):]:
                out[fname] = _zero_init(ftype)
            return out
        if init.expr is None:
            raise TypeError_("scalar initializer must be an expression",
                             loc.filename, loc.line, loc.col)
        value = self._const_eval(init.expr)
        if isinstance(ctype, IntType):
            return _wrap_int(int(value), ctype)
        if isinstance(ctype, EnumType):
            return int(value)
        if isinstance(ctype, FloatType):
            import numpy as np
            return float(np.float32(value)) if ctype is FLOAT else float(value)
        raise TypeError_(f"cannot initialize type {ctype}",
                         loc.filename, loc.line, loc.col)

    # -- statements ------------------------------------------------------------

    def _lower_block(self, block: A.CompoundStmt) -> List[I.Stmt]:
        outer = self._scope
        self._scope = _Scope(outer)
        stmts: List[I.Stmt] = []
        for item in block.items:
            stmts.extend(self._lower_stmt(item, block.block_id))
        self._scope = outer
        return stmts

    def _lower_stmt(self, stmt: A.Stmt, block_id: int) -> List[I.Stmt]:
        if isinstance(stmt, A.CompoundStmt):
            return self._lower_block(stmt)
        if isinstance(stmt, A.EmptyStmt):
            return []
        if isinstance(stmt, A.DeclStmt):
            return self._lower_decl_stmt(stmt, block_id)
        if isinstance(stmt, A.ExprStmt):
            prefix: List[I.Stmt] = []
            self._lower_expr_for_effect(stmt.expr, prefix, block_id)
            return prefix
        if isinstance(stmt, A.IfStmt):
            prefix = []
            cond = self._lower_condition(stmt.cond, prefix, block_id)
            then = self._lower_stmt(stmt.then, block_id)
            other = self._lower_stmt(stmt.other, block_id) if stmt.other else []
            prefix.append(I.SIf(cond=cond, then=then, other=other,
                                loc=stmt.loc, block_id=block_id))
            return prefix
        if isinstance(stmt, A.WhileStmt):
            return self._lower_loop(stmt.cond, stmt.body, None, None,
                                    stmt.loc, block_id, run_body_first=False)
        if isinstance(stmt, A.DoWhileStmt):
            return self._lower_loop(stmt.cond, stmt.body, None, None,
                                    stmt.loc, block_id, run_body_first=True)
        if isinstance(stmt, A.ForStmt):
            out: List[I.Stmt] = []
            outer = self._scope
            self._scope = _Scope(outer)
            if stmt.init is not None:
                out.extend(self._lower_stmt(stmt.init, block_id))
            cond = stmt.cond if stmt.cond is not None else A.IntLit(value=1, loc=stmt.loc)
            out.extend(self._lower_loop(cond, stmt.body, stmt.step, None,
                                        stmt.loc, block_id, run_body_first=False))
            self._scope = outer
            return out
        if isinstance(stmt, A.ReturnStmt):
            prefix = []
            value = None
            if stmt.value is not None:
                _, e = self._lower_expr(stmt.value, prefix, block_id)
                value = self._coerce(e, self._current_fn.ret_type, stmt.loc)
            elif not isinstance(self._current_fn.ret_type, VoidType):
                raise TypeError_("return without value in non-void function",
                                 stmt.loc.filename, stmt.loc.line, stmt.loc.col)
            prefix.append(I.SReturn(value=value, loc=stmt.loc, block_id=block_id))
            return prefix
        if isinstance(stmt, A.BreakStmt):
            return [I.SBreak(loc=stmt.loc, block_id=block_id)]
        if isinstance(stmt, A.ContinueStmt):
            return [I.SContinue(loc=stmt.loc, block_id=block_id)]
        if isinstance(stmt, A.SwitchStmt):
            return self._lower_switch(stmt, block_id)
        raise UnsupportedConstructError(
            f"unsupported statement {type(stmt).__name__}",
            stmt.loc.filename, stmt.loc.line, stmt.loc.col)

    def _lower_loop(self, cond: A.Expr, body: A.Stmt, step: Optional[A.Expr],
                    init: None, loc: A.Location, block_id: int,
                    run_body_first: bool) -> List[I.Stmt]:
        prefix: List[I.Stmt] = []
        ir_cond = self._lower_condition(cond, prefix, block_id)
        if prefix:
            raise UnsupportedConstructError(
                "side effects in loop conditions are outside the supported subset",
                loc.filename, loc.line, loc.col)
        ir_body = self._lower_stmt(body, block_id)
        step_stmts: List[I.Stmt] = []
        if step is not None:
            self._lower_expr_for_effect(step, step_stmts, block_id)
        loop = I.SWhile(cond=ir_cond, body=ir_body, step=step_stmts,
                        loop_id=next(self._loop_counter),
                        run_body_first=run_body_first, loc=loc, block_id=block_id)
        return [loop]

    def _lower_switch(self, stmt: A.SwitchStmt, block_id: int) -> List[I.Stmt]:
        prefix: List[I.Stmt] = []
        _, scrutinee = self._lower_expr(stmt.scrutinee, prefix, block_id)
        if not _expr_type(scrutinee).is_integer():
            raise TypeError_("switch scrutinee must have integer type",
                             stmt.loc.filename, stmt.loc.line, stmt.loc.col)
        cases: List[Tuple[Optional[List[int]], List[I.Stmt]]] = []
        pending_values: List[int] = []
        has_default = False
        for case in stmt.cases:
            if case.value is not None:
                pending_values.append(self._const_int(case.value))
            if not case.body:
                if case.value is None:
                    has_default = True
                    if not case.falls_through:
                        cases.append((None, []))
                        pending_values = []
                continue
            body: List[I.Stmt] = []
            for s in case.body:
                if isinstance(s, A.BreakStmt):
                    continue
                body.extend(self._lower_stmt(s, block_id))
            if case.value is None:
                has_default = True
                cases.append((None, body))
            else:
                cases.append((pending_values or [self._const_int(case.value)], body))
            pending_values = []
        prefix.append(I.SSwitch(scrutinee=scrutinee, cases=cases,
                                has_default=has_default, loc=stmt.loc,
                                block_id=block_id))
        return prefix

    def _lower_decl_stmt(self, stmt: A.DeclStmt, block_id: int) -> List[I.Stmt]:
        out: List[I.Stmt] = []
        for decl in stmt.decls:
            self._resolve_type_spec(decl.type_spec)
            if not decl.name:
                continue
            base = self._resolve_type_spec(decl.type_spec)
            ctype = self._apply_declarator(base, decl.declarator, decl.loc)
            if isinstance(ctype, PointerType):
                raise UnsupportedConstructError(
                    "local pointers are outside the supported subset",
                    decl.loc.filename, decl.loc.line, decl.loc.col)
            kind = I.VarKind.STATIC if decl.is_static else I.VarKind.LOCAL
            var = I.Var(next(self._uid_counter),
                        f"{self._current_fn.name}::{decl.name}", ctype, kind=kind,
                        volatile=decl.is_volatile)
            info = _VarInfo(var, is_const=decl.is_const)
            self._scope.declare(decl.name, info)
            if decl.is_static:
                # Semantically a global with a fresh name (Sect. 4, fn. 2).
                self._program.globals.append(var)
                if decl.init is not None:
                    self._program.initializers[var.uid] = \
                        self._fold_initializer(ctype, decl.init, decl.loc)
                else:
                    self._program.initializers[var.uid] = _zero_init(ctype)
                continue
            self._current_fn.locals.append(var)
            if decl.init is not None:
                out.extend(self._lower_local_init(var, ctype, decl.init,
                                                  decl.loc, block_id, info,
                                                  decl.is_const))
        return out

    def _lower_local_init(self, var: I.Var, ctype: CType, init: A.InitItem,
                          loc: A.Location, block_id: int, info: _VarInfo,
                          is_const: bool) -> List[I.Stmt]:
        out: List[I.Stmt] = []
        if isinstance(ctype, (ArrayType, RecordType)):
            folded = self._fold_initializer(ctype, init, loc)
            for path, value in _iter_scalar_paths(ctype, folded):
                lval: I.LValue = I.LVar(var)
                ct = ctype
                for step in path:
                    if isinstance(ct, ArrayType):
                        lval = I.LIndex(lval, I.Const(step, INT), ct.element)
                        ct = ct.element
                    else:
                        assert isinstance(ct, RecordType)
                        ft = ct.field_type(step)
                        lval = I.LField(lval, step, ft)
                        ct = ft
                out.append(I.SAssign(target=lval,
                                     value=I.Const(value, _scalar_ctype(ct)),
                                     loc=loc, block_id=block_id))
            if is_const and isinstance(ctype, ArrayType):
                info.const_array = _flatten_array_init(ctype, folded)
            return out
        if init.expr is None:
            raise TypeError_("scalar initializer must be an expression",
                             loc.filename, loc.line, loc.col)
        prefix: List[I.Stmt] = []
        _, e = self._lower_expr(init.expr, prefix, block_id)
        e = self._coerce(e, ctype, loc)
        out.extend(prefix)
        out.append(I.SAssign(target=I.LVar(var), value=e, loc=loc,
                             block_id=block_id))
        if is_const and isinstance(e, I.Const):
            info.const_value = e.value
        return out

    # -- expressions -------------------------------------------------------------

    def _lower_expr_for_effect(self, expr: A.Expr, prefix: List[I.Stmt],
                               block_id: int = -1) -> None:
        """Lower an expression evaluated only for side effects."""
        if isinstance(expr, A.Comma):
            for part in expr.parts:
                self._lower_expr_for_effect(part, prefix, block_id)
            return
        if isinstance(expr, A.Assign):
            self._lower_assign(expr, prefix, block_id)
            return
        if isinstance(expr, A.Unary) and expr.op in ("++pre", "--pre", "post++", "post--"):
            self._lower_incdec(expr, prefix, block_id)
            return
        if isinstance(expr, A.Call):
            self._lower_call(expr, prefix, block_id, want_result=False)
            return
        # Pure expression as a statement: evaluate (for checking) and drop.
        _, e = self._lower_expr(expr, prefix, block_id)
        _ = e

    def _lower_assign(self, expr: A.Assign, prefix: List[I.Stmt],
                      block_id: int) -> I.LValue:
        target = self._lower_lvalue(expr.target, prefix, block_id)
        tt = target.ctype
        if isinstance(tt, (ArrayType, RecordType)):
            raise UnsupportedConstructError(
                "aggregate assignment is outside the supported subset",
                expr.loc.filename, expr.loc.line, expr.loc.col)
        _, value = self._lower_expr(expr.value, prefix, block_id)
        if expr.op != "=":
            binop = {"+=": "+", "-=": "-", "*=": "*", "/=": "/", "%=": "%",
                     "&=": "&", "|=": "|", "^=": "^", "<<=": "<<", ">>=": ">>"}[expr.op]
            value = self._make_binop(binop, I.Load(target), value, expr.loc)
        value = self._coerce(value, tt, expr.loc)
        prefix.append(I.SAssign(target=target, value=value, loc=expr.loc,
                                block_id=block_id))
        return target

    def _lower_incdec(self, expr: A.Unary, prefix: List[I.Stmt],
                      block_id: int) -> Tuple[Optional[I.Var], I.LValue]:
        target = self._lower_lvalue(expr.operand, prefix, block_id)
        if not target.ctype.is_integer():
            raise UnsupportedConstructError(
                "++/-- on non-integer types is outside the supported subset",
                expr.loc.filename, expr.loc.line, expr.loc.col)
        delta = 1 if "++" in expr.op else -1
        old_temp: Optional[I.Var] = None
        if expr.op.startswith("post"):
            old_temp = self._fresh_temp(target.ctype)
            prefix.append(I.SAssign(target=I.LVar(old_temp),
                                    value=I.Load(target), loc=expr.loc,
                                    block_id=block_id))
        one = I.Const(delta, INT)
        new_value = self._make_binop("+", I.Load(target), one, expr.loc)
        new_value = self._coerce(new_value, target.ctype, expr.loc)
        prefix.append(I.SAssign(target=target, value=new_value, loc=expr.loc,
                                block_id=block_id))
        return old_temp, target

    def _lower_call(self, expr: A.Call, prefix: List[I.Stmt], block_id: int,
                    want_result: bool) -> Optional[I.Expr]:
        name = expr.func
        loc = expr.loc
        if name in WAIT_INTRINSICS:
            prefix.append(I.SWait(loc=loc, block_id=block_id))
            return None
        if name == ASSUME_INTRINSIC or name == ASSERT_INTRINSIC:
            if len(expr.args) != 1:
                raise TypeError_(f"{name} takes exactly one argument",
                                 loc.filename, loc.line, loc.col)
            cond = self._lower_condition(expr.args[0], prefix, block_id)
            if name == ASSUME_INTRINSIC:
                prefix.append(I.SAssume(cond=cond, loc=loc, block_id=block_id))
            else:
                prefix.append(I.SCheck(cond=cond, message=str(loc), loc=loc,
                                       block_id=block_id))
            return None
        if name in MATH_BUILTINS:
            if len(expr.args) != 1:
                raise TypeError_(f"{name} takes exactly one argument",
                                 loc.filename, loc.line, loc.col)
            _, arg = self._lower_expr(expr.args[0], prefix, block_id)
            ftype = FLOAT if name.endswith("f") else DOUBLE
            arg = self._coerce(arg, ftype, loc)
            return I.UnaryOp(MATH_BUILTINS[name], arg, ftype)
        fn = self._functions.get(name)
        if fn is None:
            raise TypeError_(f"call to undeclared function {name!r}",
                             loc.filename, loc.line, loc.col)
        if len(expr.args) != len(fn.params):
            raise TypeError_(
                f"function {name!r} expects {len(fn.params)} arguments, "
                f"got {len(expr.args)}", loc.filename, loc.line, loc.col)
        args: List[Union[I.Expr, I.LValue]] = []
        for idx, (arg_expr, param) in enumerate(zip(expr.args, fn.params)):
            if isinstance(param.ctype, PointerType):
                lv = self._lower_byref_arg(arg_expr, param.ctype, prefix, block_id)
                args.append(lv)
            else:
                _, e = self._lower_expr(arg_expr, prefix, block_id)
                args.append(self._coerce(e, param.ctype, loc))
        result: Optional[I.LValue] = None
        if want_result:
            if isinstance(fn.ret_type, VoidType):
                raise TypeError_(f"void function {name!r} used as a value",
                                 loc.filename, loc.line, loc.col)
            temp = self._fresh_temp(fn.ret_type)
            result = I.LVar(temp)
        prefix.append(I.SCall(func=name, args=args, result=result,
                              call_id=next(self._call_counter), loc=loc,
                              block_id=block_id))
        return I.Load(result) if result is not None else None

    def _lower_byref_arg(self, expr: A.Expr, ptype: PointerType,
                         prefix: List[I.Stmt], block_id: int) -> I.LValue:
        if isinstance(expr, A.Unary) and expr.op == "&":
            lv = self._lower_lvalue(expr.operand, prefix, block_id)
            if lv.ctype != ptype.pointee:
                raise TypeError_(
                    f"by-reference argument has type {lv.ctype}, expected "
                    f"{ptype.pointee}", expr.loc.filename, expr.loc.line,
                    expr.loc.col)
            return lv
        # Forwarding a pointer parameter.
        if isinstance(expr, A.Ident):
            info = self._scope.lookup(expr.name)
            if info is not None and isinstance(info.var.ctype, PointerType):
                if info.var.ctype != ptype:
                    raise TypeError_("pointer parameter type mismatch",
                                     expr.loc.filename, expr.loc.line, expr.loc.col)
                return I.LDeref(info.var, ptype.pointee)
        raise UnsupportedConstructError(
            "pointer arguments must be '&lvalue' or a forwarded parameter",
            expr.loc.filename, expr.loc.line, expr.loc.col)

    def _lower_lvalue(self, expr: A.Expr, prefix: List[I.Stmt],
                      block_id: int) -> I.LValue:
        if isinstance(expr, A.Ident):
            info = self._scope.lookup(expr.name)
            if info is None:
                raise TypeError_(f"undeclared identifier {expr.name!r}",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            if info.is_const:
                raise TypeError_(f"assignment to const {expr.name!r}",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            return I.LVar(info.var)
        if isinstance(expr, A.Unary) and expr.op == "*":
            if isinstance(expr.operand, A.Ident):
                info = self._scope.lookup(expr.operand.name)
                if info is not None and isinstance(info.var.ctype, PointerType):
                    return I.LDeref(info.var, info.var.ctype.pointee)
            raise UnsupportedConstructError(
                "dereference of a non-parameter pointer",
                expr.loc.filename, expr.loc.line, expr.loc.col)
        if isinstance(expr, A.Index):
            base = self._lower_lvalue_nonconst(expr.base, prefix, block_id)
            bt = base.ctype
            if not isinstance(bt, ArrayType):
                raise TypeError_(f"subscripted value has type {bt}, not array",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            _, idx = self._lower_expr(expr.index, prefix, block_id)
            if not _expr_type(idx).is_integer():
                raise TypeError_("array subscript must have integer type",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            return I.LIndex(base, idx, bt.element)
        if isinstance(expr, A.Member):
            if expr.arrow:
                if not isinstance(expr.base, A.Ident):
                    raise UnsupportedConstructError(
                        "'->' is only supported on pointer parameters",
                        expr.loc.filename, expr.loc.line, expr.loc.col)
                info = self._scope.lookup(expr.base.name)
                if info is None or not isinstance(info.var.ctype, PointerType):
                    raise TypeError_("'->' applied to a non-pointer",
                                     expr.loc.filename, expr.loc.line, expr.loc.col)
                base: I.LValue = I.LDeref(info.var, info.var.ctype.pointee)
            else:
                base = self._lower_lvalue_nonconst(expr.base, prefix, block_id)
            bt = base.ctype
            if not isinstance(bt, RecordType):
                raise TypeError_(f"member access on non-struct type {bt}",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            ft = bt.field_type(expr.name)
            if ft is None:
                raise TypeError_(f"no field {expr.name!r} in {bt}",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            return I.LField(base, expr.name, ft)
        raise TypeError_("expression is not an l-value",
                         expr.loc.filename, expr.loc.line, expr.loc.col)

    def _lower_lvalue_nonconst(self, expr: A.Expr, prefix: List[I.Stmt],
                               block_id: int) -> I.LValue:
        """L-value lowering for bases (const allowed: reading a const array)."""
        if isinstance(expr, A.Ident):
            info = self._scope.lookup(expr.name)
            if info is None:
                raise TypeError_(f"undeclared identifier {expr.name!r}",
                                 expr.loc.filename, expr.loc.line, expr.loc.col)
            return I.LVar(info.var)
        return self._lower_lvalue(expr, prefix, block_id)

    def _lower_condition(self, expr: A.Expr, prefix: List[I.Stmt],
                         block_id: int) -> I.Expr:
        _, e = self._lower_expr(expr, prefix, block_id)
        t = _expr_type(e)
        if not t.is_scalar():
            raise TypeError_("condition must have scalar type",
                             expr.loc.filename, expr.loc.line, expr.loc.col)
        return e

    def _lower_expr(self, expr: A.Expr, prefix: List[I.Stmt],
                    block_id: int = -1) -> Tuple[List[I.Stmt], I.Expr]:
        """Lower to a pure IR expression, hoisting side effects to prefix."""
        e = self._lower_expr_inner(expr, prefix, block_id)
        return prefix, e

    def _lower_expr_inner(self, expr: A.Expr, prefix: List[I.Stmt],
                          block_id: int) -> I.Expr:
        loc = expr.loc
        if isinstance(expr, A.IntLit):
            ctype = UINT if "u" in expr.suffix else INT
            if not (ctype.min_value <= expr.value <= ctype.max_value):
                ctype = ULONG if "u" in expr.suffix else LONG
            return I.Const(_wrap_int(expr.value, ctype), ctype)
        if isinstance(expr, A.FloatLit):
            if "f" in expr.suffix:
                import numpy as np
                return I.Const(float(np.float32(expr.value)), FLOAT)
            return I.Const(expr.value, DOUBLE)
        if isinstance(expr, A.Ident):
            if expr.name in self._enum_constants:
                return I.Const(self._enum_constants[expr.name], INT)
            info = self._scope.lookup(expr.name)
            if info is None:
                raise TypeError_(f"undeclared identifier {expr.name!r}",
                                 loc.filename, loc.line, loc.col)
            # Constant folding of const scalars (Sect. 5.1).
            if info.is_const and info.const_value is not None:
                return I.Const(info.const_value, _scalar_ctype(info.var.ctype))
            if isinstance(info.var.ctype, PointerType):
                raise UnsupportedConstructError(
                    "pointer-valued expressions are outside the supported subset",
                    loc.filename, loc.line, loc.col)
            return I.Load(I.LVar(info.var))
        if isinstance(expr, A.Index):
            # Const array at constant subscript folds to its value.
            folded = self._try_fold_const_array(expr)
            if folded is not None:
                return folded
            lv = self._lower_lvalue_nonconst(expr, prefix, block_id)
            return I.Load(lv)
        if isinstance(expr, A.Member):
            lv = self._lower_lvalue_nonconst(expr, prefix, block_id)
            return I.Load(lv)
        if isinstance(expr, A.Unary):
            return self._lower_unary(expr, prefix, block_id)
        if isinstance(expr, A.Binary):
            left = self._lower_expr_inner(expr.left, prefix, block_id)
            right = self._lower_expr_inner(expr.right, prefix, block_id)
            return self._make_binop(expr.op, left, right, loc)
        if isinstance(expr, A.Assign):
            target = self._lower_assign(expr, prefix, block_id)
            return I.Load(target)
        if isinstance(expr, A.Conditional):
            cond = self._lower_condition(expr.cond, prefix, block_id)
            then_prefix: List[I.Stmt] = []
            other_prefix: List[I.Stmt] = []
            then_e = self._lower_expr_inner(expr.then, then_prefix, block_id)
            other_e = self._lower_expr_inner(expr.other, other_prefix, block_id)
            common = usual_arithmetic_conversion(_expr_type(then_e), _expr_type(other_e))
            temp = self._fresh_temp(common)
            then_prefix.append(I.SAssign(target=I.LVar(temp),
                                         value=self._coerce(then_e, common, loc),
                                         loc=loc, block_id=block_id))
            other_prefix.append(I.SAssign(target=I.LVar(temp),
                                          value=self._coerce(other_e, common, loc),
                                          loc=loc, block_id=block_id))
            prefix.append(I.SIf(cond=cond, then=then_prefix, other=other_prefix,
                                loc=loc, block_id=block_id))
            return I.Load(I.LVar(temp))
        if isinstance(expr, A.Call):
            result = self._lower_call(expr, prefix, block_id, want_result=True)
            assert result is not None
            return result
        if isinstance(expr, A.Cast):
            target = self._resolve_type_spec(expr.target_type)
            operand = self._lower_expr_inner(expr.operand, prefix, block_id)
            if not target.is_scalar() or isinstance(target, PointerType):
                raise UnsupportedConstructError(
                    f"cast to {target} is outside the supported subset",
                    loc.filename, loc.line, loc.col)
            return self._coerce(operand, target, loc, explicit=True)
        if isinstance(expr, A.SizeOf):
            return I.Const(self._sizeof(expr), UINT)
        if isinstance(expr, A.Comma):
            for part in expr.parts[:-1]:
                self._lower_expr_for_effect(part, prefix, block_id)
            return self._lower_expr_inner(expr.parts[-1], prefix, block_id)
        raise UnsupportedConstructError(
            f"unsupported expression {type(expr).__name__}",
            loc.filename, loc.line, loc.col)

    def _try_fold_const_array(self, expr: A.Index) -> Optional[I.Expr]:
        path: List[int] = []
        node: A.Expr = expr
        while isinstance(node, A.Index):
            try:
                path.append(self._const_int(node.index))
            except TypeError_:
                return None
            node = node.base
        if not isinstance(node, A.Ident):
            return None
        info = self._scope.lookup(node.name)
        if info is None or info.const_array is None:
            return None
        key = tuple(reversed(path))
        if key not in info.const_array:
            return None
        value = info.const_array[key]
        ct: CType = info.var.ctype
        for _ in key:
            assert isinstance(ct, ArrayType)
            ct = ct.element
        return I.Const(value, _scalar_ctype(ct))

    def _lower_unary(self, expr: A.Unary, prefix: List[I.Stmt],
                     block_id: int) -> I.Expr:
        loc = expr.loc
        if expr.op in ("++pre", "--pre"):
            _, target = self._lower_incdec(expr, prefix, block_id)
            return I.Load(target)
        if expr.op in ("post++", "post--"):
            old_temp, _ = self._lower_incdec(expr, prefix, block_id)
            assert old_temp is not None
            return I.Load(I.LVar(old_temp))
        if expr.op == "&":
            raise UnsupportedConstructError(
                "'&' is only supported for call-by-reference arguments",
                loc.filename, loc.line, loc.col)
        if expr.op == "*":
            lv = self._lower_lvalue(expr, prefix, block_id)
            return I.Load(lv)
        arg = self._lower_expr_inner(expr.operand, prefix, block_id)
        t = _expr_type(arg)
        if expr.op == "+":
            if not t.is_arithmetic():
                raise TypeError_("unary '+' on non-arithmetic type",
                                 loc.filename, loc.line, loc.col)
            return self._promote(arg)
        if expr.op == "-":
            if not t.is_arithmetic():
                raise TypeError_("unary '-' on non-arithmetic type",
                                 loc.filename, loc.line, loc.col)
            arg = self._promote(arg)
            if isinstance(arg, I.Const):
                return I.Const(-arg.value if not isinstance(_expr_type(arg), IntType)
                               else _wrap_int(-arg.value, _expr_type(arg)),
                               _expr_type(arg))
            return I.UnaryOp("neg", arg, _expr_type(arg))
        if expr.op == "~":
            if not t.is_integer():
                raise TypeError_("'~' on non-integer type",
                                 loc.filename, loc.line, loc.col)
            arg = self._promote(arg)
            if isinstance(arg, I.Const):
                return I.Const(_wrap_int(~arg.value, _expr_type(arg)), _expr_type(arg))
            return I.UnaryOp("bnot", arg, _expr_type(arg))
        if expr.op == "!":
            if not t.is_scalar():
                raise TypeError_("'!' on non-scalar type",
                                 loc.filename, loc.line, loc.col)
            if isinstance(arg, I.Const):
                return I.Const(int(arg.value == 0), INT)
            return I.NotOp(arg, INT)
        raise UnsupportedConstructError(f"unsupported unary operator {expr.op!r}",
                                        loc.filename, loc.line, loc.col)

    def _make_binop(self, op: str, left: I.Expr, right: I.Expr,
                    loc: A.Location) -> I.Expr:
        lt, rt = _expr_type(left), _expr_type(right)
        if op in ("&&", "||"):
            if not (lt.is_scalar() and rt.is_scalar()):
                raise TypeError_(f"{op!r} on non-scalar operands",
                                 loc.filename, loc.line, loc.col)
            if isinstance(left, I.Const) and isinstance(right, I.Const):
                lv = left.value != 0
                rv = right.value != 0
                return I.Const(int(lv and rv if op == "&&" else lv or rv), INT)
            return I.BoolOp("and" if op == "&&" else "or", left, right, INT)
        if not (lt.is_arithmetic() and rt.is_arithmetic()):
            raise TypeError_(f"operator {op!r} on non-arithmetic operands "
                             f"({lt} and {rt})", loc.filename, loc.line, loc.col)
        ir_op = {
            "+": "add", "-": "sub", "*": "mul", "/": "div", "%": "mod",
            "<<": "shl", ">>": "shr", "&": "band", "|": "bor", "^": "bxor",
            "<": "lt", "<=": "le", ">": "gt", ">=": "ge", "==": "eq", "!=": "ne",
        }[op]
        if ir_op in ("mod", "shl", "shr", "band", "bor", "bxor") and not (
            lt.is_integer() and rt.is_integer()
        ):
            raise TypeError_(f"operator {op!r} requires integer operands",
                             loc.filename, loc.line, loc.col)
        if ir_op in ("shl", "shr"):
            left = self._promote(left)
            right = self._promote(right)
            common = _expr_type(left)
        else:
            common = usual_arithmetic_conversion(lt, rt)
            left = self._coerce(left, common, loc)
            right = self._coerce(right, common, loc)
        result_type = INT if ir_op in I._CMP_OPS else common
        if isinstance(left, I.Const) and isinstance(right, I.Const):
            folded = _fold_ir_binop(ir_op, left.value, right.value, common, loc)
            if folded is not None:
                return I.Const(folded, result_type)
        return I.BinOp(ir_op, left, right, result_type, operand_type=common)

    def _promote(self, e: I.Expr) -> I.Expr:
        t = _expr_type(e)
        promoted = integer_promotion(t) if t.is_integer() else t
        if promoted != t:
            if isinstance(e, I.Const):
                return I.Const(_wrap_int(e.value, promoted), promoted)
            return I.Cast(e, promoted)
        return e

    def _coerce(self, e: I.Expr, target: CType, loc: A.Location,
                explicit: bool = False) -> I.Expr:
        t = _expr_type(e)
        if isinstance(target, EnumType):
            target = INT
        if isinstance(t, EnumType):
            t = INT
            if isinstance(e, I.Const):
                e = I.Const(e.value, INT)
        if t == target:
            return e
        if not (t.is_arithmetic() and target.is_arithmetic()):
            raise TypeError_(f"cannot convert {t} to {target}",
                             loc.filename, loc.line, loc.col)
        if isinstance(e, I.Const):
            if isinstance(target, IntType):
                return I.Const(_wrap_int(int(e.value), target), target)
            import numpy as np
            value = float(np.float32(e.value)) if target is FLOAT else float(e.value)
            return I.Const(value, target)
        return I.Cast(e, target)

    def _fresh_temp(self, ctype: CType) -> I.Var:
        var = I.Var(next(self._uid_counter),
                    f"$t{next(self._temp_counter)}", ctype, kind=I.VarKind.TEMP)
        if self._current_fn is not None:
            self._current_fn.locals.append(var)
        return var

    # -- unused-global deletion -----------------------------------------------

    def _calls_in_program(self, name: str):
        for fn in self._functions.values():
            if fn.body is None:
                continue
            for s in I.iter_stmts(fn.body):
                if isinstance(s, I.SCall) and s.func == name:
                    yield s

    def _delete_unused_globals(self) -> None:
        used: Set[int] = set()

        def mark_expr(e: I.Expr) -> None:
            if isinstance(e, I.Load):
                mark_lvalue(e.lval)
            elif isinstance(e, I.UnaryOp):
                mark_expr(e.arg)
            elif isinstance(e, I.BinOp):
                mark_expr(e.left)
                mark_expr(e.right)
            elif isinstance(e, I.BoolOp):
                mark_expr(e.left)
                mark_expr(e.right)
            elif isinstance(e, I.NotOp):
                mark_expr(e.arg)
            elif isinstance(e, I.Cast):
                mark_expr(e.arg)

        def mark_lvalue(lv: I.LValue) -> None:
            if isinstance(lv, I.LVar):
                used.add(lv.var.uid)
            elif isinstance(lv, I.LDeref):
                used.add(lv.var.uid)
            elif isinstance(lv, I.LIndex):
                mark_lvalue(lv.base)
                mark_expr(lv.index)
            elif isinstance(lv, I.LField):
                mark_lvalue(lv.base)

        for fn in self._functions.values():
            if fn.body is None:
                continue
            for s in I.iter_stmts(fn.body):
                if isinstance(s, I.SAssign):
                    mark_lvalue(s.target)
                    mark_expr(s.value)
                elif isinstance(s, (I.SIf, I.SWhile)):
                    mark_expr(s.cond)
                elif isinstance(s, I.SSwitch):
                    mark_expr(s.scrutinee)
                elif isinstance(s, I.SCall):
                    for a in s.args:
                        if isinstance(a, I.LValue):
                            mark_lvalue(a)
                        else:
                            mark_expr(a)
                    if s.result is not None:
                        mark_lvalue(s.result)
                elif isinstance(s, I.SReturn) and s.value is not None:
                    mark_expr(s.value)
                elif isinstance(s, (I.SAssume, I.SCheck)):
                    mark_expr(s.cond)

        kept = [v for v in self._program.globals if v.uid in used]
        self._program.globals = kept
        self._program.initializers = {
            uid: init for uid, init in self._program.initializers.items()
            if uid in used
        }
        self._program.volatile_inputs = [
            v for v in self._program.volatile_inputs if v.uid in used
        ]


# --------------------------------------------------------------------------
# Helpers


def _type_size(ctype: CType) -> int:
    """sizeof on the 32-bit target, in bytes."""
    if isinstance(ctype, IntType):
        return ctype.bits // 8
    if isinstance(ctype, EnumType):
        return INT.bits // 8
    if isinstance(ctype, FloatType):
        return 4 if ctype is FLOAT else 8
    if isinstance(ctype, ArrayType):
        return ctype.length * _type_size(ctype.element)
    if isinstance(ctype, RecordType):
        return sum(_type_size(ft) for _, ft in ctype.fields)
    if isinstance(ctype, PointerType):
        return 4
    raise TypeError_(f"sizeof({ctype}) is not defined")


def _expr_type(e: I.Expr) -> CType:
    if isinstance(e, I.Const):
        return e.ctype
    if isinstance(e, I.Load):
        return e.lval.ctype
    if isinstance(e, (I.UnaryOp, I.BinOp, I.BoolOp, I.NotOp, I.Cast)):
        return e.ctype
    raise TypeError_(f"untyped expression {e!r}")


def _scalar_ctype(t: CType) -> CType:
    return INT if isinstance(t, EnumType) else t


def _wrap_int(value: int, t: IntType) -> int:
    """Wrap a Python int into the representable range of ``t`` (modular)."""
    if isinstance(t, EnumType):
        t = INT
    mask = (1 << t.bits) - 1
    value &= mask
    if t.signed and value > t.max_value:
        value -= 1 << t.bits
    return value


def _zero_init(ctype: CType):
    if isinstance(ctype, ArrayType):
        return [_zero_init(ctype.element) for _ in range(ctype.length)]
    if isinstance(ctype, RecordType):
        return {fname: _zero_init(ftype) for fname, ftype in ctype.fields}
    if isinstance(ctype, FloatType):
        return 0.0
    return 0


def _flatten_array_init(ctype: ArrayType, values) -> Dict[Tuple[int, ...], object]:
    out: Dict[Tuple[int, ...], object] = {}
    for path, value in _iter_scalar_paths(ctype, values):
        if all(isinstance(p, int) for p in path):
            out[tuple(path)] = value
    return out


def _iter_scalar_paths(ctype: CType, value):
    """Yield (path, scalar) pairs over a folded aggregate initializer."""
    if isinstance(ctype, ArrayType):
        for i, v in enumerate(value):
            for path, s in _iter_scalar_paths(ctype.element, v):
                yield [i] + path, s
    elif isinstance(ctype, RecordType):
        for fname, ftype in ctype.fields:
            for path, s in _iter_scalar_paths(ftype, value[fname]):
                yield [fname] + path, s
    else:
        yield [], value


def _fold_binary(op: str, left, right, loc: A.Location):
    try:
        if op == "+":
            return left + right
        if op == "-":
            return left - right
        if op == "*":
            return left * right
        if op == "/":
            if isinstance(left, int) and isinstance(right, int):
                q = abs(left) // abs(right)
                return q if (left >= 0) == (right >= 0) else -q
            return left / right
        if op == "%":
            q = abs(left) % abs(right)
            return q if left >= 0 else -q
        if op == "<<":
            return left << right
        if op == ">>":
            return left >> right
        if op == "&":
            return left & right
        if op == "|":
            return left | right
        if op == "^":
            return left ^ right
        if op == "<":
            return int(left < right)
        if op == "<=":
            return int(left <= right)
        if op == ">":
            return int(left > right)
        if op == ">=":
            return int(left >= right)
        if op == "==":
            return int(left == right)
        if op == "!=":
            return int(left != right)
        if op == "&&":
            return int(bool(left) and bool(right))
        if op == "||":
            return int(bool(left) or bool(right))
    except (ZeroDivisionError, TypeError) as exc:
        raise TypeError_(f"invalid constant expression: {exc}",
                         loc.filename, loc.line, loc.col)
    raise TypeError_(f"unknown operator {op!r} in constant expression",
                     loc.filename, loc.line, loc.col)


def _fold_ir_binop(op: str, left, right, common: CType, loc: A.Location):
    """Fold a binop over constants; None when folding must not happen
    (e.g. division by zero must surface as an alarm, not a crash)."""
    if op in ("div", "mod") and right == 0:
        return None
    sym = {"add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
           "shl": "<<", "shr": ">>", "band": "&", "bor": "|", "bxor": "^",
           "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!="}[op]
    if op in ("shl", "shr") and (right < 0 or right >= 64):
        return None
    value = _fold_binary(sym, left, right, loc)
    if op in I._CMP_OPS:
        return value
    if isinstance(common, IntType):
        return _wrap_int(int(value), common)
    if common is FLOAT:
        import numpy as np
        return float(np.float32(value))
    return float(value)
