"""C frontend: preprocessing, parsing, type checking, lowering, linking."""

from .linker import compile_files, compile_source, link_sources
from .parser import parse
from .preprocessor import preprocess

__all__ = [
    "compile_files",
    "compile_source",
    "link_sources",
    "parse",
    "preprocess",
]
