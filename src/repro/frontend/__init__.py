"""C frontend: preprocessing, parsing, type checking, lowering, linking."""

from .linker import compile_files, compile_source, link_sources
from .parser import parse
from .preprocessor import (
    check_source_text, decode_source, preprocess, read_source_file,
)

__all__ = [
    "check_source_text",
    "compile_files",
    "compile_source",
    "decode_source",
    "link_sources",
    "parse",
    "preprocess",
    "read_source_file",
]
