"""Typed intermediate representation (Sect. 5.1).

"The program is then type-checked and compiled to an intermediate
representation, a simplified version of the abstract syntax tree with all
types explicit and variables given unique identifiers."

The IR is what the iterator (Sect. 5.3) executes abstractly:

* Variables carry unique integer ids, an explicit :class:`~repro.frontend.
  c_types.CType` and a storage kind; volatile inputs are distinguished so
  reads consult the environment specification (Sect. 4).
* Expressions are side-effect free; lowering hoists assignments, calls and
  ``++``/``--`` out of conditions ("both of which can be handled by first
  performing a program transformation", Sect. 5.4).
* Control structure is retained (tests, loops, sequences), matching the
  compositional, by-induction-on-syntax abstract interpreter.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from .ast_nodes import Location, UNKNOWN_LOC
from .c_types import CType, FunctionType

__all__ = [
    "Var", "VarKind",
    "LValue", "LVar", "LIndex", "LField", "LDeref",
    "Expr", "Const", "Load", "UnaryOp", "BinOp", "BoolOp", "NotOp", "Cast",
    "Stmt", "SAssign", "SIf", "SWhile", "SCall", "SReturn", "SBreak",
    "SContinue", "SWait", "SAssume", "SCheck", "SNop", "SSwitch",
    "IRFunction", "IRProgram", "fresh_stmt_id",
]


class VarKind:
    GLOBAL = "global"
    STATIC = "static"
    LOCAL = "local"
    PARAM = "param"
    RETURN = "return"
    TEMP = "temp"


@dataclass(frozen=True)
class Var:
    """A program variable with a unique identifier."""

    uid: int
    name: str
    ctype: CType
    kind: str = VarKind.GLOBAL
    volatile: bool = False

    def __str__(self) -> str:
        return self.name

    def __repr__(self) -> str:  # pragma: no cover
        return f"Var({self.uid}, {self.name})"


# --------------------------------------------------------------------------
# L-values


@dataclass(frozen=True)
class LValue:
    pass


@dataclass(frozen=True)
class LVar(LValue):
    var: Var

    @property
    def ctype(self) -> CType:
        return self.var.ctype

    def __str__(self) -> str:
        return self.var.name


@dataclass(frozen=True)
class LIndex(LValue):
    base: LValue
    index: "Expr"
    element_type: CType

    @property
    def ctype(self) -> CType:
        return self.element_type

    def __str__(self) -> str:
        return f"{self.base}[{self.index}]"


@dataclass(frozen=True)
class LField(LValue):
    base: LValue
    fieldname: str
    field_type: CType

    @property
    def ctype(self) -> CType:
        return self.field_type

    def __str__(self) -> str:
        return f"{self.base}.{self.fieldname}"


@dataclass(frozen=True)
class LDeref(LValue):
    """Dereference of a call-by-reference pointer parameter (Sect. 4).

    At a call, the iterator binds the parameter to the actual l-value, so a
    deref never escapes the callee's abstract execution.
    """

    var: Var
    pointee_type: CType

    @property
    def ctype(self) -> CType:
        return self.pointee_type

    def __str__(self) -> str:
        return f"*{self.var.name}"


def lvalue_root(lv: LValue) -> Var:
    while not isinstance(lv, (LVar, LDeref)):
        lv = lv.base  # type: ignore[union-attr]
    return lv.var


# --------------------------------------------------------------------------
# Expressions (side-effect free)


@dataclass(frozen=True)
class Expr:
    pass


@dataclass(frozen=True)
class Const(Expr):
    value: Union[int, float]
    ctype: CType

    def __str__(self) -> str:
        return repr(self.value)


@dataclass(frozen=True)
class Load(Expr):
    lval: LValue

    @property
    def ctype(self) -> CType:
        return self.lval.ctype

    def __str__(self) -> str:
        return str(self.lval)


@dataclass(frozen=True)
class UnaryOp(Expr):
    """op in {'neg', 'bnot', 'fabs', 'sqrt'}; applied after promotion."""

    op: str
    arg: Expr
    ctype: CType

    def __str__(self) -> str:
        sym = {"neg": "-", "bnot": "~"}.get(self.op, self.op)
        return f"{sym}({self.arg})"


_ARITH_OPS = ("add", "sub", "mul", "div", "mod", "shl", "shr", "band", "bor", "bxor")
_CMP_OPS = ("lt", "le", "gt", "ge", "eq", "ne")


@dataclass(frozen=True)
class BinOp(Expr):
    """Arithmetic or comparison; operands already share a common type.

    ``ctype`` is the result type; for comparisons it is ``int`` while the
    operands' common type is ``operand_type``.
    """

    op: str
    left: Expr
    right: Expr
    ctype: CType
    operand_type: CType = None

    def __str__(self) -> str:
        sym = {
            "add": "+", "sub": "-", "mul": "*", "div": "/", "mod": "%",
            "shl": "<<", "shr": ">>", "band": "&", "bor": "|", "bxor": "^",
            "lt": "<", "le": "<=", "gt": ">", "ge": ">=", "eq": "==", "ne": "!=",
        }[self.op]
        return f"({self.left} {sym} {self.right})"

    @property
    def is_comparison(self) -> bool:
        return self.op in _CMP_OPS


@dataclass(frozen=True)
class BoolOp(Expr):
    """Logical '&&'/'||' over side-effect-free operands (set semantics)."""

    op: str  # 'and' | 'or'
    left: Expr
    right: Expr
    ctype: CType

    def __str__(self) -> str:
        sym = {"and": "&&", "or": "||"}[self.op]
        return f"({self.left} {sym} {self.right})"


@dataclass(frozen=True)
class NotOp(Expr):
    arg: Expr
    ctype: CType

    def __str__(self) -> str:
        return f"!({self.arg})"


@dataclass(frozen=True)
class Cast(Expr):
    arg: Expr
    ctype: CType

    def __str__(self) -> str:
        return f"({self.ctype})({self.arg})"


# --------------------------------------------------------------------------
# Statements


_stmt_counter = itertools.count(1)


def fresh_stmt_id() -> int:
    return next(_stmt_counter)


@dataclass
class Stmt:
    loc: Location = field(default=UNKNOWN_LOC, kw_only=True)
    sid: int = field(default_factory=fresh_stmt_id, kw_only=True)
    block_id: int = field(default=-1, kw_only=True)


@dataclass
class SAssign(Stmt):
    target: LValue = None
    value: Expr = None


@dataclass
class SIf(Stmt):
    cond: Expr = None
    then: List[Stmt] = field(default_factory=list)
    other: List[Stmt] = field(default_factory=list)


@dataclass
class SWhile(Stmt):
    cond: Expr = None
    body: List[Stmt] = field(default_factory=list)
    loop_id: int = -1
    # True when lowering produced this from a do-while (body runs once first).
    run_body_first: bool = False
    # For-loop step statements: executed after the body on both the normal
    # and the continue paths (C semantics of 'continue' inside 'for').
    step: List[Stmt] = field(default_factory=list)


@dataclass
class SSwitch(Stmt):
    scrutinee: Expr = None
    # (match values or None for default, body)
    cases: List[Tuple[Optional[List[int]], List[Stmt]]] = field(default_factory=list)
    has_default: bool = False


@dataclass
class SCall(Stmt):
    func: str = ""
    # Value arguments are Exprs; by-reference arguments are LValues.
    args: List[Union[Expr, LValue]] = field(default_factory=list)
    result: Optional[LValue] = None
    call_id: int = -1


@dataclass
class SReturn(Stmt):
    value: Optional[Expr] = None


@dataclass
class SBreak(Stmt):
    pass


@dataclass
class SContinue(Stmt):
    pass


@dataclass
class SWait(Stmt):
    """The 'wait for next clock tick' of the periodic synchronous loop."""


@dataclass
class SAssume(Stmt):
    """A trusted environment fact (``__ASTREE_known_fact``)."""

    cond: Expr = None


@dataclass
class SCheck(Stmt):
    """A user assertion checked in checking mode (``__ASTREE_assert``)."""

    cond: Expr = None
    message: str = ""


@dataclass
class SNop(Stmt):
    pass


# --------------------------------------------------------------------------
# Functions and programs


@dataclass
class IRFunction:
    name: str
    params: List[Var]
    ret_type: CType
    body: List[Stmt]
    locals: List[Var] = field(default_factory=list)
    loc: Location = UNKNOWN_LOC
    ftype: Optional[FunctionType] = None
    # Parameters of pointer type are call-by-reference (Sect. 4).
    byref_params: Tuple[int, ...] = ()


@dataclass
class IRProgram:
    """A linked, lowered program ready for abstract execution."""

    globals: List[Var] = field(default_factory=list)
    # Initial values: var uid -> scalar const, or dict path -> const for
    # aggregates (flattened index tuples).
    initializers: Dict[int, object] = field(default_factory=dict)
    functions: Dict[str, IRFunction] = field(default_factory=dict)
    entry: str = "main"
    # Volatile input variables, by uid (ranges supplied by the config).
    volatile_inputs: List[Var] = field(default_factory=list)

    def function(self, name: str) -> IRFunction:
        return self.functions[name]

    def global_by_name(self, name: str) -> Optional[Var]:
        for v in self.globals:
            if v.name == name:
                return v
        return None


def iter_stmts(stmts: Sequence[Stmt]):
    """Depth-first iteration over all statements, including nested ones."""
    for s in stmts:
        yield s
        if isinstance(s, SIf):
            yield from iter_stmts(s.then)
            yield from iter_stmts(s.other)
        elif isinstance(s, SWhile):
            yield from iter_stmts(s.body)
            yield from iter_stmts(s.step)
        elif isinstance(s, SSwitch):
            for _, body in s.cases:
                yield from iter_stmts(body)
