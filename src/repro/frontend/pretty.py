"""Pretty-printing of IR programs (tracing facilities, Sect. 5.3)."""

from __future__ import annotations

from typing import List

from . import ir as I

__all__ = ["format_program", "format_function", "format_stmts"]


def format_program(prog: I.IRProgram) -> str:
    lines: List[str] = []
    for v in prog.globals:
        vol = "volatile " if v.volatile else ""
        init = prog.initializers.get(v.uid)
        init_str = f" = {init!r}" if init is not None and not isinstance(init, (list, dict)) else ""
        lines.append(f"{vol}{v.ctype} {v.name}{init_str};  /* uid={v.uid} */")
    for fn in prog.functions.values():
        if fn.body is not None:
            lines.append("")
            lines.append(format_function(fn))
    return "\n".join(lines)


def format_function(fn: I.IRFunction) -> str:
    params = ", ".join(f"{p.ctype} {p.name}" for p in fn.params)
    lines = [f"{fn.ret_type} {fn.name}({params}) {{"]
    lines.extend(format_stmts(fn.body, indent=1))
    lines.append("}")
    return "\n".join(lines)


def format_stmts(stmts: List[I.Stmt], indent: int = 0) -> List[str]:
    pad = "  " * indent
    out: List[str] = []
    for s in stmts:
        if isinstance(s, I.SAssign):
            out.append(f"{pad}{s.target} = {s.value};")
        elif isinstance(s, I.SIf):
            out.append(f"{pad}if ({s.cond}) {{")
            out.extend(format_stmts(s.then, indent + 1))
            if s.other:
                out.append(f"{pad}}} else {{")
                out.extend(format_stmts(s.other, indent + 1))
            out.append(f"{pad}}}")
        elif isinstance(s, I.SWhile):
            kind = "do-while" if s.run_body_first else "while"
            out.append(f"{pad}{kind} ({s.cond}) {{  /* loop {s.loop_id} */")
            out.extend(format_stmts(s.body, indent + 1))
            if s.step:
                out.append(f"{pad}  /* step: */")
                out.extend(format_stmts(s.step, indent + 1))
            out.append(f"{pad}}}")
        elif isinstance(s, I.SSwitch):
            out.append(f"{pad}switch ({s.scrutinee}) {{")
            for values, body in s.cases:
                label = "default" if values is None else f"case {values}"
                out.append(f"{pad}  {label}:")
                out.extend(format_stmts(body, indent + 2))
            out.append(f"{pad}}}")
        elif isinstance(s, I.SCall):
            args = ", ".join(str(a) for a in s.args)
            target = f"{s.result} = " if s.result is not None else ""
            out.append(f"{pad}{target}{s.func}({args});")
        elif isinstance(s, I.SReturn):
            out.append(f"{pad}return {s.value if s.value is not None else ''};")
        elif isinstance(s, I.SBreak):
            out.append(f"{pad}break;")
        elif isinstance(s, I.SContinue):
            out.append(f"{pad}continue;")
        elif isinstance(s, I.SWait):
            out.append(f"{pad}__ASTREE_wait_for_clock();")
        elif isinstance(s, I.SAssume):
            out.append(f"{pad}__ASTREE_known_fact({s.cond});")
        elif isinstance(s, I.SCheck):
            out.append(f"{pad}__ASTREE_assert({s.cond});")
        elif isinstance(s, I.SNop):
            out.append(f"{pad};")
        else:  # pragma: no cover
            out.append(f"{pad}/* {s!r} */")
    return out
