"""The certificate walker: one-application replay of the checking pass.

:class:`CertWalker` subclasses the iterator but never iterates: its
``_exec_loop`` override replaces every widening/narrowing fixpoint with
a *certified invariant* that is verified by exactly one body
application (which doubles as the alarm-collecting checking pass), and
its ``exec_stmt`` override records — or, in check mode, verifies —
(pre, post) pairs for every atomic statement.  Everything else
(guards, branch joins, call inlining, trace partitioning) is the
inherited structural traversal, driven by the transfer functions
directly: the walker runs on a performance-normalized configuration
(no incremental engine, no vectorized kernels, no parallel dispatch,
no lattice memo), so the only trusted code is the domains'
``transfer``/``includes`` and this file's ~200 lines.

Two modes over one traversal:

* **emit** consumes the engine's per-loop-occurrence records
  ``(ordinal, pre-narrowing post-fixpoint, checking-pass invariant)``
  in traversal order.  For each loop it first tries the checking-pass
  (narrowed) invariant; narrowing only *usually* lands on a
  one-application-stable element, so on a stability failure the trial
  is rolled back (records, alarms, cursors) and the pre-narrowing
  post-fixpoint — which passed the engine's exact ``inv ⊒ entry ∪
  F(inv)`` widening exit check and is therefore always re-verifiable —
  is substituted.  If neither candidate verifies, emission fails
  (honest "cannot certify") rather than emitting an unprovable claim.

* **check** consumes the artifact's statement and loop records at the
  same traversal positions and verifies, locally, ``own ⊑ pre``,
  ``F(pre) ⊑ post`` and loop-head stability — so a spliced stale post
  or a widened-away bound is caught at the exact record it corrupts.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from ..errors import CertificateError
from ..frontend import ir as I
from ..iterator.iterator import Flow, Iterator, _join_opt, _join_opt_val
from ..iterator.state import AbstractState, AnalysisContext
from ..serve.fingerprints import stable_ordinals

__all__ = ["CertWalker"]

#: State-to-state statements whose single transfer application is
#: recorded/verified as an (ordinal, pre, post) certificate record.
#: Control flow (if/while/switch/call/return/break/continue) is
#: traversed structurally instead.
_ATOMIC = (I.SAssign, I.SAssume, I.SCheck, I.SWait, I.SNop)


class CertWalker(Iterator):
    """One checking-mode traversal that emits or checks a certificate."""

    def __init__(self, ctx: AnalysisContext, mode: str,
                 engine_loops: Optional[List[Tuple[int, AbstractState,
                                                   AbstractState]]] = None,
                 stmt_records: Optional[List[Tuple[int, AbstractState,
                                                   AbstractState]]] = None,
                 loop_records: Optional[List[Tuple[int,
                                                   AbstractState]]] = None):
        super().__init__(ctx)
        assert mode in ("emit", "check")
        self.mode = mode
        self._ordinals: Dict[int, int] = stable_ordinals(ctx.prog)
        # Emission input: the engine's loop-occurrence records.
        self._engine_loops = engine_loops if engine_loops is not None else []
        self._engine_cursor = 0
        # Emission output / check input.
        self.stmt_records = stmt_records if stmt_records is not None else []
        self._stmt_cursor = 0
        self.loop_records = loop_records if loop_records is not None else []
        self._loop_cursor = 0
        # How many loop occurrences needed the pre-narrowing fallback.
        self.substitutions = 0

    # -- entry ---------------------------------------------------------------

    def walk(self) -> AbstractState:
        """Run the full traversal; returns the walker's final state.
        Raises CertificateError on any validation failure, and on
        leftover records (a truncation that drops trailing records
        must not validate)."""
        final = self.run(checking=True)
        if self.mode == "emit":
            if self._engine_cursor != len(self._engine_loops):
                raise CertificateError(
                    f"emission desynchronized: the engine recorded "
                    f"{len(self._engine_loops)} loop occurrences but the "
                    f"replay consumed {self._engine_cursor}")
        else:
            left = ((len(self.stmt_records) - self._stmt_cursor)
                    + (len(self.loop_records) - self._loop_cursor))
            if left:
                raise CertificateError(
                    f"certificate has {left} record(s) the traversal "
                    f"never reached: the artifact does not describe "
                    f"this program/configuration")
        return final

    def alarm_keys(self) -> set:
        """The replay's alarms as engine-independent (ordinal, kind)
        pairs (alarms at synthetic sids map to -1, consistently with
        the emitter's claimed-alarm encoding)."""
        return {(self._ordinals.get(a.sid, -1), a.kind)
                for a in self.alarms._alarms}

    def _ord(self, sid: int) -> int:
        return self._ordinals[sid]

    # -- atomic statements ---------------------------------------------------

    def exec_stmt(self, state: AbstractState, s: I.Stmt) -> Flow:
        if state.is_bottom or not isinstance(s, _ATOMIC):
            return super().exec_stmt(state, s)
        if self.mode == "emit":
            flow = super().exec_stmt(state, s)
            self.stmt_records.append((self._ord(s.sid), state, flow.normal))
            return flow
        ordv = self._ord(s.sid)
        if self._stmt_cursor >= len(self.stmt_records):
            raise CertificateError(
                f"{s.loc}: certificate ran out of statement records at "
                f"ordinal {ordv}: truncated or mismatched artifact")
        rec_ord, pre, post = self.stmt_records[self._stmt_cursor]
        self._stmt_cursor += 1
        if rec_ord != ordv:
            raise CertificateError(
                f"{s.loc}: certificate record ordinal {rec_ord} does not "
                f"match traversal ordinal {ordv}: reordered or mismatched "
                f"artifact")
        if not pre.includes(state):
            raise CertificateError(
                f"{s.loc}: incoming state is not contained in the "
                f"certified pre-state (ordinal {ordv})")
        flow = super().exec_stmt(pre, s)
        if not post.includes(flow.normal):
            raise CertificateError(
                f"{s.loc}: transfer function applied to the certified "
                f"pre-state escapes the certified post-state (ordinal "
                f"{ordv}): F(pre) ⊑ post fails")
        # Continue from the certified post, so every downstream check is
        # local to its own record.
        return Flow(normal=post)

    # -- loops ---------------------------------------------------------------

    def _exec_loop(self, state: AbstractState, s: I.SWhile) -> Flow:
        # Structural clone of Iterator._exec_loop with the fixpoint
        # replaced by the certified invariant; the unroll prefix runs
        # through the normal (recording/checking) traversal.
        exits: Optional[AbstractState] = None
        ret: Optional[AbstractState] = None
        ret_val = None
        cur = state
        if s.run_body_first:
            cur, brk, r, rv = self._exec_body_once(cur, s)
            exits = _join_opt(exits, brk)
            ret = _join_opt(ret, r)
            ret_val = _join_opt_val(ret_val, rv)
        unroll = self.cfg.loop_unroll.get(s.loop_id, self.cfg.default_unroll)
        for _ in range(unroll):
            if cur.is_bottom:
                break
            exits = _join_opt(exits, self.guards.guard(cur, s.cond, False,
                                                       s.sid, s.loc))
            body_in = self.guards.guard(cur, s.cond, True, s.sid, s.loc)
            if body_in.is_bottom:
                cur = body_in
                break
            cur, brk, r, rv = self._exec_body_once(body_in, s)
            exits = _join_opt(exits, brk)
            ret = _join_opt(ret, r)
            ret_val = _join_opt_val(ret_val, rv)
        inv, pieces = self._certified_invariant(cur, s)
        exit_state, r, rv = pieces
        exits = _join_opt(exits, exit_state)
        ret = _join_opt(ret, r)
        ret_val = _join_opt_val(ret_val, rv)
        normal = exits if exits is not None else state.to_bottom()
        return Flow(normal=normal, ret=ret, ret_val=ret_val)

    def _certified_invariant(self, cur: AbstractState, s: I.SWhile):
        ordv = self._ord(s.sid)
        if self.mode == "emit":
            if self._engine_cursor >= len(self._engine_loops):
                raise CertificateError(
                    f"{s.loc}: no engine record for this loop occurrence "
                    f"(ordinal {ordv}) — was the analysis run with "
                    f"certificate recording (config.certify) enabled?")
            rec_ord, pf, used = self._engine_loops[self._engine_cursor]
            self._engine_cursor += 1
            if rec_ord != ordv:
                raise CertificateError(
                    f"{s.loc}: engine record ordinal {rec_ord} does not "
                    f"match traversal ordinal {ordv}")
            candidates = [used] if used is pf else [used, pf]
            for i, inv in enumerate(candidates):
                mark = self._mark()
                # Appended *before* the body application: the checker
                # consumes the loop record ahead of the nested records
                # its verification pass produces.
                self.loop_records.append((ordv, inv))
                pieces = self._one_application(cur, s, inv)
                if pieces is not None:
                    if i > 0:
                        self.substitutions += 1
                    return inv, pieces
                self._rollback(mark)
            raise CertificateError(
                f"{s.loc}: cannot certify loop (ordinal {ordv}): neither "
                f"the checking-pass invariant nor the pre-narrowing "
                f"post-fixpoint is stable under one body application")
        if self._loop_cursor >= len(self.loop_records):
            raise CertificateError(
                f"{s.loc}: certificate ran out of loop records at ordinal "
                f"{ordv}: truncated or mismatched artifact")
        rec_ord, inv = self.loop_records[self._loop_cursor]
        self._loop_cursor += 1
        if rec_ord != ordv:
            raise CertificateError(
                f"{s.loc}: certificate loop record ordinal {rec_ord} does "
                f"not match traversal ordinal {ordv}")
        pieces = self._one_application(cur, s, inv, strict=True)
        return inv, pieces

    def _one_application(self, cur: AbstractState, s: I.SWhile,
                         inv: AbstractState, strict: bool = False):
        """Verify ``cur ⊑ inv`` and ``cur ∪ F(inv) ⊑ inv`` with one body
        application (alarms collected along the way), returning the
        loop's (exit_state, ret, ret_val) contributions — or None on
        failure when not strict."""
        ordv = self._ord(s.sid)
        if not inv.includes(cur):
            if strict:
                raise CertificateError(
                    f"{s.loc}: loop entry state is not contained in the "
                    f"certified invariant (ordinal {ordv})")
            return None
        exit_state = self.guards.guard(inv, s.cond, False, s.sid, s.loc)
        body_in = self.guards.guard(inv, s.cond, True, s.sid, s.loc)
        after = None
        brk = r = rv = None
        if not body_in.is_bottom:
            after, brk, r, rv = self._exec_body_once(body_in, s)
        target = cur if after is None else cur.join(after)
        if not inv.includes(target):
            if strict:
                raise CertificateError(
                    f"{s.loc}: certified loop invariant (ordinal {ordv}) "
                    f"is not a post-fixpoint: entry ∪ F(inv) ⊑ inv fails")
            return None
        return (_join_opt(exit_state, brk), r, rv)

    # -- emission rollback ---------------------------------------------------

    def _mark(self):
        a = self.alarms
        return (len(self.stmt_records), len(self.loop_records),
                self._engine_cursor, len(a._alarms), set(a._seen))

    def _rollback(self, mark) -> None:
        ns, nl, ec, na, seen = mark
        del self.stmt_records[ns:]
        del self.loop_records[nl:]
        self._engine_cursor = ec
        del self.alarms._alarms[na:]
        self.alarms._seen = seen
