"""The on-disk certificate artifact.

A certificate is a single JSON document::

    {"format": "astree-repro-certificate", "version": 1,
     "digest": sha256(canonical(payload)), "payload": {...}}

The payload carries everything the independent checker needs to
re-validate the result from scratch — the source units, the entry
point, the (performance-normalized) analysis configuration, a
deduplicated table of pickled abstract states, the per-statement
(pre, post) records and per-loop-occurrence invariants of the
checking-mode traversal in traversal order, the claimed alarm set,
and the final state — making the artifact content-addressed: the
digest is recomputed over the canonical serialization on load, so a
flipped byte anywhere is detected before any state is unpickled.

Statements are identified by their *stable ordinal* (depth-first
position over functions in sorted name order, see
``repro.serve.fingerprints.stable_ordinals``), never by raw statement
ids: ids are process-global counters and do not survive
re-compilation of the same source in the checking process.

Every malformation — missing file, truncation, non-JSON bytes, an
unknown format or version, a digest mismatch, an unpicklable state —
maps to :class:`repro.errors.CertificateError`, which the CLI reports
as a located ``phase=certify`` incident (exit 3), mirroring the
checkpoint/store hardening.
"""

from __future__ import annotations

import base64
import hashlib
import json
import os
import pickle
import zlib
from typing import Dict, List, Optional, Tuple

from ..errors import CertificateError

__all__ = ["CERT_FORMAT", "CERT_VERSION", "StateTable", "decode_blob",
           "decode_config", "encode_config", "encode_state",
           "load_certificate", "payload_digest", "save_certificate"]

CERT_FORMAT = "astree-repro-certificate"
CERT_VERSION = 1

# Pinned pickle protocol: the artifact crosses interpreter versions
# (written on one machine, checked on another), so the writer never
# silently upgrades to a protocol an older reader cannot parse.
_PICKLE_PROTOCOL = 4


def _canonical(payload: dict) -> bytes:
    return json.dumps(payload, sort_keys=True, separators=(",", ":"),
                      ensure_ascii=True).encode("ascii")


def payload_digest(payload: dict) -> str:
    """Content address of a certificate payload (recompute after any
    deliberate mutation in tests, or the digest check fires first)."""
    return hashlib.sha256(_canonical(payload)).hexdigest()


def encode_state(state) -> bytes:
    """Pickle an AbstractState to a compressed, context-free blob
    (states re-attach to the active context on decode)."""
    return zlib.compress(pickle.dumps(state, _PICKLE_PROTOCOL))


def decode_blob(blob_b64: str, what: str):
    """Decode one base64(zlib(pickle)) blob; requires the target
    ``AnalysisContext`` to be installed via ``set_active_context``."""
    try:
        return pickle.loads(zlib.decompress(base64.b64decode(blob_b64)))
    except Exception as exc:  # corrupt b64/zlib/pickle, bad opcodes, ...
        raise CertificateError(f"certificate {what} does not decode: {exc}")


def encode_config(cfg) -> str:
    return base64.b64encode(
        zlib.compress(pickle.dumps(cfg, _PICKLE_PROTOCOL))).decode("ascii")


def decode_config(blob_b64: str):
    from ..config import AnalyzerConfig

    cfg = decode_blob(blob_b64, "configuration")
    if not isinstance(cfg, AnalyzerConfig):
        raise CertificateError(
            f"certificate configuration decodes to {type(cfg).__name__}, "
            f"expected AnalyzerConfig")
    return cfg


class StateTable:
    """Deduplicating id table for the payload's abstract states.

    Emission-side only: states are keyed first by physical identity
    (record chains share post/pre objects heavily) and then by blob
    digest, so the table stores each distinct lattice element once."""

    def __init__(self) -> None:
        self._by_id: Dict[int, str] = {}
        self._by_digest: Dict[str, str] = {}
        self._keepalive: List[object] = []
        self.blobs: Dict[str, str] = {}  # table id -> base64 blob

    def add(self, state) -> str:
        sid = self._by_id.get(id(state))
        if sid is not None:
            return sid
        blob = encode_state(state)
        digest = hashlib.sha256(blob).hexdigest()
        sid = self._by_digest.get(digest)
        if sid is None:
            sid = f"s{len(self.blobs)}"
            self._by_digest[digest] = sid
            self.blobs[sid] = base64.b64encode(blob).decode("ascii")
        # Keep the state alive so the id() key can never be reused.
        self._by_id[id(state)] = sid
        self._keepalive.append(state)
        return sid


def save_certificate(cert: dict, path: str) -> None:
    """Atomically persist a certificate (write-to-temp + rename)."""
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="ascii") as f:
        json.dump(cert, f, sort_keys=True, separators=(",", ":"),
                  ensure_ascii=True)
        f.flush()
        os.fsync(f.fileno())
    os.replace(tmp, path)


def _require(cond: bool, message: str) -> None:
    if not cond:
        raise CertificateError(message)


def validate_envelope(cert: object, origin: str = "certificate") -> dict:
    """Structural + content-address validation of a loaded certificate.
    Returns the verified payload dict."""
    _require(isinstance(cert, dict), f"{origin}: not a certificate object")
    _require(cert.get("format") == CERT_FORMAT,
             f"{origin}: unknown format {cert.get('format')!r} "
             f"(expected {CERT_FORMAT!r})")
    version = cert.get("version")
    _require(version == CERT_VERSION,
             f"{origin}: version {version!r} is not supported by this "
             f"checker (expected {CERT_VERSION})")
    payload = cert.get("payload")
    _require(isinstance(payload, dict), f"{origin}: missing payload")
    digest = cert.get("digest")
    _require(isinstance(digest, str), f"{origin}: missing digest")
    actual = payload_digest(payload)
    _require(actual == digest,
             f"{origin}: content digest mismatch ({actual[:12]}… vs "
             f"claimed {digest[:12]}…): the artifact was modified or "
             f"corrupted after emission")
    for key, typ in (("sources", list), ("entry", str), ("config", str),
                     ("states", dict), ("stmt_records", list),
                     ("loop_records", list), ("alarms", list),
                     ("final", str)):
        _require(isinstance(payload.get(key), typ),
                 f"{origin}: payload field {key!r} is missing or malformed")
    return payload


def load_certificate(path: str) -> dict:
    """Load and verify a certificate file's envelope (format, version,
    content digest, payload shape).  Semantic validation is
    :func:`repro.certify.check_certificate`'s job."""
    try:
        with open(path, "r", encoding="utf-8") as f:
            cert = json.load(f)
    except FileNotFoundError:
        raise CertificateError(f"certificate file not found: {path}")
    except OSError as exc:
        raise CertificateError(f"cannot read certificate {path}: {exc}")
    except (json.JSONDecodeError, UnicodeDecodeError) as exc:
        raise CertificateError(
            f"certificate {path} is not valid JSON (truncated or "
            f"corrupted): {exc}")
    validate_envelope(cert, origin=f"certificate {path}")
    return cert
