"""Invariant certificates: engine-independent result validation.

The analyzer has four execution paths to the same answer (full,
incremental, vectorized, dispatched) plus a journal-replay serving
cache.  Following Blazy et al. (*Formal Verification of a C Value
Analysis Based on Abstract Interpretation*), none of them needs to be
trusted: a result is *certified* by packaging its invariants into a
content-addressed artifact and re-applying every transfer function
exactly once over the certified states, checking only lattice
containment —

* ``F(pre) ⊑ post`` for every recorded atomic statement,
* ``entry ∪ F(inv) ⊑ inv`` at every loop head (post-fixpoint
  stability), and
* that the claimed alarm set is a superset of the alarms the single
  re-application raises.

The checker (:func:`check_certificate`) uses the abstract domains'
``transfer``/``includes`` only — no widening, no narrowing, no memo/
interning/vectorize/dispatch machinery — so it cannot share a bug with
any engine path.  See docs/soundness.md, "Result certification".
"""

from .api import (CertificateCheck, CertificationSummary, build_certificate,
                  certify_result, check_certificate)
from .artifact import (CERT_FORMAT, CERT_VERSION, load_certificate,
                       payload_digest, save_certificate)

__all__ = [
    "CERT_FORMAT", "CERT_VERSION", "CertificateCheck",
    "CertificationSummary", "build_certificate", "certify_result",
    "check_certificate", "load_certificate", "payload_digest",
    "save_certificate",
]
