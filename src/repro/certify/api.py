"""Emission and checking entry points.

Both ends rebuild a *fresh, plain* analysis context from the source
units: performance machinery is normalized away (no incremental
engine, no vectorized kernels, jobs=1, inline dispatch, no lattice
memo, no interning, no supervisor budgets), while every semantic knob
(domains, thresholds, widening/unrolling strategy, partitioning,
input ranges, max_clock, packing) is kept verbatim — the walker must
traverse the same program under the same abstract semantics the
engine claims to have analyzed, but through none of the engine's
optimization layers.

Emission validates before it serializes: a certificate that this
module returns has already passed the exact checks the independent
checker will re-run, so "emitted but unverifiable" artifacts cannot
exist (an engine result that fails its own one-application replay
raises CertificateError — an honest "cannot certify" — instead).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple, Union

from ..config import AnalyzerConfig
from ..errors import CertificateError, ReproError
from ..frontend import link_sources
from ..iterator.state import (AnalysisContext, LatticeMemo,
                              get_active_context, set_active_context)
from ..memory.cells import CellTable
from ..packing.boolean_packs import compute_bool_packs
from ..packing.ellipsoid_sites import find_filter_sites
from ..packing.octagon_packs import compute_octagon_packs
from ..serve.fingerprints import (config_fingerprint, source_digest,
                                  stable_ordinals)
from .artifact import (CERT_FORMAT, CERT_VERSION, StateTable, decode_blob,
                       decode_config, encode_config, encode_state,
                       load_certificate, payload_digest, validate_envelope)
from .walker import CertWalker

__all__ = ["CertificateCheck", "CertificationSummary", "build_certificate",
           "certify_result", "check_certificate"]

Sources = Sequence[Tuple[str, str]]


@dataclass
class CertificationSummary:
    """Outcome of a successful emission-side validation."""

    stmt_records: int
    loop_records: int
    substitutions: int
    claimed_alarms: int
    wall_s: float


@dataclass
class CertificateCheck:
    """Outcome of a successful independent check."""

    entry: str
    source_digest: str
    config_fingerprint: str
    stmts_checked: int
    loops_checked: int
    claimed_alarms: int
    replay_alarms: int
    wall_s: float

    @property
    def exit_code(self) -> int:
        """A valid certificate joins the CLI contract: 0 when the
        certified run proved every property, 1 when it carries alarms
        (invalid certificates never reach this — CertificateError maps
        to exit 3)."""
        return 1 if self.claimed_alarms else 0


def _normalize_sources(sources, filename: str) -> List[Tuple[str, str]]:
    if isinstance(sources, str):
        return [(filename, sources)]
    out = list(sources)
    if not out or not all(isinstance(n, str) and isinstance(t, str)
                          for n, t in out):
        raise CertificateError("sources must be C text or a list of "
                               "(filename, text) units")
    return out


def _plain_config(cfg: AnalyzerConfig) -> AnalyzerConfig:
    """Strip every performance/robustness layer; keep the semantics."""
    return cfg.with_overrides(
        incremental=False, vectorize=False, jobs=1, trace=False,
        dispatch="inline", workers=(),
        lattice_memo_size=0, value_intern_size=0, closure_memo_size=0,
        collect_invariants=False, certify=False,
        wall_deadline_s=None, rss_limit_kib=None, stmt_timeout_s=None,
        checkpoint_path=None, resume_path=None, checkpoint_halt_after=None,
    )


def _fresh_context(sources: Sources, entry: str,
                   cfg: AnalyzerConfig) -> AnalysisContext:
    """Compile the certified sources into a brand-new plain context and
    install it as the process's active context (state blobs re-attach
    to it on decode)."""
    from ..analysis import _configure_sharing

    try:
        prog = link_sources(list(sources), entry=entry)
    except ReproError as exc:
        raise CertificateError(
            f"cannot rebuild the certified program: {exc}")
    table = CellTable.for_program(prog, cfg.expand_threshold)
    ctx = AnalysisContext(
        prog=prog, config=cfg, table=table,
        oct_packs=compute_octagon_packs(prog, table, cfg),
        bool_packs=compute_bool_packs(prog, table, cfg),
        filter_sites=find_filter_sites(prog, table))
    ctx.lattice_memo = LatticeMemo(0)
    _configure_sharing(cfg)
    set_active_context(ctx)
    return ctx


def _restore_engine_globals(prev_ctx) -> None:
    from ..analysis import _configure_sharing

    set_active_context(prev_ctx)
    if prev_ctx is not None:
        _configure_sharing(prev_ctx.config)


def _alarm_keys(alarms, ordinals) -> set:
    return {(ordinals.get(a.sid, -1), a.kind) for a in alarms}


def _check_alarm_superset(claimed_keys: set, walker: CertWalker,
                          side: str) -> None:
    missing = walker.alarm_keys() - claimed_keys
    if missing:
        ex = sorted(missing)[0]
        raise CertificateError(
            f"{side}: claimed alarm set is not a superset of the "
            f"replay's alarms ({len(missing)} missing, e.g. ordinal "
            f"{ex[0]} kind {ex[1]}): alarms were dropped")


def _emit_walk(result, sources: Sources):
    """Shared emission path: round-trip the engine's loop records into a
    fresh plain context, run the emit walk, verify the alarm superset.
    Returns (walker, plain_cfg, claimed alarm key set, final state) with
    the fresh context still active — callers must restore via
    _restore_engine_globals."""
    if result.degraded:
        raise CertificateError(
            "degraded runs cannot be certified: the degradation ladder "
            "changed the effective configuration mid-run")
    engine_cfg = result.ctx.config
    if not engine_cfg.certify:
        raise CertificateError(
            "analysis ran without certificate recording — re-run with "
            "certify enabled (--certify)")
    engine_ordinals = stable_ordinals(result.ctx.prog)
    claimed_keys = _alarm_keys(result.alarms, engine_ordinals)
    # Serialize under the engine context, decode under the fresh one:
    # exactly the round trip the independent checker performs.
    blobs = [(ordv, encode_state(pf), encode_state(used))
             for ordv, pf, used in result.cert_invariants]
    plain = _plain_config(engine_cfg)
    ctx = _fresh_context(sources, result.ctx.prog.entry, plain)
    import pickle
    import zlib

    engine_loops = []
    for ordv, pf_blob, used_blob in blobs:
        pf = pickle.loads(zlib.decompress(pf_blob))
        used = (pf if used_blob == pf_blob
                else pickle.loads(zlib.decompress(used_blob)))
        engine_loops.append((ordv, pf, used))
    walker = CertWalker(ctx, "emit", engine_loops=engine_loops)
    final = walker.walk()
    _check_alarm_superset(claimed_keys, walker, "emission")
    return walker, plain, claimed_keys, final


def certify_result(result, sources, filename: str = "<input>",
                   ) -> CertificationSummary:
    """Validate an AnalysisResult by one-application replay without
    materializing the artifact (the serving layer's path: same checks
    as build_certificate, none of the serialization)."""
    t0 = time.perf_counter()
    sources = _normalize_sources(sources, filename)
    prev = get_active_context()
    try:
        walker, _, claimed, _ = _emit_walk(result, sources)
    finally:
        _restore_engine_globals(prev)
    return CertificationSummary(
        stmt_records=len(walker.stmt_records),
        loop_records=len(walker.loop_records),
        substitutions=walker.substitutions,
        claimed_alarms=len(claimed),
        wall_s=time.perf_counter() - t0)


def build_certificate(result, sources, filename: str = "<input>") -> dict:
    """Package an AnalysisResult into a content-addressed certificate
    (validated during emission: the returned artifact passes
    check_certificate by construction)."""
    sources = _normalize_sources(sources, filename)
    prev = get_active_context()
    try:
        walker, plain, claimed_keys, final = _emit_walk(result, sources)
        engine_ordinals = stable_ordinals(result.ctx.prog)
        table = StateTable()
        stmt_records = [[ordv, table.add(pre), table.add(post)]
                        for ordv, pre, post in walker.stmt_records]
        loop_records = [[ordv, table.add(inv)]
                        for ordv, inv in walker.loop_records]
        final_id = table.add(final)
    finally:
        _restore_engine_globals(prev)
    alarms = sorted(
        [engine_ordinals.get(a.sid, -1), a.kind, a.loc.filename,
         a.loc.line, a.loc.col, a.message]
        for a in result.alarms)
    payload = {
        "sources": [[n, t] for n, t in sources],
        "entry": result.ctx.prog.entry,
        "source_digest": source_digest(sources),
        "config": encode_config(plain),
        "config_fingerprint": config_fingerprint(plain),
        "states": table.blobs,
        "stmt_records": stmt_records,
        "loop_records": loop_records,
        "alarms": alarms,
        "final": final_id,
        "meta": {
            "engine_config_fingerprint": config_fingerprint(
                result.ctx.config),
            "engine": {
                "incremental": bool(result.incremental),
                "vectorize": bool(result.vectorize),
                "jobs": int(result.jobs),
                "dispatch": result.dispatch,
                "cross_run_hits": int(result.cross_run_hits),
                "widening_iterations": int(result.widening_iterations),
            },
            "substitutions": walker.substitutions,
        },
    }
    return {"format": CERT_FORMAT, "version": CERT_VERSION,
            "digest": payload_digest(payload), "payload": payload}


def check_certificate(cert: Union[str, dict]) -> CertificateCheck:
    """Independently validate a certificate (a loaded dict or a file
    path): rebuild the program from the certified sources, decode the
    states, and re-apply every transfer function exactly once over the
    certified invariant map, verifying lattice containment throughout.
    Raises CertificateError on any failure; returns a CertificateCheck
    on success."""
    t0 = time.perf_counter()
    if isinstance(cert, str):
        cert = load_certificate(cert)
    payload = validate_envelope(cert)
    cfg = decode_config(payload["config"])
    sources = [(n, t) for n, t in payload["sources"]]
    entry = payload["entry"]
    prev = get_active_context()
    try:
        ctx = _fresh_context(sources, entry, cfg)
        states: Dict[str, object] = {
            sid: decode_blob(blob, f"state {sid}")
            for sid, blob in payload["states"].items()}

        def state(sid):
            st = states.get(sid)
            if st is None:
                raise CertificateError(
                    f"certificate references unknown state id {sid!r}")
            return st

        try:
            stmt_records = [(int(ordv), state(pre), state(post))
                            for ordv, pre, post in payload["stmt_records"]]
            loop_records = [(int(ordv), state(inv))
                            for ordv, inv in payload["loop_records"]]
        except (TypeError, ValueError) as exc:
            raise CertificateError(f"malformed certificate record: {exc}")
        walker = CertWalker(ctx, "check", stmt_records=stmt_records,
                            loop_records=loop_records)
        final = walker.walk()
        claimed_final = state(payload["final"])
        if not claimed_final.includes(final):
            raise CertificateError(
                "certified final state does not contain the replay's "
                "final state")
        try:
            claimed_keys = {(int(a[0]), a[1]) for a in payload["alarms"]}
        except (TypeError, ValueError, IndexError) as exc:
            raise CertificateError(f"malformed certificate alarm: {exc}")
        _check_alarm_superset(claimed_keys, walker, "check")
    finally:
        _restore_engine_globals(prev)
    return CertificateCheck(
        entry=entry,
        source_digest=payload["source_digest"],
        config_fingerprint=payload["config_fingerprint"],
        stmts_checked=len(stmt_records),
        loops_checked=len(loop_records),
        claimed_alarms=len(payload["alarms"]),
        replay_alarms=len(walker.alarms._alarms),
        wall_s=time.perf_counter() - t0)
