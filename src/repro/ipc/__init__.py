"""Shared inter-process plumbing.

:mod:`repro.ipc.frames` is the one implementation of the length-prefixed
JSON frame format spoken on every byte channel the analyzer owns: the
serve daemon's worker pipes (:mod:`repro.serve.supervise`,
:mod:`repro.serve.worker`) and the socket dispatch backend of the
parallel engine (:mod:`repro.parallel.remote`).
"""

from .frames import (FdFrameReader, FrameBuffer, FrameTimeout, MAX_FRAME,
                     ProtocolError, encode_frame, read_exact, recv_frame,
                     send_frame)

__all__ = ["FdFrameReader", "FrameBuffer", "FrameTimeout", "MAX_FRAME",
           "ProtocolError", "encode_frame", "read_exact", "recv_frame",
           "send_frame"]
