"""Length-prefixed JSON frames: the analyzer's one framing format.

Every message is a 4-byte big-endian length followed by that many bytes
of UTF-8 JSON (one object per frame).  Length prefixes make truncation
*detectable*: a peer killed mid-write leaves a frame whose declared
length exceeds the bytes that follow, which the readers here report as a
:class:`ProtocolError` instead of blocking forever or mis-parsing the
next frame.  The format is shared by

* the serve daemon's worker pipes (:mod:`repro.serve.supervise` /
  :mod:`repro.serve.worker`), where it rides on claimed stdin/stdout;
* the parallel engine's socket dispatch backend
  (:mod:`repro.parallel.remote`), where it rides on Unix/TCP sockets.

Three reader shapes cover the three channel shapes:

* :func:`recv_frame` — blocking read from a buffered binary stream
  (``sock.makefile('rb')`` or a pipe file object);
* :class:`FrameBuffer` — incremental parser for non-blocking event
  loops: feed byte chunks, pop complete frames;
* :class:`FdFrameReader` — deadline-bounded ``select``-based reader over
  a raw file descriptor (the serve supervisor's hard job timeout).
"""

from __future__ import annotations

import json
import os
import select
import struct
import time
from typing import Dict, List, Optional

__all__ = ["FdFrameReader", "FrameBuffer", "FrameTimeout", "MAX_FRAME",
           "ProtocolError", "encode_frame", "read_exact", "recv_frame",
           "send_frame"]

# One frame may carry whole translation units or pickled projected
# states; bound it generously (64 MiB) so a runaway peer cannot exhaust
# the parent's memory.
MAX_FRAME = 64 * 1024 * 1024

_FRAME_HEADER = struct.Struct(">I")


class ProtocolError(Exception):
    """Malformed frame: oversized, truncated stream, bad JSON."""


class FrameTimeout(ProtocolError):
    """A deadline-bounded read ran out of time (the peer is wedged, not
    dead — the caller decides whether to kill it)."""


def encode_frame(message: Dict) -> bytes:
    """Serialize one message to its on-wire bytes (header + body)."""
    data = json.dumps(message, separators=(",", ":")).encode()
    if len(data) > MAX_FRAME:
        raise ProtocolError("frame exceeds size limit")
    return _FRAME_HEADER.pack(len(data)) + data


def _decode_body(body: bytes) -> Dict:
    try:
        msg = json.loads(body)
    except ValueError as e:
        raise ProtocolError(f"bad JSON in frame: {e}")
    if not isinstance(msg, dict):
        raise ProtocolError("frame is not a JSON object")
    return msg


def send_frame(stream, message: Dict) -> None:
    """Write one length-prefixed JSON frame to a binary stream and
    flush it (pipes and socket makefiles are fully buffered)."""
    stream.write(encode_frame(message))
    stream.flush()


def read_exact(stream, n: int) -> bytes:
    """Read exactly n bytes from a buffered binary stream, tolerating
    short reads (pipes return what is available, not what was asked)."""
    chunks = []
    got = 0
    while got < n:
        chunk = stream.read(n - got)
        if not chunk:
            break
        chunks.append(chunk)
        got += len(chunk)
    return b"".join(chunks)


def recv_frame(stream) -> Optional[Dict]:
    """Read one length-prefixed frame.  Returns None on clean EOF (no
    header bytes at all); raises ProtocolError on a half-written frame
    — the tell of a peer that died mid-write."""
    header = read_exact(stream, _FRAME_HEADER.size)
    if not header:
        return None
    if len(header) < _FRAME_HEADER.size:
        raise ProtocolError("truncated frame header (peer died mid-write)")
    (length,) = _FRAME_HEADER.unpack(header)
    if length > MAX_FRAME:
        raise ProtocolError("frame exceeds size limit")
    body = read_exact(stream, length)
    if len(body) < length:
        raise ProtocolError(
            f"truncated frame body ({len(body)} of {length} bytes)")
    return _decode_body(body)


class FrameBuffer:
    """Incremental frame parser for non-blocking channels.

    ``feed()`` accumulates received bytes; ``next_frame()`` pops one
    complete frame or returns None when more bytes are needed.  A frame
    declaring a body longer than :data:`MAX_FRAME` raises immediately —
    no point buffering toward a bound that will be rejected anyway.
    """

    def __init__(self) -> None:
        self._buf = bytearray()

    def feed(self, data: bytes) -> None:
        self._buf += data

    def pending(self) -> int:
        return len(self._buf)

    def next_frame(self) -> Optional[Dict]:
        if len(self._buf) < _FRAME_HEADER.size:
            return None
        (length,) = _FRAME_HEADER.unpack_from(self._buf)
        if length > MAX_FRAME:
            raise ProtocolError("frame exceeds size limit")
        end = _FRAME_HEADER.size + length
        if len(self._buf) < end:
            return None
        body = bytes(self._buf[_FRAME_HEADER.size:end])
        del self._buf[:end]
        return _decode_body(body)

    def frames(self) -> List[Dict]:
        out = []
        while True:
            msg = self.next_frame()
            if msg is None:
                return out
            out.append(msg)


class FdFrameReader:
    """Deadline-bounded frame reader over a raw file descriptor.

    Used by the serve supervisor to enforce a hard per-job timeout on
    the worker pipe: each read ``select``s with the remaining budget and
    raises :class:`FrameTimeout` on overrun.  Raises
    :class:`ProtocolError` on half-written frames and returns ``None``
    on clean EOF, mirroring :func:`recv_frame`.
    """

    def __init__(self, fd: int) -> None:
        self.fd = fd
        self._buf = b""

    def read_exact(self, n: int, deadline: Optional[float]) -> bytes:
        while len(self._buf) < n:
            if deadline is not None:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    raise FrameTimeout("frame read deadline exceeded")
                wait = min(0.2, remaining)
            else:
                wait = 0.2
            ready, _, _ = select.select([self.fd], [], [], wait)
            if not ready:
                continue
            chunk = os.read(self.fd, 1 << 16)
            if not chunk:
                break  # EOF: the caller decides if that is clean
            self._buf += chunk
        out, self._buf = self._buf[:n], self._buf[n:]
        return out

    def recv_frame(self, deadline: Optional[float]) -> Optional[Dict]:
        header = self.read_exact(_FRAME_HEADER.size, deadline)
        if not header:
            return None
        if len(header) < _FRAME_HEADER.size:
            raise ProtocolError(
                "truncated frame header (peer died mid-write)")
        (length,) = _FRAME_HEADER.unpack(header)
        if length > MAX_FRAME:
            raise ProtocolError(f"oversized frame ({length} bytes)")
        body = self.read_exact(length, deadline)
        if len(body) < length:
            raise ProtocolError(
                f"truncated frame body ({len(body)} of {length} bytes)")
        return _decode_body(body)
