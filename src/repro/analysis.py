"""Top-level analysis API.

:func:`analyze` runs the full pipeline of Sect. 5 on C source text or a
lowered IR program: preprocessing/parsing/lowering (frontend), cell layout
(memory domain), pack computation (Sect. 7.2), then abstract execution in
iteration mode followed by checking mode, returning an
:class:`AnalysisResult` with the alarms, invariant statistics and packing
feedback (the useful-pack list of Sect. 7.2.2).
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Sequence, Tuple

from .config import AnalyzerConfig
from .frontend import compile_source, link_sources
from .frontend.ir import IRProgram
from .iterator.alarms import Alarm, AlarmCollector
from .iterator.iterator import Iterator
from .iterator.state import AbstractState, AnalysisContext, LatticeMemo
from .memory.cells import CellTable
from .numeric import FloatInterval, IntInterval
from .numeric import interval_kernels
from .packing.boolean_packs import compute_bool_packs
from .packing.ellipsoid_sites import find_filter_sites
from .packing.octagon_packs import compute_octagon_packs
from .supervisor import IncidentLog, Supervisor
from .supervisor.incidents import Incident

__all__ = ["analyze", "analyze_program", "AnalysisResult", "InvariantStats"]


@dataclass
class InvariantStats:
    """Counts of assertion kinds in the main loop invariant (the dump of
    Sect. 9.4.1: boolean intervals, intervals, clock, octagonal, decision
    trees, ellipsoids)."""

    boolean_interval_assertions: int = 0
    interval_assertions: int = 0
    clock_assertions: int = 0
    octagonal_additive_assertions: int = 0
    octagonal_subtractive_assertions: int = 0
    decision_trees: int = 0
    ellipsoidal_assertions: int = 0

    def total(self) -> int:
        return (self.boolean_interval_assertions + self.interval_assertions
                + self.clock_assertions + self.octagonal_additive_assertions
                + self.octagonal_subtractive_assertions + self.decision_trees
                + self.ellipsoidal_assertions)


@dataclass
class AnalysisResult:
    alarms: List[Alarm]
    analysis_time: float
    ctx: AnalysisContext
    final_state: AbstractState
    widening_iterations: int
    # Packing feedback (Sect. 7.2.2): keys of packs that improved precision.
    useful_octagon_packs: FrozenSet[Tuple[int, ...]]
    octagon_pack_count: int
    octagon_pack_avg_size: float
    bool_pack_count: int
    useful_bool_pack_count: int
    filter_site_count: int
    loop_invariants: Dict[int, AbstractState] = field(default_factory=dict)
    # Certificate records (repro.certify, populated under
    # config.certify): per loop occurrence of the checking-mode
    # traversal, in traversal order, the (stable statement ordinal,
    # pre-narrowing post-fixpoint, checking-pass invariant) triple the
    # certificate emitter packages for independent validation.
    cert_invariants: List[Tuple[int, AbstractState, AbstractState]] = \
        field(default_factory=list)
    # sid -> abstract visit count (only populated when config.trace is on).
    visit_counts: Dict[int, int] = field(default_factory=dict)
    # Per-phase wall time: parse, packing, iteration, checking (Fig. 2's
    # measurement axes).
    phase_times: Dict[str, float] = field(default_factory=dict)
    # Peak resident set size in KiB (self + worker children), 0 if the
    # resource module is unavailable.
    peak_rss_kib: int = 0
    # Parallel engine feedback (0 when jobs=1).
    jobs: int = 1
    parallel_regions: int = 0
    parallel_tasks: int = 0
    branch_dispatches: int = 0
    # Dispatch backend feedback (repro.parallel.backends): which backend
    # executed the work units ("none" when no engine was attached) and
    # its transport counters.  worker_rss_kib maps worker labels (pid-N
    # for pool workers, the address for socket workers) to their peak
    # RSS; fleet_peak_rss_kib is the maximum over the analyzer and every
    # worker — socket workers are not children of the analyzer, so
    # peak_rss_kib alone cannot see them.
    dispatch: str = "none"
    dispatch_jobs_dispatched: int = 0
    dispatch_jobs_stolen: int = 0
    dispatch_jobs_retried: int = 0
    dispatch_bytes_shipped: int = 0
    dispatch_workers_joined: int = 0
    dispatch_workers_lost: int = 0
    worker_rss_kib: Dict[str, int] = field(default_factory=dict)
    fleet_peak_rss_kib: int = 0
    # Incremental engine feedback (repro.iterator.incremental):
    # statement executions performed vs spliced from memoized records
    # (skips are weighted by footprint span), and the hit/miss counts of
    # the identity-keyed lattice memo.  stmts_executed also counts in
    # full (non-incremental) mode, making the two comparable.
    incremental: bool = True
    stmts_executed: int = 0
    stmts_skipped: int = 0
    lattice_memo_hits: int = 0
    lattice_memo_misses: int = 0
    # Vectorized kernel feedback (repro.numeric.interval_kernels):
    # whether the batched numpy backend was enabled, how many batched
    # environment merges ran, how many cells they covered, and how many
    # differing cells of engaged batches fell back to scalar ops
    # (non-float, clocked, frozen or bottom cells).
    vectorize: bool = True
    vector_batches: int = 0
    vector_cells: int = 0
    vector_scalar_fallbacks: int = 0
    # Cross-run fixpoint cache feedback (repro.serve.cache): statements
    # seeded with donor (pre, post) journals, donor records spliced, and
    # the footprint-weighted span of those splices (a subset of
    # stmts_skipped).  All zero for standalone runs.
    cross_run_seeded: int = 0
    cross_run_hits: int = 0
    cross_run_spliced: int = 0
    # Supervisor feedback (repro.supervisor): every fault or budget trip
    # the run absorbed, whether degradation rungs were applied, which
    # ones, and whether the run was restored from a checkpoint.
    incidents: List[Incident] = field(default_factory=list)
    degraded: bool = False
    degradation_steps: List[str] = field(default_factory=list)
    resumed: bool = False

    @property
    def alarm_count(self) -> int:
        return len(self.alarms)

    @property
    def exit_code(self) -> int:
        """The CLI exit-code contract (see repro.errors.ExitCode):
        degraded runs report 2 even when alarms are present — the verdict
        is sound but coarser than requested, which callers must be able
        to distinguish from a full-precision alarm list."""
        from .errors import ExitCode

        if self.degraded:
            return int(ExitCode.DEGRADED)
        if self.alarms:
            return int(ExitCode.ALARMS)
        return int(ExitCode.PROVED)

    def alarms_by_kind(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for a in self.alarms:
            out[a.kind] = out.get(a.kind, 0) + 1
        return out

    def invariant_stats(self) -> InvariantStats:
        """Statistics over the main loop invariant (largest loop invariant
        collected), mirroring the Sect. 9.4.1 dump."""
        stats = InvariantStats()
        if not self.loop_invariants:
            return stats
        # The main loop is the one with the most cells constrained.
        main = max(self.loop_invariants.values(),
                   key=lambda st: 0 if st.is_bottom else len(st.env.cells))
        if main.is_bottom:
            return stats
        from .packing.common import is_bool_cell

        for cid, v in main.env.cells.items():
            cell = self.ctx.table.cell(cid)
            itv = v.itv
            bounded = (itv.is_bounded if isinstance(itv, IntInterval)
                       else itv.is_bounded)
            if bounded:
                if is_bool_cell(cell):
                    stats.boolean_interval_assertions += 1
                else:
                    stats.interval_assertions += 1
            if v.minus_clock is not None and not (v.minus_clock.is_top
                                                  and v.plus_clock.is_top):
                # A clocked assertion is informative as soon as one side of
                # v - clock or v + clock is bounded.
                stats.clock_assertions += 1
        for pack_id, oct_ in main.octagons.items():
            add, sub = oct_.finite_constraint_count()
            stats.octagonal_additive_assertions += add
            stats.octagonal_subtractive_assertions += sub
        for pack_id, tree in main.dtrees.items():
            if not tree.is_top and not tree.is_bottom:
                stats.decision_trees += 1
        for site_id, k in main.ellipsoids.items():
            if not math.isinf(k):
                stats.ellipsoidal_assertions += 1
        return stats

    def dump_invariant_text(self) -> str:
        """Textual dump of the main loop invariant (tracing, Sect. 5.3)."""
        if not self.loop_invariants:
            return "(no loop invariants collected)"
        main = max(self.loop_invariants.values(),
                   key=lambda st: 0 if st.is_bottom else len(st.env.cells))
        lines: List[str] = []
        for cid, v in main.env.cells.items():
            cell = self.ctx.table.cell(cid)
            lines.append(f"{cell.name} in {v.itv!r}")
            if v.minus_clock is not None:
                lines.append(f"  {cell.name} - clock in {v.minus_clock!r}")
                lines.append(f"  {cell.name} + clock in {v.plus_clock!r}")
        for pack_id, oct_ in main.octagons.items():
            pack = self.ctx.oct_packs.pack(pack_id)
            for i, cid_i in enumerate(pack.cids):
                for j in range(i + 1, len(pack.cids)):
                    s = oct_.sum_bound(i, j)
                    d = oct_.diff_bound(i, j)
                    ni = self.ctx.table.cell(cid_i).name
                    nj = self.ctx.table.cell(pack.cids[j]).name
                    if s.is_bounded:
                        lines.append(f"{s.lo!r} <= {ni} + {nj} <= {s.hi!r}")
                    if d.is_bounded:
                        lines.append(f"{d.lo!r} <= {ni} - {nj} <= {d.hi!r}")
        for site_id, k in main.ellipsoids.items():
            if not math.isinf(k):
                site = self.ctx.filter_sites.site(site_id)
                nx = self.ctx.table.cell(site.x_cid).name
                ny = self.ctx.table.cell(site.y_cid).name
                lines.append(
                    f"{nx}^2 - {site.a}*{nx}*{ny} + {site.b}*{ny}^2 <= {k!r}")
        return "\n".join(lines)


def analyze(source, filename: str = "<input>",
            config: Optional[AnalyzerConfig] = None,
            entry: str = "main",
            jobs: Optional[int] = None,
            cross_run=None) -> AnalysisResult:
    """Analyze C source text (a string) or a list of (name, text) units."""
    if config is None:
        config = AnalyzerConfig()
    parse_start = time.perf_counter()
    if isinstance(source, str):
        prog = compile_source(source, filename, entry=entry)
    else:
        prog = link_sources(list(source), entry=entry)
    parse_seconds = time.perf_counter() - parse_start
    return analyze_program(prog, config, jobs=jobs,
                           parse_seconds=parse_seconds,
                           cross_run=cross_run)


def _peak_rss_kib() -> int:
    """Peak RSS of this process plus its (worker) children, in KiB."""
    from .supervisor.budget import peak_rss_kib

    return peak_rss_kib()


def _configure_sharing(config: AnalyzerConfig) -> None:
    """Size the process-global sharing caches (value intern pool and
    octagon closure memo) for this run.

    All of them are gated on ``config.incremental``: ``--no-incremental``
    is specified as a fallback to the pre-incremental engine, which had
    none of this machinery.  Disabling is always safe — the caches are
    value-preserving and only affect physical identity and wall time.

    The vectorized kernel backend (``config.vectorize``) is configured
    here too: it selects between the batched numpy kernels and the
    scalar oracle for the environment lattice ops and the octagon
    closure — bit-identical either way, so the parallel engine's worker
    processes (which re-run this function, see repro.parallel.executor)
    only need it for counter fidelity, never for correctness.
    """
    from .domains.octagon import configure_closure_memo, configure_vectorize
    from .memory import environment
    from .memory import interning
    from .numeric import interval_kernels

    if config.incremental:
        interning.configure(config.value_intern_size)
        configure_closure_memo(config.closure_memo_size)
    else:
        interning.configure(0)
        configure_closure_memo(0)
    environment.configure_vectorize(config.vectorize,
                                    config.vectorize_min_cells)
    configure_vectorize(config.vectorize)
    interval_kernels.reset_stats()


def _needs_supervisor(config: AnalyzerConfig) -> bool:
    return any((
        config.wall_deadline_s is not None,
        config.rss_limit_kib is not None,
        config.stmt_timeout_s is not None,
        config.checkpoint_path is not None,
        config.resume_path is not None,
        config.checkpoint_halt_after is not None,
    ))


def analyze_program(prog: IRProgram, config: Optional[AnalyzerConfig] = None,
                    jobs: Optional[int] = None,
                    parse_seconds: float = 0.0,
                    cross_run=None) -> AnalysisResult:
    """Analyze an already-lowered IR program.

    ``jobs`` overrides ``config.jobs``; any value > 1 attaches the
    parallel engine (bit-identical results, see repro.parallel).

    ``cross_run`` optionally attaches a
    :class:`repro.serve.cache.CrossRunCache`: donor (pre, post) journals
    of a previous run seed the incremental engine, and this run's
    journal is collected for harvesting by the caller.  Requires the
    incremental engine; ignored under ``--no-incremental`` or tracing.

    When any supervisor feature is enabled (resource budget, checkpoint
    or resume path), the run is wrapped in a :class:`Supervisor`; the
    degradation ladder then mutates a *copy* of ``config`` so the
    caller's instance is never touched.
    """
    if config is None:
        config = AnalyzerConfig()
    jobs = config.jobs if jobs is None else jobs
    if (getattr(config, "dispatch", "pool") == "socket"
            and getattr(config, "workers", ()) and jobs <= 1):
        # An explicit worker fleet implies parallel intent even without
        # --jobs: size the batch width to the fleet.
        jobs = max(2, len(config.workers))
    incidents = IncidentLog()
    sup: Optional[Supervisor] = None
    if _needs_supervisor(config):
        import dataclasses

        # The ladder mutates the config in place; give the run its own.
        config = dataclasses.replace(config)
        sup = Supervisor(config, incidents=incidents)
    start = time.perf_counter()
    table = CellTable.for_program(prog, config.expand_threshold)
    oct_packs = compute_octagon_packs(prog, table, config)
    bool_packs = compute_bool_packs(prog, table, config)
    sites = find_filter_sites(prog, table)
    ctx = AnalysisContext(prog=prog, config=config, table=table,
                          oct_packs=oct_packs, bool_packs=bool_packs,
                          filter_sites=sites)
    _configure_sharing(config)
    ctx.lattice_memo = LatticeMemo(
        config.lattice_memo_size if config.incremental else 0)
    if sup is not None:
        sup.attach_context(ctx)
    packing_seconds = time.perf_counter() - start
    alarms = AlarmCollector()
    it = Iterator(ctx, alarms)
    it.supervisor = sup
    if cross_run is not None and config.incremental and not config.trace:
        cross_run.attach(ctx)
        it.cross_run = cross_run
    engine = None
    if jobs > 1:
        from .parallel import ParallelEngine

        engine = ParallelEngine(ctx, jobs, incidents=incidents)
        it.parallel = engine
        if sup is not None:
            sup.engine = engine
    try:
        if sup is not None:
            sup.start()
        final = it.run(checking=True)
    finally:
        if sup is not None:
            sup.stop()
        if engine is not None:
            engine.close()
    elapsed = time.perf_counter() - start
    checking_seconds = max(0.0, elapsed - packing_seconds
                           - it.fixpoint_seconds)
    _ik_stats = interval_kernels.stats()
    useful = frozenset(
        oct_packs.pack(pid).key for pid in ctx.useful_oct_packs
    )
    phases = {
        "parse": parse_seconds,
        "packing": packing_seconds,
        "iteration": it.fixpoint_seconds,
        # Split of the iteration phase: time inside AbstractState
        # lattice ops (join/widen/narrow/includes) vs everything
        # else (the abstract transfer functions proper).
        "iteration-lattice": it.fixpoint_lattice_seconds,
        "iteration-transfer": max(
            0.0, it.fixpoint_seconds - it.fixpoint_lattice_seconds),
        "checking": checking_seconds,
    }
    dstats = None if engine is None else engine.stats
    if dstats is not None:
        phases["dispatch-serialize"] = dstats.serialize_s
        phases["dispatch-deserialize"] = dstats.deserialize_s
    rss = _peak_rss_kib()
    return AnalysisResult(
        alarms=alarms.alarms,
        analysis_time=elapsed,
        ctx=ctx,
        final_state=final,
        widening_iterations=it.widening_iterations,
        useful_octagon_packs=useful,
        octagon_pack_count=len(oct_packs),
        octagon_pack_avg_size=oct_packs.average_size(),
        bool_pack_count=len(bool_packs),
        useful_bool_pack_count=len(ctx.useful_bool_packs),
        filter_site_count=len(sites),
        loop_invariants=it.loop_invariants,
        cert_invariants=it.cert_invariants,
        visit_counts=it.visit_counts,
        phase_times=phases,
        peak_rss_kib=rss,
        jobs=jobs,
        parallel_regions=0 if engine is None else engine.parallel_regions,
        parallel_tasks=0 if engine is None else engine.parallel_tasks,
        branch_dispatches=0 if engine is None else engine.branch_dispatches,
        dispatch="none" if engine is None else engine.dispatch,
        dispatch_jobs_dispatched=(
            0 if dstats is None else dstats.jobs_dispatched),
        dispatch_jobs_stolen=0 if dstats is None else dstats.jobs_stolen,
        dispatch_jobs_retried=0 if dstats is None else dstats.jobs_retried,
        dispatch_bytes_shipped=0 if dstats is None else dstats.bytes_shipped,
        dispatch_workers_joined=(
            0 if dstats is None else dstats.workers_joined),
        dispatch_workers_lost=0 if dstats is None else dstats.workers_lost,
        worker_rss_kib={} if dstats is None else dict(dstats.worker_rss_kib),
        fleet_peak_rss_kib=(
            rss if dstats is None else dstats.fleet_peak_rss_kib(rss)),
        incremental=config.incremental,
        stmts_executed=it.stmts_executed,
        stmts_skipped=it.stmts_skipped,
        lattice_memo_hits=ctx.lattice_memo.hits,
        lattice_memo_misses=ctx.lattice_memo.misses,
        vectorize=config.vectorize,
        vector_batches=_ik_stats["batches"],
        vector_cells=_ik_stats["cells"],
        vector_scalar_fallbacks=_ik_stats["fallbacks"],
        cross_run_seeded=0 if cross_run is None else cross_run.seeded,
        cross_run_hits=it.cross_run_hits,
        cross_run_spliced=it.cross_run_spliced,
        incidents=incidents.incidents,
        degraded=False if sup is None else sup.degraded,
        degradation_steps=[] if sup is None else list(sup.ladder.applied),
        resumed=False if sup is None else sup.resumed,
    )
