"""Persistent functional maps with sharing (Sect. 6.1.2).

"We chose to implement abstract environments using functional maps
implemented as sharable balanced binary trees, with short-cut evaluation
when computing the abstract union, abstract intersection, widening or
narrowing of physically identical subtrees."

This module provides :class:`PMap`, an immutable weight-balanced binary
search tree keyed by totally ordered keys (the analyzer uses integer cell
ids).  Updates return new maps sharing almost all structure with the old
one; the binary combination operations (:meth:`PMap.merge`) shortcut on
physically identical subtrees (``a is b``), which makes joining two
environments that differ in a few cells cost time proportional to the
number of *differing* cells, not the total number of cells — the property
that removes the quadratic-time behaviour described in the paper.
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, Optional, Tuple

__all__ = ["PMap"]

# Weight-balanced tree parameters (as in Haskell's Data.Map).
_DELTA = 3
_RATIO = 2


class _Node:
    __slots__ = ("key", "value", "left", "right", "size")

    def __init__(self, key, value, left: Optional["_Node"], right: Optional["_Node"]):
        self.key = key
        self.value = value
        self.left = left
        self.right = right
        self.size = 1 + _size(left) + _size(right)


def _size(node: Optional[_Node]) -> int:
    return node.size if node is not None else 0


def _balance(key, value, left: Optional[_Node], right: Optional[_Node]) -> _Node:
    ln, rn = _size(left), _size(right)
    if ln + rn <= 1:
        return _Node(key, value, left, right)
    if rn > _DELTA * ln:
        assert right is not None
        rl, rr = right.left, right.right
        if _size(rl) < _RATIO * _size(rr):
            # single left rotation
            return _Node(right.key, right.value,
                         _Node(key, value, left, rl), rr)
        # double rotation
        assert rl is not None
        return _Node(rl.key, rl.value,
                     _Node(key, value, left, rl.left),
                     _Node(right.key, right.value, rl.right, rr))
    if ln > _DELTA * rn:
        assert left is not None
        ll, lr = left.left, left.right
        if _size(lr) < _RATIO * _size(ll):
            return _Node(left.key, left.value, ll,
                         _Node(key, value, lr, right))
        assert lr is not None
        return _Node(lr.key, lr.value,
                     _Node(left.key, left.value, ll, lr.left),
                     _Node(key, value, lr.right, right))
    return _Node(key, value, left, right)


def _insert(node: Optional[_Node], key, value) -> _Node:
    if node is None:
        return _Node(key, value, None, None)
    if key < node.key:
        new_left = _insert(node.left, key, value)
        if new_left is node.left:
            return node
        return _balance(node.key, node.value, new_left, node.right)
    if key > node.key:
        new_right = _insert(node.right, key, value)
        if new_right is node.right:
            return node
        return _balance(node.key, node.value, node.left, new_right)
    if value is node.value:
        return node
    return _Node(key, value, node.left, node.right)


def _get(node: Optional[_Node], key):
    while node is not None:
        if key < node.key:
            node = node.left
        elif key > node.key:
            node = node.right
        else:
            return node.value
    return None


def _contains(node: Optional[_Node], key) -> bool:
    while node is not None:
        if key < node.key:
            node = node.left
        elif key > node.key:
            node = node.right
        else:
            return True
    return False


def _min_node(node: _Node) -> _Node:
    while node.left is not None:
        node = node.left
    return node


def _remove(node: Optional[_Node], key) -> Optional[_Node]:
    if node is None:
        return None
    if key < node.key:
        new_left = _remove(node.left, key)
        if new_left is node.left:
            return node
        return _balance(node.key, node.value, new_left, node.right)
    if key > node.key:
        new_right = _remove(node.right, key)
        if new_right is node.right:
            return node
        return _balance(node.key, node.value, node.left, new_right)
    # Found: splice out.
    if node.left is None:
        return node.right
    if node.right is None:
        return node.left
    succ = _min_node(node.right)
    new_right = _remove(node.right, succ.key)
    return _balance(succ.key, succ.value, node.left, new_right)


def _join(key, value, left: Optional[_Node], right: Optional[_Node]) -> _Node:
    """Concatenate left < key < right, rebalancing as needed."""
    ln, rn = _size(left), _size(right)
    if rn > _DELTA * ln and right is not None:
        return _balance(right.key, right.value,
                        _join(key, value, left, right.left), right.right)
    if ln > _DELTA * rn and left is not None:
        return _balance(left.key, left.value, left.left,
                        _join(key, value, left.right, right))
    return _Node(key, value, left, right)


def _join2(left: Optional[_Node], right: Optional[_Node]) -> Optional[_Node]:
    if left is None:
        return right
    if right is None:
        return left
    succ = _min_node(right)
    return _join(succ.key, succ.value, left, _remove(right, succ.key))


def _split(node: Optional[_Node], key) -> Tuple[Optional[_Node], Any, bool, Optional[_Node]]:
    """Split into (keys < key, value-at-key, found, keys > key)."""
    if node is None:
        return None, None, False, None
    if key < node.key:
        ll, v, found, lr = _split(node.left, key)
        return ll, v, found, _join(node.key, node.value, lr, node.right)
    if key > node.key:
        rl, v, found, rr = _split(node.right, key)
        return _join(node.key, node.value, node.left, rl), v, found, rr
    return node.left, node.value, True, node.right


def _merge(a: Optional[_Node], b: Optional[_Node],
           combine: Callable[[Any, Any, Any], Any],
           missing_a: Optional[Callable[[Any, Any], Any]],
           missing_b: Optional[Callable[[Any, Any], Any]]) -> Optional[_Node]:
    """Merge two trees with per-key combination and sharing shortcut.

    ``combine(key, va, vb)`` for keys in both; ``missing_a(key, vb)`` for
    keys only in ``b`` (None drops them); ``missing_b(key, va)`` likewise.
    The ``a is b`` shortcut requires combine(k, v, v) == v semantics from
    the caller (true of join/widen/narrow/meet on identical values).
    """
    if a is b:
        return a
    if a is None:
        return _map_values_opt(b, missing_a) if missing_a is not None else None
    if b is None:
        return _map_values_opt(a, missing_b) if missing_b is not None else None
    if b.key == a.key:
        # Equal roots: recurse on the original subtrees.  Splitting here
        # would rebuild ``b``'s children and destroy the physical identity
        # the recursive ``a is b`` shortcut depends on; trees derived from
        # one another by ``set`` (the common case during iteration) share
        # their whole shape, so this path keeps the merge proportional to
        # the number of differing cells (Sect. 6.1.2).
        bl, bv, found, br = b.left, b.value, True, b.right
    else:
        bl, bv, found, br = _split(b, a.key)
    new_left = _merge(a.left, bl, combine, missing_a, missing_b)
    new_right = _merge(a.right, br, combine, missing_a, missing_b)
    if found:
        if a.value is bv:
            new_value, keep = a.value, True
        else:
            new_value = combine(a.key, a.value, bv)
            keep = new_value is not _DROP
    else:
        if missing_b is None:
            keep = False
            new_value = None
        else:
            new_value = missing_b(a.key, a.value)
            keep = new_value is not _DROP
    if keep:
        if (new_left is a.left and new_right is a.right
                and new_value is a.value):
            return a
        return _join(a.key, new_value, new_left, new_right)
    return _join2(new_left, new_right)


class _Drop:
    """Sentinel: a combination function may return DROP to delete a key."""

    def __repr__(self) -> str:  # pragma: no cover
        return "PMap.DROP"


_DROP = _Drop()


def _map_values_opt(node: Optional[_Node],
                    f: Callable[[Any, Any], Any]) -> Optional[_Node]:
    if node is None:
        return None
    new_left = _map_values_opt(node.left, f)
    new_right = _map_values_opt(node.right, f)
    new_value = f(node.key, node.value)
    if new_value is _DROP:
        return _join2(new_left, new_right)
    if new_left is node.left and new_right is node.right and new_value is node.value:
        return node
    return _join(node.key, new_value, new_left, new_right)


def _intern_node(node: Optional[_Node], pool: dict,
                 intern_value) -> Optional[_Node]:
    """Bottom-up hash-consing of tree nodes.

    ``pool`` maps ``(key, id(value), id(left), id(right))`` to a
    canonical node.  The pool holds strong references to every pooled
    node (and therefore its children), so the ids stay valid for the
    pool's lifetime.  Value objects may additionally be canonicalized
    through ``intern_value`` first, so two trees built independently
    from equal items collapse to one shared structure.
    """
    if node is None:
        return None
    left = _intern_node(node.left, pool, intern_value)
    right = _intern_node(node.right, pool, intern_value)
    value = intern_value(node.value) if intern_value is not None else node.value
    key = (node.key, id(value), id(left), id(right))
    got = pool.get(key)
    if got is not None:
        return got
    if left is node.left and right is node.right and value is node.value:
        canon = node
    else:
        canon = _Node(node.key, value, left, right)
    pool[key] = canon
    return canon


def _iter_items(node: Optional[_Node]) -> Iterator[Tuple[Any, Any]]:
    stack = []
    while node is not None or stack:
        while node is not None:
            stack.append(node)
            node = node.left
        node = stack.pop()
        yield node.key, node.value
        node = node.right


def _diff_keys(a: Optional[_Node], b: Optional[_Node]) -> Iterator[Any]:
    """Keys whose values differ (physically) between the two maps."""
    if a is b:
        return
    if a is None:
        for k, _ in _iter_items(b):
            yield k
        return
    if b is None:
        for k, _ in _iter_items(a):
            yield k
        return
    if b.key == a.key:
        bl, bv, found, br = b.left, b.value, True, b.right
    else:
        bl, bv, found, br = _split(b, a.key)
    yield from _diff_keys(a.left, bl)
    if not found or bv is not a.value:
        yield a.key
    yield from _diff_keys(a.right, br)


class PMap:
    """An immutable map with O(log n) update and sharing-aware merge."""

    __slots__ = ("_root",)

    DROP = _DROP

    def __init__(self, _root: Optional[_Node] = None):
        self._root = _root

    @staticmethod
    def empty() -> "PMap":
        return _EMPTY

    @staticmethod
    def from_items(items) -> "PMap":
        root: Optional[_Node] = None
        for k, v in items:
            root = _insert(root, k, v)
        return PMap(root) if root is not None else _EMPTY

    # -- queries -------------------------------------------------------------

    def __len__(self) -> int:
        return _size(self._root)

    def __bool__(self) -> bool:
        return self._root is not None

    def __contains__(self, key) -> bool:
        return _contains(self._root, key)

    def get(self, key, default=None):
        if _contains(self._root, key):
            return _get(self._root, key)
        return default

    def find(self, key):
        """Single-traversal lookup returning None when the key is absent.

        Only valid for maps that never store None values — true of every
        map in the analyzer (cell values, octagons, trees, ellipsoid
        bounds).  ``get`` needs two traversals to distinguish an absent
        key from a stored default; on the hot paths that distinction
        never arises.
        """
        return _get(self._root, key)

    def __getitem__(self, key):
        if not _contains(self._root, key):
            raise KeyError(key)
        return _get(self._root, key)

    def items(self) -> Iterator[Tuple[Any, Any]]:
        return _iter_items(self._root)

    def keys(self) -> Iterator[Any]:
        return (k for k, _ in self.items())

    def values(self) -> Iterator[Any]:
        return (v for _, v in self.items())

    # -- updates -------------------------------------------------------------

    def set(self, key, value) -> "PMap":
        new_root = _insert(self._root, key, value)
        if new_root is self._root:
            return self
        return PMap(new_root)

    def remove(self, key) -> "PMap":
        new_root = _remove(self._root, key)
        if new_root is self._root:
            return self
        return PMap(new_root) if new_root is not None else _EMPTY

    def map_values(self, f: Callable[[Any, Any], Any]) -> "PMap":
        """Apply ``f(key, value)``; return DROP to delete an entry."""
        new_root = _map_values_opt(self._root, f)
        if new_root is self._root:
            return self
        return PMap(new_root) if new_root is not None else _EMPTY

    # -- binary operations with sharing shortcut ---------------------------------

    def merge(
        self,
        other: "PMap",
        combine: Callable[[Any, Any, Any], Any],
        missing_self: Optional[Callable[[Any, Any], Any]] = None,
        missing_other: Optional[Callable[[Any, Any], Any]] = None,
    ) -> "PMap":
        """Combine two maps key-wise with physical-identity shortcuts.

        ``combine(key, self_value, other_value)`` handles shared keys.
        ``missing_self(key, other_value)`` handles keys present only in
        ``other`` (default: dropped); ``missing_other`` symmetrically.
        Either function may return :data:`PMap.DROP` to delete the key.

        The shortcut assumes ``combine`` would map identical values to the
        same value (true of lattice join/meet/widen/narrow), so physically
        identical subtrees are returned unchanged without visiting them.
        """
        new_root = _merge(self._root, other._root, combine,
                          missing_self, missing_other)
        if new_root is self._root:
            return self
        return PMap(new_root) if new_root is not None else _EMPTY

    def diff_keys(self, other: "PMap") -> Iterator[Any]:
        """Keys whose values are not physically shared between the maps."""
        return _diff_keys(self._root, other._root)

    def intern(self, pool: dict, intern_value=None) -> "PMap":
        """Hash-cons this map's nodes against ``pool`` (see
        :func:`_intern_node`).  Returns a value-equal map whose subtrees
        are shared with every other map interned against the same pool —
        used to restore cross-structure sharing after deserialization.
        """
        new_root = _intern_node(self._root, pool, intern_value)
        if new_root is self._root:
            return self
        return PMap(new_root) if new_root is not None else _EMPTY

    def ptr_equal(self, other: "PMap") -> bool:
        """Physical identity of the underlying trees (constant time)."""
        return self._root is other._root

    def __reduce__(self):
        # Serialize as the item list: tree nodes are an implementation
        # detail, and rebuilding through ``from_items`` keeps pickles
        # small and version-independent.
        return (PMap.from_items, (list(self.items()),))

    def equal(self, other: "PMap", value_eq: Callable[[Any, Any], bool]) -> bool:
        """Equality with physical-identity shortcut on shared subtrees."""
        if self._root is other._root:
            return True
        if len(self) != len(other):
            return False
        for key in self.diff_keys(other):
            if key not in other or key not in self:
                return False
            if not value_eq(self[key], other[key]):
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        inner = ", ".join(f"{k}: {v!r}" for k, v in self.items())
        return f"PMap({{{inner}}})"


_EMPTY = PMap(None)
