"""Hash-consing of abstract values (the sharing machinery of Sect. 6.1.2).

The functional-map sharing shortcuts (``a is b`` in :mod:`.fmap`) only
fire when equal values are *physically identical*.  Transfer functions,
however, rebuild :class:`~repro.domains.values.CellValue` objects from
scratch on every execution, so a re-executed statement that computes the
same abstract value as last iteration still produces a fresh object —
and every map node above it is copied, every later merge re-walks it,
and every stability check re-compares it.

This module provides a bounded intern pool for cell values: the first
time a value is seen it becomes the canonical representative, and every
later structurally-equal value is replaced by that representative at the
point where it enters an environment (``MemoryEnv.set``/``weak_set``).
Interning is *semantics-free* by construction: a value is only ever
replaced by an ``==``-equal value, and the whole analyzer already treats
``==``-equal values as interchangeable (cell-wise merges return ``a``
when ``a == b``, dropping ``b``'s identity).  The only observable effect
is that the physical-identity fast paths fire far more often.

The pool is process-global (each parallel worker has its own) and
bounded: when it reaches the configured capacity it is simply cleared —
interning is a cache, and dropping it costs sharing, never correctness.
"""

from __future__ import annotations

from typing import Dict, Optional

__all__ = ["configure", "intern_value", "intern_stats", "clear",
           "reintern_env"]

# value -> canonical representative.  Keys and values are the same
# objects; CellValue is a frozen (hashable) dataclass.
_POOL: Dict[object, object] = {}
_MAX: int = 65536
_ENABLED: bool = True
_HITS: int = 0
_MISSES: int = 0


def configure(max_size: int) -> None:
    """Set the pool capacity; 0 (or negative) disables interning."""
    global _MAX, _ENABLED
    _MAX = max_size
    _ENABLED = max_size > 0
    if not _ENABLED:
        _POOL.clear()


def clear() -> None:
    _POOL.clear()


def intern_stats():
    """(hits, misses, current pool size)."""
    return _HITS, _MISSES, len(_POOL)


def intern_value(value):
    """Return the canonical representative of an ``==``-equal value."""
    global _HITS, _MISSES
    if not _ENABLED:
        return value
    canon = _POOL.get(value)
    if canon is not None:
        _HITS += 1
        return canon
    try:
        if len(_POOL) >= _MAX:
            _POOL.clear()
        _POOL[value] = value
    except TypeError:  # unhashable (never for CellValue; stay safe)
        return value
    _MISSES += 1
    return value


# Node-level hash-consing pool for PMap.intern (bounded like the value
# pool; cleared wholesale at capacity).
_NODE_POOL: Dict[object, object] = {}


def node_pool() -> Dict[object, object]:
    if len(_NODE_POOL) > 4 * max(_MAX, 1):
        _NODE_POOL.clear()
    return _NODE_POOL


def reintern_env(env):
    """Re-canonicalize an environment's values and map nodes.

    Used after deserialization (checkpoint resume): unpickled values and
    tree nodes are fresh objects, and routing them through the pools
    restores identity-sharing with values the live process computes
    later.  Value-preserving, so invariants are unchanged.
    """
    if not _ENABLED or env.is_bottom:
        return env
    new_cells = env.cells.intern(node_pool(), intern_value)
    if new_cells is env.cells:
        return env
    return type(env)(new_cells, env.clock, env.bottom)
