"""Abstract environments over functional maps (Sect. 6.1).

A :class:`MemoryEnv` maps cell ids to :class:`~repro.domains.values.
CellValue` using the persistent :class:`~repro.memory.fmap.PMap`, plus the
hidden clock of the clocked domain.  All lattice operations are cell-wise
with sharing shortcuts, so joining two environments that differ on a few
cells costs time proportional to the difference (Sect. 6.1.2).

The bottom environment (``is_bottom``) abstracts the empty set of concrete
environments, i.e. unreachable code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Sequence, Tuple

import numpy as np

from ..domains.values import CellValue, ClockInfo
from ..numeric import FloatInterval
from ..numeric import interval_kernels as _kernels
from . import interning
from .cells import CellInfo, CellTable
from .fmap import PMap

__all__ = ["MemoryEnv", "configure_vectorize", "vectorize_enabled"]


# -- vectorized merge path (repro.numeric.interval_kernels) ------------------
#
# When two environments differ on many float cells at once, the
# per-cell scalar combine is replaced by one batched kernel call: the
# differing cells' bounds are gathered into lo/hi planes, the kernel
# produces the combined planes, and the merge's combine function reads
# the rebuilt CellValues out of a precomputed dict.  Everything the
# scalar path guarantees is preserved: ``a == b`` cells still return
# ``a`` itself (so PMap sharing shortcuts and the hash-consing/memo
# invariants of the incremental engine see physically unchanged
# subtrees), non-float cells, clocked cells, frozen widening cells and
# bottom values fall back to the scalar ops, and the kernels are
# bit-identical picks (see interval_kernels).  Below the crossover the
# scalar path runs unchanged — numpy call overhead beats a tiny batch.

_VECTORIZE = True
_MIN_CELLS = 16


def configure_vectorize(enabled: bool, min_cells: int = 16) -> None:
    """Configure the batched merge path for this process: enable flag
    and the crossover (minimum differing batchable cells before one
    kernel call replaces the per-cell scalar combine)."""
    global _VECTORIZE, _MIN_CELLS
    _VECTORIZE = bool(enabled)
    _MIN_CELLS = max(1, int(min_cells))


def vectorize_enabled() -> bool:
    return _VECTORIZE


def _batchable(v: CellValue) -> bool:
    """Cells the kernels may combine: plain float intervals, no clocked
    components, not bottom (scalar join/widen return the *other operand
    object* for bottom — the scalar path preserves that)."""
    return (v.minus_clock is None and v.plus_clock is None
            and type(v.itv) is FloatInterval and not v.itv.is_empty)


def _gather_pairs(mine: PMap, theirs: PMap,
                  frozen_cids: Optional[set] = None
                  ) -> Optional[List[Tuple[int, CellValue, CellValue]]]:
    """The differing batchable (cid, a, b) pairs of two cell maps, or
    None when below the crossover (the scalar path is cheaper)."""
    pairs: List[Tuple[int, CellValue, CellValue]] = []
    for cid in mine.diff_keys(theirs):
        va = mine.get(cid)
        if va is None:
            continue
        vb = theirs.get(cid)
        if vb is None or va is vb or va == vb:
            continue
        if frozen_cids is not None and cid in frozen_cids:
            continue
        if _batchable(va) and _batchable(vb):
            pairs.append((cid, va, vb))
    if len(pairs) < _MIN_CELLS:
        return None
    return pairs


def _pair_planes(pairs):
    n = len(pairs)
    a_lo = np.fromiter((p[1].itv.lo for p in pairs), np.float64, count=n)
    a_hi = np.fromiter((p[1].itv.hi for p in pairs), np.float64, count=n)
    b_lo = np.fromiter((p[2].itv.lo for p in pairs), np.float64, count=n)
    b_hi = np.fromiter((p[2].itv.hi for p in pairs), np.float64, count=n)
    return a_lo, a_hi, b_lo, b_hi


def _rebuild(pairs, out_lo: np.ndarray, out_hi: np.ndarray
             ) -> Dict[int, CellValue]:
    """cid -> fresh CellValue from the kernel's bound planes.  Fresh and
    un-interned, exactly like the scalar combine's ``a.join(b)`` result
    (interning happens only at MemoryEnv.set/weak_set)."""
    lo = out_lo.tolist()
    hi = out_hi.tolist()
    _kernels.note_batch(len(pairs))
    return {pairs[i][0]: CellValue(FloatInterval(lo[i], hi[i]))
            for i in range(len(pairs))}


@dataclass(frozen=True)
class MemoryEnv:
    """Immutable non-relational abstract environment."""

    cells: PMap  # cid -> CellValue
    clock: ClockInfo
    bottom: bool = False

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def make_bottom(max_clock: Optional[int] = None) -> "MemoryEnv":
        return MemoryEnv(PMap.empty(), ClockInfo.initial(max_clock), bottom=True)

    @staticmethod
    def initial(max_clock: Optional[int] = None) -> "MemoryEnv":
        return MemoryEnv(PMap.empty(), ClockInfo.initial(max_clock))

    @property
    def is_bottom(self) -> bool:
        return self.bottom

    # -- cell access ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of constrained cells — O(1), from the map's root size."""
        return len(self.cells)

    def get(self, cid: int) -> Optional[CellValue]:
        return self.cells.find(cid)

    def set(self, cid: int, value: CellValue) -> "MemoryEnv":
        """Strong update.

        A write of an ``==``-equal value returns ``self`` unchanged:
        re-executed statements that recompute last iteration's value
        leave the environment physically identical, so every downstream
        sharing shortcut (merge, diff, includes) sees no change at all.
        New values are interned so equal values computed at different
        times or cells collapse to one representative.
        """
        if self.bottom:
            return self
        if value.is_bottom:
            return self.to_bottom()
        old = self.cells.find(cid)
        if old is not None and (old is value or old == value):
            return self
        return MemoryEnv(self.cells.set(cid, interning.intern_value(value)),
                         self.clock)

    def weak_set(self, cid: int, value: CellValue) -> "MemoryEnv":
        """Weak update: the cell may keep its old value (Sect. 6.1.3)."""
        if self.bottom:
            return self
        old = self.cells.find(cid)
        joined = value if old is None else old.join(value)
        if old is not None and (joined is old or joined == old):
            return self
        return MemoryEnv(self.cells.set(cid, interning.intern_value(joined)),
                         self.clock)

    def remove(self, cid: int) -> "MemoryEnv":
        if self.bottom:
            return self
        return MemoryEnv(self.cells.remove(cid), self.clock)

    def remove_many(self, cids) -> "MemoryEnv":
        if self.bottom:
            return self
        cells = self.cells
        for cid in cids:
            cells = cells.remove(cid)
        return MemoryEnv(cells, self.clock)

    def to_bottom(self) -> "MemoryEnv":
        return MemoryEnv(PMap.empty(), self.clock, bottom=True)

    def with_clock(self, clock: ClockInfo) -> "MemoryEnv":
        return MemoryEnv(self.cells, clock, self.bottom)

    # -- the clock tick (the synchronous 'wait') ----------------------------------

    def tick(self) -> "MemoryEnv":
        """Advance the hidden clock; adjust all clocked cell components."""
        if self.bottom:
            return self
        new_cells = self.cells.map_values(
            lambda cid, v: interning.intern_value(v.on_clock_tick())
            if v.has_clock else v
        )
        return MemoryEnv(new_cells, self.clock.tick())

    # -- lattice ------------------------------------------------------------------

    def join(self, other: "MemoryEnv") -> "MemoryEnv":
        if self.bottom:
            return other
        if other.bottom:
            return self
        pre: Optional[Dict[int, CellValue]] = None
        if _VECTORIZE:
            pairs = _gather_pairs(self.cells, other.cells)
            if pairs is not None:
                out_lo, out_hi = _kernels.batch_join(*_pair_planes(pairs))
                pre = _rebuild(pairs, out_lo, out_hi)

        if pre is None:
            combine = lambda cid, a, b: a if a == b else a.join(b)  # noqa: E731
        else:
            def combine(cid, a, b):
                if a == b:
                    return a
                v = pre.get(cid)
                if v is not None:
                    return v
                _kernels.note_fallback()
                return a.join(b)

        cells = self.cells.merge(
            other.cells,
            combine,
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        return MemoryEnv(cells, self.clock.join(other.clock))

    def widen(self, other: "MemoryEnv",
              thresholds: Optional[Sequence[float]] = None,
              frozen_cids: Optional[set] = None) -> "MemoryEnv":
        """Cell-wise widening with thresholds (Sect. 7.1.2).

        ``frozen_cids`` supports delayed widening (Sect. 7.1.3): cells in the
        set are joined instead of widened this iteration.
        """
        if self.bottom:
            return other
        if other.bottom:
            return self
        pre: Optional[Dict[int, CellValue]] = None
        if _VECTORIZE:
            pairs = _gather_pairs(self.cells, other.cells, frozen_cids)
            if pairs is not None:
                ladder = (None if thresholds is None
                          else _kernels.ladder_array(thresholds))
                out_lo, out_hi = _kernels.batch_widen(
                    *_pair_planes(pairs), ladder)
                pre = _rebuild(pairs, out_lo, out_hi)

        def combine(cid, a: CellValue, b: CellValue) -> CellValue:
            if a == b:
                return a
            if frozen_cids is not None and cid in frozen_cids:
                return a.join(b)
            if pre is not None:
                v = pre.get(cid)
                if v is not None:
                    return v
                _kernels.note_fallback()
            return a.widen(b, thresholds)

        cells = self.cells.merge(
            other.cells,
            combine,
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        return MemoryEnv(cells, self.clock.widen(other.clock))

    def narrow(self, other: "MemoryEnv") -> "MemoryEnv":
        if self.bottom or other.bottom:
            return other
        pre: Optional[Dict[int, CellValue]] = None
        if _VECTORIZE:
            pairs = _gather_pairs(self.cells, other.cells)
            if pairs is not None:
                out_lo, out_hi = _kernels.batch_narrow(*_pair_planes(pairs))
                pre = _rebuild(pairs, out_lo, out_hi)

        if pre is None:
            combine = lambda cid, a, b: a if a == b else a.narrow(b)  # noqa: E731
        else:
            def combine(cid, a, b):
                if a == b:
                    return a
                v = pre.get(cid)
                if v is not None:
                    return v
                _kernels.note_fallback()
                return a.narrow(b)

        cells = self.cells.merge(
            other.cells,
            combine,
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        return MemoryEnv(cells, self.clock)

    def meet(self, other: "MemoryEnv") -> "MemoryEnv":
        if self.bottom or other.bottom:
            return self.to_bottom()
        saw_empty = False
        pre: Optional[Dict[int, CellValue]] = None
        if _VECTORIZE:
            pairs = _gather_pairs(self.cells, other.cells)
            if pairs is not None:
                out_lo, out_hi = _kernels.batch_meet(*_pair_planes(pairs))
                pre = _rebuild(pairs, out_lo, out_hi)

        def combine(cid, a: CellValue, b: CellValue) -> CellValue:
            nonlocal saw_empty
            if a == b:
                return a
            m = None
            if pre is not None:
                m = pre.get(cid)
                if m is None:
                    _kernels.note_fallback()
            if m is None:
                m = a.meet(b)
            if m.is_bottom:
                saw_empty = True
            return m

        cells = self.cells.merge(
            other.cells,
            combine,
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        if saw_empty:
            return self.to_bottom()
        return MemoryEnv(cells, self.clock)

    def includes(self, other: "MemoryEnv") -> bool:
        """Abstract inclusion check (the stabilization test of Sect. 5.5)."""
        if other.bottom:
            return True
        if self.bottom:
            return False
        if not self.clock.range.includes(other.clock.range):
            return False
        if self.cells._root is other.cells._root:  # physical shortcut
            return True
        # Batchable pairs are deferred into bound planes and checked
        # with one kernel call when numerous enough; everything else
        # keeps the scalar per-cell check.  The verdict is a bool, so
        # batching trivially preserves bit-identity (the scalar loop's
        # early exit only skips work, never changes the answer).
        deferred: List[Tuple[CellValue, CellValue]] = []
        for cid in self.cells.diff_keys(other.cells):
            mine = self.cells.get(cid)
            theirs = other.cells.get(cid)
            if theirs is None:
                continue
            if mine is None:
                return False
            if mine is theirs:
                continue
            if (_VECTORIZE
                    and mine.minus_clock is None and mine.plus_clock is None
                    and type(mine.itv) is FloatInterval
                    and type(theirs.itv) is FloatInterval):
                deferred.append((mine, theirs))
            elif not mine.includes(theirs):
                return False
        if deferred:
            if len(deferred) >= _MIN_CELLS:
                n = len(deferred)
                a_lo = np.fromiter((p[0].itv.lo for p in deferred),
                                   np.float64, count=n)
                a_hi = np.fromiter((p[0].itv.hi for p in deferred),
                                   np.float64, count=n)
                b_lo = np.fromiter((p[1].itv.lo for p in deferred),
                                   np.float64, count=n)
                b_hi = np.fromiter((p[1].itv.hi for p in deferred),
                                   np.float64, count=n)
                _kernels.note_batch(n)
                ok = _kernels.batch_includes(a_lo, a_hi, b_lo, b_hi)
                if not bool(ok.all()):
                    return False
            else:
                for mine, theirs in deferred:
                    if not mine.includes(theirs):
                        return False
        # Keys only in other:
        for cid in other.cells.diff_keys(self.cells):
            if cid not in self.cells:
                return False
        return True

    def equal(self, other: "MemoryEnv") -> bool:
        if self.bottom or other.bottom:
            return self.bottom == other.bottom
        return (self.clock.range == other.clock.range
                and self.cells.equal(other.cells, lambda a, b: a == b))

    def diff_cids(self, other: "MemoryEnv"):
        """Cell ids whose values may differ (sharing-aware)."""
        return self.cells.diff_keys(other.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.bottom:
            return "MemoryEnv(bottom)"
        inner = ", ".join(f"c{cid}={v!r}" for cid, v in self.cells.items())
        return f"MemoryEnv({inner})"
