"""Abstract environments over functional maps (Sect. 6.1).

A :class:`MemoryEnv` maps cell ids to :class:`~repro.domains.values.
CellValue` using the persistent :class:`~repro.memory.fmap.PMap`, plus the
hidden clock of the clocked domain.  All lattice operations are cell-wise
with sharing shortcuts, so joining two environments that differ on a few
cells costs time proportional to the difference (Sect. 6.1.2).

The bottom environment (``is_bottom``) abstracts the empty set of concrete
environments, i.e. unreachable code.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator, Optional, Sequence, Tuple

from ..domains.values import CellValue, ClockInfo
from . import interning
from .cells import CellInfo, CellTable
from .fmap import PMap

__all__ = ["MemoryEnv"]


@dataclass(frozen=True)
class MemoryEnv:
    """Immutable non-relational abstract environment."""

    cells: PMap  # cid -> CellValue
    clock: ClockInfo
    bottom: bool = False

    # -- constructors -----------------------------------------------------------

    @staticmethod
    def make_bottom(max_clock: Optional[int] = None) -> "MemoryEnv":
        return MemoryEnv(PMap.empty(), ClockInfo.initial(max_clock), bottom=True)

    @staticmethod
    def initial(max_clock: Optional[int] = None) -> "MemoryEnv":
        return MemoryEnv(PMap.empty(), ClockInfo.initial(max_clock))

    @property
    def is_bottom(self) -> bool:
        return self.bottom

    # -- cell access ------------------------------------------------------------

    def __len__(self) -> int:
        """Number of constrained cells — O(1), from the map's root size."""
        return len(self.cells)

    def get(self, cid: int) -> Optional[CellValue]:
        return self.cells.find(cid)

    def set(self, cid: int, value: CellValue) -> "MemoryEnv":
        """Strong update.

        A write of an ``==``-equal value returns ``self`` unchanged:
        re-executed statements that recompute last iteration's value
        leave the environment physically identical, so every downstream
        sharing shortcut (merge, diff, includes) sees no change at all.
        New values are interned so equal values computed at different
        times or cells collapse to one representative.
        """
        if self.bottom:
            return self
        if value.is_bottom:
            return self.to_bottom()
        old = self.cells.find(cid)
        if old is not None and (old is value or old == value):
            return self
        return MemoryEnv(self.cells.set(cid, interning.intern_value(value)),
                         self.clock)

    def weak_set(self, cid: int, value: CellValue) -> "MemoryEnv":
        """Weak update: the cell may keep its old value (Sect. 6.1.3)."""
        if self.bottom:
            return self
        old = self.cells.find(cid)
        joined = value if old is None else old.join(value)
        if old is not None and (joined is old or joined == old):
            return self
        return MemoryEnv(self.cells.set(cid, interning.intern_value(joined)),
                         self.clock)

    def remove(self, cid: int) -> "MemoryEnv":
        if self.bottom:
            return self
        return MemoryEnv(self.cells.remove(cid), self.clock)

    def remove_many(self, cids) -> "MemoryEnv":
        if self.bottom:
            return self
        cells = self.cells
        for cid in cids:
            cells = cells.remove(cid)
        return MemoryEnv(cells, self.clock)

    def to_bottom(self) -> "MemoryEnv":
        return MemoryEnv(PMap.empty(), self.clock, bottom=True)

    def with_clock(self, clock: ClockInfo) -> "MemoryEnv":
        return MemoryEnv(self.cells, clock, self.bottom)

    # -- the clock tick (the synchronous 'wait') ----------------------------------

    def tick(self) -> "MemoryEnv":
        """Advance the hidden clock; adjust all clocked cell components."""
        if self.bottom:
            return self
        new_cells = self.cells.map_values(
            lambda cid, v: interning.intern_value(v.on_clock_tick())
            if v.has_clock else v
        )
        return MemoryEnv(new_cells, self.clock.tick())

    # -- lattice ------------------------------------------------------------------

    def join(self, other: "MemoryEnv") -> "MemoryEnv":
        if self.bottom:
            return other
        if other.bottom:
            return self
        cells = self.cells.merge(
            other.cells,
            lambda cid, a, b: a if a == b else a.join(b),
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        return MemoryEnv(cells, self.clock.join(other.clock))

    def widen(self, other: "MemoryEnv",
              thresholds: Optional[Sequence[float]] = None,
              frozen_cids: Optional[set] = None) -> "MemoryEnv":
        """Cell-wise widening with thresholds (Sect. 7.1.2).

        ``frozen_cids`` supports delayed widening (Sect. 7.1.3): cells in the
        set are joined instead of widened this iteration.
        """
        if self.bottom:
            return other
        if other.bottom:
            return self

        def combine(cid, a: CellValue, b: CellValue) -> CellValue:
            if a == b:
                return a
            if frozen_cids is not None and cid in frozen_cids:
                return a.join(b)
            return a.widen(b, thresholds)

        cells = self.cells.merge(
            other.cells,
            combine,
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        return MemoryEnv(cells, self.clock.widen(other.clock))

    def narrow(self, other: "MemoryEnv") -> "MemoryEnv":
        if self.bottom or other.bottom:
            return other
        cells = self.cells.merge(
            other.cells,
            lambda cid, a, b: a if a == b else a.narrow(b),
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        return MemoryEnv(cells, self.clock)

    def meet(self, other: "MemoryEnv") -> "MemoryEnv":
        if self.bottom or other.bottom:
            return self.to_bottom()
        saw_empty = False

        def combine(cid, a: CellValue, b: CellValue) -> CellValue:
            nonlocal saw_empty
            if a == b:
                return a
            m = a.meet(b)
            if m.is_bottom:
                saw_empty = True
            return m

        cells = self.cells.merge(
            other.cells,
            combine,
            missing_self=lambda cid, b: b,
            missing_other=lambda cid, a: a,
        )
        if saw_empty:
            return self.to_bottom()
        return MemoryEnv(cells, self.clock)

    def includes(self, other: "MemoryEnv") -> bool:
        """Abstract inclusion check (the stabilization test of Sect. 5.5)."""
        if other.bottom:
            return True
        if self.bottom:
            return False
        if not self.clock.range.includes(other.clock.range):
            return False
        if self.cells._root is other.cells._root:  # physical shortcut
            return True
        for cid in self.cells.diff_keys(other.cells):
            mine = self.cells.get(cid)
            theirs = other.cells.get(cid)
            if theirs is None:
                continue
            if mine is None or not mine.includes(theirs):
                return False
        # Keys only in other:
        for cid in other.cells.diff_keys(self.cells):
            if cid not in self.cells:
                return False
        return True

    def equal(self, other: "MemoryEnv") -> bool:
        if self.bottom or other.bottom:
            return self.bottom == other.bottom
        return (self.clock.range == other.clock.range
                and self.cells.equal(other.cells, lambda a, b: a == b))

    def diff_cids(self, other: "MemoryEnv"):
        """Cell ids whose values may differ (sharing-aware)."""
        return self.cells.diff_keys(other.cells)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.bottom:
            return "MemoryEnv(bottom)"
        inner = ", ".join(f"c{cid}={v!r}" for cid, v in self.cells.items())
        return f"MemoryEnv({inner})"
