"""The cell model of the memory abstract domain (Sect. 6.1.1).

An abstract environment is a collection of *abstract cells*:

* an **atomic cell** represents a scalar variable;
* an **expanded array cell** represents an array with one cell per element
  (field-sensitive, element-wise abstraction);
* a **shrunk array cell** represents a large array with a single cell
  abstracting the union of all elements;
* a **record cell** represents a struct with one cell per field.

This module computes the cell layout of a program: a mapping from variable
uids to :class:`CellLayout` trees, assigning a unique integer *cell id* to
every atomic slot.  The expansion threshold (how large an array may be
before it is shrunk) is an analysis parameter (Sect. 7.2 spirit: a
space/precision trade-off).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Tuple, Union

from ..frontend.c_types import (
    ArrayType, CType, EnumType, FloatType, IntType, PointerType, RecordType,
)
from ..frontend.ir import IRProgram, Var

__all__ = ["CellInfo", "CellLayout", "AtomicLayout", "ExpandedArrayLayout",
           "ShrunkArrayLayout", "RecordLayout", "CellTable"]


@dataclass(frozen=True)
class CellInfo:
    """One atomic abstract cell."""

    cid: int
    name: str  # human-readable path, e.g. "st.x" or "buf[3]"
    ctype: CType  # scalar type of the cell
    var_uid: int
    volatile: bool = False
    # For shrunk array cells: number of concrete elements summarized.
    summarized: int = 1

    @property
    def is_summary(self) -> bool:
        """Summary cells (shrunk arrays) only admit weak updates."""
        return self.summarized > 1

    @property
    def is_float(self) -> bool:
        return isinstance(self.ctype, FloatType)

    @property
    def is_integer(self) -> bool:
        return isinstance(self.ctype, (IntType, EnumType))


class CellLayout:
    """Layout tree of a variable's cells."""


@dataclass(frozen=True)
class AtomicLayout(CellLayout):
    cell: CellInfo


@dataclass(frozen=True)
class ExpandedArrayLayout(CellLayout):
    length: int
    elements: Tuple[CellLayout, ...]


@dataclass(frozen=True)
class ShrunkArrayLayout(CellLayout):
    length: int
    cell: CellInfo


@dataclass(frozen=True)
class RecordLayout(CellLayout):
    fields: Tuple[Tuple[str, CellLayout], ...]

    def field(self, name: str) -> CellLayout:
        for fname, layout in self.fields:
            if fname == name:
                return layout
        raise KeyError(name)


class CellTable:
    """Assigns cell ids to every variable of a program.

    Stack-allocated variables are created and destroyed on the fly
    (Sect. 5.2); their layouts are still precomputed here so each function
    invocation reuses stable cell ids (the analysis inlines calls, and the
    absence of recursion guarantees one live instance per variable).
    """

    def __init__(self, expand_threshold: int = 256):
        self.expand_threshold = expand_threshold
        self._next_cid = 0
        self._layouts: Dict[int, CellLayout] = {}
        self._cells: List[CellInfo] = []

    # -- construction ----------------------------------------------------------

    @staticmethod
    def for_program(prog: IRProgram, expand_threshold: int = 256) -> "CellTable":
        table = CellTable(expand_threshold)
        for v in prog.globals:
            table.add_var(v)
        for fn in prog.functions.values():
            for v in fn.params:
                if not isinstance(v.ctype, PointerType):
                    table.add_var(v)
            for v in fn.locals:
                table.add_var(v)
        return table

    def add_var(self, var: Var) -> CellLayout:
        if var.uid in self._layouts:
            return self._layouts[var.uid]
        layout = self._build(var, var.ctype, var.name)
        self._layouts[var.uid] = layout
        return layout

    def _build(self, var: Var, ctype: CType, path: str) -> CellLayout:
        if isinstance(ctype, ArrayType):
            total = _flat_length(ctype)
            if total > self.expand_threshold:
                cell = self._new_cell(var, _array_scalar_type(ctype),
                                      f"{path}[*]", summarized=total)
                return ShrunkArrayLayout(ctype.length, cell)
            elements = tuple(
                self._build(var, ctype.element, f"{path}[{i}]")
                for i in range(ctype.length)
            )
            return ExpandedArrayLayout(ctype.length, elements)
        if isinstance(ctype, RecordType):
            fields = tuple(
                (fname, self._build(var, ftype, f"{path}.{fname}"))
                for fname, ftype in ctype.fields
            )
            return RecordLayout(fields)
        cell = self._new_cell(var, ctype, path)
        return AtomicLayout(cell)

    def _new_cell(self, var: Var, ctype: CType, name: str,
                  summarized: int = 1) -> CellInfo:
        cell = CellInfo(self._next_cid, name, ctype, var.uid,
                        volatile=var.volatile, summarized=summarized)
        self._next_cid += 1
        self._cells.append(cell)
        return cell

    # -- queries ---------------------------------------------------------------

    @property
    def cell_count(self) -> int:
        return self._next_cid

    def layout(self, var_uid: int) -> CellLayout:
        return self._layouts[var_uid]

    def has_var(self, var_uid: int) -> bool:
        return var_uid in self._layouts

    def cell(self, cid: int) -> CellInfo:
        return self._cells[cid]

    def all_cells(self) -> Iterator[CellInfo]:
        return iter(self._cells)

    def cells_of_var(self, var_uid: int) -> List[CellInfo]:
        return list(iter_layout_cells(self._layouts[var_uid]))

    def scalar_cell(self, var_uid: int) -> CellInfo:
        """The unique cell of a scalar variable."""
        layout = self._layouts[var_uid]
        assert isinstance(layout, AtomicLayout), layout
        return layout.cell


def iter_layout_cells(layout: CellLayout) -> Iterator[CellInfo]:
    if isinstance(layout, AtomicLayout):
        yield layout.cell
    elif isinstance(layout, ShrunkArrayLayout):
        yield layout.cell
    elif isinstance(layout, ExpandedArrayLayout):
        for el in layout.elements:
            yield from iter_layout_cells(el)
    elif isinstance(layout, RecordLayout):
        for _, fl in layout.fields:
            yield from iter_layout_cells(fl)


def _flat_length(ctype: ArrayType) -> int:
    total = ctype.length
    el = ctype.element
    while isinstance(el, ArrayType):
        total *= el.length
        el = el.element
    if isinstance(el, RecordType):
        total *= max(1, len(el.fields))
    return total


def _array_scalar_type(ctype: CType) -> CType:
    """The scalar element type of a (possibly nested) array.

    Shrinking requires a homogeneous scalar element type; arrays of structs
    with mixed field types are shrunk per-scalar-kind only when uniform —
    otherwise the caller should have expanded them.
    """
    while isinstance(ctype, ArrayType):
        ctype = ctype.element
    if isinstance(ctype, RecordType):
        types = {ftype for _, ftype in ctype.fields}
        if len(types) == 1:
            return next(iter(types))
        # Mixed record arrays: abstract everything as the widest float.
        from ..frontend.c_types import DOUBLE
        return DOUBLE
    return ctype
