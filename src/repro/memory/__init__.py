"""Memory abstract domain: functional maps, cells, abstract environments."""

from .cells import CellInfo, CellTable
from .environment import MemoryEnv
from .fmap import PMap

__all__ = ["CellInfo", "CellTable", "MemoryEnv", "PMap"]
