"""Analyzer configuration: the end-user parameters of Sect. 3.2 and 7.

"The necessary adaptation of the analyzer to a particular program in the
family is by appropriate choice of some parameters." — every trade-off the
paper exposes is a field here:

* widening thresholds (Sect. 7.1.2) and delay (7.1.3),
* loop unrolling factors (7.1.1),
* the floating iteration perturbation epsilon (7.1.4),
* trace partitioning function selection (7.1.5),
* octagon/boolean packing strategy knobs and the useful-pack restriction
  of the packing optimization (7.2),
* volatile input ranges and the maximal operating time (Sect. 4),
* per-domain enable flags (used by the ablation benchmarks).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional, Sequence, Set, Tuple

from .domains.thresholds import ThresholdSet, default_thresholds

__all__ = ["AnalyzerConfig", "baseline_config"]


@dataclass
class AnalyzerConfig:
    """All parameters of the analyzer.  The defaults are the refined,
    fully-enabled analyzer; :func:`baseline_config` reproduces the
    interval-only analyzer of [5] that the refinement started from."""

    # -- environment model (Sect. 4) -------------------------------------------
    # Ranges of volatile input variables, by source name: name -> (lo, hi).
    input_ranges: Dict[str, Tuple[float, float]] = field(default_factory=dict)
    # Maximal number of clock ticks (maximal continuous operating time).
    max_clock: Optional[int] = 3_600_000

    # -- memory domain -----------------------------------------------------------
    # Arrays larger than this are shrunk to a single summary cell.
    expand_threshold: int = 256

    # -- iteration strategy (Sect. 7.1) --------------------------------------------
    thresholds: Optional[ThresholdSet] = field(default_factory=default_thresholds)
    # Loop unrolling: per-loop-id override and a global default (Sect. 7.1.1).
    loop_unroll: Dict[int, int] = field(default_factory=dict)
    default_unroll: int = 1
    # Delayed widening: number of initial join-only iterations (Sect. 7.1.3).
    widening_delay: int = 2
    # Fairness bound: maximum extra join-only iterations granted while some
    # variable newly stabilizes each round (avoids livelocks, Sect. 7.1.3).
    delay_fairness_bound: int = 8
    # Number of narrowing (decreasing) iterations after stabilization.
    narrowing_steps: int = 2
    # Floating iteration perturbation epsilon (Sect. 7.1.4).
    iteration_epsilon: float = 1e-6
    # Hard cap on widening iterations per loop (safety net).
    max_widening_iterations: int = 60

    # -- trace partitioning (Sect. 7.1.5) --------------------------------------------
    partition_functions: Set[str] = field(default_factory=set)
    max_partition_depth: int = 4

    # -- abstract domains (Sect. 6.2) ----------------------------------------------
    enable_clock: bool = True
    enable_octagons: bool = True
    enable_ellipsoids: bool = True
    enable_decision_trees: bool = True
    enable_linearization: bool = True

    # -- packing (Sect. 7.2) -----------------------------------------------------
    max_octagon_pack_size: int = 8
    # Restrict analysis to these packs (pack keys from a previous run's
    # useful-pack output): the packing optimization of Sect. 7.2.2.
    restrict_octagon_packs: Optional[FrozenSet[Tuple[int, ...]]] = None
    # Boolean pack size cap ("setting this parameter to three yields an
    # efficient and precise analysis", Sect. 7.2.3).
    max_bool_pack_bools: int = 3
    max_bool_pack_numerics: int = 8
    # Inter-octagon propagation through shared variables (Sect. 7.2.1:
    # "we could do some information propagation (i.e. reduction) between
    # octagons at analysis time, using common variables as pivots;
    # however, this precision gain was not needed in our experiments").
    octagon_pivot_reduction: bool = False

    # -- incremental fixpoint engine (repro.iterator.incremental) ---------------
    # Re-execute only the statements of a widening iteration whose
    # read/write footprint disagrees with the memoized previous
    # execution, splicing recorded post-states for the rest.  Results
    # are bit-identical to full re-execution (--no-incremental).
    incremental: bool = True
    # Bounded LRU memo for AbstractState join/widen/includes, keyed on
    # interned node identities (entries; 0 disables).
    lattice_memo_size: int = 4096
    # Bounded hash-consing pool for cell values (entries; 0 disables).
    value_intern_size: int = 65536
    # Bounded value-keyed memo for octagon closure (matrices; 0
    # disables).  Incremental iteration preserves matrix identity across
    # iterations, so closures of already-seen matrices recur constantly.
    closure_memo_size: int = 8192

    # -- vectorized lattice kernels (repro.numeric.interval_kernels) -------------
    # Batched numpy kernels for the cell-wise FloatInterval lattice ops
    # and the octagon closure.  Bit-identical to the scalar
    # implementations, which remain the differential-testing oracle
    # behind --no-vectorize; a pure performance knob, excluded from the
    # checkpoint and serve compat fingerprints like ``incremental``.
    vectorize: bool = True
    # Crossover heuristic: minimum differing batchable float cells in
    # one environment merge before the batched kernel path engages
    # (below it, per-cell scalar ops beat the numpy call overhead).
    vectorize_min_cells: int = 16

    # -- parallel engine ---------------------------------------------------------
    # Number of analysis worker processes.  1 (the default) runs the
    # exact sequential path; N > 1 partitions independent work units
    # across a process pool (results stay bit-identical to jobs=1).
    jobs: int = 1
    # Minimal total footprint weight (roughly: statement count, loop
    # bodies scaled up) a block region must have before its units are
    # dispatched to workers rather than run inline.
    parallel_min_stmts: int = 48
    # Worker crash recovery (repro.parallel): how many times one dispatch
    # is retried against a re-forked pool after a worker death, the base
    # of the exponential backoff between attempts, and how many pool
    # rebuilds the whole run tolerates before parallelism is disabled
    # for good (sequential execution of the remaining work — results
    # stay identical either way).
    dispatch_retries: int = 2
    retry_backoff_s: float = 0.05
    max_pool_rebuilds: int = 3
    # Dispatch backend (repro.parallel.backends): where work units
    # execute.  "pool" forks a local process pool; "inline" runs them
    # in-process (zero-copy dispatch-overhead floor); "socket" ships
    # them to a repro.parallel.remote worker fleet with work-stealing
    # and elastic membership.  Pure scheduling knobs — every backend is
    # bit-identical to sequential — so they are excluded from the
    # checkpoint and serve compat fingerprints like ``vectorize``.
    dispatch: str = "pool"
    # Socket-backend fleet: worker addresses ("HOST:PORT" or
    # "unix:PATH").  Empty with --dispatch socket auto-spawns ``jobs``
    # local workers on loopback.
    workers: Tuple[str, ...] = ()
    # Dial timeout per worker address; an unreachable worker is skipped
    # and re-dialled with exponential backoff (elastic join).
    worker_connect_timeout_s: float = 5.0

    # -- resource budgets (repro.supervisor) ------------------------------------
    # When any budget trips, the supervisor walks the soundness-
    # preserving degradation ladder instead of aborting: the run always
    # terminates with a sound (possibly coarser) verdict and
    # AnalysisResult.degraded set.  None disables a budget.
    wall_deadline_s: Optional[float] = None
    # Peak-RSS ceiling (analyzer + workers), sampled by a watchdog thread.
    rss_limit_kib: Optional[int] = None
    # Soft per-statement timeout, sampled at statement boundaries.
    stmt_timeout_s: Optional[float] = None
    watchdog_interval_s: float = 0.05

    # -- checkpoint / resume (repro.supervisor) ---------------------------------
    # Serialize the analysis at outermost fixpoint-iteration boundaries
    # to this path (atomic overwrite); resume_path restores such a file
    # and continues bit-identically to an uninterrupted run.
    checkpoint_path: Optional[str] = None
    checkpoint_every: int = 1
    resume_path: Optional[str] = None
    # Fault-injection knob (tests/CI): simulate a kill by raising
    # SupervisorHalt after this many checkpoints have been written.
    checkpoint_halt_after: Optional[int] = None

    # -- result certification (repro.certify) -----------------------------------
    # Record, for every loop occurrence of the checking-mode traversal,
    # the invariant the final checking pass ran from plus the
    # pre-narrowing post-fixpoint it was narrowed from.  The records feed
    # the certificate emitter (--certify / --emit-certificate), which
    # packages them into an engine-independent, content-addressed
    # artifact validated by ``astree-repro check-certificate``.  A pure
    # observation knob: results are unchanged, so it is excluded from the
    # checkpoint and serve fingerprints like ``vectorize``.
    certify: bool = False

    # -- reporting --------------------------------------------------------------------
    collect_invariants: bool = False
    # Tracing facilities (Sect. 5.3): when on, the iterator counts abstract
    # visits per statement (exposed as AnalysisResult.visit_counts) — a
    # cheap way to see where the iteration strategy spends its work.
    trace: bool = False

    def with_overrides(self, **kwargs) -> "AnalyzerConfig":
        import dataclasses

        return dataclasses.replace(self, **kwargs)


def baseline_config(**kwargs) -> AnalyzerConfig:
    """The 'analyzer [5] we started with': intervals + clock only, no
    relational domains, no trace partitioning, plain widening ladder."""
    cfg = AnalyzerConfig(
        enable_octagons=False,
        enable_ellipsoids=False,
        enable_decision_trees=False,
        enable_linearization=False,
        widening_delay=0,
        default_unroll=0,
        narrowing_steps=1,
    )
    return cfg.with_overrides(**kwargs) if kwargs else cfg
