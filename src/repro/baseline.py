"""The baseline analyzer: the "[5] analyzer we started with" (Sect. 2-3).

A convenience wrapper that analyzes with only the original domains (plain
intervals plus, optionally, the clocked domain) and none of this paper's
refinements — the starting point of the refinement loop whose alarm count
the experiments compare against (1,200 alarms vs the refined analyzer's 11
on the reference program).
"""

from __future__ import annotations

from typing import Dict, Optional, Tuple

from .analysis import AnalysisResult, analyze
from .config import AnalyzerConfig, baseline_config

__all__ = ["analyze_baseline", "refinement_stages"]


def analyze_baseline(source, filename: str = "<input>",
                     input_ranges: Optional[Dict[str, Tuple[float, float]]] = None,
                     max_clock: Optional[int] = 3_600_000,
                     **overrides) -> AnalysisResult:
    cfg = baseline_config(input_ranges=input_ranges or {}, max_clock=max_clock)
    if overrides:
        cfg = cfg.with_overrides(**overrides)
    return analyze(source, filename, config=cfg)


def refinement_stages(base: AnalyzerConfig):
    """The cumulative refinement sequence of Sect. 3.1/6, as configs.

    Yields (stage name, config) from the baseline analyzer to the fully
    refined one, for alarm-reduction experiments (E2).
    """
    stages = [
        ("intervals",
         dict(enable_clock=False, enable_octagons=False,
              enable_ellipsoids=False, enable_decision_trees=False,
              enable_linearization=False, widening_delay=0, default_unroll=0)),
        ("+clocked domain",
         dict(enable_octagons=False, enable_ellipsoids=False,
              enable_decision_trees=False, enable_linearization=False,
              widening_delay=0, default_unroll=0)),
        ("+linearization",
         dict(enable_octagons=False, enable_ellipsoids=False,
              enable_decision_trees=False, widening_delay=0,
              default_unroll=0)),
        ("+iteration strategy",
         dict(enable_octagons=False, enable_ellipsoids=False,
              enable_decision_trees=False)),
        ("+octagons",
         dict(enable_ellipsoids=False, enable_decision_trees=False)),
        ("+ellipsoids",
         dict(enable_decision_trees=False)),
        ("+decision trees (full)", dict()),
    ]
    for name, overrides in stages:
        yield name, base.with_overrides(**overrides)
