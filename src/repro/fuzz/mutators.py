"""Deterministic edge-case mutators for generated family programs.

Each mutator takes the generated C source plus the volatile input-range
spec and returns transformed versions of both.  Mutations are described
by small JSON dicts (``{"kind": ..., **params}``) so the corpus can
replay them and the reducer can drop them one by one; all randomness is
drawn from a :class:`random.Random` seeded per mutation from the case
seed, never from module-level state.

Soundness is *never* assumed of a mutated program: mutations may plant
genuine run-time errors (boundary constants, out-of-range guards) — the
oracle then demands the analyzer alarm on them, which is exactly the
differential claim under test.
"""

from __future__ import annotations

import random
import re
from typing import Dict, List, Tuple

from ..concrete.interpreter import derive_seed

__all__ = ["MUTATION_KINDS", "apply_mutations"]

Ranges = Dict[str, Tuple[float, float]]

# Replacement pools for boundary-constant mutation.  Float magnitudes are
# deliberately bounded (the family runs tens of ticks; even a destabilized
# filter stays finite in binary32, so concrete traces never reach inf/NaN
# silently — overflow is recorded and must be covered by an alarm).
_FLOAT_POOL = ["0.0f", "1.0f", "-1.0f", "0.001f", "-0.001f", "0.5f",
               "2.0f", "-2.0f", "1000.0f", "-1000.0f", "100000.0f"]
_INT_POOL = ["0", "1", "2", "7", "9", "31", "32767", "2147483646"]

# Near-boundary / degenerate second-order filter coefficients (a, b):
# stable-but-barely, marginally stable, and fully degenerate variants.
_DEGENERATE_COEFFS = [
    (1.9, 0.95),     # stable, slow decay: ellipsoid barely contracts
    (1.99, 0.999),   # a^2 < 4b by a hair
    (2.0, 1.0),      # marginally stable: a^2 == 4b, ellipsoid refused
    (0.0, 0.0),      # degenerate: X := t
    (0.0, 0.999),    # pure oscillator coupling
    (1.5, 0.7),      # the family's own nominal pair, tiny input range
]

# Adversarial volatile range variants (all integral-friendly: the
# concrete provider draws randint(ceil(lo), floor(hi)) for int inputs).
_RANGE_VARIANTS = [
    (0.0, 0.0),                   # zero-width at zero
    (1.0, 1.0),                   # zero-width off zero
    (-1.0, 1.0),                  # sign-crossing unit
    (-1000000.0, 1000000.0),      # huge symmetric
    (0.0, 1000000.0),             # huge one-sided
    (-7.0, -2.0),                 # negative-only
    (-1e-30, 1e-30),              # sub-denormal width (ints: {0})
]

_FLOAT_LIT_RE = re.compile(r"\b\d+(?:\.\d+)?(?:[eE][+-]?\d+)?f\b")
_INT_LIT_RE = re.compile(r"(?<![\w.\[])(\d+)(?![\w.\]])")


def _step_region(source: str) -> Tuple[int, int]:
    """The slice of the source holding the step-function bodies."""
    start = source.find("void step_")
    stop = source.find("int main(void)")
    if start < 0 or stop < 0 or stop <= start:
        return 0, len(source)
    return start, stop


def _mutate_boundary_constants(source: str, ranges: Ranges, params: Dict,
                               rng: random.Random) -> Tuple[str, Ranges]:
    """Replace numeric literals in step bodies with boundary values."""
    count = int(params.get("count", 2))
    start, stop = _step_region(source)
    region = source[start:stop]
    for _ in range(count):
        use_float = rng.random() < 0.75
        pat = _FLOAT_LIT_RE if use_float else _INT_LIT_RE
        pool = _FLOAT_POOL if use_float else _INT_POOL
        hits = list(pat.finditer(region))
        if not hits:
            continue
        hit = hits[rng.randrange(len(hits))]
        region = (region[:hit.start()] + rng.choice(pool)
                  + region[hit.end():])
    return source[:start] + region + source[stop:], ranges


def _mutate_adversarial_ranges(source: str, ranges: Ranges, params: Dict,
                               rng: random.Random) -> Tuple[str, Ranges]:
    """Replace some volatile input ranges with adversarial variants."""
    count = int(params.get("count", 2))
    names = sorted(ranges)
    if not names:
        return source, ranges
    out = dict(ranges)
    for _ in range(min(count, len(names))):
        name = names[rng.randrange(len(names))]
        out[name] = rng.choice(_RANGE_VARIANTS)
    return source, out


def _mutate_deep_nesting(source: str, ranges: Ranges, params: Dict,
                         rng: random.Random) -> Tuple[str, Ranges]:
    """Wrap the main-loop body in a ladder of nested conditionals."""
    depth = max(1, min(int(params.get("depth", 8)), 40))
    head = "    while (1) {\n"
    tail = "        __ASTREE_wait_for_clock();\n"
    hi = source.find(head)
    ti = source.find(tail, hi)
    if hi < 0 or ti < 0:
        return source, ranges
    body_start = hi + len(head)
    body = source[body_start:ti]
    wrapped = ("if (1) { " * depth) + "\n" + body + ("}" * depth) + "\n"
    return source[:body_start] + wrapped + source[ti:], ranges


def _mutate_degenerate_filter(source: str, ranges: Ranges, params: Dict,
                              rng: random.Random) -> Tuple[str, Ranges]:
    """Append a near-boundary second-order filter fed by a fresh input."""
    variant = int(params.get("variant", rng.randrange(
        len(_DEGENERATE_COEFFS)))) % len(_DEGENERATE_COEFFS)
    a, b = _DEGENERATE_COEFFS[variant]
    tag = f"fz{variant}"
    inp = f"{tag}_in"
    if inp in ranges:  # the same variant applied twice: idempotent
        return source, ranges
    decls = (f"volatile float {inp};\n"
             f"float {tag}_X;\nfloat {tag}_Y;\n"
             f"void fuzz_filter_{variant}(void) {{\n"
             f"    float {tag}_t;\n"
             f"    float {tag}_Xp;\n"
             f"    {tag}_t = {inp};\n"
             f"    {tag}_Xp = {a}f * {tag}_X - {b}f * {tag}_Y + {tag}_t;\n"
             f"    {tag}_Y = {tag}_X;\n"
             f"    {tag}_X = {tag}_Xp;\n"
             f"}}\n\n")
    anchor = "int main(void) {"
    ai = source.find(anchor)
    if ai < 0:
        return source, ranges
    call = f"        fuzz_filter_{variant}();\n"
    tail = "        __ASTREE_wait_for_clock();"
    ti = source.find(tail, ai)
    if ti < 0:
        return source, ranges
    mutated = (source[:ai] + decls + source[ai:ti] + call + source[ti:])
    out = dict(ranges)
    out[inp] = (-1.0, 1.0)
    return mutated, out


MUTATION_KINDS = {
    "boundary-constants": _mutate_boundary_constants,
    "adversarial-ranges": _mutate_adversarial_ranges,
    "deep-nesting": _mutate_deep_nesting,
    "degenerate-filter": _mutate_degenerate_filter,
}


def apply_mutations(source: str, ranges: Ranges, mutations: List[Dict],
                    case_seed: int) -> Tuple[str, Ranges, List[str]]:
    """Apply mutation descriptors in order; returns the mutated source,
    the (possibly updated) input ranges, and the applied kinds."""
    applied: List[str] = []
    for i, desc in enumerate(mutations):
        kind = desc.get("kind")
        fn = MUTATION_KINDS.get(kind)
        if fn is None:
            raise ValueError(f"unknown mutation kind: {kind!r}")
        rng = random.Random(derive_seed(case_seed, "mutation", i, kind))
        source, ranges = fn(source, ranges, desc, rng)
        applied.append(kind)
    return source, ranges, applied
