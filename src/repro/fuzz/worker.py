"""Per-case worker: the isolated unit of one fuzz execution.

Invoked as ``python -m repro.fuzz.worker`` with a JSON job on stdin
(``{"spec": {...CaseSpec...}}``) and a JSON verdict payload on stdout.
Clean rejections of invalid mutants (:class:`repro.errors.ReproError`)
are part of the payload; *any other* exception propagates and crashes
the process — the campaign runner classifies the nonzero exit plus the
stderr traceback as a ``crash`` outcome.  That asymmetry is the point of
process isolation: an analyzer bug takes down one worker, not the
campaign.

The payload carries only deterministic fields (no wall times, no RSS),
so the campaign's verdict digest over it is bit-identical across
replays of the same spec.

:func:`execute_spec` is the same code path run in-process — used by
``--replay --in-process``, the reducer, and the tests.
"""

from __future__ import annotations

import hashlib
import json
import sys
from typing import Dict

from ..analysis import analyze
from ..config import AnalyzerConfig
from ..errors import ReproError
from .case import BuiltCase, CaseSpec, build_case
from .oracle import run_oracle

__all__ = ["execute_spec", "run_built_case", "main"]

#: AnalyzerConfig fields a case spec may override (everything else in
#: ``spec.analyzer`` is rejected so corpus files can't silently no-op).
_ANALYZER_OVERRIDES = frozenset({
    "wall_deadline_s", "rss_limit_kib", "stmt_timeout_s", "jobs",
    "incremental", "widening_delay", "expand_threshold", "vectorize",
})


def _analyzer_config(spec: CaseSpec, built: BuiltCase) -> AnalyzerConfig:
    config = AnalyzerConfig(collect_invariants=True, certify=True,
                            input_ranges=dict(built.input_ranges),
                            max_clock=built.max_clock)
    unknown = set(spec.analyzer) - _ANALYZER_OVERRIDES
    if unknown:
        raise ValueError(f"unknown analyzer overrides: {sorted(unknown)}")
    for key, value in spec.analyzer.items():
        setattr(config, key, value)
    return config


def run_built_case(built: BuiltCase) -> Dict:
    """Analyze one built case and judge it with the soundness oracle."""
    spec = built.spec
    if spec.inject_crash is not None and \
            built.block_counts.get(spec.inject_crash, 0) > 0:
        # Fault-injection hook: a deterministic, spec-carried crash used
        # to validate the triage and reduction pipeline end to end.
        raise RuntimeError(
            f"injected crash: block type {spec.inject_crash} present")
    result = analyze(built.source, filename=f"<{spec.case_id}>",
                     config=_analyzer_config(spec, built))
    prog = result.ctx.prog
    oracle = run_oracle(prog, result, built.input_ranges, spec.case_seed,
                        streams=spec.streams, max_ticks=spec.max_ticks)
    vectorize_differential = None
    if spec.analyzer.get("vectorize") is False:
        # Differential oracle for the vectorized kernels: this case ran
        # on the scalar-oracle backend; re-analyze with the batched
        # numpy kernels and demand a bit-identical verdict.  Any drift
        # is an unsoundness-grade finding (one backend must be wrong).
        vec_cfg = _analyzer_config(spec, built)
        vec_cfg.vectorize = True
        vec = analyze(built.source, filename=f"<{spec.case_id}>",
                      config=vec_cfg)
        identical = (
            [(a.kind, a.loc.line, a.message) for a in result.alarms]
            == [(a.kind, a.loc.line, a.message) for a in vec.alarms]
            and result.alarm_count == vec.alarm_count
            and result.exit_code == vec.exit_code
            and result.widening_iterations == vec.widening_iterations
        )
        vectorize_differential = {"identical": identical}
    certified = None
    certify_error = None
    if not result.degraded:
        # Certification oracle: every non-degraded case's invariant map
        # must survive an independent one-application replay.  A result
        # the certifier cannot validate is an unsoundness-grade finding
        # even when the concrete-execution oracle saw nothing.
        from ..certify import certify_result
        from ..errors import CertificateError

        try:
            certify_result(result, built.source,
                           filename=f"<{spec.case_id}>")
            certified = True
        except CertificateError as exc:
            certified = False
            certify_error = str(exc)
    if result.degraded:
        outcome = "degraded"
    elif not oracle.sound:
        outcome = "unsound"
    elif certified is False:
        outcome = "unsound"
    elif vectorize_differential is not None \
            and not vectorize_differential["identical"]:
        outcome = "unsound"
    else:
        outcome = "sound"
    payload = {
        "outcome": outcome,
        "case_id": spec.case_id,
        "analysis_exit_code": result.exit_code,
        "alarm_count": result.alarm_count,
        "alarms_by_kind": dict(sorted(result.alarms_by_kind().items())),
        "degraded": result.degraded,
        "degradation_steps": list(result.degradation_steps),
        "widening_iterations": result.widening_iterations,
        "oracle": oracle.to_json(),
        "block_counts": dict(sorted(built.block_counts.items())),
        "applied_mutations": list(built.applied_mutations),
        "source_sha256": hashlib.sha256(
            built.source.encode("utf-8")).hexdigest(),
        "source_lines": built.source.count("\n"),
    }
    if certified is not None:
        payload["certified"] = certified
    if certify_error is not None:
        payload["certify_error"] = certify_error
    if vectorize_differential is not None:
        payload["vectorize_differential"] = vectorize_differential
    return payload


def execute_spec(spec: CaseSpec) -> Dict:
    """Build and run one case; clean :class:`ReproError` rejections
    become a ``rejected`` payload, anything else propagates (crash)."""
    try:
        built = build_case(spec)
        return run_built_case(built)
    except ReproError as exc:
        return {
            "outcome": "rejected",
            "case_id": spec.case_id,
            "error_class": type(exc).__name__,
            "error": str(exc),
        }


def main() -> int:
    job = json.load(sys.stdin)
    spec = CaseSpec.from_json(job["spec"])
    payload = execute_spec(spec)
    json.dump(payload, sys.stdout, sort_keys=True)
    sys.stdout.write("\n")
    return 0


if __name__ == "__main__":
    sys.exit(main())
